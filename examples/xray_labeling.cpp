/// \file xray_labeling.cpp
/// \brief Medical-imaging scenario: label a chest X-ray corpus (TB
/// screening) with a 10-image development set, train the downstream end
/// model on the probabilistic labels, and compare with the few-shot
/// learning baseline — the paper's motivating use case where per-dataset
/// labeling functions are unobtainable (radiologists would have to
/// pre-extract primitives, c.f. paper Example 1).

#include <cstdio>

#include "eval/backbone.h"
#include "eval/metrics.h"
#include "eval/runners.h"
#include "eval/tasks.h"

int main() {
  using namespace goggles;

  std::printf("== GOGGLES on chest X-rays (TB screening) ==\n\n");
  // Named options object: GCC 12 -O3 false-fires -Wmaybe-uninitialized on
  // the defaulted `const BackboneOptions& = {}` temporary.
  eval::BackboneOptions backbone_options;
  auto extractor = eval::GetPretrainedExtractor(backbone_options);
  extractor.status().Abort("backbone");
  eval::RunnerContext ctx;
  ctx.extractor = *extractor;

  eval::TaskSuiteConfig config;
  config.dev_per_class = 5;
  auto tasks = eval::MakeTasks("tbxray", config);
  tasks.status().Abort("tasks");
  const eval::LabelingTask& task = (*tasks)[0];
  std::printf("corpus: %lld unlabeled X-rays, %zu labeled (dev), %lld test\n",
              static_cast<long long>(task.train.size()),
              task.dev_indices.size(),
              static_cast<long long>(task.test.size()));

  // 1. Affinity coding produces probabilistic labels.
  LabelingResult labeling;
  auto label_acc = eval::RunGogglesLabeling(task, ctx, &labeling);
  label_acc.status().Abort("labeling");
  std::printf("\nGOGGLES labeling accuracy (train split): %.2f%%\n",
              *label_acc * 100);

  // 2. Probabilistic labels train the downstream diagnostic model.
  auto end_acc =
      eval::RunEndModelFromSoftLabels(task, ctx, labeling.soft_labels);
  end_acc.status().Abort("end model");
  std::printf("end model accuracy (held-out test):      %.2f%%\n",
              *end_acc * 100);

  // 3. Comparisons: FSL on the same 10 labels, supervised upper bound.
  auto fsl_acc = eval::RunFslEndToEnd(task, ctx);
  fsl_acc.status().Abort("fsl");
  auto upper = eval::RunSupervisedUpperBound(task, ctx);
  upper.status().Abort("upper");
  std::printf("\ncomparison on the same 10 labeled X-rays:\n");
  std::printf("  few-shot learning baseline: %.2f%%\n", *fsl_acc * 100);
  std::printf("  GOGGLES + end model:        %.2f%%\n", *end_acc * 100);
  std::printf("  supervised upper bound:     %.2f%%  (uses ALL %lld labels)\n",
              *upper * 100, static_cast<long long>(task.train.size()));
  return 0;
}
