/// \file quickstart.cpp
/// \brief Minimal end-to-end GOGGLES run.
///
/// 1. Pretrain (or load) the VggMini backbone on SynthNet.
/// 2. Build a binary labeling task from the SynthBirds corpus.
/// 3. Run affinity coding: affinity matrix -> hierarchical generative
///    model -> probabilistic labels, using a 10-image development set.
/// 4. Report labeling accuracy on the images that had no labels.

#include <cstdio>

#include "eval/backbone.h"
#include "eval/metrics.h"
#include "eval/runners.h"
#include "eval/tasks.h"
#include "util/timer.h"

int main() {
  using namespace goggles;

  // Step 0: pretrained backbone (cached under /tmp/goggles_cache).
  eval::BackboneOptions backbone_options;
  backbone_options.cache_dir = "/tmp/goggles_cache";
  backbone_options.verbose = true;
  std::printf("Preparing the pretrained backbone...\n");
  WallTimer timer;
  auto extractor_result = eval::GetPretrainedExtractor(backbone_options);
  extractor_result.status().Abort("backbone");
  std::printf("  backbone ready in %.1fs\n", timer.ElapsedSeconds());

  // Step 1: one binary labeling task (a SynthBirds class pair).
  eval::TaskSuiteConfig task_config;
  task_config.num_pairs = 1;
  auto tasks = eval::MakeTasks("birds", task_config);
  tasks.status().Abort("tasks");
  const eval::LabelingTask& task = (*tasks)[0];
  std::printf("Task %s: %lld unlabeled-pool images, %zu dev labels\n",
              task.task_name.c_str(),
              static_cast<long long>(task.train.size()),
              task.dev_indices.size());

  // Step 2: GOGGLES labeling.
  eval::RunnerContext ctx;
  ctx.extractor = *extractor_result;
  timer.Restart();
  LabelingResult result;
  auto accuracy = eval::RunGogglesLabeling(task, ctx, &result);
  accuracy.status().Abort("goggles");
  std::printf("GOGGLES labeling accuracy: %.2f%%  (%.1fs, %d affinity "
              "functions)\n",
              *accuracy * 100.0, timer.ElapsedSeconds(),
              GogglesPipeline(ctx.extractor, ctx.goggles).num_functions());

  // Step 3: probabilistic labels are ready for a downstream model.
  std::printf("First 5 probabilistic labels (class 0, class 1):\n");
  for (int i = 0; i < 5 && i < result.soft_labels.rows(); ++i) {
    std::printf("  image %d: (%.3f, %.3f) -> class %d (truth %d)\n", i,
                result.soft_labels(i, 0), result.soft_labels(i, 1),
                result.hard_labels[static_cast<size_t>(i)],
                task.train.labels[static_cast<size_t>(i)]);
  }
  return 0;
}
