/// \file multiclass_labeling.cpp
/// \brief Beyond class pairs: GOGGLES with K > 2. The hierarchical model,
/// the one-hot LP encoding and the Hungarian cluster-to-class mapping are
/// all K-ary (paper §4: the assignment problem is solved in O(K^3)); this
/// example labels a 4-class SynthBirds task with 5 dev labels per class.

#include <cstdio>

#include "data/dataset.h"
#include "data/registry.h"
#include "eval/backbone.h"
#include "eval/metrics.h"
#include "goggles/pipeline.h"
#include "goggles/theory.h"
#include "util/rng.h"

int main() {
  using namespace goggles;

  std::printf("== Multi-class affinity coding (K = 4) ==\n\n");
  // Named options object: GCC 12 -O3 false-fires -Wmaybe-uninitialized on
  // the defaulted `const BackboneOptions& = {}` temporary.
  eval::BackboneOptions backbone_options;
  auto extractor = eval::GetPretrainedExtractor(backbone_options);
  extractor.status().Abort("backbone");

  // A 4-class task from the SynthBirds corpus.
  auto corpus = data::GenerateDataset("birds", /*images_per_class=*/40);
  corpus.status().Abort("corpus");
  data::LabeledDataset task = data::SelectClasses(*corpus, {1, 5, 9, 14});
  Rng rng(11);
  std::vector<int> dev_indices = data::SampleDevIndices(task, 5, &rng);
  std::vector<int> dev_labels;
  for (int idx : dev_indices) {
    dev_labels.push_back(task.labels[static_cast<size_t>(idx)]);
  }
  std::printf("task: %lld images, 4 classes, %zu dev labels\n",
              static_cast<long long>(task.size()), dev_indices.size());

  GogglesPipeline pipeline(*extractor, GogglesConfig{});
  auto result = pipeline.Label(task.images, dev_indices, dev_labels, 4);
  result.status().Abort("label");

  const double accuracy = eval::AccuracyExcluding(
      result->hard_labels, task.labels, dev_indices);
  std::printf("labeling accuracy (non-dev rows): %.2f%%\n", accuracy * 100);

  std::printf("cluster -> class mapping chosen by the dev set:");
  for (size_t k = 0; k < result->cluster_to_class.size(); ++k) {
    std::printf(" %zu->%d", k, result->cluster_to_class[k]);
  }
  std::printf("\n");

  // How many dev labels does the theory ask for at this accuracy?
  const int required =
      RequiredDevPerClass(4, accuracy, /*target_probability=*/0.95);
  std::printf(
      "\nTheorem 1: at eta=%.2f, K=4, a %d/class dev set guarantees the\n"
      "correct mapping with p>=0.95 — the bound is loose; 5/class worked.\n",
      accuracy, required);
  return 0;
}
