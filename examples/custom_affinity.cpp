/// \file custom_affinity.cpp
/// \brief Extending the affinity library with a user-defined affinity
/// function. §3.2 of the paper notes GOGGLES "can be easily extended to
/// use any other representation learning techniques" — here we register a
/// HOG-based cosine affinity alongside the 50 prototype functions and let
/// the hierarchical model decide how much to trust it.

#include <cstdio>
#include <memory>

#include "eval/backbone.h"
#include "eval/metrics.h"
#include "eval/tasks.h"
#include "features/hog.h"
#include "goggles/pipeline.h"

int main() {
  using namespace goggles;

  std::printf("== Custom affinity functions ==\n\n");
  // Named options object: GCC 12 -O3 false-fires -Wmaybe-uninitialized on
  // the defaulted `const BackboneOptions& = {}` temporary.
  eval::BackboneOptions backbone_options;
  auto extractor = eval::GetPretrainedExtractor(backbone_options);
  extractor.status().Abort("backbone");

  eval::TaskSuiteConfig config;
  config.num_pairs = 1;
  auto tasks = eval::MakeTasks("surface", config);
  tasks.status().Abort("tasks");
  const eval::LabelingTask& task = (*tasks)[0];

  // Baseline pipeline: the 50 built-in prototype affinity functions.
  GogglesPipeline base(*extractor, GogglesConfig{});
  auto base_result =
      base.Label(task.train.images, task.dev_indices, task.dev_labels, 2);
  base_result.status().Abort("base");
  const double base_acc = eval::AccuracyExcluding(
      base_result->hard_labels, task.train.labels, task.dev_indices);
  std::printf("prototype library only (%d functions): %.2f%%\n",
              base.num_functions(), base_acc * 100);

  // Extended pipeline: + a HOG cosine affinity (texture-oriented signal,
  // well matched to the surface-finish task).
  GogglesPipeline extended(*extractor, GogglesConfig{});
  auto hog = features::ComputeHogMatrix(task.train.images);
  hog.status().Abort("hog");
  extended.AddFunction(
      std::make_unique<VectorCosineAffinity>("hog-cosine", std::move(*hog)));
  auto ext_result =
      extended.Label(task.train.images, task.dev_indices, task.dev_labels, 2);
  ext_result.status().Abort("extended");
  const double ext_acc = eval::AccuracyExcluding(
      ext_result->hard_labels, task.train.labels, task.dev_indices);
  std::printf("with custom HOG affinity (%d functions):  %.2f%%\n",
              extended.num_functions(), ext_acc * 100);

  std::printf("\nThe ensemble learns per-function reliability (Eq. 7), so\n"
              "adding weak or redundant functions is safe; adding a strong\n"
              "complementary one can only help.\n");
  return 0;
}
