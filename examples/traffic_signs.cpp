/// \file traffic_signs.cpp
/// \brief Multi-task scenario: one pretrained backbone + one affinity
/// library reused across several GTSRB-style class-pair labeling tasks —
/// the paper's "populated once and can be reused for any new dataset"
/// property of affinity functions (§1).

#include <cstdio>

#include "eval/backbone.h"
#include "eval/metrics.h"
#include "eval/runners.h"
#include "eval/tasks.h"
#include "util/timer.h"

int main() {
  using namespace goggles;

  std::printf("== Reusing one affinity library across traffic-sign tasks ==\n\n");
  // Named options object: GCC 12 -O3 false-fires -Wmaybe-uninitialized on
  // the defaulted `const BackboneOptions& = {}` temporary.
  eval::BackboneOptions backbone_options;
  auto extractor = eval::GetPretrainedExtractor(backbone_options);
  extractor.status().Abort("backbone");
  eval::RunnerContext ctx;
  ctx.extractor = *extractor;

  eval::TaskSuiteConfig config;
  config.num_pairs = 5;
  auto tasks = eval::MakeTasks("signs", config);
  tasks.status().Abort("tasks");

  double total = 0.0;
  WallTimer timer;
  for (const eval::LabelingTask& task : *tasks) {
    WallTimer task_timer;
    auto acc = eval::RunGogglesLabeling(task, ctx);
    acc.status().Abort("labeling");
    std::printf("  %-16s labeling accuracy %6.2f%%  (%.1fs, %lld images, "
                "10 dev labels)\n",
                task.task_name.c_str(), *acc * 100,
                task_timer.ElapsedSeconds(),
                static_cast<long long>(task.train.size()));
    total += *acc;
  }
  std::printf("\nmean over %zu sign pairs: %.2f%% in %.1fs total\n",
              tasks->size(), total / static_cast<double>(tasks->size()) * 100,
              timer.ElapsedSeconds());
  std::printf("No labeling functions, primitives or retraining were needed\n"
              "for any new pair — only 10 development labels each.\n");
  return 0;
}
