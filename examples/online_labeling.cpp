/// \file online_labeling.cpp
/// \brief Online incremental labeling through a persisted artifact.
///
/// 1. Fit a labeling session once on an unlabeled pool (the expensive
///    part: affinity matrix + hierarchical EM).
/// 2. Save the fitted session as a versioned `.ggsa` artifact.
/// 3. Load the artifact back (as `goggles_serve` would at startup) and
///    label never-seen images online — no refit, O(new x pool) work.
/// 4. Verify the loaded session reproduces the in-memory session's
///    labels bit-for-bit and report held-out accuracy.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "eval/backbone.h"
#include "eval/metrics.h"
#include "eval/tasks.h"
#include "serve/session.h"
#include "util/env.h"
#include "util/timer.h"

int main() {
  using namespace goggles;

  eval::BackboneOptions backbone_options;
  backbone_options.verbose = true;
  std::printf("Preparing the pretrained backbone...\n");
  WallTimer timer;
  auto extractor = eval::GetPretrainedExtractor(backbone_options);
  extractor.status().Abort("backbone");
  std::printf("  backbone ready in %.1fs\n", timer.ElapsedSeconds());

  // One binary labeling task; its train split is the serving pool, its
  // held-out test split plays the online arrivals.
  eval::TaskSuiteConfig task_config;
  task_config.num_pairs = 1;
  auto tasks = eval::MakeTasks("surface", task_config);
  tasks.status().Abort("tasks");
  const eval::LabelingTask& task = (*tasks)[0];
  std::printf("Pool: %lld images, %zu dev labels; %lld future arrivals\n",
              static_cast<long long>(task.train.size()),
              task.dev_indices.size(),
              static_cast<long long>(task.test.size()));

  // Fit once.
  timer.Restart();
  auto session =
      serve::Session::Fit(*extractor, task.train.images, task.dev_indices,
                          task.dev_labels, task.num_classes);
  session.status().Abort("Session::Fit");
  const double fit_seconds = timer.ElapsedSeconds();
  std::printf("Fitted session in %.1fs (%lld affinity functions)\n",
              fit_seconds, static_cast<long long>(session->num_functions()));

  // Persist + reload (what goggles_serve does at startup).
  const std::string artifact_path =
      GetEnvOr("GOGGLES_CACHE_DIR", "/tmp/goggles_cache") +
      "/online_labeling_example.ggsa";
  session->Save(artifact_path).Abort("Session::Save");
  auto loaded = serve::Session::Load(artifact_path, *extractor);
  loaded.status().Abort("Session::Load");
  std::printf("Artifact round-trip OK: %s\n", artifact_path.c_str());

  // Label the arrivals online against the cached fitted pool.
  timer.Restart();
  auto online = loaded->LabelBatch(task.test.images);
  online.status().Abort("LabelBatch");
  const double label_seconds = timer.ElapsedSeconds();

  // The loaded artifact must agree with the in-memory session exactly.
  auto in_memory = session->LabelBatch(task.test.images);
  in_memory.status().Abort("LabelBatch (in-memory)");
  for (int64_t i = 0; i < online->soft_labels.rows(); ++i) {
    for (int64_t k = 0; k < online->soft_labels.cols(); ++k) {
      if (online->soft_labels(i, k) != in_memory->soft_labels(i, k)) {
        std::fprintf(stderr,
                     "FATAL: artifact round-trip changed label (%lld, %lld)\n",
                     static_cast<long long>(i), static_cast<long long>(k));
        return 1;
      }
    }
  }

  const double accuracy =
      eval::Accuracy(online->hard_labels, task.test.labels);
  std::printf(
      "Labeled %lld new images online in %.2fs (%.1f img/s) — accuracy "
      "%.2f%%\n",
      static_cast<long long>(task.test.size()), label_seconds,
      static_cast<double>(task.test.size()) / std::max(label_seconds, 1e-9),
      accuracy * 100.0);
  std::printf("First 5 online labels (class 0, class 1):\n");
  for (int i = 0; i < 5 && i < online->soft_labels.rows(); ++i) {
    std::printf("  arrival %d: (%.3f, %.3f) -> class %d (truth %d)\n", i,
                online->soft_labels(i, 0), online->soft_labels(i, 1),
                online->hard_labels[static_cast<size_t>(i)],
                task.test.labels[static_cast<size_t>(i)]);
  }
  // The artifact is left on disk: `goggles_serve --artifact <path>` will
  // serve it (see README "Serving").
  std::printf("Artifact kept at %s\n", artifact_path.c_str());
  return 0;
}
