#include "serve/registry.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <functional>
#include <utility>

#include "serve/artifact.h"
#include "util/clock.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace goggles::serve {

namespace fs = std::filesystem;

namespace {

/// True for error codes worth retrying with backoff: transient I/O
/// trouble and load/publish races. Missing artifacts (NotFound) and
/// structurally invalid requests are permanent.
bool IsTransientLoadError(StatusCode code) {
  return code == StatusCode::kIOError || code == StatusCode::kUnavailable;
}

/// Failpoint shim: lets chaos tests inject a transient load failure that
/// the retry loop must absorb (arm "registry.load.transient" with a
/// count to fail the first N attempts).
Status InjectedLoadFailure() {
  GOGGLES_FAILPOINT_RETURN("registry.load.transient");
  return Status::OK();
}

}  // namespace

SessionRegistry::SessionRegistry(
    std::shared_ptr<features::FeatureExtractor> extractor,
    RegistryConfig config)
    : extractor_(std::move(extractor)),
      config_(std::move(config)),
      cache_(config_.memory_budget_bytes, config_.max_resident_tasks) {
  // Crash recovery: reap debris of publishers that died mid-publish.
  ReapOrphanTemps();
}

bool SessionRegistry::IsValidTaskName(const std::string& task) {
  if (task.empty() || task.size() > 255) return false;
  if (task == "." || task == "..") return false;
  for (char c : task) {
    if (c == '/' || c == '\\' || c == '\0') return false;
  }
  return true;
}

std::string SessionRegistry::ArtifactPath(const std::string& task) const {
  return config_.artifact_dir + "/" + task + ".ggsa";
}

bool SessionRegistry::StatArtifact(const std::string& path,
                                   FileSignature* out) {
  std::error_code ec;
  const fs::file_time_type mtime = fs::last_write_time(path, ec);
  if (ec) return false;
  const uintmax_t size = fs::file_size(path, ec);
  if (ec) return false;
  out->mtime_ns = static_cast<int64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          mtime.time_since_epoch())
          .count());
  out->size = static_cast<uint64_t>(size);
  return true;
}

std::shared_ptr<const Session> SessionRegistry::BeginLoadOrWait(
    const std::string& task) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (loading_.count(task) == 0) {
      loading_.insert(task);
      return nullptr;  // the caller owns the load now
    }
    // Another thread is loading this task; wait for it and reuse its
    // result if it succeeded (a failed load leaves no resident entry and
    // the caller takes over).
    load_done_.wait(lock, [&] { return loading_.count(task) == 0; });
    if (Entry* entry = cache_.Get(task)) {
      hits_.fetch_add(1);
      return entry->session;
    }
  }
}

Result<std::shared_ptr<const Session>> SessionRegistry::LoadAndInstall(
    const std::string& task) {
  const std::string path = ArtifactPath(task);
  // Load with retry: transient I/O failures and loads that raced a
  // concurrent publish back off (jittered, capped) and try again. The
  // caller holds the `loading_` slot throughout, so concurrent Acquires
  // of the task coalesce onto this retry loop instead of stacking their
  // own. Seeded per-task for reproducible jitter sequences.
  Backoff backoff(config_.load_retry,
                  static_cast<uint64_t>(std::hash<std::string>{}(task)));
  FileSignature signature;
  bool have_signature = false;
  Result<Session> loaded = Status::Internal("unreachable");
  while (true) {
    // Signature before the load: the post-load re-check below compares
    // against it, and if the load is installed it becomes the entry's
    // signature so the next Acquire() re-stats against the loaded bytes.
    have_signature = StatArtifact(path, &signature);

    Status injected = InjectedLoadFailure();
    loaded = injected.ok() ? Session::Load(path, extractor_)
                           : Result<Session>(injected);

    if (loaded.ok()) {
      // Re-stat after the load: if the file changed underneath us the
      // loaded bytes may be a torn mix of old and new artifact that
      // happened to pass section CRCs (each section is checked
      // individually). Reject the swap and retry against the new file.
      FileSignature after;
      const bool have_after = StatArtifact(path, &after);
      if (have_signature && (!have_after || !(after == signature))) {
        torn_loads_rejected_.fetch_add(1);
        loaded = Status::Unavailable("artifact '" + path +
                                     "' changed mid-load (publish race)");
      }
    }
    if (loaded.ok() || !IsTransientLoadError(loaded.status().code())) break;
    const int64_t delay = backoff.NextDelayMicros();
    if (delay < 0) break;  // attempts exhausted; report the last error
    load_retries_.fetch_add(1);
    GOGGLES_LOG(INFO) << "registry: retrying load of '" << task << "' in "
                      << delay << "us: " << loaded.status().ToString();
    SleepForMicros(delay);
  }

  std::vector<LruCache<std::string, Entry>::Evicted> evicted;
  Result<std::shared_ptr<const Session>> result =
      Status::Internal("unreachable");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!loaded.ok()) {
      load_failures_.fetch_add(1);
      result = loaded.status();
    } else {
      auto session = std::make_shared<const Session>(std::move(*loaded));
      Entry entry;
      entry.session = session;
      if (have_signature) entry.signature = signature;
      evicted = cache_.Put(task, std::move(entry),
                           session->ApproxMemoryBytes());
      loads_.fetch_add(1);
      // A same-key replacement (hot reload) is handed back in `evicted`
      // too so it is released outside the lock, but it is not a budget
      // eviction.
      size_t budget_evictions = 0;
      for (const auto& e : evicted) {
        if (e.key != task) ++budget_evictions;
      }
      evictions_.fetch_add(budget_evictions);
      result = std::move(session);
    }
    loading_.erase(task);
  }
  load_done_.notify_all();
  // Evicted sessions release their memory here, outside the lock, once
  // any in-flight requests that still hold them complete.
  return result;
}

Result<std::shared_ptr<const Session>> SessionRegistry::Acquire(
    const std::string& task) {
  if (!IsValidTaskName(task)) {
    return Status::InvalidArgument("invalid task name '" + task + "'");
  }
  // Resident fast path. The stat for hot reload runs OUTSIDE the lock:
  // it is a filesystem syscall, and holding the registry mutex across it
  // would serialize every task's session resolution on disk latency.
  std::shared_ptr<const Session> stale;
  FileSignature loaded_signature;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (Entry* entry = cache_.Get(task)) {
      if (!config_.hot_reload) {
        hits_.fetch_add(1);
        return entry->session;
      }
      stale = entry->session;
      loaded_signature = entry->signature;
    }
  }
  if (stale != nullptr) {
    FileSignature current;
    if (!StatArtifact(ArtifactPath(task), &current) ||
        current == loaded_signature) {
      // Unchanged — or unstattable (e.g. the artifact was deleted from
      // the directory): keep serving the resident session; a cold load
      // would fail anyway.
      hits_.fetch_add(1);
      return stale;
    }
    reloads_.fetch_add(1);
    // Fall through to the load path below; `stale` doubles as the
    // fallback if the replacement file turns out to be torn.
  }
  if (std::shared_ptr<const Session> session = BeginLoadOrWait(task)) {
    return session;
  }
  Result<std::shared_ptr<const Session>> loaded = LoadAndInstall(task);
  if (!loaded.ok() && stale != nullptr) {
    // A hot reload is opportunistic: when the replacement file is torn
    // or corrupt (e.g. caught mid-overwrite), keep serving the resident
    // session — the stale signature makes the next Acquire retry.
    return stale;
  }
  return loaded;
}

Result<std::shared_ptr<const Session>> SessionRegistry::Load(
    const std::string& task) {
  if (!IsValidTaskName(task)) {
    return Status::InvalidArgument("invalid task name '" + task + "'");
  }
  // Unconditional (re)load: wait out any in-flight load of the task, then
  // take ownership of a fresh one — `load` is a directive to read the
  // file again, so a concurrent load's result is not reused here.
  {
    std::unique_lock<std::mutex> lock(mu_);
    load_done_.wait(lock, [&] { return loading_.count(task) == 0; });
    loading_.insert(task);
  }
  return LoadAndInstall(task);
}

Status SessionRegistry::Unload(const std::string& task) {
  if (!IsValidTaskName(task)) {
    return Status::InvalidArgument("invalid task name '" + task + "'");
  }
  std::shared_ptr<const Session> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry* entry = cache_.Get(task);
    if (entry == nullptr) {
      return Status::NotFound("task '" + task + "' is not resident");
    }
    drained = std::move(entry->session);  // destroyed outside the lock
    cache_.Erase(task);
  }
  return Status::OK();
}

size_t SessionRegistry::ReapOrphanTemps() const {
  // A publish temp younger than the reap age may belong to a publisher
  // that is alive and about to rename; leave it alone.
  const auto now = fs::file_time_type::clock::now();
  size_t reaped = 0;
  std::error_code ec;
  for (fs::directory_iterator it(config_.artifact_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const fs::path& path = it->path();
    if (!IsArtifactTempFilename(path.filename().string())) continue;
    std::error_code file_ec;
    const fs::file_time_type mtime = fs::last_write_time(path, file_ec);
    if (file_ec) continue;
    const int64_t age_micros =
        std::chrono::duration_cast<std::chrono::microseconds>(now - mtime)
            .count();
    if (age_micros < config_.temp_reap_age_micros) continue;
    if (fs::remove(path, file_ec) && !file_ec) {
      ++reaped;
      GOGGLES_LOG(WARNING) << "registry: reaped orphan publish temp "
                           << path.string();
    }
  }
  temps_reaped_.fetch_add(reaped);
  return reaped;
}

std::vector<TaskInfo> SessionRegistry::ListTasks() const {
  // The periodic registry scan doubles as the crash-recovery sweep.
  ReapOrphanTemps();
  std::vector<TaskInfo> tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.ForEach([&](const std::string& task, const Entry& entry,
                       uint64_t cost) {
      TaskInfo info;
      info.task = task;
      info.resident = true;
      info.pool_size = entry.session->pool_size();
      info.num_classes = entry.session->num_classes();
      info.num_functions = entry.session->num_functions();
      info.approx_bytes = cost;
      tasks.push_back(std::move(info));
    });
  }
  // Artifacts on disk that are not resident. Directory errors (missing
  // dir, permissions) degrade to "resident tasks only" rather than fail.
  std::error_code ec;
  for (fs::directory_iterator it(config_.artifact_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const fs::path& path = it->path();
    if (path.extension() != ".ggsa") continue;
    const std::string task = path.stem().string();
    if (!IsValidTaskName(task)) continue;
    auto resident = std::find_if(
        tasks.begin(), tasks.end(),
        [&](const TaskInfo& info) { return info.task == task; });
    if (resident != tasks.end()) {
      resident->on_disk = true;
    } else {
      TaskInfo info;
      info.task = task;
      info.on_disk = true;
      tasks.push_back(std::move(info));
    }
  }
  return tasks;
}

RegistryStats SessionRegistry::stats() const {
  RegistryStats stats;
  stats.hits = hits_.load();
  stats.loads = loads_.load();
  stats.reloads = reloads_.load();
  stats.evictions = evictions_.load();
  stats.load_failures = load_failures_.load();
  stats.load_retries = load_retries_.load();
  stats.torn_loads_rejected = torn_loads_rejected_.load();
  stats.temps_reaped = temps_reaped_.load();
  std::lock_guard<std::mutex> lock(mu_);
  stats.resident_tasks = cache_.size();
  stats.resident_bytes = cache_.total_cost();
  return stats;
}

}  // namespace goggles::serve
