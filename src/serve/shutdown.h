#pragma once

#include <atomic>
#include <functional>
#include <thread>

#include <pthread.h>
#include <signal.h>

/// \file shutdown.h
/// \brief Signal-driven graceful drain for the serve binary.
///
/// `goggles_serve` reads requests in a blocking std::getline loop, so a
/// bare SIGTERM would either kill the process mid-response (default
/// disposition) or never be seen (handler runs but the loop stays parked
/// in read(2) if the libc restarts it). GracefulShutdown turns SIGTERM /
/// SIGINT into a clean drain instead:
///
///  1. The constructor BLOCKS both signals in the calling thread before
///     Service::Run spawns its workers — every later thread inherits the
///     mask, so no thread takes the default (terminating) disposition.
///  2. A watcher thread collects them with sigtimedwait in short slices.
///     On delivery it runs the caller's callback (typically
///     Service::RequestStop) and pokes the constructing thread with
///     SIGUSR1, whose no-op handler is installed WITHOUT SA_RESTART so a
///     read(2) parked under std::getline returns EINTR and the reader
///     loop observes the stop flag.
///  3. The destructor stops the watcher and restores the original mask
///     and SIGUSR1 disposition.
///
/// Construct it on the thread that will call Service::Run, after the
/// Service exists and before Run is entered.

namespace goggles::serve {

/// \brief RAII SIGTERM/SIGINT watcher: runs a drain callback on the
/// first signal and interrupts the constructing thread's blocking read.
class GracefulShutdown {
 public:
  /// \brief Installs the mask/handler and starts the watcher.
  /// `on_signal` runs once, on the watcher thread, at the first SIGTERM
  /// or SIGINT; it must be async-thread-safe (not signal-handler-safe —
  /// it runs on a normal thread) and is typically
  /// `[&service] { service.RequestStop(); }`.
  explicit GracefulShutdown(std::function<void()> on_signal);

  /// \brief Stops the watcher and restores the previous signal state.
  ~GracefulShutdown();

  GracefulShutdown(const GracefulShutdown&) = delete;
  GracefulShutdown& operator=(const GracefulShutdown&) = delete;

  /// \brief True once a SIGTERM/SIGINT triggered the drain callback.
  bool signalled() const { return signal_number_.load() != 0; }

  /// \brief The signal that triggered the drain (0 if none yet).
  int signal_number() const { return signal_number_.load(); }

 private:
  void WatchLoop();

  std::function<void()> on_signal_;
  std::atomic<int> signal_number_{0};
  std::atomic<bool> stop_{false};
  pthread_t main_thread_{};
  sigset_t old_mask_{};
  struct sigaction old_usr1_ {};
  std::thread watcher_;
};

}  // namespace goggles::serve
