#include "serve/service.h"

#include <cmath>
#include <map>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "tensor/isa.h"
#include "util/clock.h"
#include "util/env.h"
#include "util/failpoint.h"
#include "util/parallel.h"
#include "util/pipeline.h"

namespace goggles::serve {
namespace {

/// Every error response carries the human message AND the stable
/// machine-readable `error_code` string (docs/serve_protocol.md —
/// clients branch on the code, never the message).
JsonValue ErrorResponse(const std::string& message,
                        StatusCode code = StatusCode::kInvalidArgument) {
  JsonValue response = JsonValue::MakeObject();
  response.Set("ok", JsonValue(false));
  response.Set("error", JsonValue(message));
  response.Set("error_code",
               JsonValue(std::string(StatusCodeToErrorCode(code))));
  return response;
}

JsonValue ErrorResponse(const Status& status) {
  return ErrorResponse(status.message(), status.code());
}

/// Decodes {"channels":C,"height":H,"width":W,"pixels":[...]}.
Result<data::Image> ParseImage(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("image must be a JSON object");
  }
  const JsonValue* channels = value.Find("channels");
  const JsonValue* height = value.Find("height");
  const JsonValue* width = value.Find("width");
  const JsonValue* pixels = value.Find("pixels");
  if (channels == nullptr || !channels->is_number() || height == nullptr ||
      !height->is_number() || width == nullptr || !width->is_number() ||
      pixels == nullptr || !pixels->is_array()) {
    return Status::InvalidArgument(
        "image needs numeric channels/height/width and a pixels array");
  }
  // Dimensions arrive as doubles: reject non-integral / out-of-range
  // values before casting (float->int overflow is undefined behavior).
  constexpr double kMaxDim = 65536.0;
  auto as_dim = [](double v) -> int {
    if (!std::isfinite(v) || v < 1.0 || v > kMaxDim || v != std::floor(v)) {
      return -1;
    }
    return static_cast<int>(v);
  };
  const int c = as_dim(channels->number());
  const int h = as_dim(height->number());
  const int w = as_dim(width->number());
  if (c < 1 || h < 1 || w < 1) {
    return Status::InvalidArgument(
        "image dimensions must be positive integers (at most 65536)");
  }
  const size_t expected = static_cast<size_t>(c) * static_cast<size_t>(h) *
                          static_cast<size_t>(w);
  if (pixels->items().size() != expected) {
    return Status::InvalidArgument(
        "pixels array length must equal channels*height*width");
  }
  data::Image image(c, h, w);
  for (size_t i = 0; i < expected; ++i) {
    const JsonValue& px = pixels->items()[i];
    if (!px.is_number()) {
      return Status::InvalidArgument("pixels must all be numbers");
    }
    image.pixels[i] = static_cast<float>(px.number());
  }
  return image;
}

JsonValue SoftRowToJson(const Matrix& soft, int64_t row) {
  JsonValue arr = JsonValue::MakeArray();
  for (int64_t k = 0; k < soft.cols(); ++k) arr.Append(JsonValue(soft(row, k)));
  return arr;
}

JsonValue SessionShapeJson(const Session& session, JsonValue response) {
  response.Set("pool_size", JsonValue(session.pool_size()));
  response.Set("num_classes", JsonValue(session.num_classes()));
  response.Set("num_functions", JsonValue(session.num_functions()));
  return response;
}

}  // namespace

namespace {

ServiceConfig NormalizeConfig(ServiceConfig config) {
  if (config.num_workers < 1) config.num_workers = 1;
  if (config.queue_capacity < 1) config.queue_capacity = 1;
  // At most num_workers `label` requests are ever in flight, so a larger
  // coalescing batch can never fill — without this clamp the batch
  // leader would sleep out its whole window waiting for joiners that
  // cannot exist.
  if (config.coalesce.max_batch > config.num_workers) {
    config.coalesce.max_batch = config.num_workers;
  }
  PipelineOptions& p = config.pipeline;
  if (p.decode_threads < 1) p.decode_threads = 1;
  if (p.extract_threads < 1) p.extract_threads = 1;
  if (p.infer_threads < 1) p.infer_threads = 1;
  if (p.encode_threads < 1) p.encode_threads = 1;
  if (p.queue_capacity < 1) p.queue_capacity = 1;
  if (p.max_batch < 1) p.max_batch = 1;
  if (p.batch_wait_micros < 0) p.batch_wait_micros = 0;
  if (p.admission_capacity < 1) {
    p.admission_capacity = static_cast<int>(config.queue_capacity);
  }
  if (p.watchdog_budget_micros < 0) p.watchdog_budget_micros = 0;
  if (config.request_deadline_micros < 0) config.request_deadline_micros = 0;
  return config;
}

}  // namespace

PipelineOptions PipelineOptionsFromEnv(PipelineOptions defaults) {
  PipelineOptions p = defaults;
  p.enabled = GetEnvIntOr("GOGGLES_PIPELINE", p.enabled ? 1 : 0) != 0;
  p.decode_threads = static_cast<int>(
      GetEnvIntOr("GOGGLES_PIPELINE_DECODE_THREADS", p.decode_threads));
  p.extract_threads = static_cast<int>(
      GetEnvIntOr("GOGGLES_PIPELINE_EXTRACT_THREADS", p.extract_threads));
  p.infer_threads = static_cast<int>(
      GetEnvIntOr("GOGGLES_PIPELINE_INFER_THREADS", p.infer_threads));
  p.encode_threads = static_cast<int>(
      GetEnvIntOr("GOGGLES_PIPELINE_ENCODE_THREADS", p.encode_threads));
  p.queue_capacity = static_cast<int>(
      GetEnvIntOr("GOGGLES_PIPELINE_QUEUE", p.queue_capacity));
  p.max_batch =
      static_cast<int>(GetEnvIntOr("GOGGLES_PIPELINE_MAX_BATCH", p.max_batch));
  p.batch_wait_micros =
      GetEnvIntOr("GOGGLES_PIPELINE_BATCH_WAIT", p.batch_wait_micros);
  p.admission_capacity = static_cast<int>(
      GetEnvIntOr("GOGGLES_PIPELINE_ADMISSION", p.admission_capacity));
  p.reject_on_full =
      GetEnvIntOr("GOGGLES_PIPELINE_REJECT", p.reject_on_full ? 1 : 0) != 0;
  p.watchdog_budget_micros =
      GetEnvIntOr("GOGGLES_PIPELINE_WATCHDOG_MS",
                  p.watchdog_budget_micros / 1000) *
      1000;
  return p;
}

Service::Service(std::shared_ptr<const Session> session, ServiceConfig config)
    : session_(std::move(session)), config_(NormalizeConfig(config)) {
  coalescer_ = std::make_unique<Coalescer>(config_.coalesce);
}

Service::Service(std::shared_ptr<SessionRegistry> registry,
                 std::shared_ptr<const Session> default_session,
                 ServiceConfig config)
    : registry_(std::move(registry)),
      session_(std::move(default_session)),
      config_(NormalizeConfig(config)) {
  coalescer_ = std::make_unique<Coalescer>(config_.coalesce);
}

Result<std::shared_ptr<const Session>> Service::ResolveSession(
    const JsonValue& request) const {
  const JsonValue* task = request.Find("task");
  if (task == nullptr) {
    if (session_ != nullptr) return session_;
    return Status::InvalidArgument(
        "request needs a 'task' (no default artifact is loaded)");
  }
  if (!task->is_string()) {
    return Status::InvalidArgument("'task' must be a string");
  }
  if (registry_ == nullptr) {
    return Status::InvalidArgument(
        "task routing requires an artifact directory (--artifact-dir)");
  }
  return registry_->Acquire(task->str());
}

JsonValue Service::HandleRegistryOp(const std::string& op,
                                    const JsonValue& request) const {
  if (registry_ == nullptr) {
    errors_.fetch_add(1);
    return ErrorResponse("'" + op +
                         "' requires an artifact directory (--artifact-dir)");
  }

  if (op == "list_tasks") {
    JsonValue response = JsonValue::MakeObject();
    response.Set("ok", JsonValue(true));
    JsonValue tasks = JsonValue::MakeArray();
    for (const TaskInfo& info : registry_->ListTasks()) {
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("task", JsonValue(info.task));
      entry.Set("resident", JsonValue(info.resident));
      entry.Set("on_disk", JsonValue(info.on_disk));
      if (info.resident) {
        entry.Set("pool_size", JsonValue(info.pool_size));
        entry.Set("num_classes", JsonValue(info.num_classes));
        entry.Set("num_functions", JsonValue(info.num_functions));
        entry.Set("approx_bytes",
                  JsonValue(static_cast<double>(info.approx_bytes)));
      }
      tasks.Append(std::move(entry));
    }
    response.Set("tasks", std::move(tasks));
    return response;
  }

  const JsonValue* task = request.Find("task");
  if (task == nullptr || !task->is_string()) {
    errors_.fetch_add(1);
    return ErrorResponse("'" + op + "' needs a string 'task'");
  }

  if (op == "load") {
    Result<std::shared_ptr<const Session>> session =
        registry_->Load(task->str());
    if (!session.ok()) {
      errors_.fetch_add(1);
      return ErrorResponse(session.status());
    }
    JsonValue response = JsonValue::MakeObject();
    response.Set("ok", JsonValue(true));
    response.Set("task", JsonValue(task->str()));
    response = SessionShapeJson(**session, std::move(response));
    response.Set("approx_bytes",
                 JsonValue(static_cast<double>((*session)->ApproxMemoryBytes())));
    return response;
  }

  // op == "unload"
  Status status = registry_->Unload(task->str());
  if (!status.ok()) {
    errors_.fetch_add(1);
    return ErrorResponse(status);
  }
  JsonValue response = JsonValue::MakeObject();
  response.Set("ok", JsonValue(true));
  response.Set("task", JsonValue(task->str()));
  return response;
}

JsonValue Service::HandleRequest(const JsonValue& request) const {
  requests_served_.fetch_add(1);
  if (!request.is_object()) {
    errors_.fetch_add(1);
    return ErrorResponse("request must be a JSON object");
  }
  const JsonValue* op = request.Find("op");
  if (op == nullptr || !op->is_string()) {
    errors_.fetch_add(1);
    return ErrorResponse("request needs a string 'op'");
  }

  if (op->str() == "stats") {
    // Field order matters for the single-artifact mode: the response must
    // stay byte-compatible with the original one-session protocol, so
    // gateway/coalescer fields are only appended in their modes.
    JsonValue response = JsonValue::MakeObject();
    response.Set("ok", JsonValue(true));
    Result<std::shared_ptr<const Session>> session = ResolveSession(request);
    if (session.ok()) {
      response = SessionShapeJson(**session, std::move(response));
    } else if (request.Find("task") != nullptr) {
      // An explicitly named task that cannot be resolved is an error; a
      // merely absent default session still yields gateway-level stats.
      errors_.fetch_add(1);
      return ErrorResponse(session.status());
    }
    response.Set("requests_served",
                 JsonValue(static_cast<double>(requests_served_.load())));
    response.Set("errors", JsonValue(static_cast<double>(errors_.load())));
    // Which kernel tier this process dispatched to (runtime cpuid probe /
    // GOGGLES_ISA) — lets a fleet operator confirm a portable binary is
    // actually running its fast path on this host.
    response.Set("isa", JsonValue(std::string(IsaTierName(ActiveIsaTier()))));
    if (registry_ != nullptr) {
      const RegistryStats stats = registry_->stats();
      JsonValue registry = JsonValue::MakeObject();
      registry.Set("resident_tasks",
                   JsonValue(static_cast<double>(stats.resident_tasks)));
      registry.Set("resident_bytes",
                   JsonValue(static_cast<double>(stats.resident_bytes)));
      registry.Set("hits", JsonValue(static_cast<double>(stats.hits)));
      registry.Set("loads", JsonValue(static_cast<double>(stats.loads)));
      registry.Set("reloads", JsonValue(static_cast<double>(stats.reloads)));
      registry.Set("evictions",
                   JsonValue(static_cast<double>(stats.evictions)));
      registry.Set("load_failures",
                   JsonValue(static_cast<double>(stats.load_failures)));
      registry.Set("load_retries",
                   JsonValue(static_cast<double>(stats.load_retries)));
      registry.Set("torn_loads_rejected",
                   JsonValue(static_cast<double>(stats.torn_loads_rejected)));
      registry.Set("temps_reaped",
                   JsonValue(static_cast<double>(stats.temps_reaped)));
      response.Set("registry", std::move(registry));
    }
    if (config_.coalesce.enabled) {
      const CoalescerStats stats = coalescer_->stats();
      JsonValue coalescer = JsonValue::MakeObject();
      coalescer.Set("requests", JsonValue(static_cast<double>(stats.requests)));
      coalescer.Set("batches", JsonValue(static_cast<double>(stats.batches)));
      coalescer.Set("coalesced",
                    JsonValue(static_cast<double>(stats.coalesced)));
      coalescer.Set("deduped",
                    JsonValue(static_cast<double>(stats.deduped)));
      coalescer.Set("max_batch_size",
                    JsonValue(static_cast<double>(stats.max_batch_size)));
      response.Set("coalescer", std::move(coalescer));
    }
    // Live flowgraph snapshot — present only while a pipelined Run is
    // active, so direct HandleLine callers and the monolithic path keep
    // their original byte layout.
    std::function<JsonValue()> pipeline_fn;
    {
      std::lock_guard<std::mutex> lock(pipeline_stats_mu_);
      pipeline_fn = pipeline_stats_fn_;
    }
    if (pipeline_fn) response.Set("pipeline", pipeline_fn());
    return response;
  }

  if (op->str() == "label") {
    Result<std::shared_ptr<const Session>> session = ResolveSession(request);
    if (!session.ok()) {
      errors_.fetch_add(1);
      return ErrorResponse(session.status());
    }
    const JsonValue* image_json = request.Find("image");
    if (image_json == nullptr) {
      errors_.fetch_add(1);
      return ErrorResponse("label request needs an 'image'");
    }
    Result<data::Image> image = ParseImage(*image_json);
    if (!image.ok()) {
      errors_.fetch_add(1);
      return ErrorResponse(image.status());
    }
    Result<OnlineLabel> label = coalescer_->Label(*session, *image);
    if (!label.ok()) {
      errors_.fetch_add(1);
      return ErrorResponse(label.status());
    }
    JsonValue response = JsonValue::MakeObject();
    response.Set("ok", JsonValue(true));
    response.Set("label", JsonValue(label->hard));
    JsonValue soft = JsonValue::MakeArray();
    for (double p : label->soft) soft.Append(JsonValue(p));
    response.Set("soft", std::move(soft));
    return response;
  }

  if (op->str() == "label_batch") {
    Result<std::shared_ptr<const Session>> session = ResolveSession(request);
    if (!session.ok()) {
      errors_.fetch_add(1);
      return ErrorResponse(session.status());
    }
    const JsonValue* images_json = request.Find("images");
    if (images_json == nullptr || !images_json->is_array() ||
        images_json->items().empty()) {
      errors_.fetch_add(1);
      return ErrorResponse("label_batch request needs a non-empty 'images'");
    }
    std::vector<data::Image> images;
    images.reserve(images_json->items().size());
    for (const JsonValue& item : images_json->items()) {
      Result<data::Image> image = ParseImage(item);
      if (!image.ok()) {
        errors_.fetch_add(1);
        return ErrorResponse(image.status());
      }
      images.push_back(std::move(*image));
    }
    Result<LabelingResult> result = (*session)->LabelBatch(images);
    if (!result.ok()) {
      errors_.fetch_add(1);
      return ErrorResponse(result.status());
    }
    JsonValue response = JsonValue::MakeObject();
    response.Set("ok", JsonValue(true));
    JsonValue labels = JsonValue::MakeArray();
    JsonValue soft = JsonValue::MakeArray();
    for (int64_t i = 0; i < result->soft_labels.rows(); ++i) {
      labels.Append(JsonValue(result->hard_labels[static_cast<size_t>(i)]));
      soft.Append(SoftRowToJson(result->soft_labels, i));
    }
    response.Set("labels", std::move(labels));
    response.Set("soft", std::move(soft));
    return response;
  }

  if (op->str() == "load" || op->str() == "unload" ||
      op->str() == "list_tasks") {
    return HandleRegistryOp(op->str(), request);
  }

  if (op->str() == "failpoint") {
    return HandleFailpointOp(request);
  }

  errors_.fetch_add(1);
  return ErrorResponse("unknown op '" + op->str() + "'");
}

JsonValue Service::HandleFailpointOp(const JsonValue& request) const {
  const JsonValue* action = request.Find("action");
  if (action == nullptr || !action->is_string()) {
    errors_.fetch_add(1);
    return ErrorResponse(
        "'failpoint' needs a string 'action' (arm|disarm|disarm_all|list)");
  }
  const std::string& act = action->str();

  if (act == "list") {
    JsonValue response = JsonValue::MakeObject();
    response.Set("ok", JsonValue(true));
    response.Set("compiled_in", JsonValue(failpoint::CompiledIn()));
    JsonValue points = JsonValue::MakeArray();
    for (const failpoint::Info& info : failpoint::List()) {
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("name", JsonValue(info.name));
      entry.Set("action",
                JsonValue(std::string(failpoint::ActionName(info.spec.action))));
      entry.Set("arg", JsonValue(static_cast<double>(info.spec.arg)));
      entry.Set("probability", JsonValue(info.spec.probability));
      entry.Set("count", JsonValue(static_cast<double>(info.spec.count)));
      entry.Set("hits", JsonValue(static_cast<double>(info.hits)));
      entry.Set("triggers", JsonValue(static_cast<double>(info.triggers)));
      points.Append(std::move(entry));
    }
    response.Set("failpoints", std::move(points));
    return response;
  }

  if (!failpoint::CompiledIn()) {
    errors_.fetch_add(1);
    return ErrorResponse(
        "failpoints are not compiled into this binary "
        "(configure with -DGOGGLES_FAILPOINTS=ON)",
        StatusCode::kNotImplemented);
  }

  if (act == "disarm_all") {
    failpoint::DisarmAll();
    JsonValue response = JsonValue::MakeObject();
    response.Set("ok", JsonValue(true));
    return response;
  }

  const JsonValue* name = request.Find("name");
  if (name == nullptr || !name->is_string()) {
    errors_.fetch_add(1);
    return ErrorResponse("'failpoint' " + act + " needs a string 'name'");
  }

  Status status = Status::OK();
  if (act == "arm") {
    const JsonValue* spec = request.Find("spec");
    if (spec == nullptr || !spec->is_string()) {
      errors_.fetch_add(1);
      return ErrorResponse(
          "'failpoint' arm needs a string 'spec' "
          "(action[(arg)][:prob][:count])");
    }
    status = failpoint::ArmFromString(name->str(), spec->str());
  } else if (act == "disarm") {
    status = failpoint::Disarm(name->str());
  } else {
    errors_.fetch_add(1);
    return ErrorResponse("unknown failpoint action '" + act + "'");
  }
  if (!status.ok()) {
    errors_.fetch_add(1);
    return ErrorResponse(status);
  }
  JsonValue response = JsonValue::MakeObject();
  response.Set("ok", JsonValue(true));
  response.Set("name", JsonValue(name->str()));
  return response;
}

std::string Service::HandleLine(const std::string& line) const {
  Result<JsonValue> request = JsonValue::Parse(line);
  if (!request.ok()) {
    requests_served_.fetch_add(1);
    errors_.fetch_add(1);
    return ErrorResponse(request.status()).Dump();
  }
  return HandleRequest(*request).Dump();
}

void Service::RequestStop() {
  stop_requested_.store(true);
  // Rouse a pipelined reader parked on admission control; a reader
  // blocked inside std::getline is the caller's job to interrupt (the
  // serve binary does it with a signal that EINTRs the read).
  std::lock_guard<std::mutex> lock(run_wake_mu_);
  if (run_wake_cv_ != nullptr) run_wake_cv_->notify_all();
}

Status Service::Run(std::istream& in, std::ostream& out) {
  if (stop_requested_.load()) return Status::OK();
  if (config_.pipeline.enabled) return RunPipelined(in, out);
  return RunMonolithic(in, out);
}

Status Service::RunMonolithic(std::istream& in, std::ostream& out) {
  struct WorkItem {
    uint64_t seq = 0;
    std::string line;
    int64_t admit_micros = 0;  ///< deadline epoch (reader accept time)
  };
  const int64_t deadline_micros = config_.request_deadline_micros;
  BoundedQueue<WorkItem> queue(config_.queue_capacity);

  // Completed responses, reassembled into input order by the writer.
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::map<uint64_t, std::string> done;
  bool producers_finished = false;
  uint64_t total_enqueued = 0;

  // The reorder buffer is bounded too: a worker won't take new work
  // while `done` holds queue_capacity finished responses (e.g. when the
  // stdout consumer stalls), so total buffered responses stay at
  // queue_capacity + num_workers. Blocking before Pop — never before the
  // insert — keeps the writer's next-in-order response reachable.
  const size_t max_done = config_.queue_capacity;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(config_.num_workers));
  for (int w = 0; w < config_.num_workers; ++w) {
    workers.emplace_back([this, &queue, &done_mu, &done_cv, &done,
                          max_done, deadline_micros] {
      // Once the worker pool alone covers the cores, the per-request
      // kernels (backbone GEMMs, batched scoring) would only
      // oversubscribe — pin them to this thread. With fewer workers than
      // cores the kernels keep their internal parallelism so a single
      // in-flight request can still use the whole machine.
      std::optional<ScopedSerialKernels> serial_kernels;
      if (config_.num_workers >= DefaultNumThreads()) serial_kernels.emplace();
      while (true) {
        {
          std::unique_lock<std::mutex> lock(done_mu);
          done_cv.wait(lock, [&] { return done.size() < max_done; });
        }
        std::optional<WorkItem> item = queue.Pop();
        if (!item.has_value()) break;
        std::string response;
        if (deadline_micros > 0 &&
            MonotonicMicros() - item->admit_micros > deadline_micros) {
          // The request aged out while queued — shed it instead of
          // spending extraction work on an answer nobody is waiting for.
          requests_served_.fetch_add(1);
          errors_.fetch_add(1);
          response = ErrorResponse("request deadline exceeded",
                                   StatusCode::kDeadlineExceeded)
                         .Dump();
        } else {
          response = HandleLine(item->line);
        }
        {
          std::lock_guard<std::mutex> lock(done_mu);
          done.emplace(item->seq, std::move(response));
        }
        done_cv.notify_all();
      }
    });
  }

  std::thread writer([&] {
    uint64_t next = 0;
    std::unique_lock<std::mutex> lock(done_mu);
    while (true) {
      done_cv.wait(lock, [&] {
        return done.count(next) > 0 ||
               (producers_finished && next >= total_enqueued);
      });
      if (done.count(next) == 0) break;  // all input handled
      std::string response = std::move(done[next]);
      done.erase(next);
      ++next;
      done_cv.notify_all();  // frees workers blocked on the done bound
      lock.unlock();
      out << response << "\n" << std::flush;
      lock.lock();
    }
  });

  std::string line;
  uint64_t seq = 0;
  while (!stop_requested_.load() && std::getline(in, line)) {
    if (line.empty()) continue;  // tolerate blank lines between requests
    queue.Push(WorkItem{seq++, std::move(line), MonotonicMicros()});
    line.clear();
  }
  queue.Close();
  for (std::thread& t : workers) t.join();
  {
    std::lock_guard<std::mutex> lock(done_mu);
    producers_finished = true;
    total_enqueued = seq;
  }
  done_cv.notify_all();
  writer.join();

  if (!out.good()) return Status::IOError("Service::Run: output write failed");
  return Status::OK();
}

namespace {

/// One request flowing through the staged pipeline. Stages fill it in
/// progressively; `done` short-circuits the remaining stages once a
/// final response exists (errors, non-label ops).
struct PipeItem {
  uint64_t seq = 0;
  int64_t admit_micros = 0;                 ///< deadline epoch (admission)
  std::string line;                         ///< raw request line
  std::shared_ptr<const Session> session;   ///< resolved target (label)
  data::Image image;                        ///< decoded image (label)
  Matrix rows;                              ///< 1 x F affinity rows
  std::vector<double> soft;                 ///< posterior (label)
  int hard = 0;
  bool is_label = false;  ///< on the staged label fast path
  bool done = false;      ///< `response` is final; later stages skip
  std::string response;
};

}  // namespace

Status Service::RunPipelined(std::istream& in, std::ostream& out) {
  const PipelineOptions& popt = config_.pipeline;
  const uint64_t admission_cap =
      static_cast<uint64_t>(popt.admission_capacity);
  const int64_t deadline_micros = config_.request_deadline_micros;
  // True once the request aged past its deadline; stages call this
  // before starting expensive work so a stalled stage sheds its queue
  // instead of grinding through stale requests.
  auto expired = [deadline_micros](const PipeItem& item) {
    return deadline_micros > 0 &&
           MonotonicMicros() - item.admit_micros > deadline_micros;
  };
  auto deadline_response = [this]() {
    return ErrorResponse("request deadline exceeded",
                         StatusCode::kDeadlineExceeded)
        .Dump();
  };

  // Reorder state: responses land here keyed by sequence number; the
  // writer emits them in input order. Bounded by admission control —
  // `submitted - written <= admission_cap` always.
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::map<uint64_t, std::string> done;
  uint64_t written = 0;
  uint64_t submitted = 0;
  bool intake_closed = false;
  uint64_t total = 0;

  Pipeline<PipeItem> pipe;

  // Stage 1 — decode: parse JSON, route. `label` requests resolve their
  // session and image here and continue down the fast path; every other
  // op (stats, label_batch, registry ops, malformed input) is answered
  // in place via the shared HandleRequest path, preserving the serial
  // semantics (and counters) exactly.
  pipe.AddStage(
      // max_batch lets one wake drain every queued line (no gather
      // window) — items are still parsed one by one, the batching only
      // amortizes doorbell wakeups under load.
      {"decode", popt.decode_threads, popt.queue_capacity, popt.max_batch},
      [this, &expired, &deadline_response](std::vector<PipeItem>& items) {
        GOGGLES_FAILPOINT("serve.stage.decode");
        for (PipeItem& item : items) {
          if (expired(item)) {
            requests_served_.fetch_add(1);
            errors_.fetch_add(1);
            item.line.clear();
            item.response = deadline_response();
            item.done = true;
            continue;
          }
          Result<JsonValue> request = JsonValue::Parse(item.line);
          item.line.clear();
          if (!request.ok()) {
            requests_served_.fetch_add(1);
            errors_.fetch_add(1);
            item.response = ErrorResponse(request.status()).Dump();
            item.done = true;
            continue;
          }
          const JsonValue* op =
              request->is_object() ? request->Find("op") : nullptr;
          if (op == nullptr || !op->is_string() || op->str() != "label") {
            item.response = HandleRequest(*request).Dump();
            item.done = true;
            continue;
          }
          requests_served_.fetch_add(1);
          Result<std::shared_ptr<const Session>> session =
              ResolveSession(*request);
          if (!session.ok()) {
            errors_.fetch_add(1);
            item.response = ErrorResponse(session.status()).Dump();
            item.done = true;
            continue;
          }
          const JsonValue* image_json = request->Find("image");
          if (image_json == nullptr) {
            errors_.fetch_add(1);
            item.response =
                ErrorResponse("label request needs an 'image'").Dump();
            item.done = true;
            continue;
          }
          Result<data::Image> image = ParseImage(*image_json);
          if (!image.ok()) {
            errors_.fetch_add(1);
            item.response = ErrorResponse(image.status()).Dump();
            item.done = true;
            continue;
          }
          item.session = std::move(*session);
          item.image = std::move(*image);
          item.is_label = true;
        }
      });

  // Stage 2 — extract: the batching stage. Groups whatever label
  // requests arrived together by (session, shape), dedups identical
  // pixels, and runs ONE batched extraction+scoring call per group.
  // Row i of a grouped extraction is bit-identical to extracting image
  // i alone (fixed ascending-k GEMM accumulation), so slicing the
  // group's rows back out changes nothing versus singleton calls.
  pipe.AddStage(
      {"extract", popt.extract_threads, popt.queue_capacity,
       popt.max_batch, popt.batch_wait_micros},
      [this, &expired, &deadline_response](std::vector<PipeItem>& items) {
        GOGGLES_FAILPOINT("serve.stage.extract");
        std::vector<size_t> pending;
        for (size_t i = 0; i < items.size(); ++i) {
          PipeItem& item = items[i];
          if (!item.is_label || item.done) continue;
          if (expired(item)) {
            errors_.fetch_add(1);
            item.response = deadline_response();
            item.done = true;
            item.session.reset();
            item.image = data::Image();
            continue;
          }
          pending.push_back(i);
        }
        std::vector<bool> grouped(items.size(), false);
        for (size_t gi = 0; gi < pending.size(); ++gi) {
          const size_t lead = pending[gi];
          if (grouped[lead]) continue;
          // Members that can stack into one extraction tensor.
          std::vector<size_t> members;
          for (size_t gj = gi; gj < pending.size(); ++gj) {
            const size_t idx = pending[gj];
            if (grouped[idx]) continue;
            const PipeItem& a = items[lead];
            const PipeItem& b = items[idx];
            if (a.session.get() == b.session.get() &&
                a.image.channels == b.image.channels &&
                a.image.height == b.image.height &&
                a.image.width == b.image.width) {
              members.push_back(idx);
              grouped[idx] = true;
            }
          }
          // Dedup identical pixels inside the group: score once, share
          // the (bit-identical) row — same trick as the Coalescer.
          std::vector<size_t> unique_of(members.size(), 0);
          std::vector<size_t> unique_members;
          std::vector<uint64_t> hashes;
          for (size_t m = 0; m < members.size(); ++m) {
            const data::Image& img = items[members[m]].image;
            const uint64_t hash = HashImageContent(img);
            size_t group = unique_members.size();
            for (size_t u = 0; u < unique_members.size(); ++u) {
              if (hashes[u] == hash &&
                  SamePixels(items[unique_members[u]].image, img)) {
                group = u;
                break;
              }
            }
            if (group == unique_members.size()) {
              unique_members.push_back(members[m]);
              hashes.push_back(hash);
            }
            unique_of[m] = group;
          }
          std::vector<data::Image> images;
          images.reserve(unique_members.size());
          for (size_t u : unique_members) images.push_back(items[u].image);
          Result<Matrix> rows =
              items[lead].session->BuildQueryRows(images);
          if (!rows.ok()) {
            for (size_t m : members) {
              errors_.fetch_add(1);
              items[m].response =
                  ErrorResponse(rows.status()).Dump();
              items[m].done = true;
            }
            continue;
          }
          for (size_t m = 0; m < members.size(); ++m) {
            PipeItem& item = items[members[m]];
            item.rows = rows->Block(static_cast<int64_t>(unique_of[m]), 0,
                                    1, rows->cols());
            item.image = data::Image();  // pixels no longer needed
          }
        }
      });

  // Stage 3 — infer: posterior evaluation of each request's affinity
  // row under its session's fitted hierarchical model. Items are
  // inferred independently; the batch only amortizes wakeups.
  pipe.AddStage(
      {"infer", popt.infer_threads, popt.queue_capacity, popt.max_batch},
      [this, &expired, &deadline_response](std::vector<PipeItem>& items) {
        GOGGLES_FAILPOINT("serve.stage.infer");
        for (PipeItem& item : items) {
          if (!item.is_label || item.done) continue;
          if (expired(item)) {
            errors_.fetch_add(1);
            item.response = deadline_response();
            item.done = true;
            item.rows = Matrix();
            item.session.reset();
            continue;
          }
          Result<LabelingResult> result = item.session->InferRows(item.rows);
          if (!result.ok()) {
            errors_.fetch_add(1);
            item.response = ErrorResponse(result.status()).Dump();
            item.done = true;
            continue;
          }
          item.soft = result->soft_labels.Row(0);
          item.hard = result->hard_labels[0];
          item.rows = Matrix();
          item.session.reset();
        }
      });

  // Stage 4 — encode: serialize the label response (same field order as
  // the monolithic path, byte for byte).
  pipe.AddStage(
      {"encode", popt.encode_threads, popt.queue_capacity, popt.max_batch},
      [](std::vector<PipeItem>& items) {
        GOGGLES_FAILPOINT("serve.stage.encode");
        for (PipeItem& item : items) {
          if (!item.is_label || item.done) continue;
          JsonValue response = JsonValue::MakeObject();
          response.Set("ok", JsonValue(true));
          response.Set("label", JsonValue(item.hard));
          JsonValue soft = JsonValue::MakeArray();
          for (double p : item.soft) soft.Append(JsonValue(p));
          response.Set("soft", std::move(soft));
          item.response = response.Dump();
          item.done = true;
        }
      });

  pipe.SetWatchdogBudgetMicros(popt.watchdog_budget_micros);
  pipe.Start([&](PipeItem&& item) {
    {
      std::lock_guard<std::mutex> lock(done_mu);
      done.emplace(item.seq, std::move(item.response));
    }
    done_cv.notify_all();
  });

  // Expose the live flowgraph to the `stats` op for the duration of the
  // run (the callback outlives every stage thread that can invoke it:
  // it is cleared only after Drain()).
  {
    std::lock_guard<std::mutex> lock(pipeline_stats_mu_);
    pipeline_stats_fn_ = [this, &pipe, &done_mu, &written, &submitted,
                          admission_cap, reject = popt.reject_on_full] {
      JsonValue section = JsonValue::MakeObject();
      section.Set("mode", JsonValue(std::string("pipelined")));
      JsonValue admission = JsonValue::MakeObject();
      admission.Set("capacity",
                    JsonValue(static_cast<double>(admission_cap)));
      {
        std::lock_guard<std::mutex> lock(done_mu);
        admission.Set("in_flight",
                      JsonValue(static_cast<double>(submitted - written)));
      }
      admission.Set("policy", JsonValue(std::string(
                                  reject ? "reject" : "block")));
      admission.Set("rejected", JsonValue(static_cast<double>(
                                    pipeline_rejected_.load())));
      section.Set("admission", std::move(admission));
      JsonValue stages = JsonValue::MakeArray();
      for (const PipelineStageStats& s : pipe.Stats()) {
        JsonValue stage = JsonValue::MakeObject();
        stage.Set("name", JsonValue(s.name));
        stage.Set("threads", JsonValue(s.num_threads));
        stage.Set("queue_capacity",
                  JsonValue(static_cast<double>(s.queue_capacity)));
        stage.Set("queue_depth",
                  JsonValue(static_cast<double>(s.queue_depth)));
        stage.Set("items", JsonValue(static_cast<double>(s.items)));
        stage.Set("batches", JsonValue(static_cast<double>(s.batches)));
        stage.Set("backpressured",
                  JsonValue(static_cast<double>(s.backpressured)));
        stage.Set("stalls", JsonValue(static_cast<double>(s.stalls)));
        stages.Append(std::move(stage));
      }
      section.Set("stages", std::move(stages));
      return section;
    };
  }

  // Let RequestStop() rouse the reader should it be parked on the
  // admission-control wait below.
  {
    std::lock_guard<std::mutex> lock(run_wake_mu_);
    run_wake_cv_ = &done_cv;
  }

  std::thread writer([&] {
    uint64_t next = 0;
    std::unique_lock<std::mutex> lock(done_mu);
    while (true) {
      done_cv.wait(lock, [&] {
        return done.count(next) > 0 || (intake_closed && next >= total);
      });
      if (done.count(next) == 0) break;  // all input handled
      std::string response = std::move(done[next]);
      done.erase(next);
      ++next;
      ++written;
      done_cv.notify_all();  // frees the reader blocked on admission
      lock.unlock();
      out << response << "\n" << std::flush;
      lock.lock();
    }
  });

  // Reader + admission control. In-flight (submitted - written) never
  // exceeds admission_cap: block mode stalls the reader — classic
  // backpressure on the input stream — while reject mode sheds the
  // request with an immediate error response that still occupies its
  // slot in the output order.
  std::string line;
  uint64_t seq = 0;
  while (!stop_requested_.load() && std::getline(in, line)) {
    if (line.empty()) continue;  // tolerate blank lines between requests
    {
      std::unique_lock<std::mutex> lock(done_mu);
      if (popt.reject_on_full) {
        if (submitted - written >= admission_cap) {
          requests_served_.fetch_add(1);
          errors_.fetch_add(1);
          pipeline_rejected_.fetch_add(1);
          done.emplace(seq,
                       ErrorResponse(Status::Unavailable(
                                         "server overloaded: admission "
                                         "queue full"))
                           .Dump());
          ++submitted;
          ++seq;
          done_cv.notify_all();
          line.clear();
          continue;
        }
      } else {
        done_cv.wait(lock, [&] {
          return submitted - written < admission_cap ||
                 stop_requested_.load();
        });
        // Drain trigger while parked: drop the in-hand (unadmitted)
        // line — everything already submitted still flushes below.
        if (stop_requested_.load()) break;
      }
      ++submitted;
    }
    PipeItem item;
    item.seq = seq++;
    item.admit_micros = MonotonicMicros();
    item.line = std::move(line);
    pipe.Submit(std::move(item), /*block=*/true);
    line.clear();
  }

  pipe.Drain();  // flush every in-flight item into `done`
  {
    std::lock_guard<std::mutex> lock(done_mu);
    intake_closed = true;
    total = seq;
  }
  done_cv.notify_all();
  writer.join();
  {
    std::lock_guard<std::mutex> lock(run_wake_mu_);
    run_wake_cv_ = nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(pipeline_stats_mu_);
    pipeline_stats_fn_ = nullptr;
  }

  if (!out.good()) return Status::IOError("Service::Run: output write failed");
  return Status::OK();
}

}  // namespace goggles::serve
