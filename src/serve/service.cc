#include "serve/service.h"

#include <cmath>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "util/parallel.h"

namespace goggles::serve {
namespace {

JsonValue ErrorResponse(const std::string& message) {
  JsonValue response = JsonValue::MakeObject();
  response.Set("ok", JsonValue(false));
  response.Set("error", JsonValue(message));
  return response;
}

/// Decodes {"channels":C,"height":H,"width":W,"pixels":[...]}.
Result<data::Image> ParseImage(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("image must be a JSON object");
  }
  const JsonValue* channels = value.Find("channels");
  const JsonValue* height = value.Find("height");
  const JsonValue* width = value.Find("width");
  const JsonValue* pixels = value.Find("pixels");
  if (channels == nullptr || !channels->is_number() || height == nullptr ||
      !height->is_number() || width == nullptr || !width->is_number() ||
      pixels == nullptr || !pixels->is_array()) {
    return Status::InvalidArgument(
        "image needs numeric channels/height/width and a pixels array");
  }
  // Dimensions arrive as doubles: reject non-integral / out-of-range
  // values before casting (float->int overflow is undefined behavior).
  constexpr double kMaxDim = 65536.0;
  auto as_dim = [](double v) -> int {
    if (!std::isfinite(v) || v < 1.0 || v > kMaxDim || v != std::floor(v)) {
      return -1;
    }
    return static_cast<int>(v);
  };
  const int c = as_dim(channels->number());
  const int h = as_dim(height->number());
  const int w = as_dim(width->number());
  if (c < 1 || h < 1 || w < 1) {
    return Status::InvalidArgument(
        "image dimensions must be positive integers (at most 65536)");
  }
  const size_t expected = static_cast<size_t>(c) * static_cast<size_t>(h) *
                          static_cast<size_t>(w);
  if (pixels->items().size() != expected) {
    return Status::InvalidArgument(
        "pixels array length must equal channels*height*width");
  }
  data::Image image(c, h, w);
  for (size_t i = 0; i < expected; ++i) {
    const JsonValue& px = pixels->items()[i];
    if (!px.is_number()) {
      return Status::InvalidArgument("pixels must all be numbers");
    }
    image.pixels[i] = static_cast<float>(px.number());
  }
  return image;
}

JsonValue SoftRowToJson(const Matrix& soft, int64_t row) {
  JsonValue arr = JsonValue::MakeArray();
  for (int64_t k = 0; k < soft.cols(); ++k) arr.Append(JsonValue(soft(row, k)));
  return arr;
}

JsonValue SessionShapeJson(const Session& session, JsonValue response) {
  response.Set("pool_size", JsonValue(session.pool_size()));
  response.Set("num_classes", JsonValue(session.num_classes()));
  response.Set("num_functions", JsonValue(session.num_functions()));
  return response;
}

}  // namespace

namespace {

ServiceConfig NormalizeConfig(ServiceConfig config) {
  if (config.num_workers < 1) config.num_workers = 1;
  if (config.queue_capacity < 1) config.queue_capacity = 1;
  // At most num_workers `label` requests are ever in flight, so a larger
  // coalescing batch can never fill — without this clamp the batch
  // leader would sleep out its whole window waiting for joiners that
  // cannot exist.
  if (config.coalesce.max_batch > config.num_workers) {
    config.coalesce.max_batch = config.num_workers;
  }
  return config;
}

}  // namespace

Service::Service(std::shared_ptr<const Session> session, ServiceConfig config)
    : session_(std::move(session)), config_(NormalizeConfig(config)) {
  coalescer_ = std::make_unique<Coalescer>(config_.coalesce);
}

Service::Service(std::shared_ptr<SessionRegistry> registry,
                 std::shared_ptr<const Session> default_session,
                 ServiceConfig config)
    : registry_(std::move(registry)),
      session_(std::move(default_session)),
      config_(NormalizeConfig(config)) {
  coalescer_ = std::make_unique<Coalescer>(config_.coalesce);
}

Result<std::shared_ptr<const Session>> Service::ResolveSession(
    const JsonValue& request) const {
  const JsonValue* task = request.Find("task");
  if (task == nullptr) {
    if (session_ != nullptr) return session_;
    return Status::InvalidArgument(
        "request needs a 'task' (no default artifact is loaded)");
  }
  if (!task->is_string()) {
    return Status::InvalidArgument("'task' must be a string");
  }
  if (registry_ == nullptr) {
    return Status::InvalidArgument(
        "task routing requires an artifact directory (--artifact-dir)");
  }
  return registry_->Acquire(task->str());
}

JsonValue Service::HandleRegistryOp(const std::string& op,
                                    const JsonValue& request) const {
  if (registry_ == nullptr) {
    errors_.fetch_add(1);
    return ErrorResponse("'" + op +
                         "' requires an artifact directory (--artifact-dir)");
  }

  if (op == "list_tasks") {
    JsonValue response = JsonValue::MakeObject();
    response.Set("ok", JsonValue(true));
    JsonValue tasks = JsonValue::MakeArray();
    for (const TaskInfo& info : registry_->ListTasks()) {
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("task", JsonValue(info.task));
      entry.Set("resident", JsonValue(info.resident));
      entry.Set("on_disk", JsonValue(info.on_disk));
      if (info.resident) {
        entry.Set("pool_size", JsonValue(info.pool_size));
        entry.Set("num_classes", JsonValue(info.num_classes));
        entry.Set("num_functions", JsonValue(info.num_functions));
        entry.Set("approx_bytes",
                  JsonValue(static_cast<double>(info.approx_bytes)));
      }
      tasks.Append(std::move(entry));
    }
    response.Set("tasks", std::move(tasks));
    return response;
  }

  const JsonValue* task = request.Find("task");
  if (task == nullptr || !task->is_string()) {
    errors_.fetch_add(1);
    return ErrorResponse("'" + op + "' needs a string 'task'");
  }

  if (op == "load") {
    Result<std::shared_ptr<const Session>> session =
        registry_->Load(task->str());
    if (!session.ok()) {
      errors_.fetch_add(1);
      return ErrorResponse(session.status().message());
    }
    JsonValue response = JsonValue::MakeObject();
    response.Set("ok", JsonValue(true));
    response.Set("task", JsonValue(task->str()));
    response = SessionShapeJson(**session, std::move(response));
    response.Set("approx_bytes",
                 JsonValue(static_cast<double>((*session)->ApproxMemoryBytes())));
    return response;
  }

  // op == "unload"
  Status status = registry_->Unload(task->str());
  if (!status.ok()) {
    errors_.fetch_add(1);
    return ErrorResponse(status.message());
  }
  JsonValue response = JsonValue::MakeObject();
  response.Set("ok", JsonValue(true));
  response.Set("task", JsonValue(task->str()));
  return response;
}

JsonValue Service::HandleRequest(const JsonValue& request) const {
  requests_served_.fetch_add(1);
  if (!request.is_object()) {
    errors_.fetch_add(1);
    return ErrorResponse("request must be a JSON object");
  }
  const JsonValue* op = request.Find("op");
  if (op == nullptr || !op->is_string()) {
    errors_.fetch_add(1);
    return ErrorResponse("request needs a string 'op'");
  }

  if (op->str() == "stats") {
    // Field order matters for the single-artifact mode: the response must
    // stay byte-compatible with the original one-session protocol, so
    // gateway/coalescer fields are only appended in their modes.
    JsonValue response = JsonValue::MakeObject();
    response.Set("ok", JsonValue(true));
    Result<std::shared_ptr<const Session>> session = ResolveSession(request);
    if (session.ok()) {
      response = SessionShapeJson(**session, std::move(response));
    } else if (request.Find("task") != nullptr) {
      // An explicitly named task that cannot be resolved is an error; a
      // merely absent default session still yields gateway-level stats.
      errors_.fetch_add(1);
      return ErrorResponse(session.status().message());
    }
    response.Set("requests_served",
                 JsonValue(static_cast<double>(requests_served_.load())));
    response.Set("errors", JsonValue(static_cast<double>(errors_.load())));
    if (registry_ != nullptr) {
      const RegistryStats stats = registry_->stats();
      JsonValue registry = JsonValue::MakeObject();
      registry.Set("resident_tasks",
                   JsonValue(static_cast<double>(stats.resident_tasks)));
      registry.Set("resident_bytes",
                   JsonValue(static_cast<double>(stats.resident_bytes)));
      registry.Set("hits", JsonValue(static_cast<double>(stats.hits)));
      registry.Set("loads", JsonValue(static_cast<double>(stats.loads)));
      registry.Set("reloads", JsonValue(static_cast<double>(stats.reloads)));
      registry.Set("evictions",
                   JsonValue(static_cast<double>(stats.evictions)));
      registry.Set("load_failures",
                   JsonValue(static_cast<double>(stats.load_failures)));
      response.Set("registry", std::move(registry));
    }
    if (config_.coalesce.enabled) {
      const CoalescerStats stats = coalescer_->stats();
      JsonValue coalescer = JsonValue::MakeObject();
      coalescer.Set("requests", JsonValue(static_cast<double>(stats.requests)));
      coalescer.Set("batches", JsonValue(static_cast<double>(stats.batches)));
      coalescer.Set("coalesced",
                    JsonValue(static_cast<double>(stats.coalesced)));
      coalescer.Set("deduped",
                    JsonValue(static_cast<double>(stats.deduped)));
      coalescer.Set("max_batch_size",
                    JsonValue(static_cast<double>(stats.max_batch_size)));
      response.Set("coalescer", std::move(coalescer));
    }
    return response;
  }

  if (op->str() == "label") {
    Result<std::shared_ptr<const Session>> session = ResolveSession(request);
    if (!session.ok()) {
      errors_.fetch_add(1);
      return ErrorResponse(session.status().message());
    }
    const JsonValue* image_json = request.Find("image");
    if (image_json == nullptr) {
      errors_.fetch_add(1);
      return ErrorResponse("label request needs an 'image'");
    }
    Result<data::Image> image = ParseImage(*image_json);
    if (!image.ok()) {
      errors_.fetch_add(1);
      return ErrorResponse(image.status().message());
    }
    Result<OnlineLabel> label = coalescer_->Label(*session, *image);
    if (!label.ok()) {
      errors_.fetch_add(1);
      return ErrorResponse(label.status().message());
    }
    JsonValue response = JsonValue::MakeObject();
    response.Set("ok", JsonValue(true));
    response.Set("label", JsonValue(label->hard));
    JsonValue soft = JsonValue::MakeArray();
    for (double p : label->soft) soft.Append(JsonValue(p));
    response.Set("soft", std::move(soft));
    return response;
  }

  if (op->str() == "label_batch") {
    Result<std::shared_ptr<const Session>> session = ResolveSession(request);
    if (!session.ok()) {
      errors_.fetch_add(1);
      return ErrorResponse(session.status().message());
    }
    const JsonValue* images_json = request.Find("images");
    if (images_json == nullptr || !images_json->is_array() ||
        images_json->items().empty()) {
      errors_.fetch_add(1);
      return ErrorResponse("label_batch request needs a non-empty 'images'");
    }
    std::vector<data::Image> images;
    images.reserve(images_json->items().size());
    for (const JsonValue& item : images_json->items()) {
      Result<data::Image> image = ParseImage(item);
      if (!image.ok()) {
        errors_.fetch_add(1);
        return ErrorResponse(image.status().message());
      }
      images.push_back(std::move(*image));
    }
    Result<LabelingResult> result = (*session)->LabelBatch(images);
    if (!result.ok()) {
      errors_.fetch_add(1);
      return ErrorResponse(result.status().message());
    }
    JsonValue response = JsonValue::MakeObject();
    response.Set("ok", JsonValue(true));
    JsonValue labels = JsonValue::MakeArray();
    JsonValue soft = JsonValue::MakeArray();
    for (int64_t i = 0; i < result->soft_labels.rows(); ++i) {
      labels.Append(JsonValue(result->hard_labels[static_cast<size_t>(i)]));
      soft.Append(SoftRowToJson(result->soft_labels, i));
    }
    response.Set("labels", std::move(labels));
    response.Set("soft", std::move(soft));
    return response;
  }

  if (op->str() == "load" || op->str() == "unload" ||
      op->str() == "list_tasks") {
    return HandleRegistryOp(op->str(), request);
  }

  errors_.fetch_add(1);
  return ErrorResponse("unknown op '" + op->str() + "'");
}

std::string Service::HandleLine(const std::string& line) const {
  Result<JsonValue> request = JsonValue::Parse(line);
  if (!request.ok()) {
    requests_served_.fetch_add(1);
    errors_.fetch_add(1);
    return ErrorResponse(request.status().message()).Dump();
  }
  return HandleRequest(*request).Dump();
}

Status Service::Run(std::istream& in, std::ostream& out) {
  struct WorkItem {
    uint64_t seq = 0;
    std::string line;
  };
  BoundedQueue<WorkItem> queue(config_.queue_capacity);

  // Completed responses, reassembled into input order by the writer.
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::map<uint64_t, std::string> done;
  bool producers_finished = false;
  uint64_t total_enqueued = 0;

  // The reorder buffer is bounded too: a worker won't take new work
  // while `done` holds queue_capacity finished responses (e.g. when the
  // stdout consumer stalls), so total buffered responses stay at
  // queue_capacity + num_workers. Blocking before Pop — never before the
  // insert — keeps the writer's next-in-order response reachable.
  const size_t max_done = config_.queue_capacity;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(config_.num_workers));
  for (int w = 0; w < config_.num_workers; ++w) {
    workers.emplace_back([this, &queue, &done_mu, &done_cv, &done,
                          max_done] {
      // Once the worker pool alone covers the cores, the per-request
      // kernels (backbone GEMMs, batched scoring) would only
      // oversubscribe — pin them to this thread. With fewer workers than
      // cores the kernels keep their internal parallelism so a single
      // in-flight request can still use the whole machine.
      std::optional<ScopedSerialKernels> serial_kernels;
      if (config_.num_workers >= DefaultNumThreads()) serial_kernels.emplace();
      while (true) {
        {
          std::unique_lock<std::mutex> lock(done_mu);
          done_cv.wait(lock, [&] { return done.size() < max_done; });
        }
        std::optional<WorkItem> item = queue.Pop();
        if (!item.has_value()) break;
        std::string response = HandleLine(item->line);
        {
          std::lock_guard<std::mutex> lock(done_mu);
          done.emplace(item->seq, std::move(response));
        }
        done_cv.notify_all();
      }
    });
  }

  std::thread writer([&] {
    uint64_t next = 0;
    std::unique_lock<std::mutex> lock(done_mu);
    while (true) {
      done_cv.wait(lock, [&] {
        return done.count(next) > 0 ||
               (producers_finished && next >= total_enqueued);
      });
      if (done.count(next) == 0) break;  // all input handled
      std::string response = std::move(done[next]);
      done.erase(next);
      ++next;
      done_cv.notify_all();  // frees workers blocked on the done bound
      lock.unlock();
      out << response << "\n" << std::flush;
      lock.lock();
    }
  });

  std::string line;
  uint64_t seq = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;  // tolerate blank lines between requests
    queue.Push(WorkItem{seq++, std::move(line)});
    line.clear();
  }
  queue.Close();
  for (std::thread& t : workers) t.join();
  {
    std::lock_guard<std::mutex> lock(done_mu);
    producers_finished = true;
    total_enqueued = seq;
  }
  done_cv.notify_all();
  writer.join();

  if (!out.good()) return Status::IOError("Service::Run: output write failed");
  return Status::OK();
}

}  // namespace goggles::serve
