/// \file goggles_serve_main.cc
/// \brief The `goggles_serve` binary: loads a labeling artifact and
/// answers newline-delimited JSON requests on stdin/stdout.
///
/// Usage:
///   goggles_serve --artifact PATH [--workers N] [--queue N]
///
/// The backbone extractor is the pretrained VggMini (cached under
/// $GOGGLES_CACHE_DIR, default /tmp/goggles_cache) — the same backbone
/// the artifact was fitted with. Startup prints one `{"ok":true,...}`
/// ready line to stderr; every request line then gets exactly one
/// response line on stdout, in input order (see serve/service.h for the
/// protocol).

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "eval/backbone.h"
#include "serve/service.h"
#include "serve/session.h"
#include "util/timer.h"

namespace {

/// Strict positive-integer parse (no trailing garbage, no overflow) —
/// same policy as the repo's env-knob parsing in util/env.cc.
bool ParsePositiveInt(const char* text, long long max_value,
                      long long* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || value < 1 ||
      value > max_value) {
    return false;
  }
  *out = value;
  return true;
}

void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --artifact PATH [--workers N] [--queue N]\n"
               "Serves newline-delimited JSON labeling requests on "
               "stdin/stdout.\n"
               "Ops: {\"op\":\"stats\"} | {\"op\":\"label\",\"image\":{...}} "
               "| {\"op\":\"label_batch\",\"images\":[...]}\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace goggles;

  std::string artifact_path;
  serve::ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--artifact" && has_value) {
      artifact_path = argv[++i];
    } else if (arg == "--workers" && has_value) {
      long long workers = 0;
      if (!ParsePositiveInt(argv[++i], 1024, &workers)) {
        std::fprintf(stderr, "error: --workers expects 1..1024, got '%s'\n",
                     argv[i]);
        return 2;
      }
      config.num_workers = static_cast<int>(workers);
    } else if (arg == "--queue" && has_value) {
      long long queue = 0;
      if (!ParsePositiveInt(argv[++i], 1 << 20, &queue)) {
        std::fprintf(stderr, "error: --queue expects 1..%d, got '%s'\n",
                     1 << 20, argv[i]);
        return 2;
      }
      config.queue_capacity = static_cast<size_t>(queue);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown or incomplete argument '%s'\n",
                   arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    }
  }
  if (artifact_path.empty()) {
    std::fprintf(stderr, "error: --artifact is required\n");
    PrintUsage(argv[0]);
    return 2;
  }

  WallTimer timer;
  eval::BackboneOptions backbone_options;
  auto extractor = eval::GetPretrainedExtractor(backbone_options);
  if (!extractor.ok()) {
    std::fprintf(stderr, "error: backbone unavailable: %s\n",
                 extractor.status().ToString().c_str());
    return 1;
  }

  auto session = serve::Session::Load(artifact_path, *extractor);
  if (!session.ok()) {
    std::fprintf(stderr, "error: cannot load artifact: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  std::fprintf(stderr,
               "{\"ok\":true,\"ready\":true,\"artifact\":\"%s\","
               "\"pool_size\":%lld,\"num_classes\":%d,"
               "\"num_functions\":%lld,\"startup_seconds\":%.2f}\n",
               artifact_path.c_str(),
               static_cast<long long>(session->pool_size()),
               session->num_classes(),
               static_cast<long long>(session->num_functions()),
               timer.ElapsedSeconds());

  serve::Service service(
      std::make_shared<const serve::Session>(std::move(*session)), config);
  goggles::Status status = service.Run(std::cin, std::cout);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
