/// \file goggles_serve_main.cc
/// \brief The `goggles_serve` binary: a labeling gateway answering
/// newline-delimited JSON requests on stdin/stdout.
///
/// Usage:
///   goggles_serve --artifact PATH [options]           # single-artifact
///   goggles_serve --artifact-dir DIR [options]        # multi-task gateway
///   goggles_serve --artifact PATH --artifact-dir DIR  # both: PATH serves
///                                                     # task-less requests
///
/// Options:
///   --workers N             worker threads for the monolithic path
///                           (default 2; only used with --no-pipeline)
///   --queue N               bounded request-queue capacity, and the
///                           default pipeline admission cap (default 64)
///   --no-pipeline           run the monolithic worker pool instead of
///                           the staged flowgraph (also
///                           GOGGLES_PIPELINE=0; pipeline is default)
///   --pipeline-decode N     decode-stage threads (default 1; also
///                           GOGGLES_PIPELINE_DECODE_THREADS)
///   --pipeline-extract N    extraction-stage threads (default 2; also
///                           GOGGLES_PIPELINE_EXTRACT_THREADS)
///   --pipeline-infer N      inference-stage threads (default 1; also
///                           GOGGLES_PIPELINE_INFER_THREADS)
///   --pipeline-encode N     encode-stage threads (default 1; also
///                           GOGGLES_PIPELINE_ENCODE_THREADS)
///   --pipeline-queue N      per-edge SPSC queue capacity (default 64;
///                           also GOGGLES_PIPELINE_QUEUE)
///   --pipeline-batch N      extraction-stage micro-batch cap (default
///                           8; also GOGGLES_PIPELINE_MAX_BATCH)
///   --pipeline-batch-wait N extraction-stage batch-gather window in
///                           microseconds: a worker holding a partial
///                           batch waits up to N us for stragglers
///                           before extracting (default 0 = never wait;
///                           also GOGGLES_PIPELINE_BATCH_WAIT)
///   --pipeline-admission N  in-flight request cap (default = --queue;
///                           also GOGGLES_PIPELINE_ADMISSION)
///   --pipeline-reject       shed over-capacity requests with an
///                           immediate error response instead of
///                           stalling the reader (also
///                           GOGGLES_PIPELINE_REJECT=1)
///   --coalesce              enable cross-request micro-batching of
///                           `label` requests on the monolithic path
///                           (default off; also GOGGLES_COALESCE=1; the
///                           pipeline batches natively in its
///                           extraction stage)
///   --coalesce-window-us N  micro-batching window (default 2000; also
///                           GOGGLES_COALESCE_WINDOW_US)
///   --coalesce-batch N      max coalesced batch size (default 16; also
///                           GOGGLES_COALESCE_MAX_BATCH)
///   --task-budget-mb N      approximate-memory budget for resident
///                           tasks; LRU eviction beyond it (default 0 =
///                           unlimited; also GOGGLES_TASK_BUDGET_MB)
///   --max-tasks N           resident-task cap (default 0 = unlimited;
///                           also GOGGLES_MAX_TASKS)
///   --request-deadline-ms N per-request deadline measured from
///                           admission; overruns answer with
///                           error_code "deadline_exceeded" (default 0 =
///                           none; also GOGGLES_REQUEST_DEADLINE_MS)
///   --pipeline-watchdog-ms N stall watchdog budget: stage calls running
///                           longer than N ms are flagged (WARNING log +
///                           per-stage "stalls" in the stats op; default
///                           0 = off; also GOGGLES_PIPELINE_WATCHDOG_MS)
///
/// SIGTERM/SIGINT drain gracefully: admission stops, every in-flight
/// request still gets its response, then the process exits 0.
///
/// The artifact directory may also come from GOGGLES_ARTIFACT_DIR. In
/// gateway mode, tasks are `<dir>/<task>.ggsa` artifacts loaded on the
/// first request that routes to them ("task":"name"), hot-reloaded when
/// the file changes, and LRU-evicted past the memory budget.
///
/// The backbone extractor is the pretrained VggMini (cached under
/// $GOGGLES_CACHE_DIR, default /tmp/goggles_cache) — the same backbone
/// every artifact was fitted with. Startup prints one `{"ok":true,...}`
/// ready line to stderr; every request line then gets exactly one
/// response line on stdout, in input order (docs/serve_protocol.md has
/// the full protocol).

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "eval/backbone.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "serve/session.h"
#include "serve/shutdown.h"
#include "tensor/isa.h"
#include "util/env.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace {

/// Strict positive-integer parse (no trailing garbage, no overflow) —
/// same policy as the repo's env-knob parsing in util/env.cc.
bool ParsePositiveInt(const char* text, long long max_value,
                      long long* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || value < 1 ||
      value > max_value) {
    return false;
  }
  *out = value;
  return true;
}

/// Env-var twin of the flag parsing: same strict parse and the same
/// bounds as the corresponding CLI flag. Out-of-range or malformed
/// values warn on stderr and fall back to `fallback` (the repo's
/// env-knob policy: never silently truncate).
long long EnvRangedInt(const char* name, long long fallback,
                       long long min_value, long long max_value) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || value < min_value ||
      value > max_value) {
    std::fprintf(stderr,
                 "warning: %s='%s' is not an integer in [%lld, %lld]; "
                 "using %lld\n",
                 name, text, min_value, max_value, fallback);
    return fallback;
  }
  return value;
}

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--artifact PATH | --artifact-dir DIR) [--workers N]\n"
      "       [--queue N] [--no-pipeline] [--pipeline-decode N]\n"
      "       [--pipeline-extract N] [--pipeline-infer N]\n"
      "       [--pipeline-encode N] [--pipeline-queue N]\n"
      "       [--pipeline-batch N] [--pipeline-batch-wait N]\n"
      "       [--pipeline-admission N]\n"
      "       [--pipeline-reject] [--coalesce] [--coalesce-window-us N]\n"
      "       [--coalesce-batch N] [--task-budget-mb N] [--max-tasks N]\n"
      "       [--request-deadline-ms N] [--pipeline-watchdog-ms N]\n"
      "Serves newline-delimited JSON labeling requests on stdin/stdout.\n"
      "Ops: {\"op\":\"stats\"} | {\"op\":\"label\",\"image\":{...}} |\n"
      "     {\"op\":\"label_batch\",\"images\":[...]} |\n"
      "     {\"op\":\"list_tasks\"} | {\"op\":\"load\",\"task\":T} |\n"
      "     {\"op\":\"unload\",\"task\":T} | {\"op\":\"failpoint\",...}\n"
      "Multi-task requests carry \"task\":\"name\" "
      "(-> DIR/name.ggsa; see docs/serve_protocol.md).\n"
      "Fault injection: build with -DGOGGLES_FAILPOINTS=ON, arm via the\n"
      "failpoint op or GOGGLES_FAILPOINTS=name=action[:prob][:count].\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace goggles;

  std::string artifact_path;
  std::string artifact_dir = GetEnvOr("GOGGLES_ARTIFACT_DIR", "");
  serve::ServiceConfig config;
  config.coalesce.enabled = GetEnvIntOr("GOGGLES_COALESCE", 0) != 0;
  config.coalesce.window_micros = EnvRangedInt(
      "GOGGLES_COALESCE_WINDOW_US", config.coalesce.window_micros, 1,
      10'000'000);
  config.coalesce.max_batch = static_cast<int>(EnvRangedInt(
      "GOGGLES_COALESCE_MAX_BATCH", config.coalesce.max_batch, 1, 4096));
  // Pipeline knobs share the library-side strict env loader so the
  // service tests cover exactly the parsing the binary uses; out-of-
  // range values are clamped by the Service constructor.
  config.pipeline = serve::PipelineOptionsFromEnv(config.pipeline);
  config.request_deadline_micros =
      EnvRangedInt("GOGGLES_REQUEST_DEADLINE_MS",
                   config.request_deadline_micros / 1000, 0, 3'600'000) *
      1000;
  serve::RegistryConfig registry_config;
  registry_config.memory_budget_bytes =
      static_cast<uint64_t>(
          EnvRangedInt("GOGGLES_TASK_BUDGET_MB", 0, 0, 1 << 20))
      << 20;
  registry_config.max_resident_tasks = static_cast<size_t>(
      EnvRangedInt("GOGGLES_MAX_TASKS", 0, 0, 1 << 20));

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    long long value = 0;
    if (arg == "--artifact" && has_value) {
      artifact_path = argv[++i];
    } else if (arg == "--artifact-dir" && has_value) {
      artifact_dir = argv[++i];
    } else if (arg == "--workers" && has_value) {
      if (!ParsePositiveInt(argv[++i], 1024, &value)) {
        std::fprintf(stderr, "error: --workers expects 1..1024, got '%s'\n",
                     argv[i]);
        return 2;
      }
      config.num_workers = static_cast<int>(value);
    } else if (arg == "--queue" && has_value) {
      if (!ParsePositiveInt(argv[++i], 1 << 20, &value)) {
        std::fprintf(stderr, "error: --queue expects 1..%d, got '%s'\n",
                     1 << 20, argv[i]);
        return 2;
      }
      config.queue_capacity = static_cast<size_t>(value);
    } else if (arg == "--no-pipeline") {
      config.pipeline.enabled = false;
    } else if (arg == "--pipeline-decode" && has_value) {
      if (!ParsePositiveInt(argv[++i], 256, &value)) {
        std::fprintf(stderr,
                     "error: --pipeline-decode expects 1..256, got '%s'\n",
                     argv[i]);
        return 2;
      }
      config.pipeline.decode_threads = static_cast<int>(value);
    } else if (arg == "--pipeline-extract" && has_value) {
      if (!ParsePositiveInt(argv[++i], 256, &value)) {
        std::fprintf(stderr,
                     "error: --pipeline-extract expects 1..256, got '%s'\n",
                     argv[i]);
        return 2;
      }
      config.pipeline.extract_threads = static_cast<int>(value);
    } else if (arg == "--pipeline-infer" && has_value) {
      if (!ParsePositiveInt(argv[++i], 256, &value)) {
        std::fprintf(stderr,
                     "error: --pipeline-infer expects 1..256, got '%s'\n",
                     argv[i]);
        return 2;
      }
      config.pipeline.infer_threads = static_cast<int>(value);
    } else if (arg == "--pipeline-encode" && has_value) {
      if (!ParsePositiveInt(argv[++i], 256, &value)) {
        std::fprintf(stderr,
                     "error: --pipeline-encode expects 1..256, got '%s'\n",
                     argv[i]);
        return 2;
      }
      config.pipeline.encode_threads = static_cast<int>(value);
    } else if (arg == "--pipeline-queue" && has_value) {
      if (!ParsePositiveInt(argv[++i], 1 << 20, &value)) {
        std::fprintf(stderr, "error: --pipeline-queue expects 1..%d, "
                     "got '%s'\n",
                     1 << 20, argv[i]);
        return 2;
      }
      config.pipeline.queue_capacity = static_cast<int>(value);
    } else if (arg == "--pipeline-batch" && has_value) {
      if (!ParsePositiveInt(argv[++i], 4096, &value)) {
        std::fprintf(stderr, "error: --pipeline-batch expects 1..4096, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      config.pipeline.max_batch = static_cast<int>(value);
    } else if (arg == "--pipeline-batch-wait" && has_value) {
      // 0 is meaningful here (never wait), so accept it explicitly.
      if (std::string(argv[i + 1]) == "0") {
        ++i;
        value = 0;
      } else if (!ParsePositiveInt(argv[++i], 10'000'000, &value)) {
        std::fprintf(stderr,
                     "error: --pipeline-batch-wait expects 0..10000000, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      config.pipeline.batch_wait_micros = value;
    } else if (arg == "--pipeline-admission" && has_value) {
      if (!ParsePositiveInt(argv[++i], 1 << 20, &value)) {
        std::fprintf(stderr, "error: --pipeline-admission expects 1..%d, "
                     "got '%s'\n",
                     1 << 20, argv[i]);
        return 2;
      }
      config.pipeline.admission_capacity = static_cast<int>(value);
    } else if (arg == "--pipeline-reject") {
      config.pipeline.reject_on_full = true;
    } else if (arg == "--coalesce") {
      config.coalesce.enabled = true;
    } else if (arg == "--coalesce-window-us" && has_value) {
      if (!ParsePositiveInt(argv[++i], 10'000'000, &value)) {
        std::fprintf(stderr,
                     "error: --coalesce-window-us expects 1..10000000, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      config.coalesce.window_micros = value;
    } else if (arg == "--coalesce-batch" && has_value) {
      if (!ParsePositiveInt(argv[++i], 4096, &value)) {
        std::fprintf(stderr, "error: --coalesce-batch expects 1..4096, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      config.coalesce.max_batch = static_cast<int>(value);
    } else if (arg == "--task-budget-mb" && has_value) {
      if (!ParsePositiveInt(argv[++i], 1 << 20, &value)) {
        std::fprintf(stderr, "error: --task-budget-mb expects 1..%d, "
                     "got '%s'\n",
                     1 << 20, argv[i]);
        return 2;
      }
      registry_config.memory_budget_bytes = static_cast<uint64_t>(value) << 20;
    } else if (arg == "--max-tasks" && has_value) {
      if (!ParsePositiveInt(argv[++i], 1 << 20, &value)) {
        std::fprintf(stderr, "error: --max-tasks expects 1..%d, got '%s'\n",
                     1 << 20, argv[i]);
        return 2;
      }
      registry_config.max_resident_tasks = static_cast<size_t>(value);
    } else if (arg == "--request-deadline-ms" && has_value) {
      if (!ParsePositiveInt(argv[++i], 3'600'000, &value)) {
        std::fprintf(stderr,
                     "error: --request-deadline-ms expects 1..3600000, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      config.request_deadline_micros = value * 1000;
    } else if (arg == "--pipeline-watchdog-ms" && has_value) {
      if (!ParsePositiveInt(argv[++i], 3'600'000, &value)) {
        std::fprintf(stderr,
                     "error: --pipeline-watchdog-ms expects 1..3600000, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      config.pipeline.watchdog_budget_micros = value * 1000;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown or incomplete argument '%s'\n",
                   arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    }
  }
  if (artifact_path.empty() && artifact_dir.empty()) {
    std::fprintf(stderr,
                 "error: need --artifact and/or --artifact-dir "
                 "(or GOGGLES_ARTIFACT_DIR)\n");
    PrintUsage(argv[0]);
    return 2;
  }

  WallTimer timer;
  eval::BackboneOptions backbone_options;
  auto extractor = eval::GetPretrainedExtractor(backbone_options);
  if (!extractor.ok()) {
    std::fprintf(stderr, "error: backbone unavailable: %s\n",
                 extractor.status().ToString().c_str());
    return 1;
  }

  // The default session (serves requests without a "task").
  std::shared_ptr<const serve::Session> default_session;
  if (!artifact_path.empty()) {
    auto session = serve::Session::Load(artifact_path, *extractor);
    if (!session.ok()) {
      std::fprintf(stderr, "error: cannot load artifact: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
    default_session =
        std::make_shared<const serve::Session>(std::move(*session));
  }

  std::shared_ptr<serve::SessionRegistry> registry;
  if (!artifact_dir.empty()) {
    registry_config.artifact_dir = artifact_dir;
    registry = std::make_shared<serve::SessionRegistry>(*extractor,
                                                        registry_config);
  }

  // The service clamps the coalescing batch to the worker count (more
  // in-flight label requests cannot exist); surface that so a user who
  // asked for a bigger batch knows what is actually in effect.
  if (!config.pipeline.enabled && config.coalesce.enabled &&
      config.coalesce.max_batch > config.num_workers) {
    std::fprintf(stderr,
                 "note: coalesce batch %d exceeds --workers %d; effective "
                 "batch is %d (raise --workers for bigger batches)\n",
                 config.coalesce.max_batch, config.num_workers,
                 config.num_workers);
    config.coalesce.max_batch = config.num_workers;
  }

  std::fprintf(
      stderr,
      "{\"ok\":true,\"ready\":true,\"artifact\":\"%s\","
      "\"artifact_dir\":\"%s\",\"workers\":%d,\"pipeline\":%s,"
      "\"pipeline_threads\":[%d,%d,%d,%d],\"pipeline_batch\":%d,"
      "\"pipeline_batch_wait_us\":%lld,"
      "\"pipeline_admission\":%d,\"pipeline_reject\":%s,\"coalesce\":%s,"
      "\"coalesce_batch\":%d,\"coalesce_window_us\":%lld,"
      "\"task_budget_bytes\":%llu,\"isa\":\"%s\","
      "\"request_deadline_ms\":%lld,\"watchdog_ms\":%lld,"
      "\"failpoints\":%s,\"startup_seconds\":%.2f}\n",
      artifact_path.c_str(), artifact_dir.c_str(), config.num_workers,
      config.pipeline.enabled ? "true" : "false",
      config.pipeline.decode_threads, config.pipeline.extract_threads,
      config.pipeline.infer_threads, config.pipeline.encode_threads,
      config.pipeline.max_batch,
      static_cast<long long>(config.pipeline.batch_wait_micros),
      config.pipeline.admission_capacity,
      config.pipeline.reject_on_full ? "true" : "false",
      config.coalesce.enabled ? "true" : "false", config.coalesce.max_batch,
      static_cast<long long>(config.coalesce.window_micros),
      static_cast<unsigned long long>(registry_config.memory_budget_bytes),
      goggles::IsaTierName(goggles::ActiveIsaTier()),
      static_cast<long long>(config.request_deadline_micros / 1000),
      static_cast<long long>(config.pipeline.watchdog_budget_micros / 1000),
      failpoint::CompiledIn() ? "true" : "false", timer.ElapsedSeconds());

  // SIGTERM/SIGINT drain the service instead of killing the process:
  // the watcher trips RequestStop() and interrupts the blocked stdin
  // read; Run flushes every in-flight response before returning.
  goggles::Status status = Status::OK();
  int drain_signal = 0;
  if (registry != nullptr) {
    serve::Service service(registry, default_session, config);
    serve::GracefulShutdown drain([&service] { service.RequestStop(); });
    status = service.Run(std::cin, std::cout);
    drain_signal = drain.signal_number();
  } else {
    serve::Service service(default_session, config);
    serve::GracefulShutdown drain([&service] { service.RequestStop(); });
    status = service.Run(std::cin, std::cout);
    drain_signal = drain.signal_number();
  }
  if (drain_signal != 0) {
    std::fprintf(stderr,
                 "{\"ok\":true,\"drained\":true,\"signal\":%d}\n",
                 drain_signal);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
