#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "data/image.h"
#include "serve/session.h"
#include "util/clock.h"
#include "util/status.h"

/// \file coalescer.h
/// \brief Cross-request micro-batching for `label` requests.
///
/// Single-image `label` requests arriving close together on different
/// worker threads waste the batched scorer: each one pays the per-call
/// costs (prototype-panel packing per pool layer, posterior-evaluation
/// setup) for a one-row GEMM. The coalescer gathers same-task,
/// same-shape requests inside a small time/size window and scores the
/// whole group through **one** `Session::LabelBatch` call — the same
/// batched-extraction + `ScoreQueryRowsBatched` path `label_batch` uses.
///
/// Because the GEMM accumulates every output element in a fixed
/// ascending-k order independent of the problem shape it is embedded in
/// (see README "Performance"), a coalesced request's scores are
/// **bit-identical** to what a singleton `LabelOne` call would have
/// produced; coalescing changes latency, never results. Response
/// ordering is unaffected too: the service's writer reassembles
/// responses into input order regardless of which batch scored them.
///
/// Batching is leader-based: the first request to open a batch waits up
/// to `window_micros` for more arrivals (waking early when the batch
/// fills to `max_batch`), then executes the batch while later arrivals
/// open the next one. Joiners block until the leader distributes their
/// result. No extra threads are created — the price is up to one window
/// of added latency per flush under light load.
///
/// Duplicate images inside one window (hot content submitted by many
/// clients at once) are detected by content hash + exact compare and
/// scored once; labeling is deterministic, so every duplicate receives
/// the same bit-identical response a singleton call would have produced.
/// This dedup is the gateway win only cross-request batching can unlock.

namespace goggles::serve {

/// \brief FNV-1a over an image's dimensions and raw pixel bytes. Used
/// for duplicate grouping inside one coalesced batch and by the staged
/// pipeline's extraction-stage dedup; always confirmed by SamePixels.
uint64_t HashImageContent(const data::Image& image);

/// \brief Exact shape + pixel-byte equality.
bool SamePixels(const data::Image& a, const data::Image& b);

/// \brief Micro-batcher tuning knobs.
struct CoalescerConfig {
  /// Master switch; disabled means Label() degenerates to
  /// `session->LabelOne(image)` with zero added latency.
  bool enabled = false;
  /// Flush as soon as a batch holds this many requests.
  int max_batch = 16;
  /// Maximum microseconds a batch leader waits for co-batchable
  /// requests before flushing what it has.
  int64_t window_micros = 2000;
};

/// \brief Coalescer counters (monotonic over the process lifetime).
struct CoalescerStats {
  uint64_t requests = 0;   ///< Label() calls routed through the coalescer
  uint64_t batches = 0;    ///< LabelBatch flushes executed
  uint64_t coalesced = 0;  ///< requests that shared a batch with others
  uint64_t deduped = 0;    ///< requests answered from a twin's scores
  uint64_t max_batch_size = 0;  ///< largest batch flushed so far
};

/// \brief Gathers concurrent same-task `label` requests into batches.
///
/// Thread-safe; meant to be called from the service worker pool. Requests
/// only share a batch when they target the same `Session` *and* have the
/// same image shape (mixed shapes cannot stack into one extraction
/// tensor), keyed automatically — callers just call Label().
class Coalescer {
 public:
  /// \brief Builds a coalescer (max_batch/window clamped to sane
  /// minimums; `enabled` false makes Label() a plain passthrough).
  /// `clock` defaults to the real monotonic clock; tests inject a
  /// FakeClock to drive the batching window deterministically.
  explicit Coalescer(CoalescerConfig config, Clock* clock = nullptr);

  /// \brief Labels one image, possibly as part of a coalesced batch.
  /// Blocks until the result is available (at most one coalescing window
  /// plus the batch's scoring time). Thread-safe.
  Result<OnlineLabel> Label(const std::shared_ptr<const Session>& session,
                            const data::Image& image);

  /// \brief Snapshot of the coalescer counters.
  CoalescerStats stats() const;

  /// \brief The configuration the coalescer was built with.
  const CoalescerConfig& config() const { return config_; }

 private:
  /// Batches only form across requests that can stack into one
  /// extraction call: same fitted session, same image shape.
  struct BatchKey {
    const Session* session = nullptr;
    int channels = 0, height = 0, width = 0;
    bool operator<(const BatchKey& other) const {
      if (session != other.session) return session < other.session;
      if (channels != other.channels) return channels < other.channels;
      if (height != other.height) return height < other.height;
      return width < other.width;
    }
  };

  /// One forming/executing batch. Slot pointers stay valid because every
  /// submitter's slot lives on its own stack until the batch finishes.
  struct Batch {
    std::vector<const data::Image*> images;  ///< arrival order
    std::vector<OnlineLabel*> outputs;       ///< parallel to images
    bool closed = false;    ///< leader took it; no more joiners
    bool finished = false;  ///< results (or error) distributed
    Status status = Status::OK();
    std::condition_variable cv;
  };

  /// Runs session->LabelBatch for the whole batch and distributes
  /// per-request results. Called by the batch leader, outside mu_.
  void Execute(const std::shared_ptr<const Session>& session,
               const std::shared_ptr<Batch>& batch);

  CoalescerConfig config_;
  Clock* clock_;  ///< never null; not owned
  std::mutex mu_;
  std::map<BatchKey, std::shared_ptr<Batch>> open_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> deduped_{0};
  std::atomic<uint64_t> max_batch_size_{0};
};

}  // namespace goggles::serve
