#include "serve/session.h"

#include <utility>

#include "serve/artifact.h"
#include "util/failpoint.h"
#include "util/parallel.h"

namespace goggles::serve {

Result<Session> Session::Fit(
    std::shared_ptr<features::FeatureExtractor> extractor,
    const std::vector<data::Image>& pool, const std::vector<int>& dev_indices,
    const std::vector<int>& dev_labels, int num_classes,
    GogglesConfig config) {
  if (extractor == nullptr) {
    return Status::InvalidArgument("Session::Fit: extractor is null");
  }
  if (pool.empty()) {
    return Status::InvalidArgument("Session::Fit: empty pool");
  }
  GogglesPipeline pipeline(extractor, config);
  Session session;
  GOGGLES_ASSIGN_OR_RETURN(
      session.pool_result_,
      pipeline.Label(pool, dev_indices, dev_labels, num_classes,
                     &session.model_));
  // The pipeline's library source now holds the prepared pool caches;
  // keep it (shared) past the pipeline's lifetime.
  session.extractor_ = std::move(extractor);
  session.source_ = pipeline.library().source;
  session.top_z_ = config.top_z;
  return session;
}

Result<Matrix> Session::BuildQueryRows(
    const std::vector<data::Image>& images) const {
  if (!fitted()) {
    return Status::Internal("Session::BuildQueryRows: session is not fitted");
  }
  if (images.empty()) {
    return Status::InvalidArgument("Session::BuildQueryRows: no images");
  }
  // The backbone forwards run concurrently (const inference path inside
  // the possibly shared extractor); the batched scorer then labels the
  // whole request batch with one GEMM per pool layer against the packed
  // prototype panel — the same kernel the fitting run used, so scores for
  // pool-identical images reproduce bit for bit.
  GOGGLES_ASSIGN_OR_RETURN(
      std::vector<PrototypeAffinitySource::QueryFeatures> queries,
      source_->ExtractQueryFeatures(images));
  return source_->ScoreQueryRowsBatched(
      queries, static_cast<int>(model_.num_functions()));
}

Result<LabelingResult> Session::InferRows(const Matrix& affinity_rows) const {
  if (!fitted()) {
    return Status::Internal("Session::InferRows: session is not fitted");
  }
  if (affinity_rows.rows() < 1 ||
      affinity_rows.cols() != model_.num_functions() * model_.pool_size) {
    return Status::InvalidArgument("Session::InferRows: bad row shape");
  }
  return model_.Infer(affinity_rows);
}

Result<LabelingResult> Session::LabelBatch(
    const std::vector<data::Image>& images) const {
  if (!fitted()) {
    return Status::Internal("Session::LabelBatch: session is not fitted");
  }
  if (images.empty()) {
    return Status::InvalidArgument("Session::LabelBatch: no images");
  }
  GOGGLES_ASSIGN_OR_RETURN(Matrix rows, BuildQueryRows(images));
  return model_.Infer(rows);
}

Result<OnlineLabel> Session::LabelOne(const data::Image& image) const {
  GOGGLES_ASSIGN_OR_RETURN(LabelingResult result, LabelBatch({image}));
  OnlineLabel label;
  label.soft = result.soft_labels.Row(0);
  label.hard = result.hard_labels[0];
  return label;
}

uint64_t Session::ApproxMemoryBytes() const {
  if (!fitted()) return sizeof(*this);
#if defined(GOGGLES_FAILPOINTS)
  // Alloc-pressure chaos site: inflating the reported footprint makes
  // the registry's LRU budget evict aggressively, exercising
  // eviction-under-pressure with in-flight requests still draining.
  {
    auto hit = failpoint::internal::Evaluate("session.memory.pressure");
    if (hit.action == failpoint::Action::kReturnError && hit.arg > 0) {
      return static_cast<uint64_t>(hit.arg);
    }
  }
#endif
  uint64_t bytes = sizeof(*this);
  if (source_ != nullptr) bytes += source_->ApproxMemoryBytes();
  bytes += model_.ApproxMemoryBytes();
  bytes += static_cast<uint64_t>(pool_result_.soft_labels.size()) *
           sizeof(double);
  bytes += pool_result_.hard_labels.capacity() * sizeof(int);
  return bytes;
}

Status Session::Save(const std::string& path) const {
  if (!fitted()) {
    return Status::InvalidArgument("Session::Save: session is not fitted");
  }
  // Serialize straight from the session's own storage: the source caches
  // are the dominant state and copying them into an Artifact first would
  // triple the peak footprint of a Save.
  return SaveArtifactFile(path, top_z_, source_->num_layers(),
                          source_->fingerprint(), model_, source_->layers(),
                          pool_result_.soft_labels, pool_result_.hard_labels);
}

Status Session::SaveAtomic(const std::string& path) const {
  if (!fitted()) {
    return Status::InvalidArgument("Session::Save: session is not fitted");
  }
  return SaveArtifactFileAtomic(
      path, top_z_, source_->num_layers(), source_->fingerprint(), model_,
      source_->layers(), pool_result_.soft_labels, pool_result_.hard_labels);
}

Result<Session> Session::Load(
    const std::string& path,
    std::shared_ptr<features::FeatureExtractor> extractor) {
  if (extractor == nullptr) {
    return Status::InvalidArgument("Session::Load: extractor is null");
  }
  GOGGLES_ASSIGN_OR_RETURN(Artifact artifact, Artifact::Load(path));
  Session session;
  session.extractor_ = extractor;
  session.top_z_ = artifact.top_z;
  session.source_ =
      std::make_shared<PrototypeAffinitySource>(extractor, artifact.top_z);
  GOGGLES_RETURN_NOT_OK(session.source_->Restore(
      std::move(artifact.source_layers),
      static_cast<int>(artifact.model.pool_size), artifact.pool_fingerprint));
  session.model_ = std::move(artifact.model);
  session.pool_result_.soft_labels = std::move(artifact.pool_soft_labels);
  session.pool_result_.hard_labels = std::move(artifact.pool_hard_labels);
  return session;
}

}  // namespace goggles::serve
