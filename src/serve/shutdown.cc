#include "serve/shutdown.h"

#include <utility>

#include <time.h>

namespace goggles::serve {

namespace {

// SIGUSR1 exists only to EINTR a read(2) parked under std::getline; the
// handler body is irrelevant (and must stay async-signal-safe anyway).
extern "C" void WakeReaderHandler(int) {}

}  // namespace

GracefulShutdown::GracefulShutdown(std::function<void()> on_signal)
    : on_signal_(std::move(on_signal)), main_thread_(pthread_self()) {
  // Block the drain signals in this thread BEFORE any worker threads
  // exist — they inherit the mask, so sigtimedwait in the watcher is the
  // only place the signals can land.
  sigset_t drain;
  sigemptyset(&drain);
  sigaddset(&drain, SIGTERM);
  sigaddset(&drain, SIGINT);
  pthread_sigmask(SIG_BLOCK, &drain, &old_mask_);

  // No-op SIGUSR1 without SA_RESTART: delivery makes a blocking read
  // fail with EINTR instead of transparently resuming, so the reader
  // loop gets a chance to observe the stop flag.
  struct sigaction wake {};
  wake.sa_handler = &WakeReaderHandler;
  sigemptyset(&wake.sa_mask);
  wake.sa_flags = 0;  // deliberately NOT SA_RESTART
  sigaction(SIGUSR1, &wake, &old_usr1_);

  watcher_ = std::thread([this] { WatchLoop(); });
}

GracefulShutdown::~GracefulShutdown() {
  stop_.store(true);
  if (watcher_.joinable()) watcher_.join();
  sigaction(SIGUSR1, &old_usr1_, nullptr);
  pthread_sigmask(SIG_SETMASK, &old_mask_, nullptr);
}

void GracefulShutdown::WatchLoop() {
  sigset_t drain;
  sigemptyset(&drain);
  sigaddset(&drain, SIGTERM);
  sigaddset(&drain, SIGINT);
  // 100ms slices so destruction (stop_) is observed promptly without
  // burning CPU; a delivered signal cuts the wait short immediately.
  struct timespec slice;
  slice.tv_sec = 0;
  slice.tv_nsec = 100 * 1000 * 1000;
  while (!stop_.load()) {
    const int sig = sigtimedwait(&drain, nullptr, &slice);
    if (sig <= 0) continue;  // timeout (EAGAIN) or EINTR — keep waiting
    int expected = 0;
    if (signal_number_.compare_exchange_strong(expected, sig)) {
      if (on_signal_) on_signal_();
      // EINTR the main thread's blocking getline so the reader loop can
      // re-check the stop flag and fall through to the drain path.
      pthread_kill(main_thread_, SIGUSR1);
    }
    // Keep watching: a second signal is harmless (drain already under
    // way), and swallowing it here prevents the default disposition
    // from ever killing the process mid-drain.
  }
}

}  // namespace goggles::serve
