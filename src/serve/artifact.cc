#include "serve/artifact.h"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/binary_io.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace goggles::serve {
namespace {

using io::BufferReader;
using io::BufferWriter;

constexpr char kMagic[4] = {'G', 'G', 'S', 'A'};

/// Section tags. Unknown tags are skipped on load (see artifact.h).
enum SectionTag : uint32_t {
  kMetaSection = 1,
  kSourceSection = 2,
  kBaseModelsSection = 3,
  kEnsembleSection = 4,
  kPoolLabelsSection = 5,
};

void WriteMatrix(BufferWriter* w, const Matrix& m) {
  w->Pod(static_cast<int64_t>(m.rows()));
  w->Pod(static_cast<int64_t>(m.cols()));
  w->Bytes(m.data(), static_cast<size_t>(m.size()) * sizeof(double));
}

bool ReadMatrix(BufferReader* r, Matrix* out) {
  int64_t rows = 0, cols = 0;
  if (!r->Pod(&rows) || !r->Pod(&cols)) return false;
  if (rows < 0 || cols < 0) return false;
  const uint64_t elems = static_cast<uint64_t>(rows) *
                         static_cast<uint64_t>(cols);
  if (rows != 0 && elems / static_cast<uint64_t>(rows) !=
                       static_cast<uint64_t>(cols)) {
    return false;  // rows*cols overflowed (corrupted header)
  }
  if (elems > r->remaining() / sizeof(double)) return false;
  *out = Matrix(rows, cols);
  return r->Bytes(out->data(), static_cast<size_t>(elems) * sizeof(double));
}

void WriteIntVec(BufferWriter* w, const std::vector<int>& v) {
  w->Pod(static_cast<uint64_t>(v.size()));
  w->Bytes(v.data(), v.size() * sizeof(int));
}

bool ReadIntVec(BufferReader* r, std::vector<int>* out) {
  uint64_t n = 0;
  if (!r->Pod(&n)) return false;
  if (n > r->remaining() / sizeof(int)) return false;
  out->resize(static_cast<size_t>(n));
  return r->Bytes(out->data(), static_cast<size_t>(n) * sizeof(int));
}

void WriteDoubleVec(BufferWriter* w, const std::vector<double>& v) {
  w->Pod(static_cast<uint64_t>(v.size()));
  w->Bytes(v.data(), v.size() * sizeof(double));
}

bool ReadDoubleVec(BufferReader* r, std::vector<double>* out) {
  uint64_t n = 0;
  if (!r->Pod(&n)) return false;
  if (n > r->remaining() / sizeof(double)) return false;
  out->resize(static_cast<size_t>(n));
  return r->Bytes(out->data(), static_cast<size_t>(n) * sizeof(double));
}

void WriteFloatVec(BufferWriter* w, const std::vector<float>& v) {
  w->Pod(static_cast<uint64_t>(v.size()));
  w->Bytes(v.data(), v.size() * sizeof(float));
}

bool ReadFloatVec(BufferReader* r, std::vector<float>* out) {
  uint64_t n = 0;
  if (!r->Pod(&n)) return false;
  if (n > r->remaining() / sizeof(float)) return false;
  out->resize(static_cast<size_t>(n));
  return r->Bytes(out->data(), static_cast<size_t>(n) * sizeof(float));
}

/// A stored cluster->class mapping must be a permutation of [0, K):
/// ApplyMapping indexes columns with its entries, so out-of-range values
/// in a crafted/corrupted artifact would be out-of-bounds writes.
bool IsValidMapping(const std::vector<int>& mapping, int num_classes) {
  if (static_cast<int64_t>(mapping.size()) != num_classes) return false;
  std::vector<bool> seen(static_cast<size_t>(num_classes), false);
  for (int target : mapping) {
    if (target < 0 || target >= num_classes ||
        seen[static_cast<size_t>(target)]) {
      return false;
    }
    seen[static_cast<size_t>(target)] = true;
  }
  return true;
}

// ---- Section payload builders ---------------------------------------------

std::string BuildMetaPayload(int top_z, int num_layers,
                             uint64_t pool_fingerprint,
                             const FittedHierarchicalModel& model) {
  BufferWriter w;
  w.Pod(static_cast<int32_t>(model.num_classes));
  w.Pod(static_cast<int64_t>(model.pool_size));
  w.Pod(static_cast<int64_t>(model.num_functions()));
  w.Pod(static_cast<int32_t>(top_z));
  w.Pod(static_cast<int32_t>(num_layers));
  w.Pod(pool_fingerprint);
  w.Pod(static_cast<uint8_t>(model.one_hot_lp ? 1 : 0));
  w.Pod(static_cast<uint8_t>(model.use_ensemble ? 1 : 0));
  return w.buffer();
}

Status ParseMetaPayload(const std::string& payload, Artifact* a,
                        int64_t* alpha) {
  BufferReader r(payload);
  int32_t num_classes = 0, top_z = 0, num_layers = 0;
  int64_t pool_size = 0;
  uint8_t one_hot = 1, use_ensemble = 1;
  if (!r.Pod(&num_classes) || !r.Pod(&pool_size) || !r.Pod(alpha) ||
      !r.Pod(&top_z) || !r.Pod(&num_layers) || !r.Pod(&a->pool_fingerprint) ||
      !r.Pod(&one_hot) || !r.Pod(&use_ensemble)) {
    return Status::IOError("Artifact: truncated meta section");
  }
  if (num_classes < 1 || pool_size < 1 || *alpha < 1 || top_z < 1 ||
      num_layers < 1) {
    return Status::IOError("Artifact: meta section carries invalid sizes");
  }
  if (!r.AtEnd()) {
    return Status::IOError("Artifact: meta section carries extra bytes");
  }
  a->model.num_classes = num_classes;
  a->model.pool_size = pool_size;
  a->model.one_hot_lp = one_hot != 0;
  a->model.use_ensemble = use_ensemble != 0;
  a->top_z = top_z;
  a->num_layers = num_layers;
  return Status::OK();
}

std::string BuildSourcePayload(
    const std::vector<PrototypeAffinitySource::LayerData>& source_layers) {
  BufferWriter w;
  w.Pod(static_cast<uint32_t>(source_layers.size()));
  for (const auto& layer : source_layers) {
    w.Pod(static_cast<int32_t>(layer.channels));
    w.Pod(static_cast<int32_t>(layer.area));
    w.Pod(static_cast<uint64_t>(layer.prototypes.size()));
    for (size_t i = 0; i < layer.prototypes.size(); ++i) {
      w.Pod(static_cast<int32_t>(layer.num_prototypes[i]));
      WriteFloatVec(&w, layer.prototypes[i]);
      WriteFloatVec(&w, layer.positions[i]);
    }
  }
  return w.buffer();
}

Status ParseSourcePayload(const std::string& payload, int64_t pool_size,
                          Artifact* a) {
  BufferReader r(payload);
  uint32_t num_layers = 0;
  if (!r.Pod(&num_layers)) {
    return Status::IOError("Artifact: truncated source section");
  }
  if (static_cast<int>(num_layers) != a->num_layers) {
    return Status::IOError("Artifact: source layer count disagrees with meta");
  }
  a->source_layers.resize(num_layers);
  for (auto& layer : a->source_layers) {
    int32_t channels = 0, area = 0;
    uint64_t num_images = 0;
    if (!r.Pod(&channels) || !r.Pod(&area) || !r.Pod(&num_images)) {
      return Status::IOError("Artifact: truncated source layer header");
    }
    if (channels < 1 || area < 1 ||
        num_images != static_cast<uint64_t>(pool_size)) {
      return Status::IOError("Artifact: source layer shape is invalid");
    }
    layer.channels = channels;
    layer.area = area;
    layer.prototypes.resize(static_cast<size_t>(num_images));
    layer.positions.resize(static_cast<size_t>(num_images));
    layer.num_prototypes.resize(static_cast<size_t>(num_images));
    for (size_t i = 0; i < num_images; ++i) {
      int32_t num_protos = 0;
      if (!r.Pod(&num_protos) || num_protos < 0 ||
          !ReadFloatVec(&r, &layer.prototypes[i]) ||
          !ReadFloatVec(&r, &layer.positions[i])) {
        return Status::IOError("Artifact: truncated source image cache");
      }
      if (layer.prototypes[i].size() !=
              static_cast<size_t>(num_protos) * static_cast<size_t>(channels) ||
          layer.positions[i].size() !=
              static_cast<size_t>(area) * static_cast<size_t>(channels)) {
        return Status::IOError("Artifact: source cache sizes are inconsistent");
      }
      layer.num_prototypes[i] = num_protos;
    }
  }
  if (!r.AtEnd()) {
    return Status::IOError("Artifact: source section carries extra bytes");
  }
  return Status::OK();
}

std::string BuildBaseModelsPayload(const FittedHierarchicalModel& model) {
  BufferWriter w;
  w.Pod(static_cast<uint64_t>(model.base_models.size()));
  for (size_t f = 0; f < model.base_models.size(); ++f) {
    const DiagonalGmm& gmm = model.base_models[f];
    WriteMatrix(&w, gmm.means());
    WriteMatrix(&w, gmm.variances());
    WriteDoubleVec(&w, gmm.weights());
    WriteIntVec(&w, model.base_mappings[f]);
  }
  return w.buffer();
}

Status ParseBaseModelsPayload(const std::string& payload, int64_t alpha,
                              Artifact* a) {
  BufferReader r(payload);
  uint64_t count = 0;
  if (!r.Pod(&count) || count != static_cast<uint64_t>(alpha)) {
    return Status::IOError(
        "Artifact: base-model count disagrees with the meta section");
  }
  a->model.base_models.resize(static_cast<size_t>(count));
  a->model.base_mappings.resize(static_cast<size_t>(count));
  for (size_t f = 0; f < count; ++f) {
    Matrix means, variances;
    std::vector<double> weights;
    std::vector<int> mapping;
    if (!ReadMatrix(&r, &means) || !ReadMatrix(&r, &variances) ||
        !ReadDoubleVec(&r, &weights) || !ReadIntVec(&r, &mapping)) {
      return Status::IOError("Artifact: truncated base-model section");
    }
    if (means.rows() != a->model.num_classes ||
        means.cols() != a->model.pool_size ||
        !IsValidMapping(mapping, a->model.num_classes)) {
      return Status::IOError("Artifact: base-model shapes are inconsistent");
    }
    GOGGLES_RETURN_NOT_OK(a->model.base_models[f].SetParameters(
        std::move(means), std::move(variances), std::move(weights)));
    a->model.base_mappings[f] = std::move(mapping);
  }
  if (!r.AtEnd()) {
    return Status::IOError("Artifact: base-model section carries extra bytes");
  }
  return Status::OK();
}

std::string BuildEnsemblePayload(const FittedHierarchicalModel& model) {
  BufferWriter w;
  WriteMatrix(&w, model.ensemble.bernoulli_params());
  WriteDoubleVec(&w, model.ensemble.weights());
  WriteIntVec(&w, model.ensemble_mapping);
  w.Pod(model.ensemble.final_log_likelihood());
  return w.buffer();
}

Status ParseEnsemblePayload(const std::string& payload, Artifact* a) {
  BufferReader r(payload);
  Matrix params;
  std::vector<double> weights;
  std::vector<int> mapping;
  double final_ll = 0.0;
  if (!ReadMatrix(&r, &params) || !ReadDoubleVec(&r, &weights) ||
      !ReadIntVec(&r, &mapping) || !r.Pod(&final_ll)) {
    return Status::IOError("Artifact: truncated ensemble section");
  }
  if (!r.AtEnd()) {
    return Status::IOError("Artifact: ensemble section carries extra bytes");
  }
  if (params.rows() != a->model.num_classes ||
      !IsValidMapping(mapping, a->model.num_classes)) {
    return Status::IOError("Artifact: ensemble shapes are inconsistent");
  }
  GOGGLES_RETURN_NOT_OK(a->model.ensemble.SetParameters(
      std::move(params), std::move(weights), final_ll));
  a->model.ensemble_mapping = std::move(mapping);
  return Status::OK();
}

std::string BuildPoolLabelsPayload(const Matrix& pool_soft_labels,
                                   const std::vector<int>& pool_hard_labels) {
  BufferWriter w;
  WriteMatrix(&w, pool_soft_labels);
  WriteIntVec(&w, pool_hard_labels);
  return w.buffer();
}

Status ParsePoolLabelsPayload(const std::string& payload, Artifact* a) {
  BufferReader r(payload);
  if (!ReadMatrix(&r, &a->pool_soft_labels) ||
      !ReadIntVec(&r, &a->pool_hard_labels)) {
    return Status::IOError("Artifact: truncated pool-labels section");
  }
  if (a->pool_soft_labels.rows() != a->model.pool_size ||
      a->pool_soft_labels.cols() != a->model.num_classes ||
      static_cast<int64_t>(a->pool_hard_labels.size()) !=
          a->model.pool_size) {
    return Status::IOError(
        "Artifact: pool-labels shapes disagree with the meta section");
  }
  for (int label : a->pool_hard_labels) {
    if (label < 0 || label >= a->model.num_classes) {
      return Status::IOError("Artifact: pool hard label out of range");
    }
  }
  if (!r.AtEnd()) {
    return Status::IOError("Artifact: pool-labels section carries extra bytes");
  }
  return Status::OK();
}

void WriteSection(std::ostream& out, uint32_t tag, const std::string& payload) {
  io::WritePod(out, tag);
  io::WritePod(out, static_cast<uint64_t>(payload.size()));
  io::WritePod(out, io::Crc32(payload.data(), payload.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

/// Serializes a full artifact into one byte string (header + sections).
Result<std::string> BuildArtifactBytes(
    int top_z, int num_layers, uint64_t pool_fingerprint,
    const FittedHierarchicalModel& model,
    const std::vector<PrototypeAffinitySource::LayerData>& source_layers,
    const Matrix& pool_soft_labels,
    const std::vector<int>& pool_hard_labels) {
  if (!model.fitted()) {
    return Status::InvalidArgument("Artifact::Save: model is not fitted");
  }
  if (static_cast<int>(source_layers.size()) != num_layers) {
    return Status::InvalidArgument(
        "Artifact::Save: source layer count disagrees with num_layers");
  }
  std::ostringstream out(std::ios::binary);
  out.write(kMagic, sizeof(kMagic));
  io::WritePod(out, Artifact::kFormatVersion);
  const uint32_t section_count = model.use_ensemble ? 5 : 4;
  io::WritePod(out, section_count);
  WriteSection(out, kMetaSection,
               BuildMetaPayload(top_z, num_layers, pool_fingerprint, model));
  WriteSection(out, kSourceSection, BuildSourcePayload(source_layers));
  WriteSection(out, kBaseModelsSection, BuildBaseModelsPayload(model));
  if (model.use_ensemble) {
    WriteSection(out, kEnsembleSection, BuildEnsemblePayload(model));
  }
  WriteSection(out, kPoolLabelsSection,
               BuildPoolLabelsPayload(pool_soft_labels, pool_hard_labels));
  return std::move(out).str();
}

/// Writes `bytes` to `path`. The partial-write failpoint clamps the byte
/// count to simulate a torn write (crash / full disk mid-save).
Status WriteArtifactBytes(const std::string& path, const std::string& bytes) {
  GOGGLES_FAILPOINT_RETURN("artifact.save.open");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("Artifact::Save: cannot open " + path);
  }
  size_t write_bytes = bytes.size();
  GOGGLES_FAILPOINT_CLAMP("artifact.save.partial", write_bytes);
  out.write(bytes.data(), static_cast<std::streamsize>(write_bytes));
  out.flush();
  if (!out.good()) {
    return Status::IOError("Artifact::Save: write failed for " + path);
  }
  return Status::OK();
}

/// fsyncs `path`'s data to stable storage (best effort — not all
/// filesystems support it; errors other than open failures are ignored
/// the way most databases treat directory fsync).
void BestEffortFsync(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

}  // namespace

Status SaveArtifactFile(
    const std::string& path, int top_z, int num_layers,
    uint64_t pool_fingerprint, const FittedHierarchicalModel& model,
    const std::vector<PrototypeAffinitySource::LayerData>& source_layers,
    const Matrix& pool_soft_labels,
    const std::vector<int>& pool_hard_labels) {
  GOGGLES_ASSIGN_OR_RETURN(
      std::string bytes,
      BuildArtifactBytes(top_z, num_layers, pool_fingerprint, model,
                         source_layers, pool_soft_labels, pool_hard_labels));
  return WriteArtifactBytes(path, bytes);
}

Status SaveArtifactFileAtomic(
    const std::string& path, int top_z, int num_layers,
    uint64_t pool_fingerprint, const FittedHierarchicalModel& model,
    const std::vector<PrototypeAffinitySource::LayerData>& source_layers,
    const Matrix& pool_soft_labels,
    const std::vector<int>& pool_hard_labels) {
  GOGGLES_ASSIGN_OR_RETURN(
      std::string bytes,
      BuildArtifactBytes(top_z, num_layers, pool_fingerprint, model,
                         source_layers, pool_soft_labels, pool_hard_labels));
  const std::string tmp = ArtifactTempPath(path);
  Status write_status = WriteArtifactBytes(tmp, bytes);
  if (!write_status.ok()) {
    (void)std::remove(tmp.c_str());
    return write_status;
  }
  // The temp file's bytes must be durable before the rename makes them
  // reachable — otherwise a power loss could publish a name pointing at
  // unwritten data.
  BestEffortFsync(tmp);
  // Crash-safety probe: a crash here (after the temp write, before the
  // rename) must leave `path` untouched and only the temp to reap.
  GOGGLES_FAILPOINT("artifact.publish.rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    return Status::IOError("Artifact::SaveAtomic: rename to " + path +
                           " failed");
  }
  // Make the rename itself durable (directory entry update).
  size_t slash = path.find_last_of('/');
  BestEffortFsync(slash == std::string::npos ? "." : path.substr(0, slash));
  return Status::OK();
}

std::string ArtifactTempPath(const std::string& path) {
  return path + ".tmp-" + std::to_string(static_cast<long>(::getpid()));
}

bool IsArtifactTempFilename(const std::string& filename) {
  const std::string infix = ".tmp-";
  size_t pos = filename.rfind(infix);
  if (pos == std::string::npos) return false;
  size_t digits = pos + infix.size();
  if (digits == filename.size()) return false;
  for (size_t i = digits; i < filename.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(filename[i]))) return false;
  }
  return true;
}

Status Artifact::Save(const std::string& path) const {
  return SaveArtifactFile(path, top_z, num_layers, pool_fingerprint, model,
                          source_layers, pool_soft_labels, pool_hard_labels);
}

Status Artifact::SaveAtomic(const std::string& path) const {
  return SaveArtifactFileAtomic(path, top_z, num_layers, pool_fingerprint,
                                model, source_layers, pool_soft_labels,
                                pool_hard_labels);
}

Result<Artifact> Artifact::Load(const std::string& path) {
  // Chaos sites: slow-disk stall, then transient open/read failure.
  GOGGLES_FAILPOINT("artifact.load.slow");
  GOGGLES_FAILPOINT_RETURN("artifact.load.open");
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("Artifact::Load: cannot open " + path);
  }
  in.seekg(0, std::ios::end);
  const std::streamoff file_size = in.tellg();
  in.seekg(0, std::ios::beg);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::string(magic, 4) != std::string(kMagic, 4)) {
    return Status::IOError("Artifact::Load: bad magic (not a GGSA artifact)");
  }
  uint32_t version = 0;
  if (!io::ReadPod(in, &version)) {
    return Status::IOError("Artifact::Load: truncated header");
  }
  if (version != kFormatVersion) {
    return Status::IOError(StrFormat(
        "Artifact::Load: unsupported format version %u (supported: %u)",
        version, kFormatVersion));
  }
  uint32_t section_count = 0;
  if (!io::ReadPod(in, &section_count) || section_count == 0 ||
      section_count > 1024) {
    return Status::IOError("Artifact::Load: invalid section count");
  }

  // Read + CRC-check every section before interpreting any payload.
  std::vector<std::pair<uint32_t, std::string>> sections;
  sections.reserve(section_count);
  for (uint32_t s = 0; s < section_count; ++s) {
    uint32_t tag = 0, crc = 0;
    uint64_t size = 0;
    if (!io::ReadPod(in, &tag) || !io::ReadPod(in, &size) ||
        !io::ReadPod(in, &crc)) {
      return Status::IOError("Artifact::Load: truncated section header");
    }
    // Section headers sit outside the CRC-protected payloads: validate
    // the size field against the bytes actually left in the file before
    // allocating (a corrupted size would otherwise throw bad_alloc).
    const std::streamoff pos = in.tellg();
    if (pos < 0 ||
        size > static_cast<uint64_t>(file_size - pos)) {
      return Status::IOError(StrFormat(
          "Artifact::Load: section %u claims %llu bytes but only %lld "
          "remain",
          tag, static_cast<unsigned long long>(size),
          static_cast<long long>(file_size - (pos < 0 ? 0 : pos))));
    }
    std::string payload(static_cast<size_t>(size), '\0');
    in.read(payload.data(), static_cast<std::streamsize>(size));
    if (in.gcount() != static_cast<std::streamsize>(size)) {
      return Status::IOError(
          StrFormat("Artifact::Load: truncated section %u payload", tag));
    }
    // Simulates a checksum failure / bit rot on the read path.
    GOGGLES_FAILPOINT_RETURN("artifact.load.crc");
    const uint32_t actual = io::Crc32(payload.data(), payload.size());
    if (actual != crc) {
      return Status::IOError(StrFormat(
          "Artifact::Load: CRC mismatch in section %u (stored %08x, "
          "computed %08x)",
          tag, crc, actual));
    }
    sections.emplace_back(tag, std::move(payload));
  }
  // Oversized files are corruption too: a well-formed artifact ends at
  // the last section's last payload byte (e.g. a partially overwritten
  // longer artifact would otherwise pass every per-section CRC).
  if (in.peek() != std::char_traits<char>::eof()) {
    return Status::IOError(
        "Artifact::Load: trailing bytes after the last section");
  }

  auto find_section = [&sections](uint32_t tag) -> const std::string* {
    for (const auto& [t, payload] : sections) {
      if (t == tag) return &payload;
    }
    return nullptr;
  };

  Artifact artifact;
  int64_t alpha = 0;
  const std::string* meta = find_section(kMetaSection);
  if (meta == nullptr) {
    return Status::IOError("Artifact::Load: missing meta section");
  }
  GOGGLES_RETURN_NOT_OK(ParseMetaPayload(*meta, &artifact, &alpha));

  const std::string* source = find_section(kSourceSection);
  if (source == nullptr) {
    return Status::IOError("Artifact::Load: missing source section");
  }
  GOGGLES_RETURN_NOT_OK(
      ParseSourcePayload(*source, artifact.model.pool_size, &artifact));

  const std::string* base = find_section(kBaseModelsSection);
  if (base == nullptr) {
    return Status::IOError("Artifact::Load: missing base-models section");
  }
  GOGGLES_RETURN_NOT_OK(ParseBaseModelsPayload(*base, alpha, &artifact));

  if (artifact.model.use_ensemble) {
    const std::string* ensemble = find_section(kEnsembleSection);
    if (ensemble == nullptr) {
      return Status::IOError("Artifact::Load: missing ensemble section");
    }
    GOGGLES_RETURN_NOT_OK(ParseEnsemblePayload(*ensemble, &artifact));
  }

  if (const std::string* labels = find_section(kPoolLabelsSection)) {
    GOGGLES_RETURN_NOT_OK(ParsePoolLabelsPayload(*labels, &artifact));
  }
  return artifact;
}

}  // namespace goggles::serve
