#include "serve/coalescer.h"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace goggles::serve {

Coalescer::Coalescer(CoalescerConfig config, Clock* clock)
    : config_(config),
      clock_(clock != nullptr ? clock : SteadyClockInstance()) {
  if (config_.max_batch < 1) config_.max_batch = 1;
  if (config_.window_micros < 0) config_.window_micros = 0;
}

uint64_t HashImageContent(const data::Image& image) {
  uint64_t hash = 1469598103934665603ull;
  auto mix_bytes = [&hash](const void* data, size_t bytes) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < bytes; ++i) {
      hash ^= p[i];
      hash *= 1099511628211ull;
    }
  };
  const int dims[3] = {image.channels, image.height, image.width};
  mix_bytes(dims, sizeof(dims));
  mix_bytes(image.pixels.data(), image.pixels.size() * sizeof(float));
  return hash;
}

bool SamePixels(const data::Image& a, const data::Image& b) {
  return a.channels == b.channels && a.height == b.height &&
         a.width == b.width &&
         std::memcmp(a.pixels.data(), b.pixels.data(),
                     a.pixels.size() * sizeof(float)) == 0;
}

void Coalescer::Execute(const std::shared_ptr<const Session>& session,
                        const std::shared_ptr<Batch>& batch) {
  const size_t n = batch->images.size();
  batches_.fetch_add(1);
  if (n > 1) coalesced_.fetch_add(n);
  uint64_t seen = max_batch_size_.load();
  while (n > seen && !max_batch_size_.compare_exchange_weak(seen, n)) {
  }

  // Duplicate requests in one window (hot content hitting the gateway
  // concurrently) are scored once: labeling is deterministic, so every
  // holder of the same pixels gets the same — still bit-identical —
  // response. This is a win only coalescing can unlock: a singleton
  // request can't see its concurrent twins.
  std::vector<size_t> unique_of(n, 0);
  std::vector<size_t> unique_slots;  // index of each group's first request
  std::vector<uint64_t> hashes;
  unique_slots.reserve(n);
  hashes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t hash = HashImageContent(*batch->images[i]);
    size_t group = unique_slots.size();
    for (size_t u = 0; u < unique_slots.size(); ++u) {
      if (hashes[u] == hash &&
          SamePixels(*batch->images[unique_slots[u]], *batch->images[i])) {
        group = u;
        break;
      }
    }
    if (group == unique_slots.size()) {
      unique_slots.push_back(i);
      hashes.push_back(hash);
    }
    unique_of[i] = group;
  }
  deduped_.fetch_add(n - unique_slots.size());

  Status status = Status::OK();
  if (unique_slots.size() == 1) {
    Result<OnlineLabel> one = session->LabelOne(*batch->images[0]);
    if (one.ok()) {
      for (size_t i = 0; i < n; ++i) *batch->outputs[i] = *one;
    } else {
      status = one.status();
    }
  } else {
    // One batched call for the whole window: batched extraction + one
    // GEMM per pool layer, bit-identical per row to singleton calls.
    std::vector<data::Image> images;
    images.reserve(unique_slots.size());
    for (size_t slot : unique_slots) images.push_back(*batch->images[slot]);
    Result<LabelingResult> result = session->LabelBatch(images);
    if (result.ok()) {
      for (size_t i = 0; i < n; ++i) {
        const int64_t row = static_cast<int64_t>(unique_of[i]);
        batch->outputs[i]->soft = result->soft_labels.Row(row);
        batch->outputs[i]->hard = result->hard_labels[unique_of[i]];
      }
    } else {
      status = result.status();
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    batch->status = status;
    batch->finished = true;
  }
  batch->cv.notify_all();
}

Result<OnlineLabel> Coalescer::Label(
    const std::shared_ptr<const Session>& session, const data::Image& image) {
  if (session == nullptr) {
    return Status::InvalidArgument("Coalescer::Label: session is null");
  }
  if (!config_.enabled || config_.max_batch <= 1) {
    return session->LabelOne(image);
  }
  requests_.fetch_add(1);

  const BatchKey key{session.get(), image.channels, image.height, image.width};
  OnlineLabel my_label;
  std::shared_ptr<Batch> batch;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = open_.find(key);
    if (it != open_.end() && !it->second->closed &&
        static_cast<int>(it->second->images.size()) < config_.max_batch) {
      // Join the forming batch as a follower: the leader scores it and
      // fills this request's slot.
      batch = it->second;
      batch->images.push_back(&image);
      batch->outputs.push_back(&my_label);
      if (static_cast<int>(batch->images.size()) >= config_.max_batch) {
        batch->cv.notify_all();  // wake the leader early — batch is full
      }
      batch->cv.wait(lock, [&] { return batch->finished; });
      if (!batch->status.ok()) return batch->status;
      return my_label;
    }

    // Open a new batch and lead it: wait out the coalescing window (or
    // until full), then take the batch out of the open set so later
    // arrivals start the next one.
    batch = std::make_shared<Batch>();
    batch->images.push_back(&image);
    batch->outputs.push_back(&my_label);
    open_[key] = batch;
    const int64_t deadline = clock_->NowMicros() + config_.window_micros;
    clock_->WaitUntil(batch->cv, lock, deadline, [&] {
      return static_cast<int>(batch->images.size()) >= config_.max_batch;
    });
    batch->closed = true;
    auto current = open_.find(key);
    if (current != open_.end() && current->second == batch) {
      open_.erase(current);
    }
  }

  Execute(session, batch);
  if (!batch->status.ok()) return batch->status;
  return my_label;
}

CoalescerStats Coalescer::stats() const {
  CoalescerStats stats;
  stats.requests = requests_.load();
  stats.batches = batches_.load();
  stats.coalesced = coalesced_.load();
  stats.deduped = deduped_.load();
  stats.max_batch_size = max_batch_size_.load();
  return stats;
}

}  // namespace goggles::serve
