#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "goggles/affinity.h"
#include "goggles/hierarchical.h"
#include "linalg/matrix.h"
#include "util/status.h"

/// \file artifact.h
/// \brief Persistent labeling artifacts: the versioned binary format that
/// captures one fitted labeling session so it can be served without
/// refitting.
///
/// An artifact bundles (1) the prototype/position caches of the prepared
/// pool (`PrototypeAffinitySource::LayerData`), (2) every fitted base GMM
/// and the Bernoulli ensemble with their development-set cluster-to-class
/// mappings (`FittedHierarchicalModel`), and (3) the pool's probabilistic
/// labels.
///
/// ## On-disk format (version 1)
///
/// ```
/// magic "GGSA" | u32 version | u32 section_count
/// per section: u32 tag | u64 payload_bytes | u32 crc32(payload) | payload
/// ```
///
/// Sections are CRC-32 checked individually, so truncation and corruption
/// are detected before any payload is interpreted; bytes past the last
/// section (an oversized / partially overwritten file) are rejected too.
/// Versioning policy:
/// unknown section tags are skipped on load (forward-compatible additions);
/// a new `version` is only minted when an existing section's payload
/// layout changes (breaking), and loaders reject versions they don't know.

namespace goggles::serve {

/// \brief In-memory form of a persisted labeling session.
struct Artifact {
  /// The on-disk format version this build reads and writes.
  static constexpr uint32_t kFormatVersion = 1;

  /// Prototype library shape: Z prototypes per layer.
  int top_z = 0;
  /// The backbone's pool-layer count the artifact was fitted with.
  int num_layers = 0;
  /// Content fingerprint of the fitted pool (staleness detection).
  uint64_t pool_fingerprint = 0;

  /// Fitted inference stack (includes num_classes / pool_size / flags).
  FittedHierarchicalModel model;

  /// Prepared pool caches of the shared affinity source.
  std::vector<PrototypeAffinitySource::LayerData> source_layers;

  /// The pool's soft labels from the fitting run (serving stats / warm
  /// reads).
  Matrix pool_soft_labels;
  /// The pool's hard labels (argmax rows of pool_soft_labels).
  std::vector<int> pool_hard_labels;

  /// \brief Writes the artifact to `path` directly (no tmp-file dance —
  /// a crash mid-write leaves a torn file; prefer SaveAtomic for
  /// artifacts a live registry may be watching).
  Status Save(const std::string& path) const;

  /// \brief Crash-safe publish: writes to `ArtifactTempPath(path)`,
  /// fsyncs, then renames over `path`. A reader never observes a torn
  /// artifact — it sees the old bytes or the new bytes.
  Status SaveAtomic(const std::string& path) const;

  /// \brief Loads and validates an artifact. Corrupt input (bad magic,
  /// unsupported version, bad CRC, truncated sections) returns an error
  /// Status — never crashes.
  static Result<Artifact> Load(const std::string& path);
};

/// \brief Serializes a fitted session's state directly from the caller's
/// storage — no copying into an Artifact first (the source caches are
/// the dominant state; Session::Save streams them from its own members).
Status SaveArtifactFile(
    const std::string& path, int top_z, int num_layers,
    uint64_t pool_fingerprint, const FittedHierarchicalModel& model,
    const std::vector<PrototypeAffinitySource::LayerData>& source_layers,
    const Matrix& pool_soft_labels,
    const std::vector<int>& pool_hard_labels);

/// \brief Crash-safe variant of SaveArtifactFile: serializes to
/// `ArtifactTempPath(path)`, fsyncs the temp file, then renames it over
/// `path` (atomic on POSIX filesystems). A crash before the rename
/// leaves `path` untouched and at most one orphan temp file, which
/// SessionRegistry's recovery sweep reaps (see registry.h).
Status SaveArtifactFileAtomic(
    const std::string& path, int top_z, int num_layers,
    uint64_t pool_fingerprint, const FittedHierarchicalModel& model,
    const std::vector<PrototypeAffinitySource::LayerData>& source_layers,
    const Matrix& pool_soft_labels,
    const std::vector<int>& pool_hard_labels);

/// \brief The temp-file path SaveArtifactFileAtomic stages into:
/// `<path>.tmp-<pid>` (pid-suffixed so concurrent publishers from
/// different processes never collide).
std::string ArtifactTempPath(const std::string& path);

/// \brief True iff `filename` (no directory) matches the atomic-publish
/// staging pattern `*.tmp-<digits>` — i.e. it is reapable by the
/// registry's orphan sweep once it is old enough.
bool IsArtifactTempFilename(const std::string& filename);

}  // namespace goggles::serve
