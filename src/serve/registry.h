#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "features/extractor.h"
#include "serve/session.h"
#include "util/backoff.h"
#include "util/lru.h"
#include "util/status.h"

/// \file registry.h
/// \brief The multi-task session registry: hosts many fitted labeling
/// tasks in one `goggles_serve` process.
///
/// A *task* is a named `.ggsa` artifact inside a configured directory
/// (`<artifact_dir>/<task>.ggsa`). The registry loads tasks on demand the
/// first time a request routes to them, keeps them resident in an LRU
/// cache bounded by an approximate-memory budget, hot-reloads a task when
/// its artifact file changes on disk, and shares one lock-free
/// `features::FeatureExtractor` backbone across every resident session —
/// the per-task state is only the fitted artifact payload.
///
/// Eviction is *graceful by construction*: sessions are handed out as
/// `shared_ptr<const Session>`, so evicting (or unloading, or
/// hot-reloading) a task only drops the registry's reference. Requests
/// already holding the session finish against the old state and the
/// memory is reclaimed when the last in-flight request completes.

namespace goggles::serve {

/// \brief Registry tuning knobs.
struct RegistryConfig {
  /// Directory holding `<task>.ggsa` artifacts.
  std::string artifact_dir;
  /// Approximate-memory budget for resident sessions in bytes; least-
  /// recently-used tasks are evicted when the sum of
  /// `Session::ApproxMemoryBytes()` exceeds it. 0 = unlimited. A single
  /// session larger than the budget still loads (and is alone resident).
  uint64_t memory_budget_bytes = 0;
  /// Maximum number of resident tasks. 0 = unlimited.
  size_t max_resident_tasks = 0;
  /// Re-stat the artifact file on every Acquire() and reload the session
  /// when the file's (mtime, size) signature changed since it was loaded.
  bool hot_reload = true;
  /// Retry policy for transient artifact-load failures (I/O errors and
  /// loads that raced a concurrent publish). NotFound / corrupt-format
  /// errors are not retried. `max_attempts <= 1` disables retries.
  BackoffPolicy load_retry;
  /// Minimum age before an orphaned atomic-publish temp file
  /// (`*.ggsa.tmp-<pid>`, see artifact.h) is reaped by
  /// ReapOrphanTemps(); younger temps may belong to a live publish.
  int64_t temp_reap_age_micros = 60 * 1000 * 1000;
};

/// \brief One row of SessionRegistry::ListTasks().
struct TaskInfo {
  std::string task;        ///< task name (artifact basename without .ggsa)
  bool resident = false;   ///< currently loaded in the registry
  bool on_disk = false;    ///< artifact file present in the directory
  int64_t pool_size = 0;   ///< fitted pool size (resident tasks only)
  int num_classes = 0;     ///< number of classes (resident tasks only)
  int64_t num_functions = 0;  ///< affinity-function count (resident only)
  uint64_t approx_bytes = 0;  ///< ApproxMemoryBytes() (resident tasks only)
};

/// \brief Registry counters (monotonic over the process lifetime).
struct RegistryStats {
  uint64_t hits = 0;        ///< Acquire() served from the resident cache
  uint64_t loads = 0;       ///< artifact loads (cold misses + reloads)
  uint64_t reloads = 0;     ///< hot reloads triggered by a changed file
  uint64_t evictions = 0;   ///< sessions evicted by the LRU budget
  uint64_t load_failures = 0;  ///< artifact loads that returned an error
  uint64_t load_retries = 0;   ///< backoff retries of transient failures
  uint64_t torn_loads_rejected = 0;  ///< loads discarded because the file
                                     ///< changed mid-load (publish race)
  uint64_t temps_reaped = 0;   ///< orphan publish temps removed by sweeps
  size_t resident_tasks = 0;   ///< currently resident sessions
  uint64_t resident_bytes = 0;  ///< sum of resident ApproxMemoryBytes()
};

/// \brief Hosts many fitted tasks behind one shared backbone.
///
/// Thread-safe: any number of threads may Acquire/Load/Unload/ListTasks
/// concurrently. Artifact loads run *outside* the registry lock — two
/// requests for the same cold task coalesce into a single load while
/// requests for other (resident) tasks proceed unblocked.
class SessionRegistry {
 public:
  /// \param extractor the shared backbone every loaded session scores
  ///        through; must outlive the registry.
  /// \param config    directory, budget, and reload policy.
  SessionRegistry(std::shared_ptr<features::FeatureExtractor> extractor,
                  RegistryConfig config);

  /// \brief Resolves a task name to its fitted session, loading the
  /// artifact on a cold miss and hot-reloading when the file changed (if
  /// enabled). The returned shared_ptr stays valid across later
  /// evictions/unloads/reloads of the task. Hot reloads are
  /// opportunistic: when the changed file fails to load (torn write,
  /// corruption), the resident session keeps serving and the reload is
  /// retried on the next Acquire; only cold loads propagate errors.
  Result<std::shared_ptr<const Session>> Acquire(const std::string& task);

  /// \brief Forces a (re)load of `task` from its artifact file, replacing
  /// any resident session. Requests holding the old session drain
  /// against it.
  Result<std::shared_ptr<const Session>> Load(const std::string& task);

  /// \brief Drops the resident session of `task`, if any. In-flight
  /// requests drain; the artifact file is untouched (the task cold-loads
  /// again on the next Acquire).
  /// \return NotFound when the task is not resident.
  Status Unload(const std::string& task);

  /// \brief Lists every known task: resident sessions (with shape and
  /// memory info, most-recently-used first) plus `.ggsa` artifacts found
  /// in the directory that are not currently loaded.
  std::vector<TaskInfo> ListTasks() const;

  /// \brief Snapshot of the registry counters.
  RegistryStats stats() const;

  /// \brief Task names map to files, so they must be clean path
  /// components: non-empty, at most 255 bytes, no '/', '\\', NUL, and not
  /// "." or "..".
  static bool IsValidTaskName(const std::string& task);

  /// \brief The artifact path a task name resolves to
  /// (`<artifact_dir>/<task>.ggsa`).
  std::string ArtifactPath(const std::string& task) const;

  /// \brief Crash-recovery sweep: deletes orphaned atomic-publish temp
  /// files (`*.ggsa.tmp-<pid>`) in the artifact directory older than
  /// `config.temp_reap_age_micros` — debris of publishers that crashed
  /// between the temp write and the rename. Runs automatically at
  /// construction and from ListTasks(); callable directly for tests and
  /// maintenance. Returns the number of files removed. (const: touches
  /// the directory, not registry state beyond a counter.)
  size_t ReapOrphanTemps() const;

  /// \brief The configured artifact directory.
  const std::string& artifact_dir() const { return config_.artifact_dir; }

 private:
  /// (mtime, size) signature of an artifact file, for hot-reload checks.
  struct FileSignature {
    int64_t mtime_ns = 0;
    uint64_t size = 0;
    bool operator==(const FileSignature& other) const {
      return mtime_ns == other.mtime_ns && size == other.size;
    }
  };

  /// One resident task.
  struct Entry {
    std::shared_ptr<const Session> session;
    FileSignature signature;
  };

  /// Stats the artifact file; false when it cannot be statted.
  static bool StatArtifact(const std::string& path, FileSignature* out);

  /// Loads the artifact (outside the lock) and installs it under the
  /// lock, evicting LRU tasks past the budget. Callers must NOT hold
  /// `mu_` and must have registered `task` in `loading_`.
  Result<std::shared_ptr<const Session>> LoadAndInstall(
      const std::string& task);

  /// Blocks until no other thread is loading `task`, then registers the
  /// caller as its loader. Returns the resident entry instead if one
  /// appeared while waiting (nullptr session when the caller must load).
  std::shared_ptr<const Session> BeginLoadOrWait(const std::string& task);

  std::shared_ptr<features::FeatureExtractor> extractor_;
  RegistryConfig config_;

  mutable std::mutex mu_;
  std::condition_variable load_done_;
  LruCache<std::string, Entry> cache_;
  std::set<std::string> loading_;  ///< tasks with an in-flight load

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> loads_{0};
  mutable std::atomic<uint64_t> reloads_{0};
  mutable std::atomic<uint64_t> evictions_{0};
  mutable std::atomic<uint64_t> load_failures_{0};
  mutable std::atomic<uint64_t> load_retries_{0};
  mutable std::atomic<uint64_t> torn_loads_rejected_{0};
  mutable std::atomic<uint64_t> temps_reaped_{0};
};

}  // namespace goggles::serve
