#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

/// \file json.h
/// \brief Minimal JSON value type for the serving front-end's
/// newline-delimited request/response protocol. Supports the full JSON
/// grammar (objects, arrays, strings with escapes, numbers, bool, null)
/// with a recursion-depth guard; numbers are doubles throughout.

namespace goggles::serve {

/// \brief A parsed JSON value (tagged union).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}    // NOLINT
  JsonValue(int i)                                             // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(int64_t i)                                         // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(std::string s)                                     // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT

  static JsonValue MakeArray() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue MakeObject() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& str() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// \brief Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// \brief Appends an array element (converts a null value to an array).
  void Append(JsonValue v);

  /// \brief Sets an object member, replacing an existing key (converts a
  /// null value to an object). Insertion order is preserved by Dump().
  void Set(const std::string& key, JsonValue v);

  /// \brief Compact JSON serialization.
  std::string Dump() const;

  /// \brief Parses a complete JSON document (trailing garbage is an
  /// error).
  static Result<JsonValue> Parse(const std::string& text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace goggles::serve
