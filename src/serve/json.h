#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

/// \file json.h
/// \brief Minimal JSON value type for the serving front-end's
/// newline-delimited request/response protocol. Supports the full JSON
/// grammar (objects, arrays, strings with escapes, numbers, bool, null)
/// with a recursion-depth guard; numbers are doubles throughout.

namespace goggles::serve {

/// \brief A parsed JSON value (tagged union).
class JsonValue {
 public:
  /// \brief The JSON value kinds.
  enum class Type {
    kNull,    ///< JSON null
    kBool,    ///< true / false
    kNumber,  ///< any JSON number (stored as double)
    kString,  ///< string
    kArray,   ///< ordered element list
    kObject   ///< ordered key/value member list
  };

  /// \brief Constructs null.
  JsonValue() = default;
  /// \brief Constructs a boolean value.
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT
  /// \brief Constructs a number value.
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}    // NOLINT
  /// \brief Constructs a number value from an int.
  JsonValue(int i)                                             // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  /// \brief Constructs a number value from an int64 (precision-limited
  /// to the double mantissa, like everything JSON).
  JsonValue(int64_t i)                                         // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  /// \brief Constructs a string value.
  JsonValue(std::string s)                                     // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  /// \brief Constructs a string value from a C string.
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT

  /// \brief An empty JSON array.
  static JsonValue MakeArray() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  /// \brief An empty JSON object.
  static JsonValue MakeObject() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  /// \brief This value's kind.
  Type type() const { return type_; }
  /// \brief True iff this is null.
  bool is_null() const { return type_ == Type::kNull; }
  /// \brief True iff this is a boolean.
  bool is_bool() const { return type_ == Type::kBool; }
  /// \brief True iff this is a number.
  bool is_number() const { return type_ == Type::kNumber; }
  /// \brief True iff this is a string.
  bool is_string() const { return type_ == Type::kString; }
  /// \brief True iff this is an array.
  bool is_array() const { return type_ == Type::kArray; }
  /// \brief True iff this is an object.
  bool is_object() const { return type_ == Type::kObject; }

  /// \brief The boolean payload (valid when is_bool()).
  bool bool_value() const { return bool_; }
  /// \brief The numeric payload (valid when is_number()).
  double number() const { return number_; }
  /// \brief The string payload (valid when is_string()).
  const std::string& str() const { return string_; }
  /// \brief Array elements in document order (valid when is_array()).
  const std::vector<JsonValue>& items() const { return items_; }
  /// \brief Object members in insertion order (valid when is_object()).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// \brief Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// \brief Appends an array element (converts a null value to an array).
  void Append(JsonValue v);

  /// \brief Sets an object member, replacing an existing key (converts a
  /// null value to an object). Insertion order is preserved by Dump().
  void Set(const std::string& key, JsonValue v);

  /// \brief Compact JSON serialization.
  std::string Dump() const;

  /// \brief Parses a complete JSON document (trailing garbage is an
  /// error).
  static Result<JsonValue> Parse(const std::string& text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace goggles::serve
