#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/image.h"
#include "features/extractor.h"
#include "goggles/affinity.h"
#include "goggles/hierarchical.h"
#include "goggles/pipeline.h"
#include "util/status.h"

/// \file session.h
/// \brief A fitted labeling session that answers labeling requests online.
///
/// `GogglesPipeline::Label` is batch-only: every call re-extracts
/// features, refits alpha GMMs + the ensemble, and throws the fitted
/// state away. A `Session` keeps that state — the prepared prototype
/// caches of the pool and the fitted hierarchical model — so labeling a
/// new image costs one backbone forward pass plus O(new x pool) affinity
/// scores and a posterior evaluation, instead of O((pool+new)^2) scores
/// plus a full EM refit.
///
/// Sessions persist to disk as `serve::Artifact` files (Save/Load), which
/// is what the `goggles_serve` front-end loads at startup.

namespace goggles::serve {

/// \brief Labels for a single online-labeled image.
struct OnlineLabel {
  std::vector<double> soft;  ///< length K, aligned to true classes
  int hard = 0;              ///< argmax of `soft`
};

/// \brief A fitted, servable labeling session.
///
/// Labeling entry points are const and may be called from multiple
/// threads: the backbone forward pass goes through the extractor's
/// lock-free const inference path — N sessions sharing one backbone scale
/// with cores — and affinity scoring (one GEMM per pool layer against the
/// packed prototype panel) and posterior evaluation also run lock-free in
/// parallel.
class Session {
 public:
  Session() = default;

  /// \brief Fits a session on a labeling pool — the exact computation of
  /// `GogglesPipeline::Label` (same seeds, same results) with the fitted
  /// state retained for serving.
  static Result<Session> Fit(
      std::shared_ptr<features::FeatureExtractor> extractor,
      const std::vector<data::Image>& pool,
      const std::vector<int>& dev_indices, const std::vector<int>& dev_labels,
      int num_classes, GogglesConfig config = {});

  /// \brief Labels new images against the fitted pool without refitting.
  /// For images identical to pool members this reproduces the fitting
  /// run's labels bit-for-bit.
  Result<LabelingResult> LabelBatch(
      const std::vector<data::Image>& images) const;

  /// \brief Single-image convenience wrapper over LabelBatch.
  Result<OnlineLabel> LabelOne(const data::Image& image) const;

  /// \brief Extraction half of LabelBatch: builds the M x (alpha *
  /// pool_size) affinity rows for `images` through the batched
  /// extractor + GEMM scorer, without running inference. The staged
  /// serving pipeline calls this from its extraction stage and feeds
  /// the rows (possibly sliced per image) to InferRows downstream.
  /// Row i depends only on image i — the GEMM accumulates in a fixed
  /// ascending-k order independent of batch shape — so slicing rows
  /// out of a grouped extraction is bit-identical to extracting each
  /// image alone.
  Result<Matrix> BuildQueryRows(const std::vector<data::Image>& images) const;

  /// \brief Inference half of LabelBatch: posterior evaluation of
  /// prebuilt affinity rows under the fitted hierarchical model.
  /// `LabelBatch(images)` == `InferRows(*BuildQueryRows(images))`.
  Result<LabelingResult> InferRows(const Matrix& affinity_rows) const;

  /// \brief Persists the fitted session as a versioned artifact file.
  Status Save(const std::string& path) const;

  /// \brief Crash-safe Save: stages into a pid-suffixed temp file,
  /// fsyncs, then renames over `path` (see SaveArtifactFileAtomic). Use
  /// when publishing into a directory a live registry is watching.
  Status SaveAtomic(const std::string& path) const;

  /// \brief Restores a session from an artifact. The extractor must be
  /// the same backbone the artifact was fitted with (same pool-layer
  /// count and channel widths; checked on load / first query).
  static Result<Session> Load(
      const std::string& path,
      std::shared_ptr<features::FeatureExtractor> extractor);

  /// \brief True once the session holds a fitted model.
  bool fitted() const { return model_.fitted(); }
  /// \brief Number of classes K.
  int num_classes() const { return model_.num_classes; }
  /// \brief Pool size N the session was fitted on.
  int64_t pool_size() const { return model_.pool_size; }
  /// \brief Affinity-function count alpha.
  int64_t num_functions() const { return model_.num_functions(); }
  /// \brief Content fingerprint of the fitted pool (0 when unfitted).
  uint64_t pool_fingerprint() const {
    return source_ ? source_->fingerprint() : 0;
  }

  /// \brief Approximate resident size of the fitted state in bytes
  /// (prototype/position caches, packed GEMM panels, fitted models, pool
  /// labels). The multi-task registry charges this against its LRU memory
  /// budget when deciding evictions.
  uint64_t ApproxMemoryBytes() const;

  /// \brief The pool's labels from the fitting run. After Load, only the
  /// soft/hard labels are populated (per-function diagnostics are not
  /// persisted).
  const LabelingResult& pool_result() const { return pool_result_; }

  const FittedHierarchicalModel& model() const { return model_; }

 private:
  std::shared_ptr<features::FeatureExtractor> extractor_;
  std::shared_ptr<PrototypeAffinitySource> source_;
  FittedHierarchicalModel model_;
  LabelingResult pool_result_;
  int top_z_ = 0;
};

}  // namespace goggles::serve
