#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <istream>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>

#include "serve/coalescer.h"
#include "serve/json.h"
#include "serve/registry.h"
#include "serve/session.h"

/// \file service.h
/// \brief The `goggles_serve` request loop: newline-delimited JSON
/// requests in, one JSON response line per request out (in input order).
///
/// Two execution modes share one protocol:
///  - **Pipelined** (default): requests flow through a staged flowgraph
///    (decode → extract → infer → encode, util/pipeline.h) over
///    lock-free SPSC queues. The extraction stage drains whatever label
///    requests are queued (up to `pipeline.max_batch`), groups them by
///    (session, shape), dedups identical pixels, and scores each group
///    with ONE batched `Session::BuildQueryRows` call — cross-request
///    micro-batching with zero added window latency; the GEMM-bound
///    extraction stage overlaps the EM-posterior inference stage across
///    requests. Admission control bounds in-flight requests at the
///    reader (block, or reject with a clean error response).
///  - **Monolithic** (`pipeline.enabled = false`): the original flat
///    worker pool over a bounded MPMC queue, each worker running
///    decode→extract→infer→encode end to end (optionally through the
///    window-based Coalescer).
/// Responses are bit-identical between the modes at any thread/stage
/// configuration — the batched GEMM scorer accumulates each output row
/// in a fixed order independent of batch shape, so grouped extraction
/// row i equals the singleton extraction of image i, and inference is
/// row-independent.
///
/// Protocol (one JSON object per line; docs/serve_protocol.md has the
/// full specification):
///   {"op":"stats"}
///   {"op":"label","image":{"channels":C,"height":H,"width":W,
///                          "pixels":[...C*H*W floats...]}}
///   {"op":"label_batch","images":[{...},{...}]}
///   {"op":"list_tasks"} | {"op":"load","task":T} | {"op":"unload","task":T}
/// Requests routed to a multi-task registry carry "task":"name"; an
/// absent "task" falls back to the default (single-artifact) session,
/// keeping the original one-artifact protocol byte-compatible.
/// Responses always carry "ok" (true/false); errors carry "error".

namespace goggles::serve {

/// \brief Bounded multi-producer/multi-consumer queue. Push blocks while
/// the queue is full (backpressure); Pop blocks while it is empty and
/// returns nullopt once the queue is closed and drained.
template <typename T>
class BoundedQueue {
 public:
  /// \brief Queue holding at most `capacity` items before Push blocks.
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// \brief False iff the queue was closed before the item was accepted.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// \brief Blocks until an item is available (or the queue is closed
  /// and drained, yielding nullopt).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// \brief Closes the queue: pending items still drain, new Push calls
  /// are refused, blocked producers/consumers wake.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// \brief Items currently queued.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<T> queue_;
  size_t capacity_;
  bool closed_ = false;
};

/// \brief Staged-flowgraph tuning for Run() (see util/pipeline.h).
struct PipelineOptions {
  /// Master switch: true routes Run() through the staged flowgraph,
  /// false through the original monolithic worker pool. Results are
  /// bit-identical either way.
  bool enabled = true;
  /// Threads for the parse/validate/route stage (also handles non-label
  /// ops end to end).
  int decode_threads = 1;
  /// Threads for the batched-extraction stage (backbone forward + GEMM
  /// scoring — the hot stage).
  int extract_threads = 2;
  /// Threads for the posterior-inference stage.
  int infer_threads = 1;
  /// Threads for the response-encode stage.
  int encode_threads = 1;
  /// Capacity of each SPSC crossbar edge between stages.
  int queue_capacity = 64;
  /// Max label requests the extraction stage groups into one batched
  /// scoring call. With `batch_wait_micros` == 0, grouping never waits —
  /// it takes what is queued.
  int max_batch = 8;
  /// Bounded extract-stage batch-gather window in microseconds: a
  /// worker holding a partial batch parks up to this long for more
  /// arrivals before extracting (the pipelined analogue of the
  /// monolithic Coalescer's window — trades latency for dedup/GEMM
  /// amortization). 0 (default) = extract whatever is queued at once.
  int64_t batch_wait_micros = 0;
  /// Admission cap on in-flight requests (submitted minus written);
  /// <= 0 means "use ServiceConfig::queue_capacity".
  int admission_capacity = 0;
  /// true: a request arriving with `admission_capacity` already in
  /// flight gets an immediate {"ok":false,...} response instead of
  /// stalling the reader (load-shedding mode).
  bool reject_on_full = false;
  /// Stall watchdog budget for the staged flowgraph: a monitor thread
  /// flags any stage-function call running longer than this (see
  /// Pipeline::SetWatchdogBudgetMicros; surfaced as per-stage "stalls"
  /// in the stats op). 0 (default) = watchdog off, zero overhead.
  int64_t watchdog_budget_micros = 0;
};

/// \brief Overlays the `GOGGLES_PIPELINE*` environment knobs on
/// `defaults`: GOGGLES_PIPELINE (0 disables), _DECODE_THREADS,
/// _EXTRACT_THREADS, _INFER_THREADS, _ENCODE_THREADS, _QUEUE,
/// _MAX_BATCH, _BATCH_WAIT, _ADMISSION, _REJECT. Values go through the strict env
/// parser (util/env.h): malformed or trailing-garbage values warn and
/// fall back to the default; range clamping happens when the Service is
/// constructed.
PipelineOptions PipelineOptionsFromEnv(PipelineOptions defaults = {});

/// \brief Service tuning knobs.
struct ServiceConfig {
  /// Worker threads handling requests in monolithic mode. Each worker's
  /// labeling call already fans out over ParallelFor internally, so a
  /// small pool suffices to keep the machine busy while hiding
  /// per-request latency.
  int num_workers = 2;
  /// Bounded request-queue capacity (backpressure threshold); also the
  /// default pipeline admission cap.
  size_t queue_capacity = 64;
  /// Cross-request micro-batching of `label` requests (see coalescer.h).
  /// Off by default, and only used by the monolithic path — the staged
  /// pipeline batches naturally in its extraction stage without the
  /// window latency.
  CoalescerConfig coalesce;
  /// Staged-flowgraph execution of Run() (on by default).
  PipelineOptions pipeline;
  /// Per-request deadline measured from admission (the reader accepting
  /// the request line) to response encode. A request that overruns it is
  /// answered with {"ok":false,"error":...,"error_code":
  /// "deadline_exceeded"} instead of its result — stages check the
  /// deadline before starting expensive work, so a stalled stage sheds
  /// queued work instead of processing stale requests. 0 (default) =
  /// no deadline. Applies to both execution modes.
  int64_t request_deadline_micros = 0;
};

/// \brief Serves labeling requests — either against one fitted Session
/// (the original single-artifact mode) or as a multi-task gateway over a
/// SessionRegistry, with optional cross-request micro-batching.
class Service {
 public:
  /// \brief Single-artifact service: every request hits `session`;
  /// "task"-routed requests and registry ops are rejected.
  explicit Service(std::shared_ptr<const Session> session,
                   ServiceConfig config = {});

  /// \brief Multi-task gateway: "task"-routed requests resolve through
  /// `registry` (loading artifacts on demand); requests without a "task"
  /// hit `default_session`, which may be null (then a task is required).
  Service(std::shared_ptr<SessionRegistry> registry,
          std::shared_ptr<const Session> default_session,
          ServiceConfig config = {});

  /// \brief Handles one parsed request (also the unit tests' entry
  /// point). Thread-safe.
  JsonValue HandleRequest(const JsonValue& request) const;

  /// \brief Handles one raw request line: parse + dispatch + serialize.
  std::string HandleLine(const std::string& line) const;

  /// \brief Pumps `in` to exhaustion: reads request lines, runs them
  /// through the staged flowgraph (or the monolithic worker pool when
  /// `pipeline.enabled` is false), writes responses to `out` in input
  /// order. Returns after every response is flushed.
  Status Run(std::istream& in, std::ostream& out);

  /// \brief Graceful-drain trigger (thread-safe, callable from a signal
  /// watcher thread): a running Run() stops admitting new requests,
  /// flushes every in-flight response, and returns OK. Requests read
  /// but not yet admitted are dropped. Idempotent; a Run() started
  /// after a stop returns immediately.
  void RequestStop();

  /// \brief True once RequestStop() has been called.
  bool stop_requested() const { return stop_requested_.load(); }

  /// \brief Total requests handled so far (including errored ones).
  uint64_t requests_served() const { return requests_served_.load(); }

  /// \brief Requests shed by reject-on-full admission control.
  uint64_t requests_rejected() const { return pipeline_rejected_.load(); }

  /// \brief The micro-batcher (stats inspection; never null).
  const Coalescer& coalescer() const { return *coalescer_; }

  /// \brief The normalized configuration the service runs with.
  const ServiceConfig& config() const { return config_; }

 private:
  /// Resolves the session a request targets: its "task" member through
  /// the registry, or the default session when absent.
  Result<std::shared_ptr<const Session>> ResolveSession(
      const JsonValue& request) const;

  /// Registry ops (load/unload/list_tasks); `op` is pre-validated.
  JsonValue HandleRegistryOp(const std::string& op,
                             const JsonValue& request) const;

  /// The `failpoint` chaos op (arm/disarm/disarm_all/list). Arming
  /// requires a binary built with -DGOGGLES_FAILPOINTS=ON; otherwise
  /// answers error_code "unimplemented". `list` always works.
  JsonValue HandleFailpointOp(const JsonValue& request) const;

  /// The original flat worker pool over a bounded MPMC queue.
  Status RunMonolithic(std::istream& in, std::ostream& out);

  /// The staged flowgraph (decode → extract → infer → encode) over SPSC
  /// crossbars, with reader-side admission control.
  Status RunPipelined(std::istream& in, std::ostream& out);

  std::shared_ptr<SessionRegistry> registry_;   // null in single mode
  std::shared_ptr<const Session> session_;      // may be null in gateway mode
  ServiceConfig config_;
  std::unique_ptr<Coalescer> coalescer_;
  mutable std::atomic<uint64_t> requests_served_{0};
  mutable std::atomic<uint64_t> errors_{0};
  mutable std::atomic<uint64_t> pipeline_rejected_{0};
  /// Set for the duration of a pipelined Run: snapshots the live
  /// flowgraph for the `stats` op's "pipeline" section.
  mutable std::mutex pipeline_stats_mu_;
  mutable std::function<JsonValue()> pipeline_stats_fn_;
  /// Graceful-drain flag + a pointer to the active Run's wake condvar
  /// so RequestStop() can rouse a reader blocked on admission control.
  std::atomic<bool> stop_requested_{false};
  std::mutex run_wake_mu_;
  std::condition_variable* run_wake_cv_ = nullptr;
};

}  // namespace goggles::serve
