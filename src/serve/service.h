#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <istream>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>

#include "serve/coalescer.h"
#include "serve/json.h"
#include "serve/registry.h"
#include "serve/session.h"

/// \file service.h
/// \brief The `goggles_serve` request loop: newline-delimited JSON
/// requests in, one JSON response line per request out (in input order),
/// dispatched to a worker pool through a bounded queue so a flood of
/// requests exerts backpressure on the reader instead of growing memory.
///
/// Protocol (one JSON object per line; docs/serve_protocol.md has the
/// full specification):
///   {"op":"stats"}
///   {"op":"label","image":{"channels":C,"height":H,"width":W,
///                          "pixels":[...C*H*W floats...]}}
///   {"op":"label_batch","images":[{...},{...}]}
///   {"op":"list_tasks"} | {"op":"load","task":T} | {"op":"unload","task":T}
/// Requests routed to a multi-task registry carry "task":"name"; an
/// absent "task" falls back to the default (single-artifact) session,
/// keeping the original one-artifact protocol byte-compatible.
/// Responses always carry "ok" (true/false); errors carry "error".

namespace goggles::serve {

/// \brief Bounded multi-producer/multi-consumer queue. Push blocks while
/// the queue is full (backpressure); Pop blocks while it is empty and
/// returns nullopt once the queue is closed and drained.
template <typename T>
class BoundedQueue {
 public:
  /// \brief Queue holding at most `capacity` items before Push blocks.
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// \brief False iff the queue was closed before the item was accepted.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// \brief Blocks until an item is available (or the queue is closed
  /// and drained, yielding nullopt).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// \brief Closes the queue: pending items still drain, new Push calls
  /// are refused, blocked producers/consumers wake.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// \brief Items currently queued.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<T> queue_;
  size_t capacity_;
  bool closed_ = false;
};

/// \brief Service tuning knobs.
struct ServiceConfig {
  /// Worker threads handling requests. Each worker's labeling call
  /// already fans out over ParallelFor internally, so a small pool
  /// suffices to keep the pipeline busy while hiding per-request latency.
  int num_workers = 2;
  /// Bounded request-queue capacity (backpressure threshold).
  size_t queue_capacity = 64;
  /// Cross-request micro-batching of `label` requests (see coalescer.h).
  /// Off by default: coalescing trades up to one window of latency for
  /// batched-scoring throughput, which only pays under concurrent load.
  CoalescerConfig coalesce;
};

/// \brief Serves labeling requests — either against one fitted Session
/// (the original single-artifact mode) or as a multi-task gateway over a
/// SessionRegistry, with optional cross-request micro-batching.
class Service {
 public:
  /// \brief Single-artifact service: every request hits `session`;
  /// "task"-routed requests and registry ops are rejected.
  explicit Service(std::shared_ptr<const Session> session,
                   ServiceConfig config = {});

  /// \brief Multi-task gateway: "task"-routed requests resolve through
  /// `registry` (loading artifacts on demand); requests without a "task"
  /// hit `default_session`, which may be null (then a task is required).
  Service(std::shared_ptr<SessionRegistry> registry,
          std::shared_ptr<const Session> default_session,
          ServiceConfig config = {});

  /// \brief Handles one parsed request (also the unit tests' entry
  /// point). Thread-safe.
  JsonValue HandleRequest(const JsonValue& request) const;

  /// \brief Handles one raw request line: parse + dispatch + serialize.
  std::string HandleLine(const std::string& line) const;

  /// \brief Pumps `in` to exhaustion: reads request lines, fans them out
  /// over the worker pool, writes responses to `out` in input order.
  /// Returns after every response is flushed.
  Status Run(std::istream& in, std::ostream& out);

  /// \brief Total requests handled so far (including errored ones).
  uint64_t requests_served() const { return requests_served_.load(); }

  /// \brief The micro-batcher (stats inspection; never null).
  const Coalescer& coalescer() const { return *coalescer_; }

 private:
  /// Resolves the session a request targets: its "task" member through
  /// the registry, or the default session when absent.
  Result<std::shared_ptr<const Session>> ResolveSession(
      const JsonValue& request) const;

  /// Registry ops (load/unload/list_tasks); `op` is pre-validated.
  JsonValue HandleRegistryOp(const std::string& op,
                             const JsonValue& request) const;

  std::shared_ptr<SessionRegistry> registry_;   // null in single mode
  std::shared_ptr<const Session> session_;      // may be null in gateway mode
  ServiceConfig config_;
  std::unique_ptr<Coalescer> coalescer_;
  mutable std::atomic<uint64_t> requests_served_{0};
  mutable std::atomic<uint64_t> errors_{0};
};

}  // namespace goggles::serve
