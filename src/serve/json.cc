#include "serve/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace goggles::serve {
namespace {

constexpr int kMaxDepth = 64;

/// Recursive-descent JSON parser over a string view.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    GOGGLES_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("json: trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return value;
  }

 private:
  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return Status::InvalidArgument("json: nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("json: unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        std::string s;
        GOGGLES_RETURN_NOT_OK(ParseString(&s));
        return JsonValue(std::move(s));
      }
      case 't':
        GOGGLES_RETURN_NOT_OK(Expect("true"));
        return JsonValue(true);
      case 'f':
        GOGGLES_RETURN_NOT_OK(Expect("false"));
        return JsonValue(false);
      case 'n':
        GOGGLES_RETURN_NOT_OK(Expect("null"));
        return JsonValue();
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::MakeObject();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      GOGGLES_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Status::InvalidArgument("json: expected ':' in object");
      }
      ++pos_;
      GOGGLES_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      obj.Set(key, std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("json: unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return obj;
      }
      return Status::InvalidArgument("json: expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue arr = JsonValue::MakeArray();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      GOGGLES_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("json: unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return arr;
      }
      return Status::InvalidArgument("json: expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Status::InvalidArgument("json: expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Status::InvalidArgument(
            "json: unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      // Escape sequence.
      if (pos_ + 1 >= text_.size()) break;
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          GOGGLES_RETURN_NOT_OK(ParseUnicodeEscape(out));
          break;
        }
        default:
          return Status::InvalidArgument("json: invalid escape sequence");
      }
    }
    return Status::InvalidArgument("json: unterminated string");
  }

  Status ParseUnicodeEscape(std::string* out) {
    uint32_t code = 0;
    GOGGLES_RETURN_NOT_OK(ReadHex4(&code));
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        return Status::InvalidArgument("json: unpaired high surrogate");
      }
      pos_ += 2;
      uint32_t low = 0;
      GOGGLES_RETURN_NOT_OK(ReadHex4(&low));
      if (low < 0xDC00 || low > 0xDFFF) {
        return Status::InvalidArgument("json: invalid low surrogate");
      }
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      return Status::InvalidArgument("json: unpaired low surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return Status::OK();
  }

  Status ReadHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) {
      return Status::InvalidArgument("json: truncated \\u escape");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Status::InvalidArgument("json: invalid \\u escape digit");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  Result<JsonValue> ParseNumber() {
    // Pixel arrays make this THE parser hot path (thousands of doubles
    // per label request), so the token converts in place over
    // [start, pos_) with std::from_chars — correctly rounded like
    // strtod, but allocation-free and bounded by the scanned token, so
    // it can never read past it. The token string is materialized only
    // on the error path.
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("json: unexpected character");
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    double value = 0.0;
    const auto [end, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || end != last || !std::isfinite(value) ||
        (value != 0.0 &&
         std::fabs(value) < std::numeric_limits<double>::min())) {
      // Over- and underflowing literals (1e999 -> inf, 1e-310 ->
      // subnormal) are rejected rather than fed into the model as
      // degenerate values, matching the historical strtod/ERANGE gate.
      return Status::InvalidArgument("json: malformed number '" +
                                     text_.substr(start, pos_ - start) + "'");
    }
    return JsonValue(value);
  }

  Status Expect(const char* literal) {
    const size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) {
      return Status::InvalidArgument("json: invalid literal");
    }
    pos_ += len;
    return Status::OK();
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void DumpString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpValue(const JsonValue& v, std::string* out) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      *out += "null";
      break;
    case JsonValue::Type::kBool:
      *out += v.bool_value() ? "true" : "false";
      break;
    case JsonValue::Type::kNumber: {
      const double d = v.number();
      if (!std::isfinite(d)) {
        *out += "null";  // NaN/inf are not valid JSON tokens
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      *out += buf;
      break;
    }
    case JsonValue::Type::kString:
      DumpString(v.str(), out);
      break;
    case JsonValue::Type::kArray: {
      out->push_back('[');
      const auto& items = v.items();
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out->push_back(',');
        DumpValue(items[i], out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      const auto& members = v.members();
      for (size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out->push_back(',');
        DumpString(members[i].first, out);
        out->push_back(':');
        DumpValue(members[i].second, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Append(JsonValue v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  items_.push_back(std::move(v));
}

void JsonValue::Set(const std::string& key, JsonValue v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpValue(*this, &out);
  return out;
}

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace goggles::serve
