#include "util/logging.h"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace goggles {
namespace {

LogLevel g_min_level = [] {
  if (const char* env = std::getenv("GOGGLES_LOG_LEVEL")) {
    if (std::strcmp(env, "DEBUG") == 0) return LogLevel::kDebug;
    if (std::strcmp(env, "INFO") == 0) return LogLevel::kInfo;
    if (std::strcmp(env, "WARNING") == 0) return LogLevel::kWarning;
    if (std::strcmp(env, "ERROR") == 0) return LogLevel::kError;
  }
  return LogLevel::kWarning;
}();

std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel MinLogLevel() { return g_min_level; }

void SetMinLogLevel(LogLevel level) { g_min_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= MinLogLevel()), level_(level) {
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LevelName(level_) << " " << (base ? base + 1 : file)
            << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << stream_.str() << std::endl;
}

}  // namespace internal
}  // namespace goggles
