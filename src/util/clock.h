#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

/// \file clock.h
/// \brief Monotonic-clock helpers for deadline arithmetic (the serving
/// micro-batcher's coalescing window, bench timestamps), plus an
/// injectable Clock seam so timing-window code paths can be driven
/// deterministically from tests with FakeClock.

namespace goggles {

/// \brief Microseconds on the monotonic (steady) clock, from an arbitrary
/// but fixed process-local epoch. Safe for measuring intervals and
/// computing deadlines; never affected by wall-clock adjustments.
inline int64_t MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// \brief Converts a MonotonicMicros() deadline into a
/// `steady_clock::time_point` usable with `condition_variable::wait_until`.
inline std::chrono::steady_clock::time_point SteadyTimePointFromMicros(
    int64_t micros) {
  return std::chrono::steady_clock::time_point(
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::microseconds(micros)));
}

/// \brief Sleeps the calling thread for (at least) `micros` microseconds.
inline void SleepForMicros(int64_t micros) {
  if (micros > 0) std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

/// \brief Injectable time source for code with timing windows (the
/// coalescer's batching window). Production code uses SteadyClock (the
/// real monotonic clock); tests inject FakeClock and advance time
/// explicitly, so window-expiry behavior is asserted deterministically
/// instead of raced against the scheduler.
class Clock {
 public:
  virtual ~Clock() = default;

  /// \brief Current time in microseconds from a fixed arbitrary epoch.
  virtual int64_t NowMicros() = 0;

  /// \brief Blocks on `cv` until `pred()` holds or this clock reaches
  /// `deadline_micros`. Must be called with `lock` held; `pred` is only
  /// evaluated under the lock. Returns `pred()` at wakeup, mirroring
  /// `condition_variable::wait_until`.
  virtual bool WaitUntil(std::condition_variable& cv,
                         std::unique_lock<std::mutex>& lock,
                         int64_t deadline_micros,
                         std::function<bool()> pred) = 0;
};

/// \brief The real monotonic clock (MonotonicMicros / cv::wait_until).
class SteadyClock final : public Clock {
 public:
  int64_t NowMicros() override { return MonotonicMicros(); }

  bool WaitUntil(std::condition_variable& cv,
                 std::unique_lock<std::mutex>& lock, int64_t deadline_micros,
                 std::function<bool()> pred) override {
    return cv.wait_until(lock, SteadyTimePointFromMicros(deadline_micros),
                         std::move(pred));
  }
};

/// \brief Process-wide SteadyClock singleton, the default everywhere a
/// Clock* is accepted.
inline Clock* SteadyClockInstance() {
  static SteadyClock clock;
  return &clock;
}

/// \brief Manually-advanced clock for tests. NowMicros() returns a value
/// that only moves when Advance()/SetMicros() is called. WaitUntil
/// releases the lock and polls in short real-time slices, so a test can
/// hold a waiter at a fake deadline indefinitely and then release it
/// with a single Advance() past the deadline — no wall-clock margins.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() override {
    return now_.load(std::memory_order_acquire);
  }

  /// \brief Moves fake time forward by `micros` (negative is ignored).
  void Advance(int64_t micros) {
    if (micros > 0) now_.fetch_add(micros, std::memory_order_acq_rel);
  }

  /// \brief Jumps fake time to an absolute value.
  void SetMicros(int64_t micros) {
    now_.store(micros, std::memory_order_release);
  }

  bool WaitUntil(std::condition_variable& cv,
                 std::unique_lock<std::mutex>& lock, int64_t deadline_micros,
                 std::function<bool()> pred) override {
    // Poll with short real waits: each slice wakes on notify or after
    // 200us of real time, then re-checks pred and the *fake* deadline.
    // Correctness never depends on the slice length, only liveness.
    while (!pred()) {
      if (NowMicros() >= deadline_micros) return pred();
      cv.wait_for(lock, std::chrono::microseconds(200));
    }
    return true;
  }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace goggles
