#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

/// \file clock.h
/// \brief Monotonic-clock helpers for deadline arithmetic (the serving
/// micro-batcher's coalescing window, bench timestamps).

namespace goggles {

/// \brief Microseconds on the monotonic (steady) clock, from an arbitrary
/// but fixed process-local epoch. Safe for measuring intervals and
/// computing deadlines; never affected by wall-clock adjustments.
inline int64_t MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// \brief Converts a MonotonicMicros() deadline into a
/// `steady_clock::time_point` usable with `condition_variable::wait_until`.
inline std::chrono::steady_clock::time_point SteadyTimePointFromMicros(
    int64_t micros) {
  return std::chrono::steady_clock::time_point(
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::microseconds(micros)));
}

/// \brief Sleeps the calling thread for (at least) `micros` microseconds.
inline void SleepForMicros(int64_t micros) {
  if (micros > 0) std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace goggles
