#include "util/failpoint.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <random>

#include "util/clock.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace goggles::failpoint {
namespace {

/// Registry state for one failpoint: the armed spec plus lifetime
/// counters (kept after disarm so tests can assert trigger counts).
struct Entry {
  Spec spec;
  uint64_t hits = 0;
  uint64_t triggers = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Entry> points;
  /// Fixed seed: trigger sequences are reproducible given the arm order
  /// and hit order.
  std::mt19937_64 rng{0x676f67676c6573ULL};  // "goggles"
  bool env_parsed = false;
};

Registry& GlobalRegistry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

int ArmedCountLocked(Registry& r) {
  int armed = 0;
  for (const auto& [name, entry] : r.points) {
    (void)name;
    if (entry.spec.action != Action::kOff) ++armed;
  }
  return armed;
}

void RefreshArmedCountLocked(Registry& r) {
  internal::g_armed_count.store(ArmedCountLocked(r),
                                std::memory_order_relaxed);
}

Result<Action> ParseAction(const std::string& token) {
  if (token == "return-error") return Action::kReturnError;
  if (token == "delay-ms") return Action::kDelayMs;
  if (token == "partial-write") return Action::kPartialWrite;
  if (token == "crash-here") return Action::kCrashHere;
  if (token == "off") return Action::kOff;
  return Status::InvalidArgument("unknown failpoint action '" + token + "'");
}

/// Parses `action[(arg)][:prob][:count]` into a Spec.
Result<Spec> ParseSpec(const std::string& text) {
  Spec spec;
  std::vector<std::string> fields = Split(text, ':');
  if (fields.empty() || fields[0].empty()) {
    return Status::InvalidArgument("empty failpoint spec");
  }
  std::string action_token = fields[0];
  size_t open = action_token.find('(');
  if (open != std::string::npos) {
    if (action_token.back() != ')') {
      return Status::InvalidArgument("unterminated failpoint arg in '" +
                                     text + "'");
    }
    std::string arg_text =
        action_token.substr(open + 1, action_token.size() - open - 2);
    action_token = action_token.substr(0, open);
    try {
      size_t used = 0;
      spec.arg = std::stoll(arg_text, &used);
      if (used != arg_text.size()) throw std::invalid_argument(arg_text);
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad failpoint arg '" + arg_text + "'");
    }
  }
  GOGGLES_ASSIGN_OR_RETURN(spec.action, ParseAction(action_token));
  if (fields.size() > 3) {
    return Status::InvalidArgument("too many ':' fields in failpoint spec '" +
                                   text + "'");
  }
  if (fields.size() >= 2 && !fields[1].empty()) {
    try {
      size_t used = 0;
      spec.probability = std::stod(fields[1], &used);
      if (used != fields[1].size()) throw std::invalid_argument(fields[1]);
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad failpoint probability '" +
                                     fields[1] + "'");
    }
    if (spec.probability < 0.0 || spec.probability > 1.0) {
      return Status::OutOfRange("failpoint probability must be in [0,1], got " +
                                fields[1]);
    }
  }
  if (fields.size() >= 3 && !fields[2].empty()) {
    try {
      size_t used = 0;
      spec.count = std::stoll(fields[2], &used);
      if (used != fields[2].size()) throw std::invalid_argument(fields[2]);
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad failpoint count '" + fields[2] +
                                     "'");
    }
  }
  return spec;
}

Status ArmFromEnvSpecLocked(Registry& r, const std::string& env_spec) {
  for (const std::string& item : Split(env_spec, ';')) {
    std::string trimmed = Trim(item);
    if (trimmed.empty()) continue;
    size_t eq = trimmed.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint env entry '" + trimmed +
                                     "' is not name=spec");
    }
    std::string name = Trim(trimmed.substr(0, eq));
    GOGGLES_ASSIGN_OR_RETURN(Spec spec,
                             ParseSpec(Trim(trimmed.substr(eq + 1))));
    r.points[name].spec = spec;
  }
  RefreshArmedCountLocked(r);
  return Status::OK();
}

/// Parses GOGGLES_FAILPOINTS once; malformed entries warn and are
/// skipped as a whole (matching the strict env-knob policy: never
/// half-apply a malformed value).
void MaybeParseEnvLocked(Registry& r) {
  if (r.env_parsed) return;
  r.env_parsed = true;
  std::string env_spec = GetEnvOr("GOGGLES_FAILPOINTS", "");
  // CMake truthiness ("ON"/"1") leaks into child environments in some CI
  // setups; only strings containing '=' are arm specs.
  if (env_spec.empty() || env_spec.find('=') == std::string::npos) return;
  Status st = ArmFromEnvSpecLocked(r, env_spec);
  if (!st.ok()) {
    GOGGLES_LOG(WARNING) << "ignoring GOGGLES_FAILPOINTS: " << st.ToString();
  }
}

}  // namespace

bool CompiledIn() {
#if defined(GOGGLES_FAILPOINTS)
  return true;
#else
  return false;
#endif
}

const char* ActionName(Action action) {
  switch (action) {
    case Action::kOff:
      return "off";
    case Action::kReturnError:
      return "return-error";
    case Action::kDelayMs:
      return "delay-ms";
    case Action::kPartialWrite:
      return "partial-write";
    case Action::kCrashHere:
      return "crash-here";
  }
  return "off";
}

Status Arm(const std::string& name, const Spec& spec) {
  if (name.empty()) {
    return Status::InvalidArgument("failpoint name must be non-empty");
  }
  if (spec.probability < 0.0 || spec.probability > 1.0) {
    return Status::OutOfRange("failpoint probability must be in [0,1]");
  }
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  MaybeParseEnvLocked(r);
  r.points[name].spec = spec;
  RefreshArmedCountLocked(r);
  return Status::OK();
}

Status ArmFromString(const std::string& name, const std::string& spec_text) {
  GOGGLES_ASSIGN_OR_RETURN(Spec spec, ParseSpec(spec_text));
  return Arm(name, spec);
}

Status ArmFromEnvSpec(const std::string& env_spec) {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  MaybeParseEnvLocked(r);
  return ArmFromEnvSpecLocked(r, env_spec);
}

Status Disarm(const std::string& name) {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  if (it != r.points.end()) it->second.spec = Spec{};
  RefreshArmedCountLocked(r);
  return Status::OK();
}

void DisarmAll() {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, entry] : r.points) {
    (void)name;
    entry.spec = Spec{};
  }
  RefreshArmedCountLocked(r);
}

std::vector<Info> List() {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  MaybeParseEnvLocked(r);
  std::vector<Info> out;
  out.reserve(r.points.size());
  for (const auto& [name, entry] : r.points) {
    out.push_back(Info{name, entry.spec, entry.hits, entry.triggers});
  }
  return out;
}

uint64_t TriggerCount(const std::string& name) {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.triggers;
}

namespace internal {

std::atomic<int> g_armed_count{0};

Hit Evaluate(const char* name) {
  int64_t delay_ms = -1;
  bool crash = false;
  Hit hit;
  {
    Registry& r = GlobalRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    MaybeParseEnvLocked(r);
    auto it = r.points.find(name);
    if (it == r.points.end() || it->second.spec.action == Action::kOff) {
      return hit;
    }
    Entry& entry = it->second;
    entry.hits++;
    if (entry.spec.probability < 1.0) {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      if (dist(r.rng) >= entry.spec.probability) return hit;
    }
    entry.triggers++;
    hit.action = entry.spec.action;
    hit.arg = entry.spec.arg;
    if (entry.spec.count > 0 && --entry.spec.count == 0) {
      entry.spec.action = Action::kOff;
      RefreshArmedCountLocked(r);
    }
    if (hit.action == Action::kDelayMs) delay_ms = hit.arg;
    if (hit.action == Action::kCrashHere) crash = true;
  }
  // Side effects happen outside the registry lock.
  if (crash) {
    GOGGLES_LOG(ERROR) << "failpoint '" << name << "': crash-here";
    std::abort();
  }
  if (delay_ms >= 0) SleepForMicros(delay_ms * 1000);
  return hit;
}

Status InjectedError(const char* name) {
  return Status::IOError(std::string("injected failure at failpoint '") +
                         name + "'");
}

}  // namespace internal
}  // namespace goggles::failpoint
