#include "util/env.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace goggles {

std::string GetEnvOr(const std::string& name, const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  return v == nullptr ? fallback : std::string(v);
}

int64_t GetEnvIntOr(const std::string& name, int64_t fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  long long parsed = std::strtoll(v, &end, 10);
  // Reject empty values, trailing garbage ("12abc"), and out-of-range
  // values rather than silently truncating the parse.
  if (end == v || *end != '\0' || errno == ERANGE) return fallback;
  return static_cast<int64_t>(parsed);
}

double GetEnvDoubleOr(const std::string& name, double fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  // Non-finite covers overflow ("1e999" -> +-HUGE_VAL) and literal
  // "inf"/"nan"; underflow ("1e-400" -> denormal or zero) stays accepted,
  // the user meant ~0.
  if (!std::isfinite(parsed)) return fallback;
  return parsed;
}

}  // namespace goggles
