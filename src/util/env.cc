#include "util/env.h"

#include <cstdlib>

namespace goggles {

std::string GetEnvOr(const std::string& name, const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  return v == nullptr ? fallback : std::string(v);
}

int64_t GetEnvIntOr(const std::string& name, int64_t fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<int64_t>(parsed);
}

double GetEnvDoubleOr(const std::string& name, double fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

}  // namespace goggles
