#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <algorithm>

#include "util/clock.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/spsc_queue.h"

/// \file pipeline.h
/// \brief Static staged flowgraph executor over SPSC queue crossbars —
/// the serving hot path's backbone (decode → extract → infer → encode).
///
/// A Pipeline<Item> is a fixed linear chain of stages. Stage s with P
/// threads feeds stage s+1 with C threads through a P x C crossbar of
/// bounded SpscQueue<Item> edges, so every queue keeps the
/// single-producer/single-consumer contract and no lock is ever taken
/// on the data path. Consumers drain *whatever is available* up to
/// `max_batch` items per wakeup and hand the whole vector to the stage
/// function — natural micro-batching with zero added latency: a lone
/// item is processed immediately, a burst is processed together.
///
/// Waiting is done on per-consumer doorbells (mutex + condvar + an
/// atomic `sleeping` flag): producers ring only when the consumer
/// advertised it was parking, and a short self-healing `wait_for`
/// timeout covers the residual flag race. Backpressure propagates
/// upstream edge by edge: an internal producer blocked on a full
/// downstream queue spins/sleeps (counted in stats); the *external*
/// Submit() caller chooses block-vs-reject, which is where admission
/// control lives.
///
/// Shutdown cascades: Drain() closes stage 0's input queues; each
/// worker, after its inputs are closed and drained, closes the crossbar
/// row it produces into, so stage s+1 workers observe end-of-stream
/// only after every stage-s worker has flushed. Drain() then joins all
/// threads. Items reach the sink exactly once, in some interleaved
/// order — callers that need input order re-sequence downstream (the
/// serving gateway keys items by sequence number).
///
/// Ordering/determinism contract: the pipeline may reorder items across
/// threads but never duplicates, drops (short of explicit Submit
/// rejection), or mutates them outside the stage functions. If each
/// stage function is deterministic per item — true for all serving
/// stages by the repo's batch-equals-singleton kernel invariants — the
/// set of (item, result) pairs is identical at any thread/stage count.

namespace goggles {

/// \brief Per-stage tuning knobs.
struct PipelineStageConfig {
  /// Stage name surfaced in stats (e.g. "extract").
  std::string name;
  /// Worker threads for this stage (clamped to >= 1).
  int num_threads = 1;
  /// Capacity of EACH input edge feeding this stage (rounded up to a
  /// power of two by SpscQueue, clamped to >= 1 before rounding).
  int queue_capacity = 64;
  /// Max items handed to one stage-function call. With
  /// `batch_wait_micros` == 0 consumers never wait to fill a batch —
  /// this only caps how much of a burst is grouped.
  int max_batch = 1;
  /// Bounded batch-gather window: a consumer holding a PARTIAL batch
  /// parks up to this long for more arrivals before running the stage
  /// function (a full batch, a closed intake, or the deadline all
  /// release it immediately). 0 (default) = process whatever is
  /// available at once. Trades up to this much latency for larger
  /// batches — the amortization knob for stages whose per-batch work
  /// dedupes or fuses (the serve extract stage), exactly analogous to
  /// the monolithic Coalescer's window.
  int64_t batch_wait_micros = 0;
};

/// \brief Snapshot of one stage's counters for the `stats` op.
struct PipelineStageStats {
  std::string name;
  int num_threads = 0;
  /// Rounded per-edge capacity actually allocated.
  size_t queue_capacity = 0;
  /// Items sitting in this stage's input edges at snapshot time.
  size_t queue_depth = 0;
  /// Items that entered the stage function.
  uint64_t items = 0;
  /// Stage-function invocations (batches). items / batches = mean
  /// effective batch size.
  uint64_t batches = 0;
  /// Times a producer found every input edge of this stage full and had
  /// to wait (or, for stage 0 in reject mode, gave up).
  uint64_t backpressured = 0;
  /// Times the watchdog caught a worker inside one stage-function call
  /// for longer than the stall budget (0 when the watchdog is off). One
  /// stuck call counts once, not once per watchdog sweep.
  uint64_t stalls = 0;
};

namespace pipeline_internal {

/// \brief Per-consumer parking spot. The consumer advertises it is
/// about to sleep via `sleeping` (seq_cst), re-checks its queues, then
/// waits; producers ring only when the flag is up. The bounded wait in
/// the consumer self-heals the unavoidable advertise/check race.
struct Doorbell {
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> sleeping{false};

  /// \brief Producer side: wake the consumer if it advertised parking.
  void Ring();
};

/// \brief Kernel-thread budget for each stage worker: an even split of
/// the machine width across all pipeline threads, floored at 1. Keeps
/// nested ParallelFor inside stage functions at ~machine width total
/// instead of stages x width.
int AutoKernelBudget(int total_pipeline_threads);

/// \brief Microseconds an internal producer sleeps between retries on a
/// full downstream edge.
constexpr int64_t kProducerRetrySleepMicros = 50;

/// \brief Upper bound on a parked consumer's wait slice; bounds the
/// cost of a lost doorbell ring to well under a millisecond.
constexpr int64_t kConsumerParkSliceMicros = 500;

}  // namespace pipeline_internal

/// \brief Fixed linear flowgraph of batch-capable stages over SPSC
/// edges. Build with AddStage (in flow order), then Start, then Submit
/// items from ONE thread; Drain flushes and joins. Not reusable after
/// Drain.
template <typename Item>
class Pipeline {
 public:
  /// Stage body: consumes/transforms `items` in place; every element
  /// still present on return is forwarded to the next stage (or sink).
  using BatchFn = std::function<void(std::vector<Item>&)>;
  /// Terminal consumer, called by last-stage workers (possibly
  /// concurrently — must be thread-safe).
  using SinkFn = std::function<void(Item&&)>;

  Pipeline() = default;
  ~Pipeline() { Drain(); }
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// \brief Arms the stall watchdog: a monitor thread started by
  /// Start() that flags any worker spending longer than `budget_micros`
  /// inside a single stage-function call (surfaced as
  /// PipelineStageStats::stalls and a warning log). 0 (default)
  /// disables the watchdog entirely — no monitor thread, and workers
  /// skip the per-batch timestamp stores, so the off state costs
  /// nothing. Must be called before Start().
  void SetWatchdogBudgetMicros(int64_t budget_micros) {
    if (!started_) watchdog_budget_micros_ = budget_micros > 0 ? budget_micros : 0;
  }

  /// \brief Appends a stage. Must be called before Start().
  void AddStage(PipelineStageConfig config, BatchFn fn) {
    if (started_) return;
    if (config.num_threads < 1) config.num_threads = 1;
    if (config.queue_capacity < 1) config.queue_capacity = 1;
    if (config.max_batch < 1) config.max_batch = 1;
    if (config.batch_wait_micros < 0) config.batch_wait_micros = 0;
    auto stage = std::make_unique<Stage>();
    stage->config = std::move(config);
    stage->fn = std::move(fn);
    stages_.push_back(std::move(stage));
  }

  /// \brief Allocates the crossbars and launches every stage worker.
  void Start(SinkFn sink) {
    if (started_ || stages_.empty()) return;
    started_ = true;
    sink_ = std::move(sink);
    int total_threads = 0;
    for (const auto& s : stages_) total_threads += s->config.num_threads;
    kernel_budget_ = pipeline_internal::AutoKernelBudget(total_threads);
    for (size_t s = 0; s < stages_.size(); ++s) {
      Stage& st = *stages_[s];
      const int producers =
          s == 0 ? 1 : stages_[s - 1]->config.num_threads;
      const int consumers = st.config.num_threads;
      st.in.resize(static_cast<size_t>(producers));
      for (auto& row : st.in) {
        row.reserve(static_cast<size_t>(consumers));
        for (int c = 0; c < consumers; ++c) {
          row.push_back(std::make_unique<SpscQueue<Item>>(
              static_cast<size_t>(st.config.queue_capacity)));
        }
      }
      st.doorbells.resize(static_cast<size_t>(consumers));
      for (auto& db : st.doorbells) {
        db = std::make_unique<pipeline_internal::Doorbell>();
      }
      if (watchdog_budget_micros_ > 0) {
        st.batch_start.reserve(static_cast<size_t>(consumers));
        for (int c = 0; c < consumers; ++c) {
          st.batch_start.push_back(
              std::make_unique<std::atomic<int64_t>>(0));
        }
      }
    }
    for (size_t s = 0; s < stages_.size(); ++s) {
      Stage& st = *stages_[s];
      for (int c = 0; c < st.config.num_threads; ++c) {
        st.threads.emplace_back([this, s, c] { WorkerLoop(s, c); });
      }
    }
    if (watchdog_budget_micros_ > 0) {
      watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
    }
  }

  /// \brief Feeds one item into stage 0 (single external producer).
  ///
  /// `block` = true: waits (counted as stage-0 backpressure) until an
  /// edge frees up; only fails once Drain() closed the intake.
  /// `block` = false: returns false immediately when every stage-0 edge
  /// is full — the caller's admission-control rejection point. On
  /// false, `item` is left intact.
  bool Submit(Item&& item, bool block) {
    if (!started_ || drained_) return false;
    Stage& s0 = *stages_[0];
    const int consumers = s0.config.num_threads;
    bool counted_backpressure = false;
    while (true) {
      for (int i = 0; i < consumers; ++i) {
        const size_t c =
            static_cast<size_t>((submit_rr_ + static_cast<uint64_t>(i)) %
                                static_cast<uint64_t>(consumers));
        if (s0.in[0][c]->TryPush(item)) {
          ++submit_rr_;
          s0.doorbells[c]->Ring();
          return true;
        }
        if (s0.in[0][c]->closed()) return false;
      }
      if (!counted_backpressure) {
        counted_backpressure = true;
        s0.backpressured.fetch_add(1, std::memory_order_relaxed);
      }
      if (!block) return false;
      SleepForMicros(pipeline_internal::kProducerRetrySleepMicros);
    }
  }

  /// \brief Closes the intake, waits for every in-flight item to reach
  /// the sink, and joins all workers. Idempotent; called by ~Pipeline.
  void Drain() {
    if (!started_ || drained_) return;
    drained_ = true;
    Stage& s0 = *stages_[0];
    for (size_t c = 0; c < s0.in[0].size(); ++c) {
      s0.in[0][c]->Close();
      s0.doorbells[c]->Ring();
    }
    for (auto& stage : stages_) {
      for (auto& t : stage->threads) t.join();
      stage->threads.clear();
    }
    if (watchdog_thread_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(watchdog_mu_);
        watchdog_stop_ = true;
      }
      watchdog_cv_.notify_all();
      watchdog_thread_.join();
    }
  }

  /// \brief Per-stage counters + live queue depths (approximate while
  /// the pipeline is running).
  std::vector<PipelineStageStats> Stats() const {
    std::vector<PipelineStageStats> out;
    out.reserve(stages_.size());
    for (const auto& stage : stages_) {
      PipelineStageStats s;
      s.name = stage->config.name;
      s.num_threads = stage->config.num_threads;
      if (!stage->in.empty() && !stage->in[0].empty()) {
        s.queue_capacity = stage->in[0][0]->capacity();
      }
      for (const auto& row : stage->in) {
        for (const auto& q : row) s.queue_depth += q->size();
      }
      s.items = stage->items.load(std::memory_order_relaxed);
      s.batches = stage->batches.load(std::memory_order_relaxed);
      s.backpressured =
          stage->backpressured.load(std::memory_order_relaxed);
      s.stalls = stage->stalls.load(std::memory_order_relaxed);
      out.push_back(std::move(s));
    }
    return out;
  }

  /// \brief Sum of worker threads across stages.
  int TotalThreads() const {
    int n = 0;
    for (const auto& s : stages_) n += s->config.num_threads;
    return n;
  }

  /// \brief Kernel-thread budget each worker installs (0 before Start).
  int KernelBudget() const { return kernel_budget_; }

 private:
  struct Stage {
    PipelineStageConfig config;
    BatchFn fn;
    /// Input crossbar, in[producer][consumer]; stage 0 has one producer
    /// row (the external Submit caller).
    std::vector<std::vector<std::unique_ptr<SpscQueue<Item>>>> in;
    /// One parking spot per consumer thread.
    std::vector<std::unique_ptr<pipeline_internal::Doorbell>> doorbells;
    std::vector<std::thread> threads;
    std::atomic<uint64_t> items{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> backpressured{0};
    std::atomic<uint64_t> stalls{0};
    /// MonotonicMicros() when consumer c entered its current
    /// stage-function call, 0 while not inside one. Allocated (and
    /// written by workers) only when the watchdog is armed.
    std::vector<std::unique_ptr<std::atomic<int64_t>>> batch_start;
  };

  /// \brief Blocking push used between internal stages (items must
  /// never drop mid-flow). Rotates `rr` across the target stage's
  /// consumers; waits on full. `producer` is this worker's row in the
  /// target crossbar.
  void PushToStage(size_t target, int producer, uint64_t& rr, Item& item) {
    Stage& st = *stages_[target];
    const int consumers = st.config.num_threads;
    bool counted = false;
    while (true) {
      for (int i = 0; i < consumers; ++i) {
        const size_t c =
            static_cast<size_t>((rr + static_cast<uint64_t>(i)) %
                                static_cast<uint64_t>(consumers));
        if (st.in[static_cast<size_t>(producer)][c]->TryPush(item)) {
          ++rr;
          st.doorbells[c]->Ring();
          return;
        }
      }
      if (!counted) {
        counted = true;
        st.backpressured.fetch_add(1, std::memory_order_relaxed);
      }
      SleepForMicros(pipeline_internal::kProducerRetrySleepMicros);
    }
  }

  void WorkerLoop(size_t stage_idx, int consumer_idx) {
    ScopedKernelThreadBudget budget(kernel_budget_);
    Stage& st = *stages_[stage_idx];
    const size_t producers = st.in.size();
    const size_t max_batch = static_cast<size_t>(st.config.max_batch);
    pipeline_internal::Doorbell& db =
        *st.doorbells[static_cast<size_t>(consumer_idx)];
    std::vector<Item> batch;
    batch.reserve(max_batch);
    size_t scan_from = 0;  // rotate fairness across producer rows
    uint64_t downstream_rr = static_cast<uint64_t>(consumer_idx);

    auto my_queue = [&](size_t p) -> SpscQueue<Item>& {
      return *st.in[p][static_cast<size_t>(consumer_idx)];
    };
    // Pops up to max_batch items already available across this
    // consumer's column of the crossbar; never waits for more.
    auto gather = [&] {
      while (batch.size() < max_batch) {
        bool popped_any = false;
        for (size_t i = 0; i < producers && batch.size() < max_batch;
             ++i) {
          Item item;
          if (my_queue((scan_from + i) % producers).TryPop(&item)) {
            batch.push_back(std::move(item));
            popped_any = true;
          }
        }
        if (!popped_any) break;
        scan_from = (scan_from + 1) % producers;
      }
    };
    auto all_inputs_finished = [&] {
      for (size_t p = 0; p < producers; ++p) {
        if (!my_queue(p).closed() || !my_queue(p).Empty()) return false;
      }
      return true;
    };
    auto work_or_exit_ready = [&] {
      for (size_t p = 0; p < producers; ++p) {
        if (!my_queue(p).Empty()) return true;
      }
      return all_inputs_finished();
    };

    // Park on the doorbell for at most `slice` microseconds using the
    // advertise / re-check protocol: the seq_cst store/load pair with
    // Ring() closes the lost-wakeup window; the bounded wait self-heals
    // anything that slips through.
    auto park = [&](int64_t slice) {
      db.sleeping.store(true, std::memory_order_seq_cst);
      if (!work_or_exit_ready()) {
        std::unique_lock<std::mutex> lock(db.mu);
        if (db.sleeping.load(std::memory_order_relaxed)) {
          db.cv.wait_for(lock, std::chrono::microseconds(slice));
        }
      }
      db.sleeping.store(false, std::memory_order_relaxed);
    };

    const int64_t batch_wait = st.config.batch_wait_micros;
    while (true) {
      batch.clear();
      gather();
      if (batch.empty()) {
        if (all_inputs_finished()) break;
        park(pipeline_internal::kConsumerParkSliceMicros);
        continue;
      }
      if (batch.size() < max_batch && batch_wait > 0 &&
          !all_inputs_finished()) {
        // Bounded batch-gather window: hold the partial batch a little
        // for stragglers. A full batch, end-of-stream, or the deadline
        // releases it; correctness never depends on what lands inside
        // one batch, so this only trades latency for amortization.
        const int64_t deadline = MonotonicMicros() + batch_wait;
        while (batch.size() < max_batch) {
          const size_t before = batch.size();
          gather();
          if (batch.size() > before) continue;
          if (all_inputs_finished()) break;
          const int64_t remaining = deadline - MonotonicMicros();
          if (remaining <= 0) break;
          park(std::min(remaining,
                        pipeline_internal::kConsumerParkSliceMicros));
        }
      }
      st.items.fetch_add(batch.size(), std::memory_order_relaxed);
      st.batches.fetch_add(1, std::memory_order_relaxed);
      if (watchdog_budget_micros_ > 0) {
        auto& start = *st.batch_start[static_cast<size_t>(consumer_idx)];
        start.store(MonotonicMicros(), std::memory_order_relaxed);
        st.fn(batch);
        start.store(0, std::memory_order_relaxed);
      } else {
        st.fn(batch);
      }
      if (stage_idx + 1 < stages_.size()) {
        for (auto& item : batch) {
          PushToStage(stage_idx + 1, consumer_idx, downstream_rr, item);
        }
      } else {
        for (auto& item : batch) sink_(std::move(item));
      }
    }
    // Cascade end-of-stream: this worker owns row `consumer_idx` of the
    // next stage's crossbar; close it so downstream observes EOF only
    // after this worker has flushed everything it will ever produce.
    if (stage_idx + 1 < stages_.size()) {
      Stage& next = *stages_[stage_idx + 1];
      for (size_t c = 0; c < next.in[static_cast<size_t>(consumer_idx)].size();
           ++c) {
        next.in[static_cast<size_t>(consumer_idx)][c]->Close();
        next.doorbells[c]->Ring();
      }
    }
  }

  /// Samples every armed stage's per-consumer batch timestamps and
  /// counts each stage-function call that overruns the budget exactly
  /// once (keyed by its start timestamp, so a long-stuck call is not
  /// re-counted every sweep).
  void WatchdogLoop() {
    const int64_t budget = watchdog_budget_micros_;
    const int64_t sweep_micros = std::max<int64_t>(budget / 4, 1000);
    // Last start timestamp already flagged, per [stage][consumer].
    std::vector<std::vector<int64_t>> flagged(stages_.size());
    for (size_t s = 0; s < stages_.size(); ++s) {
      flagged[s].resize(stages_[s]->batch_start.size(), 0);
    }
    std::unique_lock<std::mutex> lock(watchdog_mu_);
    while (!watchdog_stop_) {
      watchdog_cv_.wait_for(lock, std::chrono::microseconds(sweep_micros));
      if (watchdog_stop_) break;
      const int64_t now = MonotonicMicros();
      for (size_t s = 0; s < stages_.size(); ++s) {
        Stage& st = *stages_[s];
        for (size_t c = 0; c < st.batch_start.size(); ++c) {
          const int64_t start =
              st.batch_start[c]->load(std::memory_order_relaxed);
          if (start == 0 || now - start < budget) continue;
          if (flagged[s][c] == start) continue;  // same stuck call
          flagged[s][c] = start;
          st.stalls.fetch_add(1, std::memory_order_relaxed);
          GOGGLES_LOG(WARNING)
              << "pipeline watchdog: stage '" << st.config.name
              << "' worker " << c << " stuck in one batch for "
              << (now - start) << "us (budget " << budget << "us)";
        }
      }
    }
  }

  std::vector<std::unique_ptr<Stage>> stages_;
  SinkFn sink_;
  bool started_ = false;
  bool drained_ = false;
  uint64_t submit_rr_ = 0;
  int kernel_budget_ = 0;
  int64_t watchdog_budget_micros_ = 0;
  std::thread watchdog_thread_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
};

}  // namespace goggles
