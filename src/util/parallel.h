#pragma once

#include <cstdint>
#include <functional>

/// \file parallel.h
/// \brief Minimal data-parallel helpers used by the compute kernels.

namespace goggles {

/// \brief Number of worker threads to use by default.
///
/// Resolves, in order: the `GOGGLES_NUM_THREADS` environment variable
/// (strictly parsed; malformed values are ignored), then
/// `std::thread::hardware_concurrency()`, with a floor of 1. The result is
/// computed once and cached for the lifetime of the process.
int DefaultNumThreads();

/// \brief Uncached variant of DefaultNumThreads(): re-reads the
/// environment on every call. Intended for tests; production code should
/// use DefaultNumThreads().
int ComputeDefaultNumThreads();

/// \brief Runs `fn(i)` for every i in [begin, end) across worker threads.
///
/// The range is split into contiguous chunks, one batch per worker. `fn`
/// must be safe to invoke concurrently for distinct indices. Falls back to
/// a serial loop when the range is small or one thread is requested.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn,
                 int num_threads = 0);

/// \brief Runs `fn(chunk_begin, chunk_end)` over disjoint chunks covering
/// [begin, end). Useful when per-iteration work is tiny.
///
/// Nested parallelism collapses to serial: a call made from inside a
/// ParallelFor* worker (or under a ScopedSerialKernels marker) runs the
/// whole range on the calling thread instead of spawning another layer
/// of threads — kernels that parallelize internally (SGemm, conv) can be
/// called freely from already-parallel code without oversubscription.
/// All in-repo kernels are bit-deterministic across thread counts, so
/// the collapse never changes results.
void ParallelForChunked(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)>& fn,
                        int num_threads = 0);

/// \brief RAII marker: while alive on this thread, ParallelFor* runs
/// serially (as if num_threads == 1). For coarse-grained worker threads
/// (e.g. the serving worker pool with num_workers > 1) that already
/// saturate the cores — the fine-grained kernel parallelism below them
/// would only oversubscribe.
class ScopedSerialKernels {
 public:
  ScopedSerialKernels();
  ~ScopedSerialKernels();
  ScopedSerialKernels(const ScopedSerialKernels&) = delete;
  ScopedSerialKernels& operator=(const ScopedSerialKernels&) = delete;
};

/// \brief RAII executor-aware token: while alive on this thread,
/// ParallelFor* spawns at most `max_threads` workers (1 = fully serial,
/// the ScopedSerialKernels behavior). Budgets compose by taking the
/// minimum, so a stage worker that grants its kernels 4 threads cannot
/// be widened again by nested code asking for more.
///
/// The serving flowgraph (util/pipeline.h) installs one of these on
/// every stage worker: N stage threads each running kernels capped at
/// ~cores/N collapse to the machine width instead of oversubscribing
/// N x cores the way unbudgeted nested ParallelFor would. The binary
/// ScopedSerialKernels marker still wins when present (depth beats
/// budget): a worker inside another ParallelFor never re-forks.
class ScopedKernelThreadBudget {
 public:
  explicit ScopedKernelThreadBudget(int max_threads);
  ~ScopedKernelThreadBudget();
  ScopedKernelThreadBudget(const ScopedKernelThreadBudget&) = delete;
  ScopedKernelThreadBudget& operator=(const ScopedKernelThreadBudget&) =
      delete;

  /// \brief The budget active on this thread (0 = unlimited).
  static int Current();

 private:
  int previous_;
};

}  // namespace goggles
