#pragma once

#include <string>

/// \file env.h
/// \brief Environment-variable helpers for experiment knobs.

namespace goggles {

/// \brief Returns the environment variable `name`, or `fallback` if unset.
std::string GetEnvOr(const std::string& name, const std::string& fallback);

/// \brief Integer-valued environment variable with fallback.
int64_t GetEnvIntOr(const std::string& name, int64_t fallback);

/// \brief Double-valued environment variable with fallback.
double GetEnvDoubleOr(const std::string& name, double fallback);

}  // namespace goggles
