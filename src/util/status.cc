#include "util/status.h"

namespace goggles {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

void Status::Abort(const char* context) const {
  if (ok()) return;
  std::cerr << "FATAL";
  if (context != nullptr) std::cerr << " (" << context << ")";
  std::cerr << ": " << ToString() << std::endl;
  std::abort();
}

}  // namespace goggles
