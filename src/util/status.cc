#include "util/status.h"

namespace goggles {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

const char* StatusCodeToErrorCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kNotImplemented:
      return "unimplemented";
    case StatusCode::kIOError:
      return "io_error";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "internal";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

void Status::Abort(const char* context) const {
  if (ok()) return;
  std::cerr << "FATAL";
  if (context != nullptr) std::cerr << " (" << context << ")";
  std::cerr << ": " << ToString() << std::endl;
  std::abort();
}

}  // namespace goggles
