#pragma once

#include <algorithm>
#include <cstdint>
#include <random>

/// \file backoff.h
/// \brief Capped exponential backoff with decorrelated jitter, for
/// retrying transient failures (e.g. an artifact load racing a publish).
///
/// Usage:
///     BackoffPolicy policy;                 // or tune the fields
///     Backoff backoff(policy, /*seed=*/42);
///     while (true) {
///       if (TryTheThing().ok()) break;
///       int64_t delay = backoff.NextDelayMicros();
///       if (delay < 0) return error;        // attempts exhausted
///       SleepForMicros(delay);
///     }
///
/// The delay for attempt k is drawn uniformly from
/// [initial/2 * m^k, initial * m^k] (full-jitter on the upper half),
/// clamped to `max_delay_micros` — jitter prevents retry convoys when
/// many sessions chase the same recovering file.

namespace goggles {

/// \brief Tuning for a retry loop.
struct BackoffPolicy {
  /// Total tries including the first; NextDelayMicros() returns a
  /// negative value once they are exhausted. <= 1 disables retries.
  int max_attempts = 4;
  /// Upper bound of the first retry delay.
  int64_t initial_delay_micros = 2000;
  /// Growth factor per retry.
  double multiplier = 4.0;
  /// Cap on any single delay.
  int64_t max_delay_micros = 200000;
  /// false = deterministic (always the upper bound); true = jittered.
  bool jitter = true;
};

/// \brief Iterator over the delays of one retry loop. Not thread-safe;
/// make one per loop.
class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy, uint64_t seed = 0)
      : policy_(policy), rng_(seed) {}

  /// \brief Micros to sleep before the next retry, or a negative value
  /// when the attempt budget is exhausted.
  int64_t NextDelayMicros() {
    ++attempt_;
    if (attempt_ >= policy_.max_attempts) return -1;
    double upper = static_cast<double>(policy_.initial_delay_micros);
    for (int i = 1; i < attempt_; ++i) upper *= policy_.multiplier;
    upper = std::min(upper, static_cast<double>(policy_.max_delay_micros));
    if (!policy_.jitter) return static_cast<int64_t>(upper);
    std::uniform_real_distribution<double> dist(upper * 0.5, upper);
    return static_cast<int64_t>(dist(rng_));
  }

  /// \brief Completed attempts so far.
  int attempts() const { return attempt_; }

 private:
  BackoffPolicy policy_;
  std::mt19937_64 rng_;
  int attempt_ = 0;
};

}  // namespace goggles
