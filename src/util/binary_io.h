#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>

/// \file binary_io.h
/// \brief Shared binary serialization primitives: POD stream IO, an
/// in-memory buffer writer/reader pair, and CRC-32.
///
/// Used by `nn/serialize` (backbone weight cache) and by the `serve/`
/// artifact store, which frames CRC-checked sections with these helpers.

namespace goggles::io {

/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `n`
/// bytes. Chain incremental updates by passing the previous return value
/// as `crc` (starts at 0).
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);

/// \brief Writes a trivially-copyable value to a binary stream.
template <typename T>
void WritePod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "WritePod requires a trivially-copyable type");
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// \brief Reads a trivially-copyable value; false on short read.
template <typename T>
bool ReadPod(std::istream& in, T* value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "ReadPod requires a trivially-copyable type");
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

/// \brief Append-only byte buffer for building serialized payloads in
/// memory (so a checksum can be computed before anything hits disk).
class BufferWriter {
 public:
  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "BufferWriter::Pod requires a trivially-copyable type");
    Bytes(&value, sizeof(T));
  }

  void Bytes(const void* data, size_t n) {
    buffer_.append(static_cast<const char*>(data), n);
  }

  /// \brief Length-prefixed (u32) string.
  void Str(const std::string& s) {
    Pod(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }

  const std::string& buffer() const { return buffer_; }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// \brief Sequential reader over a byte buffer. Every accessor returns
/// false instead of reading past the end, so truncated payloads surface
/// as clean parse failures.
class BufferReader {
 public:
  BufferReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit BufferReader(const std::string& buffer)
      : BufferReader(buffer.data(), buffer.size()) {}

  template <typename T>
  bool Pod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "BufferReader::Pod requires a trivially-copyable type");
    return Bytes(value, sizeof(T));
  }

  bool Bytes(void* out, size_t n) {
    if (n > remaining()) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  /// \brief Length-prefixed (u32) string written by BufferWriter::Str.
  bool Str(std::string* out) {
    uint32_t len = 0;
    if (!Pod(&len) || len > remaining()) return false;
    out->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace goggles::io
