#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

/// \file topk.h
/// \brief Argmax / top-k index selection helpers.

namespace goggles {

/// \brief Index of the maximum element (first on ties); -1 if empty.
template <typename T>
int64_t ArgMax(const std::vector<T>& v) {
  if (v.empty()) return -1;
  return static_cast<int64_t>(
      std::distance(v.begin(), std::max_element(v.begin(), v.end())));
}

/// \brief Index of the minimum element (first on ties); -1 if empty.
template <typename T>
int64_t ArgMin(const std::vector<T>& v) {
  if (v.empty()) return -1;
  return static_cast<int64_t>(
      std::distance(v.begin(), std::min_element(v.begin(), v.end())));
}

/// \brief Indices of `v` sorted by descending value (stable on ties).
template <typename T>
std::vector<int> ArgSortDescending(const std::vector<T>& v) {
  std::vector<int> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&v](int a, int b) { return v[a] > v[b]; });
  return idx;
}

/// \brief Indices of the k largest elements, in descending value order.
template <typename T>
std::vector<int> ArgTopK(const std::vector<T>& v, int k) {
  std::vector<int> idx = ArgSortDescending(v);
  if (k < static_cast<int>(idx.size())) idx.resize(k);
  return idx;
}

}  // namespace goggles
