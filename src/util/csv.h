#pragma once

#include <string>
#include <vector>

#include "util/status.h"

/// \file csv.h
/// \brief Tiny CSV writer for exporting experiment series (e.g. the data
/// behind each reproduced figure).

namespace goggles {

/// \brief Accumulates rows and writes RFC-4180-style CSV.
class CsvWriter {
 public:
  /// \brief Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// \brief Appends a row of already-formatted cells.
  void AddRow(std::vector<std::string> row);

  /// \brief Serializes all rows (header first if set).
  std::string ToString() const;

  /// \brief Writes the CSV content to `path`.
  Status WriteToFile(const std::string& path) const;

 private:
  static std::string EscapeCell(const std::string& cell);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace goggles
