#pragma once

#include <chrono>

/// \file timer.h
/// \brief Wall-clock timing helper.

namespace goggles {

/// \brief Monotonic stopwatch; starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// \brief Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// \brief Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace goggles
