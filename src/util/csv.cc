#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace goggles {

void CsvWriter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void CsvWriter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string CsvWriter::EscapeCell(const std::string& cell) {
  bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::ToString() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << EscapeCell(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out << ToString();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace goggles
