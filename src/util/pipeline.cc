#include "util/pipeline.h"

#include <algorithm>

namespace goggles {
namespace pipeline_internal {

void Doorbell::Ring() {
  // seq_cst pairs with the consumer's seq_cst advertise-then-recheck:
  // either the producer sees `sleeping` and notifies, or the consumer's
  // recheck sees the pushed item. Lock before notify so the wakeup
  // cannot land between the consumer's flag check and its wait.
  if (sleeping.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(mu);
    sleeping.store(false, std::memory_order_relaxed);
    cv.notify_one();
  }
}

int AutoKernelBudget(int total_pipeline_threads) {
  const int width = DefaultNumThreads();
  const int denom = std::max(1, total_pipeline_threads);
  return std::max(1, width / denom);
}

}  // namespace pipeline_internal
}  // namespace goggles
