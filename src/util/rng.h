#pragma once

#include <cstdint>
#include <vector>

/// \file rng.h
/// \brief Deterministic, seedable pseudo-random number generation.
///
/// All randomness in the library flows through `Rng` so experiments are
/// reproducible bit-for-bit across runs and platforms. The generator is
/// xoshiro256** seeded via splitmix64; Gaussians use Box-Muller rather than
/// `std::normal_distribution` (whose output is implementation-defined).

namespace goggles {

/// \brief A small, fast, deterministic PRNG (xoshiro256**).
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed (expanded with splitmix64).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// \brief Next raw 64-bit output.
  uint64_t NextUint64();

  /// \brief Uniform double in [0, 1).
  double Uniform();

  /// \brief Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// \brief Uniform integer in [lo, hi] (inclusive bounds).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Standard normal deviate via Box-Muller.
  double Gaussian();

  /// \brief Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// \brief Bernoulli trial with success probability `p`.
  bool Bernoulli(double p);

  /// \brief Samples an index in [0, weights.size()) proportionally to
  /// `weights` (which need not be normalized; all must be >= 0).
  int64_t Categorical(const std::vector<double>& weights);

  /// \brief In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (int64_t i = static_cast<int64_t>(v->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(0, i);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// \brief Samples k distinct indices from {0, ..., n-1} (k <= n).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// \brief Derives an independent generator for substream `stream_id`.
  ///
  /// Forked streams are deterministic functions of (parent seed, stream_id),
  /// so parallel workers can draw independently yet reproducibly.
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t s_[4];
  uint64_t seed_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace goggles
