#pragma once

#include <iostream>
#include <string>
#include <vector>

/// \file table.h
/// \brief ASCII table rendering used by the benchmark/experiment drivers to
/// print paper-style tables.

namespace goggles {

/// \brief Column-aligned ASCII table with an optional title.
class AsciiTable {
 public:
  explicit AsciiTable(std::string title = "") : title_(std::move(title)) {}

  /// \brief Sets the header row (fixes the column count).
  void SetHeader(std::vector<std::string> header);

  /// \brief Appends a data row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// \brief Appends a horizontal separator line.
  void AddSeparator();

  /// \brief Renders the table.
  std::string ToString() const;

  /// \brief Renders the table to `os` (default stdout).
  void Print(std::ostream& os = std::cout) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  // A row with the single sentinel cell "\x01--" renders as a separator.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace goggles
