#pragma once

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

/// \file status.h
/// \brief Error handling primitives following the Apache Arrow / RocksDB
/// idiom: library code never throws; fallible functions return a `Status`
/// or a `Result<T>`.

namespace goggles {

/// \brief Machine-readable error category carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kNotImplemented = 5,
  kIOError = 6,
  kInternal = 7,
  kDeadlineExceeded = 8,
  kUnavailable = 9,
};

/// \brief Returns a human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Returns the stable machine-readable error identifier for a
/// StatusCode (snake_case, e.g. "invalid_argument"). These strings are
/// part of the serve protocol (the `error_code` response field,
/// docs/serve_protocol.md) and must never change once published.
const char* StatusCodeToErrorCode(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// Status is cheap to copy in the OK case (no allocation) and carries a
/// message string only on error. Use the factory functions
/// (`Status::InvalidArgument(...)` etc.) to construct errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// \brief True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// \brief Error message; empty for OK statuses.
  const std::string& message() const { return msg_; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// \brief Aborts the process with a diagnostic if this status is an error.
  ///
  /// Intended for tests, examples and benchmark drivers where an error is
  /// unrecoverable; library code should propagate instead.
  void Abort(const char* context = nullptr) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& st) {
  return os << st.ToString();
}

/// \brief A value of type T, or the Status explaining why it is absent.
///
/// Mirrors arrow::Result. Access the value with `ValueOrDie()` (aborts on
/// error; for tests/drivers) or `operator*` after checking `ok()`.
template <typename T>
class Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit

  bool ok() const { return value_.has_value(); }

  /// \brief The error (or OK) status associated with this result.
  const Status& status() const { return status_; }

  /// \brief Returns the value, aborting the process if this is an error.
  const T& ValueOrDie() const& {
    if (!ok()) status_.Abort("Result::ValueOrDie");
    return *value_;
  }
  T ValueOrDie() && {
    if (!ok()) status_.Abort("Result::ValueOrDie");
    return std::move(*value_);
  }

  /// \brief Unchecked access; valid only when ok().
  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T operator*() && { return std::move(*value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// \brief Moves the value out; valid only when ok().
  T MoveValueUnsafe() { return std::move(*value_); }

 private:
  Status status_ = Status::OK();
  std::optional<T> value_;
};

/// \brief Propagates an error Status from the enclosing function.
#define GOGGLES_RETURN_NOT_OK(expr)                    \
  do {                                                 \
    ::goggles::Status _goggles_status = (expr);        \
    if (!_goggles_status.ok()) return _goggles_status; \
  } while (false)

/// \brief Aborts the process if `expr` is an error Status.
#define GOGGLES_CHECK_OK(expr)                  \
  do {                                          \
    ::goggles::Status _goggles_status = (expr); \
    _goggles_status.Abort(#expr);               \
  } while (false)

#define GOGGLES_CONCAT_IMPL(x, y) x##y
#define GOGGLES_CONCAT(x, y) GOGGLES_CONCAT_IMPL(x, y)

/// \brief Evaluates a Result-returning expression; on success binds the
/// value to `lhs`, on error returns the Status from the enclosing function.
#define GOGGLES_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  auto GOGGLES_CONCAT(_goggles_result_, __LINE__) = (rexpr);       \
  if (!GOGGLES_CONCAT(_goggles_result_, __LINE__).ok())            \
    return GOGGLES_CONCAT(_goggles_result_, __LINE__).status();    \
  lhs = std::move(*GOGGLES_CONCAT(_goggles_result_, __LINE__))

}  // namespace goggles
