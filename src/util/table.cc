#include "util/table.h"

#include <algorithm>
#include <sstream>

namespace goggles {
namespace {
const char* kSeparatorSentinel = "\x01--";
}

void AsciiTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void AsciiTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void AsciiTable::AddSeparator() { rows_.push_back({kSeparatorSentinel}); }

std::string AsciiTable::ToString() const {
  size_t cols = header_.size();
  for (const auto& r : rows_) {
    if (!(r.size() == 1 && r[0] == kSeparatorSentinel)) {
      cols = std::max(cols, r.size());
    }
  }
  std::vector<size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& r) {
    for (size_t c = 0; c < r.size() && c < cols; ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  };
  if (!header_.empty()) measure(header_);
  for (const auto& r : rows_) {
    if (!(r.size() == 1 && r[0] == kSeparatorSentinel)) measure(r);
  }

  std::ostringstream os;
  auto hline = [&] {
    os << '+';
    for (size_t c = 0; c < cols; ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& r) {
    os << '|';
    for (size_t c = 0; c < cols; ++c) {
      const std::string cell = c < r.size() ? r[c] : "";
      os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  hline();
  if (!header_.empty()) {
    emit(header_);
    hline();
  }
  for (const auto& r : rows_) {
    if (r.size() == 1 && r[0] == kSeparatorSentinel) {
      hline();
    } else {
      emit(r);
    }
  }
  hline();
  return os.str();
}

void AsciiTable::Print(std::ostream& os) const { os << ToString(); }

}  // namespace goggles
