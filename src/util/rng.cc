#include "util/rng.h"

#include <cmath>

namespace goggles {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (hi <= lo) return lo;
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - (UINT64_MAX % span);
  uint64_t x;
  do {
    x = NextUint64();
  } while (x >= limit);
  return lo + static_cast<int64_t>(x % span);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int64_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return 0;
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> p(n);
  for (int i = 0; i < n; ++i) p[i] = i;
  Shuffle(&p);
  return p;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  if (k > n) k = n;
  std::vector<int> p = Permutation(n);
  p.resize(k);
  return p;
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix the parent seed with the stream id through splitmix64 twice.
  uint64_t s = seed_ ^ (0xA5A5A5A5A5A5A5A5ULL + stream_id * 0x9E3779B97F4A7C15ULL);
  uint64_t mixed = SplitMix64(&s);
  mixed ^= SplitMix64(&s);
  return Rng(mixed);
}

}  // namespace goggles
