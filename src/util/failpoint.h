#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

/// \file failpoint.h
/// \brief Named fault-injection points for chaos testing the serve stack.
///
/// A failpoint is a named hook compiled into production code paths:
///
///     GOGGLES_FAILPOINT_RETURN("artifact.load.read");   // inject an error
///     GOGGLES_FAILPOINT("registry.load.slow");           // inject a delay
///
/// In a default build the macros expand to nothing — zero instructions,
/// zero branches, zero data. Configuring with `-DGOGGLES_FAILPOINTS=ON`
/// compiles the hooks in; even then a disarmed failpoint costs one
/// relaxed atomic load of a global counter (the fast path short-circuits
/// before any name lookup while no failpoint is armed).
///
/// Armed behavior is a `Spec`:
///   - action: what to do when the point is hit
///       * kReturnError  — evaluate to an error Status (the macro returns it)
///       * kDelayMs      — sleep `arg` milliseconds, then continue
///       * kPartialWrite — truncate an I/O operation to `arg` bytes
///                         (sites that support it use
///                         GOGGLES_FAILPOINT_CLAMP to read the clamp)
///       * kCrashHere    — std::abort() at the point (crash-safety tests)
///   - probability: chance in [0,1] each hit triggers (default 1.0)
///   - count: trigger at most this many times, then auto-disarm
///            (<=0 = unlimited)
///
/// Arm programmatically (`failpoint::Arm`), through the environment
/// (`GOGGLES_FAILPOINTS="name=action[(arg)][:prob][:count];..."`, parsed
/// once at first use), or over the serve gateway via the `failpoint` op.
/// Spec grammar examples:
///     artifact.load.read=return-error
///     registry.load.slow=delay-ms(50):0.5
///     artifact.save.partial=partial-write(12)
///     artifact.publish.rename=crash-here:1:1
///
/// Triggering is deterministic given the arm order and hit sequence: the
/// probability draw uses a fixed-seed generator owned by the registry.

namespace goggles::failpoint {

/// \brief What an armed failpoint does when it triggers.
enum class Action : int {
  kOff = 0,
  kReturnError = 1,
  kDelayMs = 2,
  kPartialWrite = 3,
  kCrashHere = 4,
};

/// \brief Armed configuration for one named failpoint.
struct Spec {
  Action action = Action::kOff;
  /// Action argument: milliseconds for kDelayMs, byte clamp for
  /// kPartialWrite; ignored otherwise.
  int64_t arg = 0;
  /// Chance each hit triggers, in [0, 1].
  double probability = 1.0;
  /// Remaining triggers before auto-disarm; <= 0 means unlimited.
  int64_t count = 0;
};

/// \brief One row of List(): a named failpoint and its live state.
struct Info {
  std::string name;
  Spec spec;
  uint64_t hits = 0;      ///< Times the site was evaluated while armed.
  uint64_t triggers = 0;  ///< Times the action actually fired.
};

/// \brief True iff fault-injection hooks were compiled into this binary
/// (build configured with -DGOGGLES_FAILPOINTS=ON).
bool CompiledIn();

/// \brief Spec-grammar token for an Action ("return-error", "delay-ms",
/// "partial-write", "crash-here", "off").
const char* ActionName(Action action);

/// \brief Arms `name` with `spec`. Replaces any existing arm.
Status Arm(const std::string& name, const Spec& spec);

/// \brief Arms from a single spec string `action[(arg)][:prob][:count]`.
Status ArmFromString(const std::string& name, const std::string& spec);

/// \brief Parses `name=spec[;name=spec...]` (the GOGGLES_FAILPOINTS
/// environment grammar) and arms each entry.
Status ArmFromEnvSpec(const std::string& env_spec);

/// \brief Disarms `name`. OK even if it was not armed.
Status Disarm(const std::string& name);

/// \brief Disarms everything (test teardown).
void DisarmAll();

/// \brief Snapshot of every failpoint armed or hit since process start.
std::vector<Info> List();

/// \brief Times `name` has triggered (0 if never armed).
uint64_t TriggerCount(const std::string& name);

namespace internal {

/// Nonzero while at least one failpoint is armed; the macro fast path.
extern std::atomic<int> g_armed_count;

/// \brief Outcome of evaluating a failpoint site.
struct Hit {
  Action action = Action::kOff;
  int64_t arg = 0;
};

/// \brief Slow path: looks `name` up, rolls probability, decrements
/// count, applies kDelayMs / kCrashHere inline and reports kReturnError /
/// kPartialWrite back to the macro. Also lazily parses the
/// GOGGLES_FAILPOINTS environment variable on first call.
Hit Evaluate(const char* name);

/// \brief Error Status for a triggered kReturnError site.
Status InjectedError(const char* name);

}  // namespace internal
}  // namespace goggles::failpoint

#if defined(GOGGLES_FAILPOINTS)

/// Evaluates the failpoint; kDelayMs sleeps and kCrashHere aborts inside
/// Evaluate(). Use at sites with nothing to return or clamp.
#define GOGGLES_FAILPOINT(name)                                            \
  do {                                                                     \
    if (::goggles::failpoint::internal::g_armed_count.load(               \
            std::memory_order_relaxed) > 0) {                              \
      (void)::goggles::failpoint::internal::Evaluate(name);                \
    }                                                                      \
  } while (false)

/// Like GOGGLES_FAILPOINT, but a triggered return-error action makes the
/// enclosing function return an injected error Status.
#define GOGGLES_FAILPOINT_RETURN(name)                                     \
  do {                                                                     \
    if (::goggles::failpoint::internal::g_armed_count.load(               \
            std::memory_order_relaxed) > 0) {                              \
      auto _goggles_fp_hit =                                               \
          ::goggles::failpoint::internal::Evaluate(name);                  \
      if (_goggles_fp_hit.action ==                                        \
          ::goggles::failpoint::Action::kReturnError) {                    \
        return ::goggles::failpoint::internal::InjectedError(name);        \
      }                                                                    \
    }                                                                      \
  } while (false)

/// Clamps `size_lvalue` (any integral lvalue) to the armed partial-write
/// byte count when the point triggers; also honors return-error.
#define GOGGLES_FAILPOINT_CLAMP(name, size_lvalue)                         \
  do {                                                                     \
    if (::goggles::failpoint::internal::g_armed_count.load(               \
            std::memory_order_relaxed) > 0) {                              \
      auto _goggles_fp_hit =                                               \
          ::goggles::failpoint::internal::Evaluate(name);                  \
      if (_goggles_fp_hit.action ==                                        \
          ::goggles::failpoint::Action::kReturnError) {                    \
        return ::goggles::failpoint::internal::InjectedError(name);        \
      }                                                                    \
      if (_goggles_fp_hit.action ==                                        \
              ::goggles::failpoint::Action::kPartialWrite &&               \
          _goggles_fp_hit.arg >= 0 &&                                      \
          static_cast<int64_t>(size_lvalue) > _goggles_fp_hit.arg) {       \
        size_lvalue = static_cast<decltype(size_lvalue)>(                  \
            _goggles_fp_hit.arg);                                          \
      }                                                                    \
    }                                                                      \
  } while (false)

#else  // !defined(GOGGLES_FAILPOINTS)

#define GOGGLES_FAILPOINT(name) \
  do {                          \
  } while (false)
#define GOGGLES_FAILPOINT_RETURN(name) \
  do {                                 \
  } while (false)
#define GOGGLES_FAILPOINT_CLAMP(name, size_lvalue) \
  do {                                             \
  } while (false)

#endif  // GOGGLES_FAILPOINTS
