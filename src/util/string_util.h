#pragma once

#include <string>
#include <vector>

/// \file string_util.h
/// \brief Small string formatting and manipulation helpers.

namespace goggles {

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// \brief Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// \brief Splits `s` on the character `sep` (no empty-token collapsing).
std::vector<std::string> Split(const std::string& s, char sep);

/// \brief Removes leading and trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// \brief Lower-cases ASCII letters.
std::string ToLower(const std::string& s);

/// \brief Formats a fraction (0..1) as a percentage like "97.83".
std::string FormatPercent(double fraction, int decimals = 2);

/// \brief Formats a double with fixed decimals.
std::string FormatDouble(double value, int decimals = 2);

}  // namespace goggles
