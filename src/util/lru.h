#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

/// \file lru.h
/// \brief A cost-budgeted least-recently-used map, the eviction engine
/// behind the multi-task serving registry.
///
/// Unlike a count-capped LRU, entries carry an explicit *cost* (bytes for
/// the registry) and eviction trims the least-recently-used tail until the
/// total cost fits the budget again. Evicted values are handed back to the
/// caller instead of being destroyed inside the cache, so owners holding
/// shared references can drain them gracefully (an in-flight serving
/// session must finish its requests, not crash).

namespace goggles {

/// \brief LRU map with a total-cost budget and an optional entry cap.
///
/// Not thread-safe; callers wrap it in their own lock (the registry holds
/// one mutex around every cache operation). `K` needs `std::hash` and
/// `operator==`.
template <typename K, typename V>
class LruCache {
 public:
  /// \brief One evicted entry, returned to the caller by Put().
  struct Evicted {
    K key;      ///< the evicted entry's key
    V value;    ///< the evicted value, moved out of the cache
    uint64_t cost = 0;  ///< the cost it was inserted with
  };

  /// \param cost_budget  maximum total cost, 0 = unlimited
  /// \param max_entries  maximum entry count, 0 = unlimited
  explicit LruCache(uint64_t cost_budget = 0, size_t max_entries = 0)
      : cost_budget_(cost_budget), max_entries_(max_entries) {}

  /// \brief Inserts or replaces `key`, marks it most-recently-used, then
  /// evicts least-recently-used entries until the budget and entry cap
  /// hold again. The just-inserted entry is never evicted, even when its
  /// cost alone exceeds the budget — a single oversized occupant beats an
  /// empty cache that can never serve.
  /// \return the displaced entries — a replaced same-key value first (if
  /// any), then budget evictions least-recently-used first. Values are
  /// always handed back, never destroyed inside the cache, so the caller
  /// controls where (e.g. outside its lock) they are released.
  std::vector<Evicted> Put(const K& key, V value, uint64_t cost) {
    std::vector<Evicted> evicted;
    auto it = index_.find(key);
    if (it != index_.end()) {
      Node& old = *it->second;
      total_cost_ -= old.cost;
      evicted.push_back(Evicted{old.key, std::move(old.value), old.cost});
      order_.erase(it->second);
      index_.erase(it);
    }
    order_.push_front(Node{key, std::move(value), cost});
    index_[key] = order_.begin();
    total_cost_ += cost;

    while (order_.size() > 1 &&
           ((cost_budget_ != 0 && total_cost_ > cost_budget_) ||
            (max_entries_ != 0 && order_.size() > max_entries_))) {
      Node& victim = order_.back();
      total_cost_ -= victim.cost;
      index_.erase(victim.key);
      evicted.push_back(Evicted{std::move(victim.key), std::move(victim.value),
                                victim.cost});
      order_.pop_back();
    }
    return evicted;
  }

  /// \brief Looks `key` up and marks it most-recently-used.
  /// \return pointer into the cache (invalidated by the next mutation), or
  /// nullptr when absent.
  V* Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->value;
  }

  /// \brief Looks `key` up without touching the recency order.
  const V* Peek(const K& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->value;
  }

  /// \brief Removes `key`. \return true iff it was present.
  bool Erase(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    total_cost_ -= it->second->cost;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  /// \brief Calls `fn(key, value, cost)` for every entry, most-recently-
  /// used first. `fn` must not mutate the cache.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Node& node : order_) fn(node.key, node.value, node.cost);
  }

  /// \brief Number of resident entries.
  size_t size() const { return order_.size(); }
  /// \brief Sum of the resident entries' costs.
  uint64_t total_cost() const { return total_cost_; }
  /// \brief The configured cost budget (0 = unlimited).
  uint64_t cost_budget() const { return cost_budget_; }

 private:
  /// One resident entry in recency order.
  struct Node {
    K key;
    V value;
    uint64_t cost = 0;
  };

  uint64_t cost_budget_;
  size_t max_entries_;
  uint64_t total_cost_ = 0;
  std::list<Node> order_;  // front = most recently used
  std::unordered_map<K, typename std::list<Node>::iterator> index_;
};

}  // namespace goggles
