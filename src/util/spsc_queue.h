#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

/// \file spsc_queue.h
/// \brief Bounded lock-free single-producer/single-consumer ring queue —
/// the edge primitive of the serving flowgraph (util/pipeline.h).
///
/// One thread pushes, one thread pops; under that contract every
/// operation is wait-free: a push is one store into the ring plus one
/// release store of the tail index, a pop is the mirror image on the
/// head index. The producer and consumer each keep a *cached* copy of
/// the other side's index so the common case touches only its own cache
/// line; the shared indices are re-read (acquire) only when the cached
/// view says the queue looks full/empty.
///
/// The queue itself never blocks — TryPush/TryPop return false on
/// full/empty and the caller decides how to wait (the pipeline executor
/// parks on a doorbell; see pipeline.h). Close() is a one-way latch:
/// the producer stops pushing, the consumer drains what is left and
/// then observes `closed() && Empty()` as end-of-stream.

namespace goggles {

/// \brief Bounded wait-free SPSC ring queue. `T` must be movable and
/// default-constructible (slots are a pre-sized vector; popped slots
/// hold moved-from values until overwritten).
///
/// Thread contract: exactly one producer thread may call TryPush/Close,
/// exactly one consumer thread may call TryPop. size()/Empty()/closed()
/// are safe from any thread (approximate from a racing observer).
template <typename T>
class SpscQueue {
 public:
  /// \brief Queue holding at most `capacity` items (rounded up to a
  /// power of two, minimum 2, so index masking replaces modulo).
  explicit SpscQueue(size_t capacity) {
    size_t rounded = 2;
    while (rounded < capacity) rounded <<= 1;
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }

  /// \brief Producer side: moves `item` into the ring. False (item left
  /// intact) when the queue is full or closed.
  bool TryPush(T& item) {
    if (closed_.load(std::memory_order_relaxed)) return false;
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;  // genuinely full
    }
    slots_[static_cast<size_t>(tail) & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// \brief Consumer side: moves the oldest item into `*out`. False when
  /// the queue is currently empty (closed or not — check `closed()` to
  /// distinguish end-of-stream from a momentary gap).
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;  // genuinely empty
    }
    *out = std::move(slots_[static_cast<size_t>(head) & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// \brief One-way latch: refuses further pushes. Already-queued items
  /// still drain through TryPop.
  void Close() { closed_.store(true, std::memory_order_release); }

  /// \brief True once Close() was called (items may still be queued).
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// \brief True when nothing is queued right now (racy from observers).
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// \brief Items currently queued (approximate from a racing observer).
  size_t size() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  /// \brief The rounded-up item capacity.
  size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 1;
  /// Consumer-owned index of the next slot to pop.
  alignas(64) std::atomic<uint64_t> head_{0};
  /// Consumer-local cache of tail_ (avoids acquiring it when non-empty).
  alignas(64) uint64_t cached_tail_ = 0;
  /// Producer-owned index of the next slot to fill.
  alignas(64) std::atomic<uint64_t> tail_{0};
  /// Producer-local cache of head_ (avoids acquiring it when non-full).
  alignas(64) uint64_t cached_head_ = 0;
  std::atomic<bool> closed_{false};
};

}  // namespace goggles
