#include "util/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

namespace goggles {

int DefaultNumThreads() {
  static int cached = [] {
    if (const char* env = std::getenv("GOGGLES_NUM_THREADS")) {
      int n = std::atoi(env);
      if (n > 0) return n;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return cached;
}

void ParallelForChunked(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)>& fn,
                        int num_threads) {
  if (end <= begin) return;
  if (num_threads <= 0) num_threads = DefaultNumThreads();
  int64_t n = end - begin;
  int64_t workers = std::min<int64_t>(num_threads, n);
  if (workers <= 1) {
    fn(begin, end);
    return;
  }
  int64_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int64_t w = 0; w < workers; ++w) {
    int64_t lo = begin + w * chunk;
    int64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([&fn, lo, hi] { fn(lo, hi); });
  }
  for (auto& t : threads) t.join();
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn, int num_threads) {
  ParallelForChunked(
      begin, end,
      [&fn](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) fn(i);
      },
      num_threads);
}

}  // namespace goggles
