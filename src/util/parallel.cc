#include "util/parallel.h"

#include <algorithm>
#include <limits>
#include <thread>
#include <vector>

#include "util/env.h"

namespace goggles {

int ComputeDefaultNumThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  int64_t fallback = hw == 0 ? 1 : static_cast<int64_t>(hw);
  int64_t n = GetEnvIntOr("GOGGLES_NUM_THREADS", fallback);
  // Zero and negative requests mean "auto", as before this knob was
  // strictly parsed; the >= 1 floor covers hardware_concurrency() == 0.
  if (n < 1) n = fallback;
  n = std::max<int64_t>(n, 1);
  n = std::min<int64_t>(n, std::numeric_limits<int>::max());
  return static_cast<int>(n);
}

int DefaultNumThreads() {
  static int cached = ComputeDefaultNumThreads();
  return cached;
}

namespace {
// > 0 on threads that must not spawn nested kernel parallelism: inside a
// ParallelFor* worker, or under a ScopedSerialKernels marker.
thread_local int t_serial_kernel_depth = 0;
// > 0 caps how many workers ParallelFor* may spawn from this thread
// (ScopedKernelThreadBudget); 0 = unlimited. Depth beats budget.
thread_local int t_kernel_thread_budget = 0;
}  // namespace

ScopedSerialKernels::ScopedSerialKernels() { ++t_serial_kernel_depth; }
ScopedSerialKernels::~ScopedSerialKernels() { --t_serial_kernel_depth; }

ScopedKernelThreadBudget::ScopedKernelThreadBudget(int max_threads)
    : previous_(t_kernel_thread_budget) {
  if (max_threads < 1) max_threads = 1;
  t_kernel_thread_budget =
      previous_ > 0 ? std::min(previous_, max_threads) : max_threads;
}

ScopedKernelThreadBudget::~ScopedKernelThreadBudget() {
  t_kernel_thread_budget = previous_;
}

int ScopedKernelThreadBudget::Current() { return t_kernel_thread_budget; }

void ParallelForChunked(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)>& fn,
                        int num_threads) {
  if (end <= begin) return;
  if (t_serial_kernel_depth > 0) num_threads = 1;
  if (num_threads <= 0) num_threads = DefaultNumThreads();
  if (t_kernel_thread_budget > 0) {
    num_threads = std::min(num_threads, t_kernel_thread_budget);
  }
  int64_t n = end - begin;
  int64_t workers = std::min<int64_t>(num_threads, n);
  if (workers <= 1) {
    fn(begin, end);
    return;
  }
  int64_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int64_t w = 0; w < workers; ++w) {
    int64_t lo = begin + w * chunk;
    int64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([&fn, lo, hi] {
      ScopedSerialKernels nested_guard;
      fn(lo, hi);
    });
  }
  for (auto& t : threads) t.join();
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn, int num_threads) {
  ParallelForChunked(
      begin, end,
      [&fn](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) fn(i);
      },
      num_threads);
}

}  // namespace goggles
