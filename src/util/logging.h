#pragma once

#include <sstream>
#include <string>

/// \file logging.h
/// \brief Lightweight leveled logging to stderr.
///
/// Usage: `GOGGLES_LOG(INFO) << "trained " << n << " steps";`
/// The minimum emitted level defaults to WARNING and can be overridden with
/// the `GOGGLES_LOG_LEVEL` environment variable (DEBUG/INFO/WARNING/ERROR).

namespace goggles {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Returns the minimum level that will be emitted.
LogLevel MinLogLevel();

/// \brief Allows tests / drivers to override the minimum emitted level.
void SetMinLogLevel(LogLevel level);

namespace internal {

// Token aliases so GOGGLES_LOG(INFO) expands to a valid constant.
inline constexpr LogLevel kDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kINFO = LogLevel::kInfo;
inline constexpr LogLevel kWARNING = LogLevel::kWarning;
inline constexpr LogLevel kERROR = LogLevel::kError;

/// \brief Accumulates one log line and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace goggles

#define GOGGLES_LOG(level)                                \
  ::goggles::internal::LogMessage(::goggles::internal::k##level, \
                                  __FILE__, __LINE__)
