#include "linalg/pca.h"

#include <algorithm>

#include "linalg/eigen.h"

namespace goggles {

Result<Pca> Pca::Fit(const Matrix& data, int num_components) {
  if (data.rows() < 2) {
    return Status::InvalidArgument("Pca::Fit: need at least 2 samples");
  }
  if (num_components < 1) {
    return Status::InvalidArgument("Pca::Fit: num_components must be >= 1");
  }
  const int64_t d = data.cols();
  num_components = static_cast<int>(std::min<int64_t>(num_components, d));

  Pca pca;
  pca.means_ = ColumnMeans(data);
  Matrix centered = data;
  GOGGLES_RETURN_NOT_OK(CenterColumns(&centered, pca.means_));

  Matrix cov = GramTranspose(centered);
  cov.Scale(1.0 / static_cast<double>(data.rows() - 1));

  GOGGLES_ASSIGN_OR_RETURN(EigenDecomposition eig, JacobiEigenSymmetric(cov));

  pca.components_ = Matrix(d, num_components);
  pca.explained_variance_.resize(static_cast<size_t>(num_components));
  for (int j = 0; j < num_components; ++j) {
    pca.explained_variance_[static_cast<size_t>(j)] =
        std::max(0.0, eig.values[static_cast<size_t>(j)]);
    for (int64_t i = 0; i < d; ++i) {
      pca.components_(i, j) = eig.vectors(i, j);
    }
  }
  return pca;
}

Result<Matrix> Pca::Transform(const Matrix& data) const {
  if (data.cols() != static_cast<int64_t>(means_.size())) {
    return Status::InvalidArgument("Pca::Transform: dimension mismatch");
  }
  Matrix centered = data;
  GOGGLES_RETURN_NOT_OK(CenterColumns(&centered, means_));
  return MatMul(centered, components_);
}

}  // namespace goggles
