#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"
#include "tensor/gemm.h"
#include "util/rng.h"

namespace goggles {
namespace {

/// Orthonormalizes the columns of `m` in place (modified Gram-Schmidt).
/// Columns that collapse to (near) zero are re-randomized.
void OrthonormalizeColumns(Matrix* m, Rng* rng) {
  const int64_t rows = m->rows();
  const int64_t cols = m->cols();
  for (int64_t j = 0; j < cols; ++j) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      for (int64_t prev = 0; prev < j; ++prev) {
        double dot = 0.0;
        for (int64_t i = 0; i < rows; ++i) dot += (*m)(i, j) * (*m)(i, prev);
        for (int64_t i = 0; i < rows; ++i) (*m)(i, j) -= dot * (*m)(i, prev);
      }
      double norm = 0.0;
      for (int64_t i = 0; i < rows; ++i) norm += (*m)(i, j) * (*m)(i, j);
      norm = std::sqrt(norm);
      if (norm > 1e-10) {
        for (int64_t i = 0; i < rows; ++i) (*m)(i, j) /= norm;
        break;
      }
      for (int64_t i = 0; i < rows; ++i) (*m)(i, j) = rng->Gaussian();
    }
  }
}

}  // namespace

Result<SvdResult> TruncatedSvd(const Matrix& a, int k, int iters,
                               uint64_t seed) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("TruncatedSvd: empty matrix");
  }
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  k = static_cast<int>(std::min<int64_t>(k, std::min(m, n)));
  if (k <= 0) return Status::InvalidArgument("TruncatedSvd: k must be >= 1");

  Rng rng(seed);

  // Iterate on the thinner side: V if n <= m, else U.
  const bool iterate_v = n <= m;
  const int64_t dim = iterate_v ? n : m;
  Matrix q(dim, k);
  for (int64_t i = 0; i < dim; ++i) {
    for (int64_t j = 0; j < k; ++j) q(i, j) = rng.Gaussian();
  }
  OrthonormalizeColumns(&q, &rng);

  // `fwd` maps R^dim -> R^other, `bwd` maps back, so one power-iteration
  // step is q <- bwd(fwd(q)) = (X^T X) q on the iterated side. Both
  // operands are constant across the iteration, so they are packed once
  // for the GEMM kernel (the transpose is a packing flag — no
  // materialized A^T) instead of being repacked inside every product:
  // the repacking used to dominate the whole power iteration for the
  // wide affinity matrices the spectral baseline feeds in.
  const int64_t other = iterate_v ? m : n;
  const DGemmPackedA fwd_packed = DGemmPackOperandA(
      /*transpose_a=*/!iterate_v, other, dim, a.data(), n);
  const DGemmPackedA bwd_packed = DGemmPackOperandA(
      /*transpose_a=*/iterate_v, dim, other, a.data(), n);

  Matrix z(other, k);
  for (int it = 0; it < iters; ++it) {
    DGemmWithPackedA(fwd_packed, /*transpose_b=*/false, k, q.data(), k, 0.0,
                     z.data(), k);  // other x k
    DGemmWithPackedA(bwd_packed, /*transpose_b=*/false, k, z.data(), k, 0.0,
                     q.data(), k);  // dim x k
    OrthonormalizeColumns(&q, &rng);
  }

  // Recover the paired factor and singular values.
  Matrix paired(other, k);
  DGemmWithPackedA(fwd_packed, /*transpose_b=*/false, k, q.data(), k, 0.0,
                   paired.data(), k);
  std::vector<double> sigma(static_cast<size_t>(k), 0.0);
  for (int j = 0; j < k; ++j) {
    double norm = 0.0;
    for (int64_t i = 0; i < paired.rows(); ++i) norm += paired(i, j) * paired(i, j);
    sigma[static_cast<size_t>(j)] = std::sqrt(norm);
    double inv = sigma[static_cast<size_t>(j)] > 1e-12
                     ? 1.0 / sigma[static_cast<size_t>(j)]
                     : 0.0;
    for (int64_t i = 0; i < paired.rows(); ++i) paired(i, j) *= inv;
  }

  // Sort triplets by descending singular value.
  std::vector<int> order(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&sigma](int x, int y) {
    return sigma[static_cast<size_t>(x)] > sigma[static_cast<size_t>(y)];
  });

  SvdResult out;
  out.s.resize(static_cast<size_t>(k));
  out.u = Matrix(m, k);
  out.v = Matrix(n, k);
  for (int jj = 0; jj < k; ++jj) {
    int src = order[static_cast<size_t>(jj)];
    out.s[static_cast<size_t>(jj)] = sigma[static_cast<size_t>(src)];
    if (iterate_v) {
      for (int64_t i = 0; i < n; ++i) out.v(i, jj) = q(i, src);
      for (int64_t i = 0; i < m; ++i) out.u(i, jj) = paired(i, src);
    } else {
      for (int64_t i = 0; i < m; ++i) out.u(i, jj) = q(i, src);
      for (int64_t i = 0; i < n; ++i) out.v(i, jj) = paired(i, src);
    }
  }
  return out;
}

}  // namespace goggles
