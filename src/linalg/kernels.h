#pragma once

#include <cstdint>

/// \file kernels.h
/// \brief BLAS-1 style float kernels on raw pointers.
///
/// These are the inner loops of affinity computation (Eq. 3 of the paper:
/// cosine similarity between prototype vectors), kept allocation-free.
/// They dispatch to the per-ISA kernel tables (tensor/isa.h) and are
/// bit-identical at every tier: fixed-16-lane std::fma accumulation with
/// a fixed tree reduction, so the host's vector width never changes the
/// result.

namespace goggles {

/// \brief Dot product of two length-n float vectors.
float DotF(const float* a, const float* b, int64_t n);

/// \brief Euclidean (L2) norm of a length-n float vector.
float NormF(const float* a, int64_t n);

/// \brief Cosine similarity (Eq. 3); returns 0 when either vector is ~0.
float CosineSimilarityF(const float* a, const float* b, int64_t n);

/// \brief Squared Euclidean distance between two length-n vectors.
float SquaredDistanceF(const float* a, const float* b, int64_t n);

/// \brief Scales a vector so it has unit L2 norm (no-op on ~zero vectors).
void NormalizeF(float* a, int64_t n);

}  // namespace goggles
