#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

/// \file hungarian.h
/// \brief O(n^3) solver for the linear assignment problem.
///
/// GOGGLES uses this for the cluster-to-class mapping (paper §4.3,
/// Eq. 14/16): finding the one-to-one mapping g maximizing
/// L_g = sum_k w[k][g(k)], which the paper notes reduces to the assignment
/// problem solvable in O(K^3) [Jonker & Volgenant 1987].

namespace goggles {

/// \brief Solves min-cost perfect assignment on a square cost matrix.
///
/// \param cost n x n cost matrix.
/// \returns assignment[i] = column assigned to row i.
Result<std::vector<int>> SolveAssignmentMin(const Matrix& cost);

/// \brief Solves max-reward assignment (negates and calls the min solver).
Result<std::vector<int>> SolveAssignmentMax(const Matrix& reward);

/// \brief Total cost/reward of an assignment under the given matrix.
double AssignmentObjective(const Matrix& m, const std::vector<int>& assignment);

}  // namespace goggles
