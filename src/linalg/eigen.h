#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

/// \file eigen.h
/// \brief Symmetric eigendecomposition via the cyclic Jacobi method.

namespace goggles {

/// \brief Eigen-decomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
};

/// \brief Computes all eigenpairs of symmetric `a` with cyclic Jacobi sweeps.
///
/// \param a          symmetric input matrix (symmetry is assumed, the upper
///                   triangle is trusted).
/// \param max_sweeps maximum number of full Jacobi sweeps.
/// \param tol        convergence threshold on the off-diagonal Frobenius norm.
Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                int max_sweeps = 64,
                                                double tol = 1e-12);

}  // namespace goggles
