#include "linalg/kernels.h"

#include <cmath>

#include "tensor/kernel_table.h"

namespace goggles {

// These entry points dispatch to the per-ISA kernel table (tensor/isa.h):
// fixed-16-lane std::fma accumulation with a fixed tree reduction, so the
// results are bit-identical at every tier — the vector width only decides
// how many of the 16 virtual lanes map onto one register.

float DotF(const float* a, const float* b, int64_t n) {
  return ActiveKernels().dot_f(a, b, n);
}

float NormF(const float* a, int64_t n) {
  return std::sqrt(ActiveKernels().dot_f(a, a, n));
}

float CosineSimilarityF(const float* a, const float* b, int64_t n) {
  // Single fused pass: dot, |a|^2 and |b|^2 together, instead of the
  // three full walks (two NormF + one DotF) this kernel used to make.
  float dot = 0.0f, na2 = 0.0f, nb2 = 0.0f;
  ActiveKernels().cosine_terms_f(a, b, n, &dot, &na2, &nb2);
  const float na = std::sqrt(na2);
  const float nb = std::sqrt(nb2);
  if (na < 1e-12f || nb < 1e-12f) return 0.0f;
  return dot / (na * nb);
}

float SquaredDistanceF(const float* a, const float* b, int64_t n) {
  return ActiveKernels().squared_distance_f(a, b, n);
}

void NormalizeF(float* a, int64_t n) {
  float norm = NormF(a, n);
  if (norm < 1e-12f) return;
  float inv = 1.0f / norm;
  for (int64_t i = 0; i < n; ++i) a[i] *= inv;
}

}  // namespace goggles
