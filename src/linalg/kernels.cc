#include "linalg/kernels.h"

#include <cmath>

namespace goggles {

float DotF(const float* a, const float* b, int64_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc0 += a[i] * b[i];
  return acc0 + acc1 + acc2 + acc3;
}

float NormF(const float* a, int64_t n) { return std::sqrt(DotF(a, a, n)); }

float CosineSimilarityF(const float* a, const float* b, int64_t n) {
  // Single fused pass: dot, |a|^2 and |b|^2 together, instead of the three
  // full walks (two NormF + one DotF) this kernel used to make. The omp
  // simd reduction licenses the vectorizer to keep all three sums in
  // vector accumulators (-fopenmp-simd, no OpenMP runtime involved).
  float dot = 0.0f, na2 = 0.0f, nb2 = 0.0f;
#pragma omp simd reduction(+ : dot, na2, nb2)
  for (int64_t i = 0; i < n; ++i) {
    const float av = a[i], bv = b[i];
    dot += av * bv;
    na2 += av * av;
    nb2 += bv * bv;
  }
  const float na = std::sqrt(na2);
  const float nb = std::sqrt(nb2);
  if (na < 1e-12f || nb < 1e-12f) return 0.0f;
  return dot / (na * nb);
}

float SquaredDistanceF(const float* a, const float* b, int64_t n) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

void NormalizeF(float* a, int64_t n) {
  float norm = NormF(a, n);
  if (norm < 1e-12f) return;
  float inv = 1.0f / norm;
  for (int64_t i = 0; i < n; ++i) a[i] *= inv;
}

}  // namespace goggles
