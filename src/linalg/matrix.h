#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

/// \file matrix.h
/// \brief Dense row-major double-precision matrix used by the statistical
/// components (affinity matrices, EM, clustering baselines).

namespace goggles {

/// \brief Dense row-major matrix of doubles.
///
/// Deliberately minimal: the inference code needs contiguous row access,
/// elementwise updates and a handful of BLAS-1/2/3 style helpers. Heavy
/// NCHW tensor work lives in `goggles::Tensor` (float) instead.
class Matrix {
 public:
  Matrix() = default;

  /// Constructs a rows x cols matrix initialized to `fill`.
  Matrix(int64_t rows, int64_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), fill) {}

  /// \brief rows x cols all-zero matrix.
  static Matrix Zero(int64_t rows, int64_t cols) {
    return Matrix(rows, cols, 0.0);
  }

  /// \brief n x n identity.
  static Matrix Identity(int64_t n);

  /// \brief Builds a matrix from nested initializer data (row major).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(int64_t r, int64_t c) { return data_[r * cols_ + c]; }
  double operator()(int64_t r, int64_t c) const { return data_[r * cols_ + c]; }

  /// \brief Pointer to the start of row `r`.
  double* RowPtr(int64_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(int64_t r) const { return data_.data() + r * cols_; }

  /// \brief Copies row `r` into a vector.
  std::vector<double> Row(int64_t r) const;

  /// \brief Copies column `c` into a vector.
  std::vector<double> Col(int64_t c) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// \brief Returns the transpose.
  Matrix Transposed() const;

  /// \brief Contiguous sub-block copy: rows [r0, r0+nr), cols [c0, c0+nc).
  Matrix Block(int64_t r0, int64_t c0, int64_t nr, int64_t nc) const;

  /// \brief Elementwise in-place scaling.
  void Scale(double factor);

  /// \brief this += other (shapes must match).
  Status AddInPlace(const Matrix& other);

  /// \brief Frobenius norm.
  double FrobeniusNorm() const;

  /// \brief Maximum absolute entry.
  double MaxAbs() const;

  /// \brief Multi-line debug rendering (small matrices only).
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

/// \brief C = A * B. Shapes must agree; parallelized over rows of A.
Result<Matrix> MatMul(const Matrix& a, const Matrix& b);

/// \brief C = A^T * A (n x n Gram matrix), exploiting symmetry.
Matrix GramTranspose(const Matrix& a);

/// \brief y = A * x.
Result<std::vector<double>> MatVec(const Matrix& a,
                                   const std::vector<double>& x);

/// \brief Column means of `a` (length = cols).
std::vector<double> ColumnMeans(const Matrix& a);

/// \brief Subtracts `means` from every row in place.
Status CenterColumns(Matrix* a, const std::vector<double>& means);

}  // namespace goggles
