#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace goggles {
namespace {

double OffDiagonalNorm(const Matrix& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      if (i != j) acc += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(acc);
}

}  // namespace

Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                int max_sweeps, double tol) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("JacobiEigenSymmetric: matrix not square");
  }
  const int64_t n = a.rows();
  Matrix d = a;           // Will converge to a diagonal matrix.
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (OffDiagonalNorm(d) < tol) break;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double apq = d(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        double app = d(p, p);
        double aqq = d(q, q);
        double theta = (aqq - app) / (2.0 * apq);
        // Stable computation of tan(phi) for the annihilating rotation.
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;

        for (int64_t k = 0; k < n; ++k) {
          double dkp = d(k, p);
          double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (int64_t k = 0; k < n; ++k) {
          double dpk = d(p, k);
          double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          double vkp = v(k, p);
          double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&d](int64_t x, int64_t y) { return d(x, x) > d(y, y); });

  EigenDecomposition out;
  out.values.resize(static_cast<size_t>(n));
  out.vectors = Matrix(n, n);
  for (int64_t j = 0; j < n; ++j) {
    int64_t src = order[static_cast<size_t>(j)];
    out.values[static_cast<size_t>(j)] = d(src, src);
    for (int64_t i = 0; i < n; ++i) out.vectors(i, j) = v(i, src);
  }
  return out;
}

}  // namespace goggles
