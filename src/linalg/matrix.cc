#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tensor/gemm.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace goggles {

Matrix Matrix::Identity(int64_t n) {
  Matrix m(n, n, 0.0);
  for (int64_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int64_t>(rows.size()),
           static_cast<int64_t>(rows[0].size()));
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      m(static_cast<int64_t>(r), static_cast<int64_t>(c)) = rows[r][c];
    }
  }
  return m;
}

std::vector<double> Matrix::Row(int64_t r) const {
  return std::vector<double>(RowPtr(r), RowPtr(r) + cols_);
}

std::vector<double> Matrix::Col(int64_t c) const {
  std::vector<double> out(static_cast<size_t>(rows_));
  for (int64_t r = 0; r < rows_; ++r) out[static_cast<size_t>(r)] = (*this)(r, c);
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::Block(int64_t r0, int64_t c0, int64_t nr, int64_t nc) const {
  Matrix b(nr, nc);
  for (int64_t r = 0; r < nr; ++r) {
    const double* src = RowPtr(r0 + r) + c0;
    std::copy(src, src + nc, b.RowPtr(r));
  }
  return b;
}

void Matrix::Scale(double factor) {
  for (double& v : data_) v *= factor;
}

Status Matrix::AddInPlace(const Matrix& other) {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    return Status::InvalidArgument("AddInPlace: shape mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return Status::OK();
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::MaxAbs() const {
  double acc = 0.0;
  for (double v : data_) acc = std::max(acc, std::fabs(v));
  return acc;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")\n";
  int64_t rr = std::min<int64_t>(rows_, max_rows);
  int64_t cc = std::min<int64_t>(cols_, max_cols);
  for (int64_t r = 0; r < rr; ++r) {
    os << "  [";
    for (int64_t c = 0; c < cc; ++c) {
      os << StrFormat("%9.4f", (*this)(r, c));
      if (c + 1 < cc) os << ", ";
    }
    if (cc < cols_) os << ", ...";
    os << "]\n";
  }
  if (rr < rows_) os << "  ...\n";
  return os.str();
}

Result<Matrix> MatMul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument(StrFormat(
        "MatMul: inner dimensions differ (%lld vs %lld)",
        static_cast<long long>(a.cols()), static_cast<long long>(b.rows())));
  }
  // Routed through the packed, blocked DGemm (bit-deterministic at any
  // thread count; NaN/Inf propagate per BLAS — the old row-saxpy loop
  // short-circuited zero multipliers). The SVD power iteration behind the
  // spectral baseline spends its whole budget here.
  Matrix c(a.rows(), b.cols(), 0.0);
  DGemm(/*transpose_a=*/false, /*transpose_b=*/false, a.rows(), b.cols(),
        a.cols(), 1.0, a.data(), a.cols(), b.data(), b.cols(), 0.0, c.data(),
        b.cols());
  return c;
}

Matrix GramTranspose(const Matrix& a) {
  const int64_t n = a.cols();
  Matrix g(n, n, 0.0);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const double* row = a.RowPtr(r);
    for (int64_t i = 0; i < n; ++i) {
      const double vi = row[i];
      if (vi == 0.0) continue;
      double* grow = g.RowPtr(i);
      for (int64_t j = i; j < n; ++j) grow[j] += vi * row[j];
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

Result<std::vector<double>> MatVec(const Matrix& a,
                                   const std::vector<double>& x) {
  if (a.cols() != static_cast<int64_t>(x.size())) {
    return Status::InvalidArgument("MatVec: dimension mismatch");
  }
  std::vector<double> y(static_cast<size_t>(a.rows()), 0.0);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const double* row = a.RowPtr(r);
    double acc = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) acc += row[c] * x[static_cast<size_t>(c)];
    y[static_cast<size_t>(r)] = acc;
  }
  return y;
}

std::vector<double> ColumnMeans(const Matrix& a) {
  std::vector<double> means(static_cast<size_t>(a.cols()), 0.0);
  if (a.rows() == 0) return means;
  for (int64_t r = 0; r < a.rows(); ++r) {
    const double* row = a.RowPtr(r);
    for (int64_t c = 0; c < a.cols(); ++c) means[static_cast<size_t>(c)] += row[c];
  }
  for (double& m : means) m /= static_cast<double>(a.rows());
  return means;
}

Status CenterColumns(Matrix* a, const std::vector<double>& means) {
  if (static_cast<int64_t>(means.size()) != a->cols()) {
    return Status::InvalidArgument("CenterColumns: dimension mismatch");
  }
  for (int64_t r = 0; r < a->rows(); ++r) {
    double* row = a->RowPtr(r);
    for (int64_t c = 0; c < a->cols(); ++c) row[c] -= means[static_cast<size_t>(c)];
  }
  return Status::OK();
}

}  // namespace goggles
