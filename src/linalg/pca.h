#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

/// \file pca.h
/// \brief Principal component analysis.
///
/// GOGGLES' Snuba baseline follows the paper's setup (§5.1.2): the VGG
/// logits of every image are projected onto the top-10 principal components
/// of the dataset and the projections serve as Snuba's "primitives".

namespace goggles {

/// \brief Fitted PCA model: projection onto the leading components.
class Pca {
 public:
  /// \brief Fits PCA on `data` (rows = samples) keeping `num_components`.
  ///
  /// Uses the covariance matrix + Jacobi eigendecomposition; intended for
  /// modest feature dimensionality (logits-sized, not pixel-sized).
  static Result<Pca> Fit(const Matrix& data, int num_components);

  /// \brief Projects samples (rows) onto the retained components.
  Result<Matrix> Transform(const Matrix& data) const;

  /// \brief Variance captured by each retained component, descending.
  const std::vector<double>& explained_variance() const {
    return explained_variance_;
  }

  int num_components() const { return static_cast<int>(components_.cols()); }

  /// \brief Feature means subtracted before projection.
  const std::vector<double>& means() const { return means_; }

 private:
  Pca() = default;

  std::vector<double> means_;
  Matrix components_;  // d x k, columns are principal directions.
  std::vector<double> explained_variance_;
};

}  // namespace goggles
