#include "linalg/hungarian.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace goggles {

// Classic potentials-based O(n^3) Hungarian algorithm (the standard
// shortest-augmenting-path formulation, equivalent to Jonker-Volgenant).
Result<std::vector<int>> SolveAssignmentMin(const Matrix& cost) {
  if (cost.rows() != cost.cols()) {
    return Status::InvalidArgument("SolveAssignmentMin: matrix must be square");
  }
  const int n = static_cast<int>(cost.rows());
  if (n == 0) return std::vector<int>{};

  const double kInf = std::numeric_limits<double>::infinity();
  // 1-indexed internals; row/column 0 are sentinels.
  std::vector<double> u(static_cast<size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(n) + 1, 0.0);
  std::vector<int> match(static_cast<size_t>(n) + 1, 0);  // col -> row
  std::vector<int> way(static_cast<size_t>(n) + 1, 0);

  for (int i = 1; i <= n; ++i) {
    match[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<size_t>(n) + 1, kInf);
    std::vector<char> used(static_cast<size_t>(n) + 1, false);
    do {
      used[static_cast<size_t>(j0)] = true;
      int i0 = match[static_cast<size_t>(j0)];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        double cur = cost(i0 - 1, j - 1) - u[static_cast<size_t>(i0)] -
                     v[static_cast<size_t>(j)];
        if (cur < minv[static_cast<size_t>(j)]) {
          minv[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (minv[static_cast<size_t>(j)] < delta) {
          delta = minv[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(match[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          minv[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (match[static_cast<size_t>(j0)] != 0);
    // Augment along the alternating path.
    do {
      int j1 = way[static_cast<size_t>(j0)];
      match[static_cast<size_t>(j0)] = match[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> assignment(static_cast<size_t>(n), -1);
  for (int j = 1; j <= n; ++j) {
    assignment[static_cast<size_t>(match[static_cast<size_t>(j)] - 1)] = j - 1;
  }
  return assignment;
}

Result<std::vector<int>> SolveAssignmentMax(const Matrix& reward) {
  Matrix cost(reward.rows(), reward.cols());
  for (int64_t r = 0; r < reward.rows(); ++r) {
    for (int64_t c = 0; c < reward.cols(); ++c) cost(r, c) = -reward(r, c);
  }
  return SolveAssignmentMin(cost);
}

double AssignmentObjective(const Matrix& m, const std::vector<int>& assignment) {
  double total = 0.0;
  for (size_t r = 0; r < assignment.size(); ++r) {
    total += m(static_cast<int64_t>(r), assignment[r]);
  }
  return total;
}

}  // namespace goggles
