#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

/// \file svd.h
/// \brief Truncated singular value decomposition via block power iteration.
///
/// Used by the spectral co-clustering baseline (Dhillon, KDD 2001), which
/// needs the leading singular vectors of the normalized affinity matrix.

namespace goggles {

/// \brief Rank-k factors: A ~= U diag(S) V^T.
struct SvdResult {
  Matrix u;                   ///< m x k, orthonormal columns.
  std::vector<double> s;      ///< k singular values, descending.
  Matrix v;                   ///< n x k, orthonormal columns.
};

/// \brief Computes the top-`k` singular triplets of `a`.
///
/// Subspace (block power) iteration with Gram-Schmidt re-orthonormalization
/// on the smaller Gram side. Deterministic given `seed`.
Result<SvdResult> TruncatedSvd(const Matrix& a, int k, int iters = 50,
                               uint64_t seed = 7);

}  // namespace goggles
