#pragma once

#include <cstdint>
#include <vector>

/// \file gemm.h
/// \brief Packed cache-blocked GEMM in single precision (conv, linear,
/// batched prototype-affinity scoring) and double precision (the EM fit
/// cores of the hierarchical generative model).
///
/// The implementation is a cache-blocked, register-tiled, panel-packing
/// kernel (BLIS-style): op(A) and op(B) are repacked into contiguous
/// micro-panels once per cache block, and an MR x NR register micro-kernel
/// runs over the packed data. Macro row-tiles are distributed across worker
/// threads with ParallelForChunked. Packing scratch is thread_local and
/// grow-only (a fresh allocation per call showed up in the EM fit cores'
/// thousands of small products; a long-lived thread retains up to a few MB
/// of panel scratch until it exits). Concurrent GEMM calls from different
/// threads remain safe and lock-free: each thread owns its scratch, and
/// the kernels never re-enter themselves, so one call per thread holds
/// the buffers at a time.
///
/// Numerical contract: every C element is accumulated in a fixed order —
/// ascending k, with one partial sum per kGemmKChunk-sized k-block added
/// into C in block order — independent of the blocking geometry, the total
/// problem shape and the number of worker threads. The same (i, j) dot
/// product yields bit-identical results at 1 and N threads and whether it
/// is computed inside a large or a small GEMM. The serving path relies on
/// this to reproduce fit-time affinity scores exactly.
///
/// Rounding policy (both precisions): every accumulation is an explicit
/// std::fma, which is correctly rounded whether it lowers to the hardware
/// instruction or the library fallback. Results are therefore bit-portable
/// across machines, compile flags and runtime ISA tiers: the kernels are
/// compiled once per ISA tier (scalar/SSE2/AVX2/AVX-512/NEON translation
/// units, see isa.h) and dispatched at startup, and every tier reproduces
/// the same bits as a scalar loop applying std::fma in the same chunked
/// order — the contract the retained scalar references (SGemmReference,
/// DGemmReference) are built on, and what lets one portable binary and
/// one artifact serve a fleet of heterogeneous hosts.

namespace goggles {

/// \brief Fixed k-blocking (and accumulation-chunk) size of the packed
/// GEMM kernels. Part of the numerical contract: each C element is the
/// ordered sum of one partial sum per kGemmKChunk-aligned k-block.
inline constexpr int64_t kGemmKChunk = 256;

/// \brief C = alpha * op(A) * op(B) + beta * C (single precision).
///
/// A is (m x k) after optional transpose, B is (k x n) after optional
/// transpose, C is (m x n) row-major. BLAS semantics: when alpha == 0,
/// A and B are not referenced and C = beta * C; when beta == 0, C is
/// overwritten without being read (NaN/Inf already in C do not propagate).
/// Non-zero elements of A never short-circuit the accumulation, so NaN/Inf
/// in A or B propagate into C exactly as in reference BLAS.
void SGemm(bool transpose_a, bool transpose_b, int64_t m, int64_t n, int64_t k,
           float alpha, const float* a, int64_t lda, const float* b,
           int64_t ldb, float beta, float* c, int64_t ldc);

/// \brief SGemm with an explicit worker-thread count.
///
/// `num_threads <= 0` resolves to DefaultNumThreads(). Pass 1 to force a
/// serial run — e.g. from code that already parallelizes at a coarser
/// granularity (per-image conv batching) and must not oversubscribe.
/// Results are bit-identical for every thread count.
void SGemmWithThreads(bool transpose_a, bool transpose_b, int64_t m, int64_t n,
                      int64_t k, float alpha, const float* a, int64_t lda,
                      const float* b, int64_t ldb, float beta, float* c,
                      int64_t ldc, int num_threads);

/// \brief C = alpha * op(A) * op(B) + beta * C (double precision).
///
/// Same packing/blocking machinery, BLAS semantics and std::fma policy as
/// SGemm, so results are bit-identical at any thread count AND
/// bit-reproducible by the serial DGemmReference below. Used by the EM
/// fit cores, whose state must stay double for likelihood stability.
void DGemm(bool transpose_a, bool transpose_b, int64_t m, int64_t n, int64_t k,
           double alpha, const double* a, int64_t lda, const double* b,
           int64_t ldb, double beta, double* c, int64_t ldc);

/// \brief DGemm with an explicit worker-thread count (`<= 0` = default,
/// 1 = serial). Results are bit-identical for every thread count.
void DGemmWithThreads(bool transpose_a, bool transpose_b, int64_t m, int64_t n,
                      int64_t k, double alpha, const double* a, int64_t lda,
                      const double* b, int64_t ldb, double beta, double* c,
                      int64_t ldc, int num_threads);

/// \brief Prepacked double-precision op(A): every KC-aligned k-block's
/// MR-row micro-panels, in the exact layout the blocked driver consumes.
/// Built once with DGemmPackOperandA and reused across many products —
/// the EM fit cores multiply the same design matrix every iteration, and
/// for their skinny products (n = #mixture components) the transposing
/// repack of that operand would dominate the whole call. alpha is not
/// folded (packing is value-preserving; the products run with alpha = 1).
struct DGemmPackedA {
  std::vector<double> data;         ///< packed micro-panels
  std::vector<int64_t> block_base;  ///< offset of each k-block in `data`
  int64_t m = 0;                    ///< rows of op(A)
  int64_t k = 0;                    ///< depth (columns) of op(A)
  /// ISA tier (isa.h IsaTier value) whose micro-panel geometry `data`
  /// uses; DGemmWithPackedA dispatches to this tier, so a packed operand
  /// survives a mid-process tier switch. -1 = unpacked.
  int isa_tier = -1;
};

/// \brief Packs op(A) (m x k after the optional transpose) into the
/// micro-panel layout consumed by DGemmWithPackedA.
DGemmPackedA DGemmPackOperandA(bool transpose_a, int64_t m, int64_t k,
                               const double* a, int64_t lda);

/// \brief C = packed_a * op(B) + beta * C. Bit-identical to the
/// corresponding DGemm call with alpha == 1 — same packing layout, same
/// micro-kernels, same fixed accumulation order — at any thread count.
/// `packed_a` is read-only and may be shared by concurrent callers.
void DGemmWithPackedA(const DGemmPackedA& packed_a, bool transpose_b,
                      int64_t n, const double* b, int64_t ldb, double beta,
                      double* c, int64_t ldc, int num_threads = 0);

/// \brief Serial scalar reference with DGemm's exact accumulation
/// semantics: per C element, one std::fma-accumulated partial sum per
/// kGemmKChunk-sized k-block, added into C in ascending block order, with
/// alpha folded into each A element up front (one rounding, as the packed
/// kernel does). Bit-identical to DGemm/DGemmWithThreads by contract —
/// the EM fit cores retain this as their scalar-reference engine, and the
/// tests enforce the equality over randomized shapes.
void DGemmReference(bool transpose_a, bool transpose_b, int64_t m, int64_t n,
                    int64_t k, double alpha, const double* a, int64_t lda,
                    const double* b, int64_t ldb, double beta, double* c,
                    int64_t ldc);

/// \brief Single-precision twin of DGemmReference: a serial scalar
/// std::fma loop with SGemm's exact accumulation semantics, bit-identical
/// to SGemm at every ISA tier by contract (the forced-tier dispatch tests
/// enforce the equality).
void SGemmReference(bool transpose_a, bool transpose_b, int64_t m, int64_t n,
                    int64_t k, float alpha, const float* a, int64_t lda,
                    const float* b, int64_t ldb, float beta, float* c,
                    int64_t ldc);

}  // namespace goggles
