#pragma once

#include <cstdint>

/// \file gemm.h
/// \brief Single-precision GEMM used by the conv (im2col) and linear layers
/// and the batched prototype-affinity scorer.
///
/// The implementation is a cache-blocked, register-tiled, panel-packing
/// kernel (BLIS-style): op(A) and op(B) are repacked into contiguous
/// micro-panels once per cache block, and an MR x NR register micro-kernel
/// runs over the packed data. Macro row-tiles are distributed across worker
/// threads with ParallelForChunked; all scratch state is per-call, so
/// concurrent SGemm calls from different threads are safe and lock-free.
///
/// Numerical contract: every C element is accumulated in a fixed order
/// (ascending k), independent of the blocking geometry, the total problem
/// shape and the number of worker threads — the same (i, j) dot product
/// yields bit-identical results at 1 and N threads and whether it is
/// computed inside a large or a small GEMM. The serving path relies on
/// this to reproduce fit-time affinity scores exactly. The guarantee is
/// per build + host ISA: with GOGGLES_NATIVE_ARCH the kernels use FMA
/// where available, whose rounding differs from mul+add, so results are
/// not bit-portable across machines with different vector ISAs.

namespace goggles {

/// \brief C = alpha * op(A) * op(B) + beta * C.
///
/// A is (m x k) after optional transpose, B is (k x n) after optional
/// transpose, C is (m x n) row-major. BLAS semantics: when alpha == 0,
/// A and B are not referenced and C = beta * C; when beta == 0, C is
/// overwritten without being read (NaN/Inf already in C do not propagate).
/// Non-zero elements of A never short-circuit the accumulation, so NaN/Inf
/// in A or B propagate into C exactly as in reference BLAS.
void SGemm(bool transpose_a, bool transpose_b, int64_t m, int64_t n, int64_t k,
           float alpha, const float* a, int64_t lda, const float* b,
           int64_t ldb, float beta, float* c, int64_t ldc);

/// \brief SGemm with an explicit worker-thread count.
///
/// `num_threads <= 0` resolves to DefaultNumThreads(). Pass 1 to force a
/// serial run — e.g. from code that already parallelizes at a coarser
/// granularity (per-image conv batching) and must not oversubscribe.
/// Results are bit-identical for every thread count.
void SGemmWithThreads(bool transpose_a, bool transpose_b, int64_t m, int64_t n,
                      int64_t k, float alpha, const float* a, int64_t lda,
                      const float* b, int64_t ldb, float beta, float* c,
                      int64_t ldc, int num_threads);

}  // namespace goggles
