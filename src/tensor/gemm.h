#pragma once

#include <cstdint>

/// \file gemm.h
/// \brief Single-precision GEMM used by the conv (im2col) and linear layers.

namespace goggles {

/// \brief C = alpha * op(A) * op(B) + beta * C.
///
/// A is (m x k) after optional transpose, B is (k x n) after optional
/// transpose, C is (m x n) row-major. Parallelized over rows of C.
void SGemm(bool transpose_a, bool transpose_b, int64_t m, int64_t n, int64_t k,
           float alpha, const float* a, int64_t lda, const float* b,
           int64_t ldb, float beta, float* c, int64_t ldc);

}  // namespace goggles
