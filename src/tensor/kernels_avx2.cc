// AVX2+FMA tier (256-bit vectors, hardware vfmadd). Compiled with
// -mavx2 -mfma (see src/tensor/CMakeLists.txt).
#define GOGGLES_ISA_NS avx2
#define GOGGLES_ISA_TIER ::goggles::IsaTier::kAvx2
#include "tensor/kernels_impl.inc"
