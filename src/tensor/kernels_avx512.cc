// AVX-512 tier (512-bit vectors, hardware vfmadd, 32 zmm registers).
// Compiled with -mavx512f/bw/dq/vl -mfma -mprefer-vector-width=512 (see
// src/tensor/CMakeLists.txt).
#define GOGGLES_ISA_NS avx512
#define GOGGLES_ISA_TIER ::goggles::IsaTier::kAvx512
#include "tensor/kernels_impl.inc"
