#pragma once

#include <cstdint>

#include "tensor/gemm.h"
#include "tensor/isa.h"

/// \file kernel_table.h
/// \brief Internal per-ISA kernel dispatch table (see isa.h).
///
/// Each ISA tier's translation unit (kernels_<tier>.cc, all compiled
/// from kernels_impl.inc with tier-specific -m flags) exports one
/// GetKernels() returning its filled table. The public entry points in
/// gemm.cc / linalg/kernels.cc / ops.cc dispatch through
/// ActiveKernels(). Not part of the public API — the stable surface is
/// gemm.h / ops.h / linalg/kernels.h.

namespace goggles {

/// \brief Function-pointer table of one ISA tier's kernels. All f32/f64
/// entries are bit-identical across tiers (fixed-order std::fma
/// accumulation); the int8 entry accumulates exactly in int32, so it is
/// trivially identical across tiers too.
struct TensorKernels {
  void (*sgemm)(bool transpose_a, bool transpose_b, int64_t m, int64_t n,
                int64_t k, float alpha, const float* a, int64_t lda,
                const float* b, int64_t ldb, float beta, float* c,
                int64_t ldc, int num_threads);
  void (*dgemm)(bool transpose_a, bool transpose_b, int64_t m, int64_t n,
                int64_t k, double alpha, const double* a, int64_t lda,
                const double* b, int64_t ldb, double beta, double* c,
                int64_t ldc, int num_threads);
  void (*dgemm_pack_a)(bool transpose_a, int64_t m, int64_t k,
                       const double* a, int64_t lda, DGemmPackedA* out);
  void (*dgemm_with_packed_a)(const DGemmPackedA& packed_a, bool transpose_b,
                              int64_t n, const double* b, int64_t ldb,
                              double beta, double* c, int64_t ldc,
                              int num_threads);
  /// C[m,n] (int32, row-major, fully overwritten) = A[m,k] * B[k,n],
  /// both int8 row-major. Exact integer accumulation; |a|,|b| <= 127 and
  /// k <= 2^17 stay far from int32 overflow.
  void (*s8gemm_s32)(int64_t m, int64_t n, int64_t k, const int8_t* a,
                     int64_t lda, const int8_t* b, int64_t ldb, int32_t* c,
                     int64_t ldc);
  float (*dot_f)(const float* a, const float* b, int64_t n);
  float (*squared_distance_f)(const float* a, const float* b, int64_t n);
  /// One fused pass computing dot(a,b), |a|^2 and |b|^2.
  void (*cosine_terms_f)(const float* a, const float* b, int64_t n,
                         float* dot, float* na2, float* nb2);
};

/// \brief Table of the active tier (resolving it on first use).
const TensorKernels& ActiveKernels();

/// \brief Table of a specific compiled-in tier; nullptr when the binary
/// does not carry it.
const TensorKernels* KernelsForTier(IsaTier tier);

namespace isa_impl {
namespace scalar {
const TensorKernels& GetKernels();
}
#if defined(GOGGLES_ISA_HAVE_SSE2)
namespace sse2 {
const TensorKernels& GetKernels();
}
#endif
#if defined(GOGGLES_ISA_HAVE_AVX2)
namespace avx2 {
const TensorKernels& GetKernels();
}
#endif
#if defined(GOGGLES_ISA_HAVE_AVX512)
namespace avx512 {
const TensorKernels& GetKernels();
}
#endif
#if defined(GOGGLES_ISA_HAVE_NEON)
namespace neon {
const TensorKernels& GetKernels();
}
#endif
}  // namespace isa_impl

}  // namespace goggles
