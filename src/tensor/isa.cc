#include "tensor/isa.h"

#include <atomic>

#include "tensor/kernel_table.h"
#include "util/env.h"
#include "util/logging.h"

namespace goggles {
namespace {

/// Active tier, -1 until first resolution. Written once by the lazy
/// resolver (or by ForceIsaTier in tests); read on every dispatch.
std::atomic<int> g_active_tier{-1};

#if defined(__x86_64__) || defined(__i386__)
constexpr bool kIsX86 = true;
#else
constexpr bool kIsX86 = false;
#endif

}  // namespace

const char* IsaTierName(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return "scalar";
    case IsaTier::kSse2:
      return "sse2";
    case IsaTier::kAvx2:
      return "avx2";
    case IsaTier::kAvx512:
      return "avx512";
    case IsaTier::kNeon:
      return "neon";
  }
  return "unknown";
}

bool ParseIsaTierName(const std::string& name, IsaTier* out) {
  for (int t = 0; t < kNumIsaTiers; ++t) {
    const IsaTier tier = static_cast<IsaTier>(t);
    if (name == IsaTierName(tier)) {
      *out = tier;
      return true;
    }
  }
  return false;
}

uint32_t CompiledIsaMask() {
  uint32_t mask = IsaTierBit(IsaTier::kScalar);
#if defined(GOGGLES_ISA_HAVE_SSE2)
  mask |= IsaTierBit(IsaTier::kSse2);
#endif
#if defined(GOGGLES_ISA_HAVE_AVX2)
  mask |= IsaTierBit(IsaTier::kAvx2);
#endif
#if defined(GOGGLES_ISA_HAVE_AVX512)
  mask |= IsaTierBit(IsaTier::kAvx512);
#endif
#if defined(GOGGLES_ISA_HAVE_NEON)
  mask |= IsaTierBit(IsaTier::kNeon);
#endif
  return mask;
}

uint32_t HostIsaMask() {
  uint32_t mask = IsaTierBit(IsaTier::kScalar);
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("sse2")) mask |= IsaTierBit(IsaTier::kSse2);
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    mask |= IsaTierBit(IsaTier::kAvx2);
  }
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    mask |= IsaTierBit(IsaTier::kAvx512);
  }
#elif defined(__aarch64__)
  // NEON (with fused multiply-add) is part of the aarch64 base ISA.
  mask |= IsaTierBit(IsaTier::kNeon);
#endif
  return mask;
}

IsaTier ResolveIsaTier(bool has_request, IsaTier requested,
                       uint32_t host_mask, uint32_t compiled_mask) {
  const uint32_t usable = host_mask & compiled_mask;
  if (has_request && (usable & IsaTierBit(requested)) != 0) return requested;
  // Auto (or graceful fallback from an unusable request): the highest
  // usable tier. kScalar is in both masks by construction, so the loop
  // always terminates on a valid tier.
  for (int t = kNumIsaTiers - 1; t > 0; --t) {
    if ((usable & (1u << t)) != 0) return static_cast<IsaTier>(t);
  }
  return IsaTier::kScalar;
}

IsaTier ResolveIsaRequest(const std::string& request, uint32_t host_mask,
                          uint32_t compiled_mask) {
  bool has_request = false;
  IsaTier requested = IsaTier::kScalar;
  if (!request.empty()) {
    if (ParseIsaTierName(request, &requested)) {
      has_request = true;
    } else {
      GOGGLES_LOG(WARNING)
          << "GOGGLES_ISA=\"" << request
          << "\" is not a tier name (scalar|sse2|avx2|avx512|neon); "
             "using auto-detection";
    }
  }
  const IsaTier resolved =
      ResolveIsaTier(has_request, requested, host_mask, compiled_mask);
  if (has_request && resolved != requested) {
    GOGGLES_LOG(WARNING)
        << "GOGGLES_ISA=" << IsaTierName(requested)
        << " is not usable on this host/binary; falling back to "
        << IsaTierName(resolved);
  }
  return resolved;
}

IsaTier ActiveIsaTier() {
  const int cached = g_active_tier.load(std::memory_order_acquire);
  if (cached >= 0) return static_cast<IsaTier>(cached);

  const IsaTier resolved = ResolveIsaRequest(GetEnvOr("GOGGLES_ISA", ""),
                                             HostIsaMask(), CompiledIsaMask());
  // Concurrent first callers resolve the same value, so the race is
  // benign; the CAS just keeps the write once-only.
  int expected = -1;
  g_active_tier.compare_exchange_strong(expected,
                                        static_cast<int>(resolved),
                                        std::memory_order_release,
                                        std::memory_order_acquire);
  return static_cast<IsaTier>(g_active_tier.load(std::memory_order_acquire));
}

bool ForceIsaTier(IsaTier tier) {
  const uint32_t usable = HostIsaMask() & CompiledIsaMask();
  if ((usable & IsaTierBit(tier)) == 0) return false;
  g_active_tier.store(static_cast<int>(tier), std::memory_order_release);
  return true;
}

std::string HostCpuFlagsString() {
  std::string flags;
  const auto append = [&flags](const char* name) {
    if (!flags.empty()) flags += ' ';
    flags += name;
  };
  if (kIsX86) {
#if defined(__x86_64__) || defined(__i386__)
    // __builtin_cpu_supports only takes string literals, hence the macro.
#define GOGGLES_PROBE_CPU_FLAG(flag) \
  if (__builtin_cpu_supports(flag)) append(flag)
    GOGGLES_PROBE_CPU_FLAG("sse2");
    GOGGLES_PROBE_CPU_FLAG("sse3");
    GOGGLES_PROBE_CPU_FLAG("ssse3");
    GOGGLES_PROBE_CPU_FLAG("sse4.1");
    GOGGLES_PROBE_CPU_FLAG("sse4.2");
    GOGGLES_PROBE_CPU_FLAG("avx");
    GOGGLES_PROBE_CPU_FLAG("avx2");
    GOGGLES_PROBE_CPU_FLAG("fma");
    GOGGLES_PROBE_CPU_FLAG("avx512f");
    GOGGLES_PROBE_CPU_FLAG("avx512bw");
    GOGGLES_PROBE_CPU_FLAG("avx512dq");
    GOGGLES_PROBE_CPU_FLAG("avx512vl");
    GOGGLES_PROBE_CPU_FLAG("avx512cd");
#undef GOGGLES_PROBE_CPU_FLAG
#endif
  } else {
#if defined(__aarch64__)
    append("neon");
#endif
  }
  if (flags.empty()) flags = "baseline";
  return flags;
}

const TensorKernels* KernelsForTier(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return &isa_impl::scalar::GetKernels();
#if defined(GOGGLES_ISA_HAVE_SSE2)
    case IsaTier::kSse2:
      return &isa_impl::sse2::GetKernels();
#endif
#if defined(GOGGLES_ISA_HAVE_AVX2)
    case IsaTier::kAvx2:
      return &isa_impl::avx2::GetKernels();
#endif
#if defined(GOGGLES_ISA_HAVE_AVX512)
    case IsaTier::kAvx512:
      return &isa_impl::avx512::GetKernels();
#endif
#if defined(GOGGLES_ISA_HAVE_NEON)
    case IsaTier::kNeon:
      return &isa_impl::neon::GetKernels();
#endif
    default:
      return nullptr;
  }
}

const TensorKernels& ActiveKernels() {
  const TensorKernels* table = KernelsForTier(ActiveIsaTier());
  // ActiveIsaTier only resolves to compiled-in tiers, so table is never
  // null; the fallback keeps the dispatcher total anyway.
  return table != nullptr ? *table : isa_impl::scalar::GetKernels();
}

}  // namespace goggles
