// NEON tier: the aarch64 128-bit baseline (vfma is part of the base ISA,
// so std::fma lowers to the hardware instruction). Only compiled on
// aarch64 builds (see src/tensor/CMakeLists.txt); kept as a named tier so
// GOGGLES_ISA=neon and the bench ISA tags read the same everywhere.
#define GOGGLES_ISA_NS neon
#define GOGGLES_ISA_TIER ::goggles::IsaTier::kNeon
#include "tensor/kernels_impl.inc"
