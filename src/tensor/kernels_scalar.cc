// Scalar baseline tier: compiled with no extra -m flags, so it runs on
// every CPU of the target architecture. Always linked in; the dispatch
// fallback and the bit-identity reference for every other tier.
#define GOGGLES_ISA_NS scalar
#define GOGGLES_ISA_TIER ::goggles::IsaTier::kScalar
#include "tensor/kernels_impl.inc"
