#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

/// \file ops.h
/// \brief Neural-network operators (forward + backward) on NCHW tensors.
///
/// Convolution uses the im2col + GEMM formulation; max-pooling records
/// argmax indices for exact gradient routing. All backward functions are
/// validated against central finite differences in the test suite.

namespace goggles {

/// \brief Convolution hyper-parameters.
struct Conv2dParams {
  int64_t stride = 1;
  int64_t pad = 1;
};

/// \brief Output spatial size for a conv/pool dimension.
inline int64_t ConvOutDim(int64_t in, int64_t kernel, int64_t stride,
                          int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

/// \brief Expands image `x` (C x H x W) into columns (C*kh*kw x OH*OW).
void Im2Col(const float* x, int64_t channels, int64_t height, int64_t width,
            int64_t kh, int64_t kw, int64_t stride, int64_t pad, float* col);

/// \brief Im2Col into a column matrix with row stride `ld` >= OH*OW:
/// this image's columns land in col[row * ld + 0 .. OH*OW), so several
/// images' expansions can sit side by side in one fused GEMM operand
/// (the batched-inference conv path).
void Im2ColStrided(const float* x, int64_t channels, int64_t height,
                   int64_t width, int64_t kh, int64_t kw, int64_t stride,
                   int64_t pad, float* col, int64_t ld);

/// \brief Accumulates columns back into image gradient (inverse of Im2Col).
void Col2Im(const float* col, int64_t channels, int64_t height, int64_t width,
            int64_t kh, int64_t kw, int64_t stride, int64_t pad, float* x);

/// \brief y = conv2d(x, w) + b.
///
/// Lowered through im2col + GEMM. The im2col expansion runs in a reusable
/// per-thread scratch buffer (no allocation per image once the buffer has
/// grown to the working size), and the batch dimension is distributed
/// across worker threads, each running a serial GEMM — so concurrent
/// Conv2dForward calls from different threads are safe and lock-free.
///
/// \param x input  [N, C, H, W]
/// \param w weight [OC, C, KH, KW]
/// \param b bias   [OC]
Result<Tensor> Conv2dForward(const Tensor& x, const Tensor& w, const Tensor& b,
                             const Conv2dParams& params);

/// \brief Inference precision of the quantized convolution path
/// (GOGGLES_EXTRACT_PRECISION). kF32 is the default full-precision path;
/// the quantized modes trade feature fidelity for speed/footprint and sit
/// explicitly OUTSIDE the f32 bit-identity contract (their outputs differ
/// from kF32), though each mode is itself deterministic and bit-identical
/// across ISA tiers: bf16 rounding is exact, the int8 products accumulate
/// exactly in int32, and every float epilogue is a fixed per-element
/// operation sequence.
enum class ConvPrecision : int {
  kF32 = 0,
  kBf16 = 1,  ///< weights stored bf16 (round-to-nearest-even), f32 compute
  kInt8 = 2,  ///< int8 weight/activation products, f32 accumulation epilogue
};

/// \brief Lower-case mode name ("f32", "bf16", "int8") — the exact
/// spelling GOGGLES_EXTRACT_PRECISION accepts.
const char* ConvPrecisionName(ConvPrecision precision);

/// \brief Strict parse of a GOGGLES_EXTRACT_PRECISION value. Returns
/// false (leaving `*out` untouched) for anything but the exact names.
bool ParseConvPrecisionName(const std::string& name, ConvPrecision* out);

/// \brief f32 -> bf16 with round-to-nearest-even (NaN kept quiet).
uint16_t F32ToBf16(float v);

/// \brief bf16 -> f32 (exact).
float Bf16ToF32(uint16_t bits);

/// \brief Conv weights pre-quantized for one inference precision.
/// Built once per layer (QuantizeConvWeights); read-only afterwards, so
/// concurrent forwards may share it.
struct QuantizedConvWeights {
  ConvPrecision precision = ConvPrecision::kF32;
  std::vector<int64_t> shape;  ///< [OC, C, KH, KW]
  std::vector<uint16_t> bf16;  ///< kBf16: weight bits, same layout as f32
  std::vector<int8_t> q8;      ///< kInt8: symmetric per-out-channel values
  std::vector<float> scale;    ///< kInt8: per-out-channel dequant scales
};

/// \brief Quantizes conv weights [OC, C, KH, KW] for `precision`.
/// kInt8 uses symmetric per-out-channel scales (absmax / 127, values
/// clamped to [-127, 127]); kBf16 rounds each weight to nearest-even.
QuantizedConvWeights QuantizeConvWeights(const Tensor& w,
                                         ConvPrecision precision);

/// \brief Quantized twin of Conv2dForward (kBf16 or kInt8 weights).
///
/// kBf16 expands the stored weights to f32 and runs the standard im2col
/// + SGemm path. kInt8 additionally quantizes each image's im2col
/// columns with a PER-IMAGE symmetric activation scale (so a batched
/// forward stays bit-identical to singleton forwards — the serve
/// batching contract), runs the int8 GEMM with exact int32 accumulation,
/// and dequantizes into f32 with the bias added in the same pass.
Result<Tensor> Conv2dForwardQuantized(const Tensor& x,
                                      const QuantizedConvWeights& w,
                                      const Tensor& b,
                                      const Conv2dParams& params);

/// \brief Gradients of a conv2d w.r.t. input, weight and bias.
struct Conv2dGrads {
  Tensor dx;
  Tensor dw;
  Tensor db;
};

/// \brief Backward pass matching Conv2dForward.
Result<Conv2dGrads> Conv2dBackward(const Tensor& x, const Tensor& w,
                                   const Tensor& dy,
                                   const Conv2dParams& params);

/// \brief Max-pool output plus flat argmax indices (into the input tensor)
/// for each output element, used for gradient routing.
struct MaxPoolResult {
  Tensor y;
  std::vector<int64_t> argmax;
};

/// \brief y = maxpool2d(x) with square window `kernel` and stride `stride`.
Result<MaxPoolResult> MaxPool2dForward(const Tensor& x, int64_t kernel,
                                       int64_t stride);

/// \brief Inference-only max pool: same output values as MaxPool2dForward
/// but no argmax bookkeeping, parallelized over the N*C planes. Used by
/// the thread-safe (const) layer inference path.
Result<Tensor> MaxPool2dInference(const Tensor& x, int64_t kernel,
                                  int64_t stride);

/// \brief Routes `dy` back through the recorded argmax indices.
Result<Tensor> MaxPool2dBackward(const std::vector<int64_t>& argmax,
                                 const std::vector<int64_t>& x_shape,
                                 const Tensor& dy);

/// \brief Elementwise max(x, 0).
Tensor ReluForward(const Tensor& x);

/// \brief dx = dy * 1[x > 0].
Tensor ReluBackward(const Tensor& x, const Tensor& dy);

/// \brief y = x * w^T + b for x: [N, D], w: [out, D], b: [out].
Result<Tensor> LinearForward(const Tensor& x, const Tensor& w,
                             const Tensor& b);

/// \brief Gradients of a linear layer.
struct LinearGrads {
  Tensor dx;
  Tensor dw;
  Tensor db;
};

/// \brief Backward pass matching LinearForward.
Result<LinearGrads> LinearBackward(const Tensor& x, const Tensor& w,
                                   const Tensor& dy);

/// \brief Row-wise softmax of logits [N, K].
Result<Tensor> SoftmaxForward(const Tensor& logits);

/// \brief Mean cross-entropy against (possibly soft) target distributions.
///
/// Implements the paper's probabilistic-label training objective (§2.1):
/// the expected loss E_{y~ytilde}[l(h(x), y)] equals cross-entropy against
/// the soft label vector, so the same function serves hard labels (one-hot
/// targets) and GOGGLES-generated probabilistic labels.
struct SoftmaxCrossEntropyResult {
  double loss = 0.0;   ///< mean over the batch
  Tensor probs;        ///< softmax(logits), [N, K]
  Tensor dlogits;      ///< gradient of mean loss w.r.t. logits, [N, K]
};

/// \brief Computes loss, probabilities and logits gradient in one pass.
Result<SoftmaxCrossEntropyResult> SoftmaxCrossEntropy(const Tensor& logits,
                                                      const Tensor& targets);

/// \brief Per-channel global max pooling: [N, C, H, W] -> [N, C].
Result<Tensor> GlobalMaxPool(const Tensor& x);

}  // namespace goggles
