#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

/// \file ops.h
/// \brief Neural-network operators (forward + backward) on NCHW tensors.
///
/// Convolution uses the im2col + GEMM formulation; max-pooling records
/// argmax indices for exact gradient routing. All backward functions are
/// validated against central finite differences in the test suite.

namespace goggles {

/// \brief Convolution hyper-parameters.
struct Conv2dParams {
  int64_t stride = 1;
  int64_t pad = 1;
};

/// \brief Output spatial size for a conv/pool dimension.
inline int64_t ConvOutDim(int64_t in, int64_t kernel, int64_t stride,
                          int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

/// \brief Expands image `x` (C x H x W) into columns (C*kh*kw x OH*OW).
void Im2Col(const float* x, int64_t channels, int64_t height, int64_t width,
            int64_t kh, int64_t kw, int64_t stride, int64_t pad, float* col);

/// \brief Im2Col into a column matrix with row stride `ld` >= OH*OW:
/// this image's columns land in col[row * ld + 0 .. OH*OW), so several
/// images' expansions can sit side by side in one fused GEMM operand
/// (the batched-inference conv path).
void Im2ColStrided(const float* x, int64_t channels, int64_t height,
                   int64_t width, int64_t kh, int64_t kw, int64_t stride,
                   int64_t pad, float* col, int64_t ld);

/// \brief Accumulates columns back into image gradient (inverse of Im2Col).
void Col2Im(const float* col, int64_t channels, int64_t height, int64_t width,
            int64_t kh, int64_t kw, int64_t stride, int64_t pad, float* x);

/// \brief y = conv2d(x, w) + b.
///
/// Lowered through im2col + GEMM. The im2col expansion runs in a reusable
/// per-thread scratch buffer (no allocation per image once the buffer has
/// grown to the working size), and the batch dimension is distributed
/// across worker threads, each running a serial GEMM — so concurrent
/// Conv2dForward calls from different threads are safe and lock-free.
///
/// \param x input  [N, C, H, W]
/// \param w weight [OC, C, KH, KW]
/// \param b bias   [OC]
Result<Tensor> Conv2dForward(const Tensor& x, const Tensor& w, const Tensor& b,
                             const Conv2dParams& params);

/// \brief Gradients of a conv2d w.r.t. input, weight and bias.
struct Conv2dGrads {
  Tensor dx;
  Tensor dw;
  Tensor db;
};

/// \brief Backward pass matching Conv2dForward.
Result<Conv2dGrads> Conv2dBackward(const Tensor& x, const Tensor& w,
                                   const Tensor& dy,
                                   const Conv2dParams& params);

/// \brief Max-pool output plus flat argmax indices (into the input tensor)
/// for each output element, used for gradient routing.
struct MaxPoolResult {
  Tensor y;
  std::vector<int64_t> argmax;
};

/// \brief y = maxpool2d(x) with square window `kernel` and stride `stride`.
Result<MaxPoolResult> MaxPool2dForward(const Tensor& x, int64_t kernel,
                                       int64_t stride);

/// \brief Inference-only max pool: same output values as MaxPool2dForward
/// but no argmax bookkeeping, parallelized over the N*C planes. Used by
/// the thread-safe (const) layer inference path.
Result<Tensor> MaxPool2dInference(const Tensor& x, int64_t kernel,
                                  int64_t stride);

/// \brief Routes `dy` back through the recorded argmax indices.
Result<Tensor> MaxPool2dBackward(const std::vector<int64_t>& argmax,
                                 const std::vector<int64_t>& x_shape,
                                 const Tensor& dy);

/// \brief Elementwise max(x, 0).
Tensor ReluForward(const Tensor& x);

/// \brief dx = dy * 1[x > 0].
Tensor ReluBackward(const Tensor& x, const Tensor& dy);

/// \brief y = x * w^T + b for x: [N, D], w: [out, D], b: [out].
Result<Tensor> LinearForward(const Tensor& x, const Tensor& w,
                             const Tensor& b);

/// \brief Gradients of a linear layer.
struct LinearGrads {
  Tensor dx;
  Tensor dw;
  Tensor db;
};

/// \brief Backward pass matching LinearForward.
Result<LinearGrads> LinearBackward(const Tensor& x, const Tensor& w,
                                   const Tensor& dy);

/// \brief Row-wise softmax of logits [N, K].
Result<Tensor> SoftmaxForward(const Tensor& logits);

/// \brief Mean cross-entropy against (possibly soft) target distributions.
///
/// Implements the paper's probabilistic-label training objective (§2.1):
/// the expected loss E_{y~ytilde}[l(h(x), y)] equals cross-entropy against
/// the soft label vector, so the same function serves hard labels (one-hot
/// targets) and GOGGLES-generated probabilistic labels.
struct SoftmaxCrossEntropyResult {
  double loss = 0.0;   ///< mean over the batch
  Tensor probs;        ///< softmax(logits), [N, K]
  Tensor dlogits;      ///< gradient of mean loss w.r.t. logits, [N, K]
};

/// \brief Computes loss, probabilities and logits gradient in one pass.
Result<SoftmaxCrossEntropyResult> SoftmaxCrossEntropy(const Tensor& logits,
                                                      const Tensor& targets);

/// \brief Per-channel global max pooling: [N, C, H, W] -> [N, C].
Result<Tensor> GlobalMaxPool(const Tensor& x);

}  // namespace goggles
