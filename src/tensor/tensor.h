#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

/// \file tensor.h
/// \brief Dense float tensor with NCHW conventions for the NN substrate.
///
/// The paper's affinity functions are built on the intermediate filter maps
/// of a convolutional network (VGG-16 in the paper, our `VggMini` here).
/// This tensor type backs that network's forward/backward computation.

namespace goggles {

/// \brief A dense, contiguous, row-major float tensor.
class Tensor {
 public:
  Tensor() = default;

  /// Constructs a tensor of the given shape filled with `fill`.
  explicit Tensor(std::vector<int64_t> shape, float fill = 0.0f);

  /// \brief All-zero tensor of the given shape.
  static Tensor Zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }

  /// \brief Tensor with i.i.d. N(0, stddev^2) entries.
  static Tensor RandomNormal(std::vector<int64_t> shape, float stddev, Rng* rng);

  /// \brief Tensor with i.i.d. Uniform(lo, hi) entries.
  static Tensor RandomUniform(std::vector<int64_t> shape, float lo, float hi,
                              Rng* rng);

  /// \brief 1-D tensor from explicit values.
  static Tensor FromVector(const std::vector<float>& values);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t dim(int i) const { return shape_[static_cast<size_t>(i)]; }
  int64_t NumElements() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// \brief 4-D accessor (NCHW).
  float& At4(int64_t n, int64_t c, int64_t h, int64_t w) {
    return data_[static_cast<size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }
  float At4(int64_t n, int64_t c, int64_t h, int64_t w) const {
    return data_[static_cast<size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }

  /// \brief 2-D accessor (row, col).
  float& At2(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }
  float At2(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }

  /// \brief Reinterprets the shape; element count must be preserved.
  Status Reshape(std::vector<int64_t> new_shape);

  /// \brief Sets every element to `value`.
  void Fill(float value);

  /// \brief Multiplies every element by `factor`.
  void Scale(float factor);

  /// \brief this += other (shapes must match exactly).
  Status AddInPlace(const Tensor& other);

  /// \brief this += factor * other (shapes must match exactly).
  Status Axpy(float factor, const Tensor& other);

  /// \brief Sum of all elements.
  double Sum() const;

  /// \brief Maximum absolute element (0 for empty tensors).
  float MaxAbs() const;

  /// \brief Human-readable shape, e.g. "[8, 3, 32, 32]".
  std::string ShapeString() const;

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

/// \brief True iff the two shapes are identical.
bool SameShape(const Tensor& a, const Tensor& b);

}  // namespace goggles
