#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "tensor/gemm.h"
#include "tensor/kernel_table.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace goggles {

void Im2Col(const float* x, int64_t channels, int64_t height, int64_t width,
            int64_t kh, int64_t kw, int64_t stride, int64_t pad, float* col) {
  const int64_t out_area =
      ConvOutDim(height, kh, stride, pad) * ConvOutDim(width, kw, stride, pad);
  Im2ColStrided(x, channels, height, width, kh, kw, stride, pad, col,
                out_area);
}

void Im2ColStrided(const float* x, int64_t channels, int64_t height,
                   int64_t width, int64_t kh, int64_t kw, int64_t stride,
                   int64_t pad, float* col, int64_t ld) {
  const int64_t oh = ConvOutDim(height, kh, stride, pad);
  const int64_t ow = ConvOutDim(width, kw, stride, pad);
  int64_t row = 0;
  for (int64_t c = 0; c < channels; ++c) {
    const float* xc = x + c * height * width;
    for (int64_t dh = 0; dh < kh; ++dh) {
      for (int64_t dw = 0; dw < kw; ++dw, ++row) {
        float* dst = col + row * ld;
        // For stride 1 the in-bounds output positions form one contiguous
        // span copied straight from the input row; only the pad fringe is
        // written element-free. xo maps to in_x = xo - pad + dw, valid for
        // xo in [pad - dw, width + pad - dw).
        const int64_t x0 =
            stride == 1 ? std::min(std::max<int64_t>(0, pad - dw), ow) : 0;
        const int64_t x1 =
            stride == 1 ? std::max(x0, std::min(ow, width + pad - dw)) : 0;
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t in_y = y * stride - pad + dh;
          if (in_y < 0 || in_y >= height) {
            std::fill(dst + y * ow, dst + (y + 1) * ow, 0.0f);
            continue;
          }
          const float* src_row = xc + in_y * width;
          if (stride == 1) {
            float* out = dst + y * ow;
            std::fill(out, out + x0, 0.0f);
            std::copy(src_row + x0 - pad + dw, src_row + x1 - pad + dw,
                      out + x0);
            std::fill(out + x1, out + ow, 0.0f);
            continue;
          }
          for (int64_t xo = 0; xo < ow; ++xo) {
            const int64_t in_x = xo * stride - pad + dw;
            dst[y * ow + xo] =
                (in_x >= 0 && in_x < width) ? src_row[in_x] : 0.0f;
          }
        }
      }
    }
  }
}

void Col2Im(const float* col, int64_t channels, int64_t height, int64_t width,
            int64_t kh, int64_t kw, int64_t stride, int64_t pad, float* x) {
  const int64_t oh = ConvOutDim(height, kh, stride, pad);
  const int64_t ow = ConvOutDim(width, kw, stride, pad);
  const int64_t out_area = oh * ow;
  int64_t row = 0;
  for (int64_t c = 0; c < channels; ++c) {
    float* xc = x + c * height * width;
    for (int64_t dh = 0; dh < kh; ++dh) {
      for (int64_t dw = 0; dw < kw; ++dw, ++row) {
        const float* src = col + row * out_area;
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t in_y = y * stride - pad + dh;
          if (in_y < 0 || in_y >= height) continue;
          float* dst_row = xc + in_y * width;
          for (int64_t xo = 0; xo < ow; ++xo) {
            const int64_t in_x = xo * stride - pad + dw;
            if (in_x >= 0 && in_x < width) dst_row[in_x] += src[y * ow + xo];
          }
        }
      }
    }
  }
}

namespace {

/// Reusable per-thread im2col scratch, grown to the high-water mark and
/// never shrunk. On long-lived threads (the serving worker pool, the
/// caller's thread in serial forwards) repeated convolutions stop
/// allocating after the first call; short-lived ParallelFor workers
/// still amortize it across every image of their chunk. The retained
/// footprint is bounded by the largest conv working set the thread has
/// run (col_rows * out_area floats, 2x for backward).
std::vector<float>& Im2ColScratch(int64_t min_size) {
  static thread_local std::vector<float> scratch;
  if (static_cast<int64_t>(scratch.size()) < min_size) {
    scratch.resize(static_cast<size_t>(min_size));
  }
  return scratch;
}

Status CheckConvShapes(const Tensor& x, const Tensor& w, const Tensor& b) {
  if (x.ndim() != 4) return Status::InvalidArgument("conv2d: x must be NCHW");
  if (w.ndim() != 4) {
    return Status::InvalidArgument("conv2d: w must be [OC, C, KH, KW]");
  }
  if (x.dim(1) != w.dim(1)) {
    return Status::InvalidArgument(StrFormat(
        "conv2d: channel mismatch x=%lld w=%lld",
        static_cast<long long>(x.dim(1)), static_cast<long long>(w.dim(1))));
  }
  if (b.NumElements() != w.dim(0)) {
    return Status::InvalidArgument("conv2d: bias size must equal out-channels");
  }
  return Status::OK();
}

}  // namespace

Result<Tensor> Conv2dForward(const Tensor& x, const Tensor& w, const Tensor& b,
                             const Conv2dParams& params) {
  GOGGLES_RETURN_NOT_OK(CheckConvShapes(x, w, b));
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const int64_t oc = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  const int64_t oh = ConvOutDim(h, kh, params.stride, params.pad);
  const int64_t ow = ConvOutDim(wd, kw, params.stride, params.pad);
  if (oh <= 0 || ow <= 0) {
    return Status::InvalidArgument("conv2d: output would be empty");
  }

  Tensor y({n, oc, oh, ow});
  const int64_t col_rows = c * kh * kw;
  const int64_t out_area = oh * ow;

  // Pick the parallel axis by batch size: a batch at least as wide as
  // the machine is split across image workers (serial GEMM each, one
  // im2col scratch per worker); smaller batches keep the images serial
  // so every image's GEMM can use all cores (nested parallelism inside
  // an image worker would collapse to serial, see ParallelForChunked).
  // Per-element GEMM results are thread-count-independent, so the output
  // is bit-identical either way.
  const int total_threads = DefaultNumThreads();
  const bool image_parallel = total_threads > 1 && n >= total_threads;
  const int gemm_threads = image_parallel ? 1 : 0;

  // Fused batched-inference path: when the images run serially anyway
  // (single thread, nested-parallel collapse, or a batch narrower than
  // the machine) and the spatial output is small, expand every image's
  // columns side by side and run ONE GEMM per layer instead of one per
  // image. This packs the weight panel once for the whole batch and fills
  // the register tile's N dimension at the late backbone layers (out_area
  // as low as 4 vs a 16-wide tile), so small-image batches stop being
  // setup-bound — measured ~3x on the 2x2/4x4 stages. Large spatial
  // outputs keep the per-image path: their GEMMs already fill the tile,
  // and the strided fused im2col only costs cache locality there.
  // Per-element accumulation order is unchanged (the GEMM is
  // bit-deterministic across shapes), so results are bit-identical to the
  // per-image path.
  constexpr int64_t kFusedMaxOutArea = 64;
  if (!image_parallel && n > 1 && out_area <= kFusedMaxOutArea) {
    const int64_t fused_cols = n * out_area;
    std::vector<float>& scratch =
        Im2ColScratch((col_rows + oc) * fused_cols);
    float* cols = scratch.data();
    float* gemm_out = cols + col_rows * fused_cols;
    for (int64_t i = 0; i < n; ++i) {
      Im2ColStrided(x.data() + i * c * h * wd, c, h, wd, kh, kw,
                    params.stride, params.pad, cols + i * out_area,
                    fused_cols);
    }
    // gemm_out [oc, n*out_area] = w [oc, col_rows] * cols
    SGemm(false, false, oc, fused_cols, col_rows, 1.0f, w.data(), col_rows,
          cols, fused_cols, 0.0f, gemm_out, fused_cols);
    // Scatter back to the image-major output layout, adding the bias in
    // the same pass (the per-image path also adds it after the GEMM).
    for (int64_t i = 0; i < n; ++i) {
      float* yi = y.data() + i * oc * out_area;
      for (int64_t o = 0; o < oc; ++o) {
        const float bias = b[o];
        const float* src = gemm_out + o * fused_cols + i * out_area;
        float* dst = yi + o * out_area;
        for (int64_t p = 0; p < out_area; ++p) dst[p] = src[p] + bias;
      }
    }
    return y;
  }

  ParallelForChunked(
      0, n,
      [&](int64_t begin, int64_t end) {
        std::vector<float>& col = Im2ColScratch(col_rows * out_area);
        for (int64_t i = begin; i < end; ++i) {
          Im2Col(x.data() + i * c * h * wd, c, h, wd, kh, kw, params.stride,
                 params.pad, col.data());
          // y_i [oc, out_area] = w [oc, col_rows] * col [col_rows, out_area]
          SGemmWithThreads(false, false, oc, out_area, col_rows, 1.0f,
                           w.data(), col_rows, col.data(), out_area, 0.0f,
                           y.data() + i * oc * out_area, out_area,
                           gemm_threads);
          float* yi = y.data() + i * oc * out_area;
          for (int64_t o = 0; o < oc; ++o) {
            const float bias = b[o];
            for (int64_t p = 0; p < out_area; ++p) yi[o * out_area + p] += bias;
          }
        }
      },
      image_parallel ? total_threads : 1);
  return y;
}

const char* ConvPrecisionName(ConvPrecision precision) {
  switch (precision) {
    case ConvPrecision::kF32:
      return "f32";
    case ConvPrecision::kBf16:
      return "bf16";
    case ConvPrecision::kInt8:
      return "int8";
  }
  return "unknown";
}

bool ParseConvPrecisionName(const std::string& name, ConvPrecision* out) {
  for (const ConvPrecision p : {ConvPrecision::kF32, ConvPrecision::kBf16,
                                ConvPrecision::kInt8}) {
    if (name == ConvPrecisionName(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

uint16_t F32ToBf16(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  if ((bits & 0x7fffffffu) > 0x7f800000u) {
    // NaN: truncate but force a mantissa bit so it stays a (quiet) NaN.
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  // Round to nearest, ties to even on the kept 16 bits.
  const uint32_t rounding = 0x7fffu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>((bits + rounding) >> 16);
}

float Bf16ToF32(uint16_t bits16) {
  const uint32_t bits = static_cast<uint32_t>(bits16) << 16;
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

QuantizedConvWeights QuantizeConvWeights(const Tensor& w,
                                         ConvPrecision precision) {
  QuantizedConvWeights out;
  out.precision = precision;
  out.shape = w.shape();
  const int64_t total = w.NumElements();
  const float* src = w.data();
  if (precision == ConvPrecision::kBf16) {
    out.bf16.resize(static_cast<size_t>(total));
    for (int64_t i = 0; i < total; ++i) out.bf16[i] = F32ToBf16(src[i]);
  } else if (precision == ConvPrecision::kInt8) {
    const int64_t oc = w.dim(0);
    const int64_t per_channel = total / std::max<int64_t>(oc, 1);
    out.q8.resize(static_cast<size_t>(total));
    out.scale.resize(static_cast<size_t>(oc));
    for (int64_t o = 0; o < oc; ++o) {
      const float* row = src + o * per_channel;
      float absmax = 0.0f;
      for (int64_t i = 0; i < per_channel; ++i) {
        absmax = std::max(absmax, std::fabs(row[i]));
      }
      // Symmetric per-out-channel scale; an all-zero channel quantizes to
      // zeros with scale 0, which dequantizes exactly to zero.
      const float scale = absmax / 127.0f;
      const float inv = absmax > 0.0f ? 127.0f / absmax : 0.0f;
      out.scale[static_cast<size_t>(o)] = scale;
      int8_t* qrow = out.q8.data() + o * per_channel;
      for (int64_t i = 0; i < per_channel; ++i) {
        const long q = lrintf(row[i] * inv);
        qrow[i] = static_cast<int8_t>(
            std::min<long>(127, std::max<long>(-127, q)));
      }
    }
  }
  return out;
}

Result<Tensor> Conv2dForwardQuantized(const Tensor& x,
                                      const QuantizedConvWeights& w,
                                      const Tensor& b,
                                      const Conv2dParams& params) {
  if (w.shape.size() != 4) {
    return Status::InvalidArgument("conv2d quant: w must be [OC, C, KH, KW]");
  }
  const int64_t oc = w.shape[0], wc = w.shape[1];
  const int64_t kh = w.shape[2], kw = w.shape[3];
  const int64_t wtotal = oc * wc * kh * kw;

  if (w.precision == ConvPrecision::kBf16) {
    if (static_cast<int64_t>(w.bf16.size()) != wtotal) {
      return Status::InvalidArgument("conv2d quant: bf16 weight size mismatch");
    }
    // Expand once and reuse the f32 path: bf16 is a storage format here,
    // compute stays f32 (and therefore bit-identical across ISA tiers).
    Tensor wf(w.shape);
    float* dst = wf.data();
    for (int64_t i = 0; i < wtotal; ++i) dst[i] = Bf16ToF32(w.bf16[i]);
    return Conv2dForward(x, wf, b, params);
  }
  if (w.precision != ConvPrecision::kInt8) {
    return Status::InvalidArgument(
        "conv2d quant: weights carry no quantized payload (f32 precision); "
        "use Conv2dForward");
  }
  if (static_cast<int64_t>(w.q8.size()) != wtotal ||
      static_cast<int64_t>(w.scale.size()) != oc) {
    return Status::InvalidArgument("conv2d quant: int8 weight size mismatch");
  }
  if (x.ndim() != 4) {
    return Status::InvalidArgument("conv2d quant: x must be NCHW");
  }
  if (x.dim(1) != wc) {
    return Status::InvalidArgument("conv2d quant: channel mismatch");
  }
  if (b.NumElements() != oc) {
    return Status::InvalidArgument(
        "conv2d quant: bias size must equal out-channels");
  }
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const int64_t oh = ConvOutDim(h, kh, params.stride, params.pad);
  const int64_t ow = ConvOutDim(wd, kw, params.stride, params.pad);
  if (oh <= 0 || ow <= 0) {
    return Status::InvalidArgument("conv2d quant: output would be empty");
  }

  Tensor y({n, oc, oh, ow});
  const int64_t col_rows = c * kh * kw;
  const int64_t out_area = oh * ow;

  // Every per-image step is order-independent (absmax), exact (int32
  // accumulation) or a fixed per-element float sequence (quantize,
  // dequantize), so the output is bit-identical for any thread count and
  // any batch composition: the activation scale is PER IMAGE, never per
  // batch, which keeps a batched forward equal to singleton forwards
  // (the serve micro-batching contract).
  ParallelForChunked(0, n, [&](int64_t begin, int64_t end) {
    std::vector<float>& col = Im2ColScratch(col_rows * out_area);
    static thread_local std::vector<int8_t> qcol;
    static thread_local std::vector<int32_t> acc;
    if (static_cast<int64_t>(qcol.size()) < col_rows * out_area) {
      qcol.resize(static_cast<size_t>(col_rows * out_area));
    }
    if (static_cast<int64_t>(acc.size()) < oc * out_area) {
      acc.resize(static_cast<size_t>(oc * out_area));
    }
    for (int64_t i = begin; i < end; ++i) {
      Im2Col(x.data() + i * c * h * wd, c, h, wd, kh, kw, params.stride,
             params.pad, col.data());
      const int64_t cols_total = col_rows * out_area;
      float absmax = 0.0f;
      for (int64_t j = 0; j < cols_total; ++j) {
        absmax = std::max(absmax, std::fabs(col[static_cast<size_t>(j)]));
      }
      const float a_scale = absmax / 127.0f;
      const float inv = absmax > 0.0f ? 127.0f / absmax : 0.0f;
      for (int64_t j = 0; j < cols_total; ++j) {
        const long q = lrintf(col[static_cast<size_t>(j)] * inv);
        qcol[static_cast<size_t>(j)] = static_cast<int8_t>(
            std::min<long>(127, std::max<long>(-127, q)));
      }
      // acc [oc, out_area] = q8(w) [oc, col_rows] * qcol, exact in int32.
      ActiveKernels().s8gemm_s32(oc, out_area, col_rows, w.q8.data(),
                                 col_rows, qcol.data(), out_area, acc.data(),
                                 out_area);
      float* yi = y.data() + i * oc * out_area;
      for (int64_t o = 0; o < oc; ++o) {
        const float dequant = w.scale[static_cast<size_t>(o)] * a_scale;
        const float bias = b[o];
        const int32_t* arow = acc.data() + o * out_area;
        float* dst = yi + o * out_area;
        for (int64_t p = 0; p < out_area; ++p) {
          dst[p] = std::fma(static_cast<float>(arow[p]), dequant, bias);
        }
      }
    }
  });
  return y;
}

Result<Conv2dGrads> Conv2dBackward(const Tensor& x, const Tensor& w,
                                   const Tensor& dy,
                                   const Conv2dParams& params) {
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const int64_t oc = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  const int64_t oh = ConvOutDim(h, kh, params.stride, params.pad);
  const int64_t ow = ConvOutDim(wd, kw, params.stride, params.pad);
  if (dy.ndim() != 4 || dy.dim(0) != n || dy.dim(1) != oc || dy.dim(2) != oh ||
      dy.dim(3) != ow) {
    return Status::InvalidArgument("conv2d backward: dy shape mismatch");
  }

  Conv2dGrads grads;
  grads.dx = Tensor({n, c, h, wd});
  grads.dw = Tensor({oc, c, kh, kw});
  grads.db = Tensor({oc});

  const int64_t col_rows = c * kh * kw;
  const int64_t out_area = oh * ow;
  // One per-thread scratch block holds both the im2col expansion and the
  // column gradient; dW accumulates across images, so the image loop stays
  // serial and the GEMMs parallelize internally instead.
  std::vector<float>& scratch = Im2ColScratch(2 * col_rows * out_area);
  float* col = scratch.data();
  float* dcol = scratch.data() + col_rows * out_area;

  for (int64_t i = 0; i < n; ++i) {
    const float* dyi = dy.data() + i * oc * out_area;
    // Bias gradient.
    for (int64_t o = 0; o < oc; ++o) {
      float acc = 0.0f;
      for (int64_t p = 0; p < out_area; ++p) acc += dyi[o * out_area + p];
      grads.db[o] += acc;
    }
    // Weight gradient: dW += dy_i [oc, out_area] * col^T [out_area, col_rows].
    Im2Col(x.data() + i * c * h * wd, c, h, wd, kh, kw, params.stride,
           params.pad, col);
    SGemm(false, true, oc, col_rows, out_area, 1.0f, dyi, out_area, col,
          out_area, 1.0f, grads.dw.data(), col_rows);
    // Input gradient: dcol = w^T [col_rows, oc] * dy_i [oc, out_area].
    SGemm(true, false, col_rows, out_area, oc, 1.0f, w.data(), col_rows, dyi,
          out_area, 0.0f, dcol, out_area);
    Col2Im(dcol, c, h, wd, kh, kw, params.stride, params.pad,
           grads.dx.data() + i * c * h * wd);
  }
  return grads;
}

Result<MaxPoolResult> MaxPool2dForward(const Tensor& x, int64_t kernel,
                                       int64_t stride) {
  if (x.ndim() != 4) return Status::InvalidArgument("maxpool: x must be NCHW");
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int64_t oh = ConvOutDim(h, kernel, stride, /*pad=*/0);
  const int64_t ow = ConvOutDim(w, kernel, stride, /*pad=*/0);
  if (oh <= 0 || ow <= 0) {
    return Status::InvalidArgument("maxpool: output would be empty");
  }

  MaxPoolResult result;
  result.y = Tensor({n, c, oh, ow});
  result.argmax.assign(static_cast<size_t>(n * c * oh * ow), 0);

  int64_t out_idx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      const int64_t plane_offset = (i * c + ch) * h * w;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t xo = 0; xo < ow; ++xo, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int64_t dy = 0; dy < kernel; ++dy) {
            const int64_t in_y = y * stride + dy;
            if (in_y >= h) break;
            for (int64_t dx = 0; dx < kernel; ++dx) {
              const int64_t in_x = xo * stride + dx;
              if (in_x >= w) break;
              float v = plane[in_y * w + in_x];
              if (v > best) {
                best = v;
                best_idx = in_y * w + in_x;
              }
            }
          }
          result.y[out_idx] = best;
          result.argmax[static_cast<size_t>(out_idx)] = plane_offset + best_idx;
        }
      }
    }
  }
  return result;
}

Result<Tensor> MaxPool2dInference(const Tensor& x, int64_t kernel,
                                  int64_t stride) {
  if (x.ndim() != 4) return Status::InvalidArgument("maxpool: x must be NCHW");
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int64_t oh = ConvOutDim(h, kernel, stride, /*pad=*/0);
  const int64_t ow = ConvOutDim(w, kernel, stride, /*pad=*/0);
  if (oh <= 0 || ow <= 0) {
    return Status::InvalidArgument("maxpool: output would be empty");
  }
  Tensor y({n, c, oh, ow});
  ParallelForChunked(0, n * c, [&](int64_t begin, int64_t end) {
    for (int64_t plane_idx = begin; plane_idx < end; ++plane_idx) {
      const float* plane = x.data() + plane_idx * h * w;
      float* out = y.data() + plane_idx * oh * ow;
      for (int64_t yo = 0; yo < oh; ++yo) {
        for (int64_t xo = 0; xo < ow; ++xo) {
          float best = -std::numeric_limits<float>::infinity();
          for (int64_t dy = 0; dy < kernel; ++dy) {
            const int64_t in_y = yo * stride + dy;
            if (in_y >= h) break;
            const float* row = plane + in_y * w;
            for (int64_t dx = 0; dx < kernel; ++dx) {
              const int64_t in_x = xo * stride + dx;
              if (in_x >= w) break;
              best = std::max(best, row[in_x]);
            }
          }
          out[yo * ow + xo] = best;
        }
      }
    }
  });
  return y;
}

Result<Tensor> MaxPool2dBackward(const std::vector<int64_t>& argmax,
                                 const std::vector<int64_t>& x_shape,
                                 const Tensor& dy) {
  if (static_cast<int64_t>(argmax.size()) != dy.NumElements()) {
    return Status::InvalidArgument("maxpool backward: argmax size mismatch");
  }
  Tensor dx(x_shape);
  for (int64_t i = 0; i < dy.NumElements(); ++i) {
    dx[argmax[static_cast<size_t>(i)]] += dy[i];
  }
  return dx;
}

Tensor ReluForward(const Tensor& x) {
  Tensor y = x;
  float* d = y.data();
  for (int64_t i = 0; i < y.NumElements(); ++i) d[i] = std::max(0.0f, d[i]);
  return y;
}

Tensor ReluBackward(const Tensor& x, const Tensor& dy) {
  Tensor dx = dy;
  for (int64_t i = 0; i < dx.NumElements(); ++i) {
    if (x[i] <= 0.0f) dx[i] = 0.0f;
  }
  return dx;
}

Result<Tensor> LinearForward(const Tensor& x, const Tensor& w,
                             const Tensor& b) {
  if (x.ndim() != 2 || w.ndim() != 2) {
    return Status::InvalidArgument("linear: x and w must be 2-D");
  }
  if (x.dim(1) != w.dim(1)) {
    return Status::InvalidArgument("linear: feature dimension mismatch");
  }
  if (b.NumElements() != w.dim(0)) {
    return Status::InvalidArgument("linear: bias size mismatch");
  }
  const int64_t n = x.dim(0), d = x.dim(1), out = w.dim(0);
  Tensor y({n, out});
  // y [n, out] = x [n, d] * w^T [d, out]
  SGemm(false, true, n, out, d, 1.0f, x.data(), d, w.data(), d, 0.0f, y.data(),
        out);
  for (int64_t i = 0; i < n; ++i) {
    float* row = y.data() + i * out;
    for (int64_t o = 0; o < out; ++o) row[o] += b[o];
  }
  return y;
}

Result<LinearGrads> LinearBackward(const Tensor& x, const Tensor& w,
                                   const Tensor& dy) {
  const int64_t n = x.dim(0), d = x.dim(1), out = w.dim(0);
  if (dy.ndim() != 2 || dy.dim(0) != n || dy.dim(1) != out) {
    return Status::InvalidArgument("linear backward: dy shape mismatch");
  }
  LinearGrads grads;
  grads.dx = Tensor({n, d});
  grads.dw = Tensor({out, d});
  grads.db = Tensor({out});
  // dx [n, d] = dy [n, out] * w [out, d]
  SGemm(false, false, n, d, out, 1.0f, dy.data(), out, w.data(), d, 0.0f,
        grads.dx.data(), d);
  // dw [out, d] = dy^T [out, n] * x [n, d]
  SGemm(true, false, out, d, n, 1.0f, dy.data(), out, x.data(), d, 0.0f,
        grads.dw.data(), d);
  for (int64_t i = 0; i < n; ++i) {
    const float* row = dy.data() + i * out;
    for (int64_t o = 0; o < out; ++o) grads.db[o] += row[o];
  }
  return grads;
}

Result<Tensor> SoftmaxForward(const Tensor& logits) {
  if (logits.ndim() != 2) {
    return Status::InvalidArgument("softmax: logits must be [N, K]");
  }
  const int64_t n = logits.dim(0), k = logits.dim(1);
  Tensor probs({n, k});
  for (int64_t i = 0; i < n; ++i) {
    const float* in = logits.data() + i * k;
    float* out = probs.data() + i * k;
    float max_v = in[0];
    for (int64_t j = 1; j < k; ++j) max_v = std::max(max_v, in[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < k; ++j) {
      out[j] = std::exp(in[j] - max_v);
      sum += out[j];
    }
    const float inv = 1.0f / sum;
    for (int64_t j = 0; j < k; ++j) out[j] *= inv;
  }
  return probs;
}

Result<SoftmaxCrossEntropyResult> SoftmaxCrossEntropy(const Tensor& logits,
                                                      const Tensor& targets) {
  if (!SameShape(logits, targets)) {
    return Status::InvalidArgument("cross-entropy: shape mismatch");
  }
  GOGGLES_ASSIGN_OR_RETURN(Tensor probs, SoftmaxForward(logits));
  const int64_t n = logits.dim(0), k = logits.dim(1);

  SoftmaxCrossEntropyResult result;
  result.probs = probs;
  result.dlogits = Tensor({n, k});
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const float* p = probs.data() + i * k;
    const float* t = targets.data() + i * k;
    float* g = result.dlogits.data() + i * k;
    for (int64_t j = 0; j < k; ++j) {
      if (t[j] > 0.0f) {
        loss -= static_cast<double>(t[j]) *
                std::log(std::max(p[j], 1e-12f));
      }
      g[j] = (p[j] - t[j]) * inv_n;
    }
  }
  result.loss = loss / static_cast<double>(n);
  return result;
}

Result<Tensor> GlobalMaxPool(const Tensor& x) {
  if (x.ndim() != 4) {
    return Status::InvalidArgument("global max pool: x must be NCHW");
  }
  const int64_t n = x.dim(0), c = x.dim(1), area = x.dim(2) * x.dim(3);
  Tensor y({n, c});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * area;
      float best = plane[0];
      for (int64_t p = 1; p < area; ++p) best = std::max(best, plane[p]);
      y.At2(i, ch) = best;
    }
  }
  return y;
}

}  // namespace goggles
