#pragma once

#include <cstdint>
#include <string>

/// \file isa.h
/// \brief Runtime ISA dispatch for the tensor kernel core.
///
/// The packed GEMM / conv / reduction kernels are compiled once per ISA
/// tier (scalar baseline, SSE2, AVX2, AVX-512, NEON), each translation
/// unit built with its own -m flags, and one tier is selected at startup
/// from a cpuid probe of the host. A portable binary (built with
/// GOGGLES_NATIVE_ARCH=OFF, the default) therefore runs on any host of
/// its architecture and still executes AVX2/AVX-512 micro-kernels where
/// the CPU has them.
///
/// Every tier computes bit-identical f32/f64 results: all kernels
/// accumulate through explicit std::fma (correctly rounded whether it
/// lowers to the hardware instruction or the libm fallback) in the fixed
/// ascending-k chunked order of gemm.h, and the reduction kernels use a
/// fixed 16-lane virtual accumulator with a fixed tree reduction. The
/// tier choice is a pure speed knob, never a numerics knob.
///
/// Selection order:
///  1. `GOGGLES_ISA=scalar|sse2|avx2|avx512|neon` forces a tier. An
///     unknown value warns and falls back to auto-detection; a known tier
///     the binary lacks or the host cannot execute warns and falls back
///     to the best available tier.
///  2. Otherwise the highest tier that is both compiled into the binary
///     and supported by the host wins (the scalar tier is always both).

namespace goggles {

/// \brief The ISA tiers a binary can carry, ascending by capability
/// within an architecture (kNeon is the aarch64 baseline vector tier).
enum class IsaTier : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kAvx512 = 3,
  kNeon = 4,
};

inline constexpr int kNumIsaTiers = 5;

/// \brief Bit for `tier` in the availability masks below.
inline constexpr uint32_t IsaTierBit(IsaTier tier) {
  return 1u << static_cast<int>(tier);
}

/// \brief Lower-case tier name ("scalar", "sse2", "avx2", "avx512",
/// "neon") — the exact spelling GOGGLES_ISA accepts.
const char* IsaTierName(IsaTier tier);

/// \brief Strict parse of a GOGGLES_ISA value. Returns false (leaving
/// `*out` untouched) for anything but the exact tier names.
bool ParseIsaTierName(const std::string& name, IsaTier* out);

/// \brief Tiers whose kernel tables are linked into this binary.
/// Always contains kScalar.
uint32_t CompiledIsaMask();

/// \brief Tiers the host CPU can execute (cpuid-probed on x86; the
/// architecture baseline elsewhere). Always contains kScalar.
uint32_t HostIsaMask();

/// \brief Pure tier-selection policy, factored out for tests: picks
/// `requested` when `has_request` and the tier is in both masks,
/// otherwise the highest tier of `host_mask & compiled_mask` (falling
/// back to kScalar, which is always available). This is the graceful
/// path for a binary carrying tiers the host lacks: they are simply
/// never selected.
IsaTier ResolveIsaTier(bool has_request, IsaTier requested,
                       uint32_t host_mask, uint32_t compiled_mask);

/// \brief Full GOGGLES_ISA request handling against explicit masks, also
/// factored out for tests: strict-parses `request` (empty = auto; an
/// unknown value warns and degrades to auto; a parsed but unusable tier
/// warns and degrades to the best usable) and resolves via
/// ResolveIsaTier. ActiveIsaTier() is exactly this applied to the real
/// env value and the real masks, cached.
IsaTier ResolveIsaRequest(const std::string& request, uint32_t host_mask,
                          uint32_t compiled_mask);

/// \brief The tier the process dispatches to, resolved once on first use
/// from GOGGLES_ISA and the masks above (then cached).
IsaTier ActiveIsaTier();

/// \brief Forces the active tier (tests and benches sweeping tiers in
/// one process). Returns false — leaving the active tier unchanged — if
/// the tier is not compiled in or the host cannot execute it. Not meant
/// to race with in-flight kernel calls.
bool ForceIsaTier(IsaTier tier);

/// \brief Space-separated vector-ISA feature flags of the host CPU
/// (e.g. "sse2 avx avx2 fma avx512f ..."), for the bench perf records.
std::string HostCpuFlagsString();

}  // namespace goggles
