#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace goggles {
namespace {

int64_t ShapeNumElements(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(ShapeNumElements(shape_)), fill) {}

Tensor Tensor::RandomNormal(std::vector<int64_t> shape, float stddev,
                            Rng* rng) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.data_.size(); ++i) {
    t.data_[i] = static_cast<float>(rng->Gaussian(0.0, stddev));
  }
  return t;
}

Tensor Tensor::RandomUniform(std::vector<int64_t> shape, float lo, float hi,
                             Rng* rng) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.data_.size(); ++i) {
    t.data_[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  Tensor t({static_cast<int64_t>(values.size())});
  std::copy(values.begin(), values.end(), t.data_.begin());
  return t;
}

Status Tensor::Reshape(std::vector<int64_t> new_shape) {
  if (ShapeNumElements(new_shape) != NumElements()) {
    return Status::InvalidArgument("Reshape: element count mismatch");
  }
  shape_ = std::move(new_shape);
  return Status::OK();
}

void Tensor::Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::Scale(float factor) {
  for (float& v : data_) v *= factor;
}

Status Tensor::AddInPlace(const Tensor& other) {
  if (other.shape_ != shape_) {
    return Status::InvalidArgument("Tensor::AddInPlace: shape mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return Status::OK();
}

Status Tensor::Axpy(float factor, const Tensor& other) {
  if (other.shape_ != shape_) {
    return Status::InvalidArgument("Tensor::Axpy: shape mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += factor * other.data_[i];
  return Status::OK();
}

double Tensor::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return acc;
}

float Tensor::MaxAbs() const {
  float acc = 0.0f;
  for (float v : data_) acc = std::max(acc, std::fabs(v));
  return acc;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

}  // namespace goggles
