#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernel_table.h"

// The kernel implementation lives in kernels_impl.inc, compiled once per
// ISA tier (kernels_<tier>.cc) with tier-specific -m flags; this TU only
// dispatches through the table selected at startup (see isa.h). Every
// tier is bit-identical for f32 and f64 — explicit std::fma in the fixed
// chunked order — so the dispatch is invisible in the output bits.

namespace goggles {

void SGemmWithThreads(bool transpose_a, bool transpose_b, int64_t m, int64_t n,
                      int64_t k, float alpha, const float* a, int64_t lda,
                      const float* b, int64_t ldb, float beta, float* c,
                      int64_t ldc, int num_threads) {
  ActiveKernels().sgemm(transpose_a, transpose_b, m, n, k, alpha, a, lda, b,
                        ldb, beta, c, ldc, num_threads);
}

void SGemm(bool transpose_a, bool transpose_b, int64_t m, int64_t n, int64_t k,
           float alpha, const float* a, int64_t lda, const float* b,
           int64_t ldb, float beta, float* c, int64_t ldc) {
  SGemmWithThreads(transpose_a, transpose_b, m, n, k, alpha, a, lda, b, ldb,
                   beta, c, ldc, /*num_threads=*/0);
}

void DGemmWithThreads(bool transpose_a, bool transpose_b, int64_t m, int64_t n,
                      int64_t k, double alpha, const double* a, int64_t lda,
                      const double* b, int64_t ldb, double beta, double* c,
                      int64_t ldc, int num_threads) {
  ActiveKernels().dgemm(transpose_a, transpose_b, m, n, k, alpha, a, lda, b,
                        ldb, beta, c, ldc, num_threads);
}

void DGemm(bool transpose_a, bool transpose_b, int64_t m, int64_t n, int64_t k,
           double alpha, const double* a, int64_t lda, const double* b,
           int64_t ldb, double beta, double* c, int64_t ldc) {
  DGemmWithThreads(transpose_a, transpose_b, m, n, k, alpha, a, lda, b, ldb,
                   beta, c, ldc, /*num_threads=*/0);
}

DGemmPackedA DGemmPackOperandA(bool transpose_a, int64_t m, int64_t k,
                               const double* a, int64_t lda) {
  DGemmPackedA packed;
  ActiveKernels().dgemm_pack_a(transpose_a, m, k, a, lda, &packed);
  return packed;
}

void DGemmWithPackedA(const DGemmPackedA& packed_a, bool transpose_b,
                      int64_t n, const double* b, int64_t ldb, double beta,
                      double* c, int64_t ldc, int num_threads) {
  // The micro-panel layout is tier-specific, so a packed operand must be
  // consumed by the tier that packed it — which also makes the call
  // robust against a tier switch (tests force tiers mid-process) between
  // packing and multiplying.
  const TensorKernels* table =
      packed_a.isa_tier >= 0
          ? KernelsForTier(static_cast<IsaTier>(packed_a.isa_tier))
          : nullptr;
  if (table == nullptr) table = &ActiveKernels();
  table->dgemm_with_packed_a(packed_a, transpose_b, n, b, ldb, beta, c, ldc,
                             num_threads);
}

void DGemmReference(bool transpose_a, bool transpose_b, int64_t m, int64_t n,
                    int64_t k, double alpha, const double* a, int64_t lda,
                    const double* b, int64_t ldb, double beta, double* c,
                    int64_t ldc) {
  // Deliberately NOT dispatched: this is the retained scalar reference,
  // compiled as baseline code in this TU. Its std::fma accumulation in
  // the same chunked order is what every tier must (and does) reproduce.
  if (m <= 0 || n <= 0) return;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      // Same order as the blocked kernel: C is scaled by beta first, then
      // one std::fma-accumulated partial sum per kGemmKChunk-sized k-block
      // is added in ascending block order.
      double total = beta == 0.0 ? 0.0 : c[i * ldc + j] * beta;
      if (alpha != 0.0) {  // BLAS: alpha == 0 must not reference A or B.
        for (int64_t pc = 0; pc < k; pc += kGemmKChunk) {
          const int64_t pc_end = std::min(pc + kGemmKChunk, k);
          double local = 0.0;
          for (int64_t p = pc; p < pc_end; ++p) {
            const double av =
                alpha * (transpose_a ? a[p * lda + i] : a[i * lda + p]);
            const double bv = transpose_b ? b[j * ldb + p] : b[p * ldb + j];
            local = std::fma(av, bv, local);
          }
          total += local;
        }
      }
      c[i * ldc + j] = total;
    }
  }
}

void SGemmReference(bool transpose_a, bool transpose_b, int64_t m, int64_t n,
                    int64_t k, float alpha, const float* a, int64_t lda,
                    const float* b, int64_t ldb, float beta, float* c,
                    int64_t ldc) {
  // Single-precision twin of DGemmReference, added with the ISA dispatch:
  // now that SGemm accumulates through explicit std::fma too, a scalar
  // fma loop in the same chunked order reproduces it bit for bit — this
  // is the reference the forced-tier tests compare every tier against.
  if (m <= 0 || n <= 0) return;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float total = beta == 0.0f ? 0.0f : c[i * ldc + j] * beta;
      if (alpha != 0.0f) {  // BLAS: alpha == 0 must not reference A or B.
        for (int64_t pc = 0; pc < k; pc += kGemmKChunk) {
          const int64_t pc_end = std::min(pc + kGemmKChunk, k);
          float local = 0.0f;
          for (int64_t p = pc; p < pc_end; ++p) {
            const float av =
                alpha * (transpose_a ? a[p * lda + i] : a[i * lda + p]);
            const float bv = transpose_b ? b[j * ldb + p] : b[p * ldb + j];
            local = std::fma(av, bv, local);
          }
          total += local;
        }
      }
      c[i * ldc + j] = total;
    }
  }
}

}  // namespace goggles
