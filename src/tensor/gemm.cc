#include "tensor/gemm.h"

#include <vector>

#include "util/parallel.h"

namespace goggles {

void SGemm(bool transpose_a, bool transpose_b, int64_t m, int64_t n, int64_t k,
           float alpha, const float* a, int64_t lda, const float* b,
           int64_t ldb, float beta, float* c, int64_t ldc) {
  auto a_at = [&](int64_t i, int64_t p) -> float {
    return transpose_a ? a[p * lda + i] : a[i * lda + p];
  };

  // Only parallelize when there is enough work to amortize thread startup.
  const bool parallel = m * n * k > (1 << 16);

  ParallelForChunked(
      0, m,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          float* crow = c + i * ldc;
          if (beta == 0.0f) {
            for (int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
          } else if (beta != 1.0f) {
            for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
          }
          for (int64_t p = 0; p < k; ++p) {
            const float av = alpha * a_at(i, p);
            if (av == 0.0f) continue;
            if (!transpose_b) {
              const float* brow = b + p * ldb;
              for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
            } else {
              for (int64_t j = 0; j < n; ++j) crow[j] += av * b[j * ldb + p];
            }
          }
        }
      },
      parallel ? 0 : 1);
}

}  // namespace goggles
