#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/parallel.h"

namespace goggles {
namespace {

// Micro-kernel register tile, sized so the MR x NR accumulator block fits
// the vector register file of the target ISA with room for the A
// broadcasts and B loads (8 x 16 floats would spill to the stack on
// 16-register AVX2/SSE, costing ~3x). Doubles pack half as many lanes per
// register, so their NR is half the float NR at every ISA level.
template <typename T>
struct Tile;

#if defined(__AVX512F__)
template <>
struct Tile<float> {  // 8 zmm accumulators of 16 floats
  static constexpr int64_t kMR = 8, kNR = 16;
};
template <>
struct Tile<double> {  // 8 zmm accumulators of 8 doubles
  static constexpr int64_t kMR = 8, kNR = 8;
};
#elif defined(__AVX__)
template <>
struct Tile<float> {  // 8 ymm accumulators of 8 floats
  static constexpr int64_t kMR = 4, kNR = 16;
};
template <>
struct Tile<double> {  // 8 ymm accumulators of 4 doubles
  static constexpr int64_t kMR = 4, kNR = 8;
};
#else
template <>
struct Tile<float> {  // 8 xmm accumulators of 4 floats
  static constexpr int64_t kMR = 4, kNR = 8;
};
template <>
struct Tile<double> {  // 8 xmm accumulators of 2 doubles
  static constexpr int64_t kMR = 4, kNR = 4;
};
#endif

// Cache blocking: a KC x NR B micro-panel stays in L1 across one macro
// column sweep, the MC x KC packed A block stays in L2, and the KC x NC
// packed B block stays in L3. KC doubles as the accumulation-chunk size
// of the numerical contract (gemm.h), so it is pinned to kGemmKChunk.
constexpr int64_t kKC = kGemmKChunk;
constexpr int64_t kMC = 64;
constexpr int64_t kNC = 1024;

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Accumulation policy (see gemm.h). float: plain multiply-add — the
// compiler contracts it to FMA where the host ISA has one, preserving the
// historical per-build SGemm semantics. double: explicit std::fma, whose
// correctly-rounded result is identical whether it lowers to the hardware
// instruction or the library fallback, making DGemm reproducible by any
// scalar std::fma loop independent of compile flags.
inline float MulAdd(float acc, float a, float b) { return acc + a * b; }
inline double MulAdd(double acc, double a, double b) {
  return std::fma(a, b, acc);
}

/// Packs op(A)[ic:ic+mc, pc:pc+kc] into column-major MR-row micro-panels:
/// panel p holds rows [p*MR, p*MR+MR), laid out k-major (ap[k*MR + i]).
/// Rows past `mc` are zero-padded so the micro-kernel never reads garbage;
/// alpha is folded in here, once per element.
template <typename T>
void PackA(bool transpose_a, const T* a, int64_t lda, int64_t ic, int64_t pc,
           int64_t mc, int64_t kc, T alpha, T* ap) {
  constexpr int64_t kMR = Tile<T>::kMR;
  const int64_t panels = CeilDiv(mc, kMR);
  for (int64_t p = 0; p < panels; ++p) {
    const int64_t i0 = p * kMR;
    const int64_t rows = std::min(kMR, mc - i0);
    T* dst = ap + p * kMR * kc;
    for (int64_t k = 0; k < kc; ++k) {
      for (int64_t i = 0; i < rows; ++i) {
        const int64_t row = ic + i0 + i, col = pc + k;
        const T v = transpose_a ? a[col * lda + row] : a[row * lda + col];
        dst[k * kMR + i] = alpha * v;
      }
      for (int64_t i = rows; i < kMR; ++i) dst[k * kMR + i] = T{0};
    }
  }
}

/// Packs op(B)[pc:pc+kc, jc:jc+nc] into NR-column micro-panels laid out
/// k-major (bp[k*NR + j]), zero-padding columns past `nc`.
template <typename T>
void PackB(bool transpose_b, const T* b, int64_t ldb, int64_t pc, int64_t jc,
           int64_t kc, int64_t nc, T* bp) {
  constexpr int64_t kNR = Tile<T>::kNR;
  const int64_t panels = CeilDiv(nc, kNR);
  for (int64_t p = 0; p < panels; ++p) {
    const int64_t j0 = p * kNR;
    const int64_t cols = std::min(kNR, nc - j0);
    T* dst = bp + p * kNR * kc;
    if (!transpose_b && cols == kNR) {
      // Fast path: contiguous row segments of B.
      for (int64_t k = 0; k < kc; ++k) {
        const T* src = b + (pc + k) * ldb + jc + j0;
        for (int64_t j = 0; j < kNR; ++j) dst[k * kNR + j] = src[j];
      }
      continue;
    }
    for (int64_t k = 0; k < kc; ++k) {
      for (int64_t j = 0; j < cols; ++j) {
        const int64_t row = pc + k, col = jc + j0 + j;
        dst[k * kNR + j] =
            transpose_b ? b[col * ldb + row] : b[row * ldb + col];
      }
      for (int64_t j = cols; j < kNR; ++j) dst[k * kNR + j] = T{0};
    }
  }
}

/// MR x NR register micro-kernel over packed panels: computes the full
/// tile Ap * Bp in local accumulators (kept in vector registers — they
/// are local to this frame, so no aliasing analysis can force them to
/// memory), then adds the valid rows/cols into C. The k loop is strictly
/// ascending with one (fused) multiply-add per (i, j, k), which fixes the
/// accumulation order for every C element independent of tile position,
/// problem shape and thread count.
template <typename T>
void MicroKernel(int64_t kc, const T* __restrict ap, const T* __restrict bp,
                 T* __restrict c, int64_t ldc, int64_t rows, int64_t cols) {
  constexpr int64_t kMR = Tile<T>::kMR;
  constexpr int64_t kNR = Tile<T>::kNR;
  T acc[kMR][kNR] = {};
  for (int64_t k = 0; k < kc; ++k) {
    const T* __restrict brow = bp + k * kNR;
    const T* __restrict acol = ap + k * kMR;
    // Fully unroll the row loop so every acc row lives in one or two
    // vector registers across the whole k loop (without the pragma GCC
    // leaves the i-indexed accumulators in memory).
#pragma GCC unroll 8
    for (int64_t i = 0; i < kMR; ++i) {
      const T av = acol[i];
#pragma omp simd
      for (int64_t j = 0; j < kNR; ++j) {
        acc[i][j] = MulAdd(acc[i][j], av, brow[j]);
      }
    }
  }
  if (rows == kMR && cols == kNR) {
    for (int64_t i = 0; i < kMR; ++i) {
      T* __restrict crow = c + i * ldc;
      for (int64_t j = 0; j < kNR; ++j) crow[j] += acc[i][j];
    }
    return;
  }
  for (int64_t i = 0; i < rows; ++i) {
    T* crow = c + i * ldc;
    for (int64_t j = 0; j < cols; ++j) crow[j] += acc[i][j];
  }
}

/// Narrow-B variant of the micro-kernel for tiles with few valid columns
/// (skinny GEMMs: the EM E-steps have n = K components, often just 2, so
/// the standard kernel would burn (NR - K)/NR of its lanes on padding).
/// The accumulator is transposed — one MR-lane vector register per valid
/// column, vectorized over the *rows* of the packed A panel — but each
/// (i, j) element still receives exactly one (fused) multiply-add per k in
/// strictly ascending order, so the result is bit-identical to the wide
/// kernel's.
template <typename T>
void MicroKernelNarrow(int64_t kc, const T* __restrict ap,
                       const T* __restrict bp, T* __restrict c, int64_t ldc,
                       int64_t rows, int64_t cols) {
  constexpr int64_t kMR = Tile<T>::kMR;
  constexpr int64_t kNR = Tile<T>::kNR;
  T acc[kNR][kMR] = {};
  for (int64_t k = 0; k < kc; ++k) {
    const T* __restrict acol = ap + k * kMR;
    const T* __restrict brow = bp + k * kNR;
    for (int64_t j = 0; j < cols; ++j) {
      const T bv = brow[j];
#pragma omp simd
      for (int64_t i = 0; i < kMR; ++i) {
        acc[j][i] = MulAdd(acc[j][i], acol[i], bv);
      }
    }
  }
  for (int64_t i = 0; i < rows; ++i) {
    T* crow = c + i * ldc;
    for (int64_t j = 0; j < cols; ++j) crow[j] += acc[j][i];
  }
}

/// Runs one row tile's packed A micro-panels (`ap_tile`) against the
/// packed B block. `c_tile` points at C(ic, jc).
template <typename T>
void RunTilePanels(const T* ap_tile, const T* bp, int64_t mc, int64_t kc,
                   int64_t nc, T* c_tile, int64_t ldc) {
  constexpr int64_t kMR = Tile<T>::kMR;
  constexpr int64_t kNR = Tile<T>::kNR;
  const int64_t mr_panels = CeilDiv(mc, kMR);
  const int64_t nr_panels = CeilDiv(nc, kNR);
  for (int64_t jp = 0; jp < nr_panels; ++jp) {
    const int64_t j0 = jp * kNR;
    const int64_t cols = std::min(kNR, nc - j0);
    const T* bpanel = bp + jp * kNR * kc;
    // Tiles with at most half the register columns occupied go through
    // the row-vectorized narrow kernel (bit-identical; see above).
    const bool narrow = cols <= kNR / 2;
    for (int64_t ip = 0; ip < mr_panels; ++ip) {
      const int64_t i0 = ip * kMR;
      const int64_t rows = std::min(kMR, mc - i0);
      if (narrow) {
        MicroKernelNarrow(kc, ap_tile + ip * kMR * kc, bpanel,
                          c_tile + i0 * ldc + j0, ldc, rows, cols);
      } else {
        MicroKernel(kc, ap_tile + ip * kMR * kc, bpanel,
                    c_tile + i0 * ldc + j0, ldc, rows, cols);
      }
    }
  }
}

/// Runs every micro-tile of rows [ir_begin, ir_end) x the packed B block.
/// Each worker packs its own A micro-panels into `ap` (thread-local to the
/// chunk), so the whole body is lock-free.
template <typename T>
void RunRowTiles(bool transpose_a, const T* a, int64_t lda, T alpha,
                 const T* bp, int64_t ic_base, int64_t m, int64_t pc,
                 int64_t kc, int64_t jc, int64_t nc, T* c, int64_t ldc,
                 int64_t ir_begin, int64_t ir_end) {
  // Reusable per-thread packing scratch: the EM fit cores issue thousands
  // of small DGemms per fit, and a fresh allocation per call showed up.
  // Worker threads each get their own buffer, so the body stays lock-free.
  thread_local std::vector<T> ap;
  if (ap.size() < static_cast<size_t>(kMC * kc)) {
    ap.resize(static_cast<size_t>(kMC * kc));
  }
  for (int64_t ir = ir_begin; ir < ir_end; ++ir) {
    const int64_t ic = ic_base + ir * kMC;
    const int64_t mc = std::min(kMC, m - ic);
    PackA(transpose_a, a, lda, ic, pc, mc, kc, alpha, ap.data());
    RunTilePanels(ap.data(), bp, mc, kc, nc, c + ic * ldc + jc, ldc);
  }
}

/// Scales C by beta up front (so the block loops can always accumulate).
/// beta == 0 overwrites without reading C, per BLAS.
template <typename T>
void ScaleC(T* c, int64_t ldc, int64_t m, int64_t n, T beta, int num_threads) {
  if (beta == T{1}) return;
  ParallelForChunked(
      0, m,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          T* crow = c + i * ldc;
          if (beta == T{0}) {
            for (int64_t j = 0; j < n; ++j) crow[j] = T{0};
          } else {
            for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
          }
        }
      },
      num_threads);
}

/// Shared blocked driver behind SGemmWithThreads / DGemmWithThreads.
template <typename T>
void GemmWithThreadsImpl(bool transpose_a, bool transpose_b, int64_t m,
                         int64_t n, int64_t k, T alpha, const T* a,
                         int64_t lda, const T* b, int64_t ldb, T beta, T* c,
                         int64_t ldc, int num_threads) {
  constexpr int64_t kNR = Tile<T>::kNR;
  if (m <= 0 || n <= 0) return;
  // Only parallelize when there is enough work to amortize thread startup.
  if (m * n * k <= (1 << 16)) num_threads = 1;
  ScaleC(c, ldc, m, n, beta, num_threads);
  if (alpha == T{0} || k <= 0) return;  // BLAS: A and B are not referenced.

  thread_local std::vector<T> bp;  // reusable B-panel scratch (see ap)
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    const int64_t nc_padded = CeilDiv(nc, kNR) * kNR;
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      if (bp.size() < static_cast<size_t>(nc_padded * kc)) {
        bp.resize(static_cast<size_t>(nc_padded * kc));
      }
      PackB(transpose_b, b, ldb, pc, jc, kc, nc, bp.data());
      // Captured as a pointer: `bp` is thread_local, and naming it inside
      // the worker lambda would resolve to the worker's own (empty) copy.
      const T* bp_data = bp.data();
      const int64_t row_tiles = CeilDiv(m, kMC);
      ParallelForChunked(
          0, row_tiles,
          [&](int64_t ir_begin, int64_t ir_end) {
            RunRowTiles(transpose_a, a, lda, alpha, bp_data, /*ic_base=*/0,
                        m, pc, kc, jc, nc, c, ldc, ir_begin, ir_end);
          },
          num_threads);
    }
  }
}

}  // namespace

void SGemmWithThreads(bool transpose_a, bool transpose_b, int64_t m, int64_t n,
                      int64_t k, float alpha, const float* a, int64_t lda,
                      const float* b, int64_t ldb, float beta, float* c,
                      int64_t ldc, int num_threads) {
  GemmWithThreadsImpl(transpose_a, transpose_b, m, n, k, alpha, a, lda, b,
                      ldb, beta, c, ldc, num_threads);
}

void SGemm(bool transpose_a, bool transpose_b, int64_t m, int64_t n, int64_t k,
           float alpha, const float* a, int64_t lda, const float* b,
           int64_t ldb, float beta, float* c, int64_t ldc) {
  SGemmWithThreads(transpose_a, transpose_b, m, n, k, alpha, a, lda, b, ldb,
                   beta, c, ldc, /*num_threads=*/0);
}

void DGemmWithThreads(bool transpose_a, bool transpose_b, int64_t m, int64_t n,
                      int64_t k, double alpha, const double* a, int64_t lda,
                      const double* b, int64_t ldb, double beta, double* c,
                      int64_t ldc, int num_threads) {
  GemmWithThreadsImpl(transpose_a, transpose_b, m, n, k, alpha, a, lda, b,
                      ldb, beta, c, ldc, num_threads);
}

void DGemm(bool transpose_a, bool transpose_b, int64_t m, int64_t n, int64_t k,
           double alpha, const double* a, int64_t lda, const double* b,
           int64_t ldb, double beta, double* c, int64_t ldc) {
  DGemmWithThreads(transpose_a, transpose_b, m, n, k, alpha, a, lda, b, ldb,
                   beta, c, ldc, /*num_threads=*/0);
}

DGemmPackedA DGemmPackOperandA(bool transpose_a, int64_t m, int64_t k,
                               const double* a, int64_t lda) {
  constexpr int64_t kMR = Tile<double>::kMR;
  DGemmPackedA packed;
  packed.m = m;
  packed.k = k;
  if (m <= 0 || k <= 0) return packed;
  // Per k-block: every kMC row tile's micro-panels, rows padded to kMR
  // within each tile. All tiles except the last span exactly kMC packed
  // rows, so a tile's panels start at block_base + tile_index * kMC * kc.
  const int64_t row_tiles = CeilDiv(m, kMC);
  const int64_t last_mc = m - (row_tiles - 1) * kMC;
  const int64_t rows_padded =
      (row_tiles - 1) * kMC + CeilDiv(last_mc, kMR) * kMR;
  packed.data.resize(static_cast<size_t>(rows_padded * k));
  int64_t base = 0;
  for (int64_t pc = 0; pc < k; pc += kKC) {
    const int64_t kc = std::min(kKC, k - pc);
    packed.block_base.push_back(base);
    for (int64_t ir = 0; ir < row_tiles; ++ir) {
      const int64_t ic = ir * kMC;
      const int64_t mc = std::min(kMC, m - ic);
      PackA(transpose_a, a, lda, ic, pc, mc, kc, /*alpha=*/1.0,
            packed.data.data() + base + ir * kMC * kc);
    }
    base += rows_padded * kc;
  }
  return packed;
}

void DGemmWithPackedA(const DGemmPackedA& packed_a, bool transpose_b,
                      int64_t n, const double* b, int64_t ldb, double beta,
                      double* c, int64_t ldc, int num_threads) {
  constexpr int64_t kNR = Tile<double>::kNR;
  const int64_t m = packed_a.m, k = packed_a.k;
  if (m <= 0 || n <= 0) return;
  // Only parallelize when there is enough work to amortize thread startup.
  if (m * n * k <= (1 << 16)) num_threads = 1;
  ScaleC(c, ldc, m, n, beta, num_threads);
  if (k <= 0) return;

  thread_local std::vector<double> bp;  // reusable B-panel scratch
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    const int64_t nc_padded = CeilDiv(nc, kNR) * kNR;
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      if (bp.size() < static_cast<size_t>(nc_padded * kc)) {
        bp.resize(static_cast<size_t>(nc_padded * kc));
      }
      PackB(transpose_b, b, ldb, pc, jc, kc, nc, bp.data());
      // Captured as a pointer: `bp` is thread_local, and naming it inside
      // the worker lambda would resolve to the worker's own (empty) copy.
      const double* bp_data = bp.data();
      const int64_t base =
          packed_a.block_base[static_cast<size_t>(pc / kKC)];
      const double* ablock = packed_a.data.data() + base;
      const int64_t row_tiles = CeilDiv(m, kMC);
      ParallelForChunked(
          0, row_tiles,
          [&](int64_t ir_begin, int64_t ir_end) {
            for (int64_t ir = ir_begin; ir < ir_end; ++ir) {
              const int64_t ic = ir * kMC;
              const int64_t mc = std::min(kMC, m - ic);
              RunTilePanels(ablock + ir * kMC * kc, bp_data, mc, kc, nc,
                            c + ic * ldc + jc, ldc);
            }
          },
          num_threads);
    }
  }
}

void DGemmReference(bool transpose_a, bool transpose_b, int64_t m, int64_t n,
                    int64_t k, double alpha, const double* a, int64_t lda,
                    const double* b, int64_t ldb, double beta, double* c,
                    int64_t ldc) {
  if (m <= 0 || n <= 0) return;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      // Same order as the blocked kernel: C is scaled by beta first, then
      // one std::fma-accumulated partial sum per kGemmKChunk-sized k-block
      // is added in ascending block order.
      double total = beta == 0.0 ? 0.0 : c[i * ldc + j] * beta;
      if (alpha != 0.0) {  // BLAS: alpha == 0 must not reference A or B.
        for (int64_t pc = 0; pc < k; pc += kGemmKChunk) {
          const int64_t pc_end = std::min(pc + kGemmKChunk, k);
          double local = 0.0;
          for (int64_t p = pc; p < pc_end; ++p) {
            const double av =
                alpha * (transpose_a ? a[p * lda + i] : a[i * lda + p]);
            const double bv = transpose_b ? b[j * ldb + p] : b[p * ldb + j];
            local = MulAdd(local, av, bv);
          }
          total += local;
        }
      }
      c[i * ldc + j] = total;
    }
  }
}

}  // namespace goggles
