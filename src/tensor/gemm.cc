#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "util/parallel.h"

namespace goggles {
namespace {

// Micro-kernel register tile, sized so the kMR x kNR accumulator block
// fits the vector register file of the target ISA with room for the A
// broadcasts and B loads (8 x 16 would spill to the stack on 16-register
// AVX2/SSE, costing ~3x).
#if defined(__AVX512F__)
constexpr int64_t kMR = 8;   // 8 zmm accumulators of 16 floats
constexpr int64_t kNR = 16;
#elif defined(__AVX__)
constexpr int64_t kMR = 4;   // 8 ymm accumulators of 8 floats
constexpr int64_t kNR = 16;
#else
constexpr int64_t kMR = 4;   // 8 xmm accumulators of 4 floats
constexpr int64_t kNR = 8;
#endif

// Cache blocking: a KC x NR B micro-panel stays in L1 across one macro
// column sweep, the MC x KC packed A block stays in L2, and the KC x NC
// packed B block stays in L3.
constexpr int64_t kKC = 256;
constexpr int64_t kMC = 64;
constexpr int64_t kNC = 1024;

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// Packs op(A)[ic:ic+mc, pc:pc+kc] into column-major MR-row micro-panels:
/// panel p holds rows [p*MR, p*MR+MR), laid out k-major (ap[k*MR + i]).
/// Rows past `mc` are zero-padded so the micro-kernel never reads garbage;
/// alpha is folded in here, once per element.
void PackA(bool transpose_a, const float* a, int64_t lda, int64_t ic,
           int64_t pc, int64_t mc, int64_t kc, float alpha, float* ap) {
  const int64_t panels = CeilDiv(mc, kMR);
  for (int64_t p = 0; p < panels; ++p) {
    const int64_t i0 = p * kMR;
    const int64_t rows = std::min(kMR, mc - i0);
    float* dst = ap + p * kMR * kc;
    for (int64_t k = 0; k < kc; ++k) {
      for (int64_t i = 0; i < rows; ++i) {
        const int64_t row = ic + i0 + i, col = pc + k;
        const float v = transpose_a ? a[col * lda + row] : a[row * lda + col];
        dst[k * kMR + i] = alpha * v;
      }
      for (int64_t i = rows; i < kMR; ++i) dst[k * kMR + i] = 0.0f;
    }
  }
}

/// Packs op(B)[pc:pc+kc, jc:jc+nc] into NR-column micro-panels laid out
/// k-major (bp[k*NR + j]), zero-padding columns past `nc`.
void PackB(bool transpose_b, const float* b, int64_t ldb, int64_t pc,
           int64_t jc, int64_t kc, int64_t nc, float* bp) {
  const int64_t panels = CeilDiv(nc, kNR);
  for (int64_t p = 0; p < panels; ++p) {
    const int64_t j0 = p * kNR;
    const int64_t cols = std::min(kNR, nc - j0);
    float* dst = bp + p * kNR * kc;
    if (!transpose_b && cols == kNR) {
      // Fast path: contiguous row segments of B.
      for (int64_t k = 0; k < kc; ++k) {
        const float* src = b + (pc + k) * ldb + jc + j0;
        for (int64_t j = 0; j < kNR; ++j) dst[k * kNR + j] = src[j];
      }
      continue;
    }
    for (int64_t k = 0; k < kc; ++k) {
      for (int64_t j = 0; j < cols; ++j) {
        const int64_t row = pc + k, col = jc + j0 + j;
        dst[k * kNR + j] =
            transpose_b ? b[col * ldb + row] : b[row * ldb + col];
      }
      for (int64_t j = cols; j < kNR; ++j) dst[k * kNR + j] = 0.0f;
    }
  }
}

/// MR x NR register micro-kernel over packed panels: computes the full
/// tile Ap * Bp in local accumulators (kept in vector registers — they
/// are local to this frame, so no aliasing analysis can force them to
/// memory), then adds the valid rows/cols into C. The k loop is strictly
/// ascending with one fused multiply-add per (i, j, k), which fixes the
/// accumulation order for every C element independent of tile position,
/// problem shape and thread count.
void MicroKernel(int64_t kc, const float* __restrict ap,
                 const float* __restrict bp, float* __restrict c, int64_t ldc,
                 int64_t rows, int64_t cols) {
  float acc[kMR][kNR] = {};
  for (int64_t k = 0; k < kc; ++k) {
    const float* __restrict brow = bp + k * kNR;
    const float* __restrict acol = ap + k * kMR;
    // Fully unroll the row loop so every acc row lives in one or two
    // vector registers across the whole k loop (without the pragma GCC
    // leaves the i-indexed accumulators in memory).
#pragma GCC unroll 8
    for (int64_t i = 0; i < kMR; ++i) {
      const float av = acol[i];
#pragma omp simd
      for (int64_t j = 0; j < kNR; ++j) acc[i][j] += av * brow[j];
    }
  }
  if (rows == kMR && cols == kNR) {
    for (int64_t i = 0; i < kMR; ++i) {
      float* __restrict crow = c + i * ldc;
      for (int64_t j = 0; j < kNR; ++j) crow[j] += acc[i][j];
    }
    return;
  }
  for (int64_t i = 0; i < rows; ++i) {
    float* crow = c + i * ldc;
    for (int64_t j = 0; j < cols; ++j) crow[j] += acc[i][j];
  }
}

/// Runs every micro-tile of rows [ir_begin, ir_end) x the packed B block.
/// Each worker packs its own A micro-panels into `ap` (thread-local to the
/// chunk), so the whole body is lock-free.
void RunRowTiles(bool transpose_a, const float* a, int64_t lda, float alpha,
                 const float* bp, int64_t ic_base, int64_t m, int64_t pc,
                 int64_t kc, int64_t jc, int64_t nc, float* c, int64_t ldc,
                 int64_t ir_begin, int64_t ir_end) {
  std::vector<float> ap(static_cast<size_t>(kMC * kc));
  for (int64_t ir = ir_begin; ir < ir_end; ++ir) {
    const int64_t ic = ic_base + ir * kMC;
    const int64_t mc = std::min(kMC, m - ic);
    PackA(transpose_a, a, lda, ic, pc, mc, kc, alpha, ap.data());
    const int64_t mr_panels = CeilDiv(mc, kMR);
    const int64_t nr_panels = CeilDiv(nc, kNR);
    for (int64_t jp = 0; jp < nr_panels; ++jp) {
      const int64_t j0 = jp * kNR;
      const int64_t cols = std::min(kNR, nc - j0);
      const float* bpanel = bp + jp * kNR * kc;
      for (int64_t ip = 0; ip < mr_panels; ++ip) {
        const int64_t i0 = ip * kMR;
        const int64_t rows = std::min(kMR, mc - i0);
        MicroKernel(kc, ap.data() + ip * kMR * kc, bpanel,
                    c + (ic + i0) * ldc + jc + j0, ldc, rows, cols);
      }
    }
  }
}

/// Scales C by beta up front (so the block loops can always accumulate).
/// beta == 0 overwrites without reading C, per BLAS.
void ScaleC(float* c, int64_t ldc, int64_t m, int64_t n, float beta,
            int num_threads) {
  if (beta == 1.0f) return;
  ParallelForChunked(
      0, m,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          float* crow = c + i * ldc;
          if (beta == 0.0f) {
            for (int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
          } else {
            for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
          }
        }
      },
      num_threads);
}

}  // namespace

void SGemmWithThreads(bool transpose_a, bool transpose_b, int64_t m, int64_t n,
                      int64_t k, float alpha, const float* a, int64_t lda,
                      const float* b, int64_t ldb, float beta, float* c,
                      int64_t ldc, int num_threads) {
  if (m <= 0 || n <= 0) return;
  // Only parallelize when there is enough work to amortize thread startup.
  if (m * n * k <= (1 << 16)) num_threads = 1;
  ScaleC(c, ldc, m, n, beta, num_threads);
  if (alpha == 0.0f || k <= 0) return;  // BLAS: A and B are not referenced.

  std::vector<float> bp;
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    const int64_t nc_padded = CeilDiv(nc, kNR) * kNR;
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      bp.resize(static_cast<size_t>(nc_padded * kc));
      PackB(transpose_b, b, ldb, pc, jc, kc, nc, bp.data());
      const int64_t row_tiles = CeilDiv(m, kMC);
      ParallelForChunked(
          0, row_tiles,
          [&](int64_t ir_begin, int64_t ir_end) {
            RunRowTiles(transpose_a, a, lda, alpha, bp.data(), /*ic_base=*/0,
                        m, pc, kc, jc, nc, c, ldc, ir_begin, ir_end);
          },
          num_threads);
    }
  }
}

void SGemm(bool transpose_a, bool transpose_b, int64_t m, int64_t n, int64_t k,
           float alpha, const float* a, int64_t lda, const float* b,
           int64_t ldb, float beta, float* c, int64_t ldc) {
  SGemmWithThreads(transpose_a, transpose_b, m, n, k, alpha, a, lda, b, ldb,
                   beta, c, ldc, /*num_threads=*/0);
}

}  // namespace goggles
