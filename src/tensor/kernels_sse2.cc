// SSE2 tier (x86 128-bit baseline vectors; no FMA, so std::fma lowers to
// the correctly-rounded libm fallback — same bits, less speed). Compiled
// with -msse2 (see src/tensor/CMakeLists.txt).
#define GOGGLES_ISA_NS sse2
#define GOGGLES_ISA_TIER ::goggles::IsaTier::kSse2
#include "tensor/kernels_impl.inc"
