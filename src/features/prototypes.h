#pragma once

#include <vector>

#include "tensor/tensor.h"

/// \file prototypes.h
/// \brief Top-Z prototype extraction from a filter map (paper §3.1).
///
/// Given a filter map F of shape C x H x W, the paper:
///  1. ranks channels by their maximum activation (2D global max pool),
///  2. keeps the top-Z channels c_1..c_Z,
///  3. for each kept channel takes (h, w) = argmax F[c_z, :, :] and emits
///     the channel-spanning vector F[:, h, w] as the prototype,
///  4. drops duplicate prototypes arising from repeated (h, w) positions.
/// Example 4 of the paper is reproduced verbatim in the unit tests.

namespace goggles::features {

/// \brief One extracted prototype.
struct Prototype {
  std::vector<float> vector;  ///< length C, spans the channel axis
  int channel = -1;           ///< the top channel that selected this position
  int h = -1;                 ///< spatial position in the filter map
  int w = -1;
};

/// \brief Extracts the unique top-Z prototypes of `filter_map` ([C, H, W]).
///
/// Returns at most `z` prototypes; fewer when argmax positions collide
/// (duplicates are dropped, keeping the first/highest-activation one).
std::vector<Prototype> ExtractTopZPrototypes(const Tensor& filter_map, int z);

/// \brief All positional vectors of a filter map: H*W rows of length C
/// (row index = h * W + w). This is the "all prototypes" set rho_i of §3.1.
std::vector<std::vector<float>> AllPositionVectors(const Tensor& filter_map);

}  // namespace goggles::features
