#include "features/prototypes.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/topk.h"

namespace goggles::features {

std::vector<Prototype> ExtractTopZPrototypes(const Tensor& filter_map, int z) {
  const int64_t c = filter_map.dim(0);
  const int64_t h = filter_map.dim(1);
  const int64_t w = filter_map.dim(2);
  const int64_t area = h * w;

  // Channel activation = max over the spatial grid (2D global max pool),
  // and remember each channel's argmax position.
  std::vector<float> activation(static_cast<size_t>(c));
  std::vector<int64_t> arg_pos(static_cast<size_t>(c));
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* plane = filter_map.data() + ch * area;
    float best = plane[0];
    int64_t best_pos = 0;
    for (int64_t p = 1; p < area; ++p) {
      if (plane[p] > best) {
        best = plane[p];
        best_pos = p;
      }
    }
    activation[static_cast<size_t>(ch)] = best;
    arg_pos[static_cast<size_t>(ch)] = best_pos;
  }

  const std::vector<int> top_channels = ArgTopK(activation, z);

  std::vector<Prototype> prototypes;
  std::set<int64_t> seen_positions;
  for (int ch : top_channels) {
    const int64_t pos = arg_pos[static_cast<size_t>(ch)];
    // Drop duplicate (h, w) positions: they would yield identical vectors.
    if (!seen_positions.insert(pos).second) continue;
    Prototype proto;
    proto.channel = ch;
    proto.h = static_cast<int>(pos / w);
    proto.w = static_cast<int>(pos % w);
    proto.vector.resize(static_cast<size_t>(c));
    for (int64_t cc = 0; cc < c; ++cc) {
      proto.vector[static_cast<size_t>(cc)] = filter_map[cc * area + pos];
    }
    prototypes.push_back(std::move(proto));
  }
  return prototypes;
}

std::vector<std::vector<float>> AllPositionVectors(const Tensor& filter_map) {
  const int64_t c = filter_map.dim(0);
  const int64_t area = filter_map.dim(1) * filter_map.dim(2);
  std::vector<std::vector<float>> out(static_cast<size_t>(area));
  for (int64_t p = 0; p < area; ++p) {
    auto& vec = out[static_cast<size_t>(p)];
    vec.resize(static_cast<size_t>(c));
    for (int64_t ch = 0; ch < c; ++ch) {
      vec[static_cast<size_t>(ch)] = filter_map[ch * area + p];
    }
  }
  return out;
}

}  // namespace goggles::features
