#pragma once

#include <memory>
#include <vector>

#include "data/image.h"
#include "linalg/matrix.h"
#include "nn/vgg.h"
#include "tensor/ops.h"
#include "util/status.h"

/// \file extractor.h
/// \brief Batched feature extraction from the VggMini backbone.
///
/// GOGGLES needs three views of the backbone per image (paper §3, §5.1):
///  1. the filter map at each of the 5 max-pool layers (prototype source),
///  2. the logits vector (Snuba primitives, Logits representation ablation),
///  3. the penultimate (flattened) features (FSL baseline and end models).

namespace goggles::features {

/// \brief Wraps a (pre-trained) VggMini and extracts intermediate features.
///
/// Extraction entry points are thread-safe and run concurrently: they go
/// through the backbone's const inference path
/// (Sequential::ForwardWithTaps const), which keeps all scratch state in
/// the call instead of in the layers. N serving sessions sharing one
/// extractor therefore scale with cores — there is no forward mutex — and
/// concurrent extraction is bit-identical to a serial run. Mutating the
/// backbone (mutable_backbone(), training) must not overlap with
/// extraction calls.
class FeatureExtractor {
 public:
  /// Takes ownership of the backbone.
  explicit FeatureExtractor(nn::VggMini backbone)
      : backbone_(std::move(backbone)) {}

  /// \brief Number of max-pool tap layers (the paper's 5).
  int num_pool_layers() const {
    return static_cast<int>(backbone_.pool_layer_indices.size());
  }

  /// \brief Filter maps at every pool layer for every image.
  ///
  /// \returns maps[layer][image] = Tensor of shape [C_layer, H, W].
  Result<std::vector<std::vector<Tensor>>> PoolFeatureMaps(
      const std::vector<data::Image>& images, int batch_size = 16) const;

  /// \brief Logits matrix, one row per image.
  Result<Matrix> Logits(const std::vector<data::Image>& images,
                        int batch_size = 16) const;

  /// \brief Penultimate (post-Flatten) features, one row per image.
  Result<Matrix> PenultimateFeatures(const std::vector<data::Image>& images,
                                     int batch_size = 16) const;

  /// \brief Requantizes every Conv2D layer's inference weights to
  /// `precision` (kF32 restores full precision). A backbone mutation:
  /// must not overlap with concurrent extraction calls. The quantized
  /// modes sit outside the f32 bit-identity contract — gate them with a
  /// labeling-agreement check (see bench/quant_gate.h) before trusting
  /// downstream labels.
  void SetInferencePrecision(ConvPrecision precision);

  /// \brief Precision the Conv2D inference path currently runs at.
  ConvPrecision inference_precision() const { return inference_precision_; }

  const nn::VggMini& backbone() const { return backbone_; }
  nn::VggMini* mutable_backbone() { return &backbone_; }

 private:
  nn::VggMini backbone_;
  ConvPrecision inference_precision_ = ConvPrecision::kF32;
};

}  // namespace goggles::features
