#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "data/image.h"
#include "linalg/matrix.h"
#include "nn/vgg.h"
#include "util/status.h"

/// \file extractor.h
/// \brief Batched feature extraction from the VggMini backbone.
///
/// GOGGLES needs three views of the backbone per image (paper §3, §5.1):
///  1. the filter map at each of the 5 max-pool layers (prototype source),
///  2. the logits vector (Snuba primitives, Logits representation ablation),
///  3. the penultimate (flattened) features (FSL baseline and end models).

namespace goggles::features {

/// \brief Wraps a (pre-trained) VggMini and extracts intermediate features.
///
/// Extraction entry points are thread-safe: the backbone's layers cache
/// activations during Forward, so every forward pass is serialized on an
/// internal mutex (one extractor is typically shared by many consumers —
/// e.g. several serving sessions fitted from the same backbone).
class FeatureExtractor {
 public:
  /// Takes ownership of the backbone.
  explicit FeatureExtractor(nn::VggMini backbone)
      : backbone_(std::move(backbone)) {}

  /// \brief Number of max-pool tap layers (the paper's 5).
  int num_pool_layers() const {
    return static_cast<int>(backbone_.pool_layer_indices.size());
  }

  /// \brief Filter maps at every pool layer for every image.
  ///
  /// \returns maps[layer][image] = Tensor of shape [C_layer, H, W].
  Result<std::vector<std::vector<Tensor>>> PoolFeatureMaps(
      const std::vector<data::Image>& images, int batch_size = 16) const;

  /// \brief Logits matrix, one row per image.
  Result<Matrix> Logits(const std::vector<data::Image>& images,
                        int batch_size = 16) const;

  /// \brief Penultimate (post-Flatten) features, one row per image.
  Result<Matrix> PenultimateFeatures(const std::vector<data::Image>& images,
                                     int batch_size = 16) const;

  const nn::VggMini& backbone() const { return backbone_; }
  nn::VggMini* mutable_backbone() { return &backbone_; }

 private:
  // Mutable because Layer::Forward caches activations; extraction is
  // logically const. forward_mutex_ serializes those cache mutations
  // across threads sharing this extractor.
  mutable nn::VggMini backbone_;
  mutable std::mutex forward_mutex_;
};

}  // namespace goggles::features
