#pragma once

#include <vector>

#include "data/image.h"
#include "linalg/matrix.h"
#include "util/status.h"

/// \file hog.h
/// \brief Histogram-of-oriented-gradients descriptor (Dalal & Triggs 2005).
///
/// Serves as the classical-CV representation ablation of Table 1: an
/// affinity matrix built from pairwise cosine similarity of HOG vectors,
/// fed to GOGGLES' class inference.

namespace goggles::features {

/// \brief HOG extraction parameters.
struct HogConfig {
  int cell_size = 8;     ///< pixels per cell side
  int num_bins = 9;      ///< unsigned orientation bins over [0, pi)
  int block_size = 2;    ///< cells per block side (L2-normalized)
};

/// \brief Computes the HOG descriptor of an image (converted to grayscale
/// as the channel mean first).
Result<std::vector<float>> ComputeHog(const data::Image& image,
                                      const HogConfig& config = {});

/// \brief Stacks HOG descriptors for a set of images into a matrix.
Result<Matrix> ComputeHogMatrix(const std::vector<data::Image>& images,
                                const HogConfig& config = {});

}  // namespace goggles::features
