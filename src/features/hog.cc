#include "features/hog.h"

#include <algorithm>
#include <cmath>

namespace goggles::features {

Result<std::vector<float>> ComputeHog(const data::Image& image,
                                      const HogConfig& config) {
  const int h = image.height, w = image.width;
  if (h < config.cell_size || w < config.cell_size) {
    return Status::InvalidArgument("ComputeHog: image smaller than one cell");
  }

  // Grayscale conversion: channel mean.
  std::vector<float> gray(static_cast<size_t>(h) * w, 0.0f);
  for (int c = 0; c < image.channels; ++c) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        gray[static_cast<size_t>(y) * w + x] += image.at(c, y, x);
      }
    }
  }
  const float inv_c = 1.0f / static_cast<float>(image.channels);
  for (float& v : gray) v *= inv_c;

  // Centered gradients with clamped borders.
  const int cells_y = h / config.cell_size;
  const int cells_x = w / config.cell_size;
  std::vector<float> hist(
      static_cast<size_t>(cells_y) * cells_x * config.num_bins, 0.0f);
  auto gray_at = [&](int y, int x) {
    y = std::clamp(y, 0, h - 1);
    x = std::clamp(x, 0, w - 1);
    return gray[static_cast<size_t>(y) * w + x];
  };
  for (int y = 0; y < cells_y * config.cell_size; ++y) {
    for (int x = 0; x < cells_x * config.cell_size; ++x) {
      const float gx = gray_at(y, x + 1) - gray_at(y, x - 1);
      const float gy = gray_at(y + 1, x) - gray_at(y - 1, x);
      const float mag = std::sqrt(gx * gx + gy * gy);
      float angle = std::atan2(gy, gx);  // [-pi, pi]
      if (angle < 0) angle += static_cast<float>(M_PI);  // unsigned [0, pi)
      int bin = static_cast<int>(angle / static_cast<float>(M_PI) *
                                 static_cast<float>(config.num_bins));
      if (bin >= config.num_bins) bin = config.num_bins - 1;
      const int cy = y / config.cell_size;
      const int cx = x / config.cell_size;
      hist[(static_cast<size_t>(cy) * cells_x + cx) * config.num_bins + bin] +=
          mag;
    }
  }

  // Block normalization (L2) over block_size x block_size cell groups.
  const int blocks_y = cells_y - config.block_size + 1;
  const int blocks_x = cells_x - config.block_size + 1;
  if (blocks_y <= 0 || blocks_x <= 0) {
    // Image too small for blocks: return the raw cell histograms.
    return hist;
  }
  std::vector<float> descriptor;
  descriptor.reserve(static_cast<size_t>(blocks_y) * blocks_x *
                     config.block_size * config.block_size * config.num_bins);
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      const size_t begin = descriptor.size();
      double norm_sq = 0.0;
      for (int cy = by; cy < by + config.block_size; ++cy) {
        for (int cx = bx; cx < bx + config.block_size; ++cx) {
          for (int b = 0; b < config.num_bins; ++b) {
            const float v =
                hist[(static_cast<size_t>(cy) * cells_x + cx) *
                         config.num_bins + b];
            descriptor.push_back(v);
            norm_sq += static_cast<double>(v) * v;
          }
        }
      }
      const float inv_norm =
          1.0f / static_cast<float>(std::sqrt(norm_sq + 1e-6));
      for (size_t i = begin; i < descriptor.size(); ++i) {
        descriptor[i] *= inv_norm;
      }
    }
  }
  return descriptor;
}

Result<Matrix> ComputeHogMatrix(const std::vector<data::Image>& images,
                                const HogConfig& config) {
  Matrix out;
  for (size_t i = 0; i < images.size(); ++i) {
    GOGGLES_ASSIGN_OR_RETURN(std::vector<float> hog,
                             ComputeHog(images[i], config));
    if (out.rows() == 0) {
      out = Matrix(static_cast<int64_t>(images.size()),
                   static_cast<int64_t>(hog.size()));
    }
    for (size_t j = 0; j < hog.size(); ++j) {
      out(static_cast<int64_t>(i), static_cast<int64_t>(j)) =
          static_cast<double>(hog[j]);
    }
  }
  return out;
}

}  // namespace goggles::features
