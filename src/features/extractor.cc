#include "features/extractor.h"

#include <algorithm>

#include "nn/layers.h"

namespace goggles::features {
namespace {

std::vector<int> BatchIndices(int64_t begin, int64_t end) {
  std::vector<int> idx;
  idx.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) idx.push_back(static_cast<int>(i));
  return idx;
}

/// Extraction stacks images into [N, C, H, W] batches, which requires a
/// uniform shape — a mixed-shape batch would index past the stacked
/// tensor's per-image stride.
Status CheckUniformShapes(const std::vector<data::Image>& images) {
  if (images.empty()) {
    return Status::InvalidArgument("FeatureExtractor: no images");
  }
  const data::Image& first = images[0];
  if (first.channels < 1 || first.height < 1 || first.width < 1) {
    return Status::InvalidArgument(
        "FeatureExtractor: images must have positive dimensions");
  }
  for (const data::Image& img : images) {
    if (img.channels != first.channels || img.height != first.height ||
        img.width != first.width ||
        static_cast<int64_t>(img.pixels.size()) != first.NumElements()) {
      return Status::InvalidArgument(
          "FeatureExtractor: all images in a batch must share one shape");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::vector<Tensor>>> FeatureExtractor::PoolFeatureMaps(
    const std::vector<data::Image>& images, int batch_size) const {
  GOGGLES_RETURN_NOT_OK(CheckUniformShapes(images));
  const int num_layers = num_pool_layers();
  std::vector<std::vector<Tensor>> maps(static_cast<size_t>(num_layers));
  for (auto& per_layer : maps) per_layer.reserve(images.size());

  const int64_t n = static_cast<int64_t>(images.size());
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t end = std::min<int64_t>(n, start + batch_size);
    Tensor batch = data::StackImageSubset(images, BatchIndices(start, end));
    std::vector<Tensor> taps;
    // Taps-only forward: skips the classifier head (whose output is
    // unused here) and therefore accepts any image resolution the
    // conv/pool prefix supports.
    GOGGLES_RETURN_NOT_OK(backbone_.net.ForwardTaps(
        batch, backbone_.pool_layer_indices, &taps));
    for (int layer = 0; layer < num_layers; ++layer) {
      const Tensor& tap = taps[static_cast<size_t>(layer)];
      const int64_t c = tap.dim(1), h = tap.dim(2), w = tap.dim(3);
      const int64_t stride = c * h * w;
      for (int64_t i = 0; i < end - start; ++i) {
        Tensor single({c, h, w});
        std::copy(tap.data() + i * stride, tap.data() + (i + 1) * stride,
                  single.data());
        maps[static_cast<size_t>(layer)].push_back(std::move(single));
      }
    }
  }
  return maps;
}

Result<Matrix> FeatureExtractor::Logits(const std::vector<data::Image>& images,
                                        int batch_size) const {
  GOGGLES_RETURN_NOT_OK(CheckUniformShapes(images));
  const int64_t n = static_cast<int64_t>(images.size());
  Matrix out;
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t end = std::min<int64_t>(n, start + batch_size);
    Tensor batch = data::StackImageSubset(images, BatchIndices(start, end));
    GOGGLES_ASSIGN_OR_RETURN(Tensor logits, backbone_.net.Forward(batch));
    if (out.rows() == 0) out = Matrix(n, logits.dim(1));
    for (int64_t i = 0; i < end - start; ++i) {
      for (int64_t j = 0; j < logits.dim(1); ++j) {
        out(start + i, j) = static_cast<double>(logits.At2(i, j));
      }
    }
  }
  return out;
}

Result<Matrix> FeatureExtractor::PenultimateFeatures(
    const std::vector<data::Image>& images, int batch_size) const {
  GOGGLES_RETURN_NOT_OK(CheckUniformShapes(images));
  const int64_t n = static_cast<int64_t>(images.size());
  const std::vector<int> taps = {backbone_.flatten_layer_index};
  Matrix out;
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t end = std::min<int64_t>(n, start + batch_size);
    Tensor batch = data::StackImageSubset(images, BatchIndices(start, end));
    std::vector<Tensor> captured;
    GOGGLES_RETURN_NOT_OK(backbone_.net.ForwardTaps(batch, taps, &captured));
    const Tensor& features = captured[0];
    if (out.rows() == 0) out = Matrix(n, features.dim(1));
    for (int64_t i = 0; i < end - start; ++i) {
      for (int64_t j = 0; j < features.dim(1); ++j) {
        out(start + i, j) = static_cast<double>(features.At2(i, j));
      }
    }
  }
  return out;
}

void FeatureExtractor::SetInferencePrecision(ConvPrecision precision) {
  inference_precision_ = precision;
  for (int i = 0; i < backbone_.net.num_layers(); ++i) {
    if (auto* conv = dynamic_cast<nn::Conv2D*>(backbone_.net.layer(i))) {
      conv->SetInferencePrecision(precision);
    }
  }
}

}  // namespace goggles::features
