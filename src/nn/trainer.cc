#include "nn/trainer.h"

#include <algorithm>

#include "tensor/ops.h"
#include "util/logging.h"

namespace goggles::nn {

Tensor MakeOneHot(const std::vector<int>& labels, int num_classes) {
  Tensor t({static_cast<int64_t>(labels.size()), num_classes});
  for (size_t i = 0; i < labels.size(); ++i) {
    t.At2(static_cast<int64_t>(i), labels[i]) = 1.0f;
  }
  return t;
}

Tensor GatherRows(const Tensor& x, const std::vector<int>& indices) {
  std::vector<int64_t> shape = x.shape();
  const int64_t row_elems = x.NumElements() / x.dim(0);
  shape[0] = static_cast<int64_t>(indices.size());
  Tensor out(shape);
  for (size_t i = 0; i < indices.size(); ++i) {
    const float* src = x.data() + static_cast<int64_t>(indices[i]) * row_elems;
    std::copy(src, src + row_elems,
              out.data() + static_cast<int64_t>(i) * row_elems);
  }
  return out;
}

Trainer::Trainer(Sequential* net, const TrainerConfig& config)
    : net_(net), config_(config) {
  if (config_.optimizer == TrainerConfig::OptimizerKind::kAdam) {
    optimizer_ = std::make_unique<Adam>(config_.learning_rate);
  } else {
    optimizer_ = std::make_unique<Sgd>(config_.learning_rate, config_.momentum,
                                       config_.weight_decay);
  }
}

Result<double> Trainer::RunEpoch(const Tensor& x, const Tensor& targets,
                                 Rng* rng) {
  const int64_t n = x.dim(0);
  std::vector<int> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = static_cast<int>(i);
  if (config_.shuffle) rng->Shuffle(&order);

  double total_loss = 0.0;
  int64_t batches = 0;
  for (int64_t start = 0; start < n; start += config_.batch_size) {
    const int64_t end = std::min<int64_t>(n, start + config_.batch_size);
    std::vector<int> batch(order.begin() + start, order.begin() + end);
    Tensor xb = GatherRows(x, batch);
    Tensor tb = GatherRows(targets, batch);

    net_->ZeroGrad();
    GOGGLES_ASSIGN_OR_RETURN(Tensor logits, net_->Forward(xb));
    GOGGLES_ASSIGN_OR_RETURN(SoftmaxCrossEntropyResult loss,
                             SoftmaxCrossEntropy(logits, tb));
    GOGGLES_ASSIGN_OR_RETURN(Tensor unused, net_->Backward(loss.dlogits));
    (void)unused;
    optimizer_->Step(net_->Params());

    total_loss += loss.loss;
    ++batches;
  }
  return batches > 0 ? total_loss / static_cast<double>(batches) : 0.0;
}

Result<double> Trainer::FitSoft(const Tensor& x, const Tensor& targets) {
  if (x.dim(0) != targets.dim(0)) {
    return Status::InvalidArgument("FitSoft: sample count mismatch");
  }
  Rng rng(config_.seed);
  double last_loss = 0.0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    GOGGLES_ASSIGN_OR_RETURN(last_loss, RunEpoch(x, targets, &rng));
    if (config_.verbose) {
      GOGGLES_LOG(INFO) << "epoch " << (epoch + 1) << "/" << config_.epochs
                        << " loss=" << last_loss;
    }
  }
  return last_loss;
}

Result<double> Trainer::Fit(const Tensor& x, const std::vector<int>& labels,
                            int num_classes) {
  return FitSoft(x, MakeOneHot(labels, num_classes));
}

Result<std::vector<int>> Trainer::Predict(const Tensor& x, int batch_size) {
  const int64_t n = x.dim(0);
  std::vector<int> preds;
  preds.reserve(static_cast<size_t>(n));
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t end = std::min<int64_t>(n, start + batch_size);
    std::vector<int> batch;
    for (int64_t i = start; i < end; ++i) batch.push_back(static_cast<int>(i));
    Tensor xb = GatherRows(x, batch);
    GOGGLES_ASSIGN_OR_RETURN(Tensor logits, net_->Forward(xb));
    const int64_t k = logits.dim(1);
    for (int64_t i = 0; i < logits.dim(0); ++i) {
      const float* row = logits.data() + i * k;
      int best = 0;
      for (int64_t j = 1; j < k; ++j) {
        if (row[j] > row[best]) best = static_cast<int>(j);
      }
      preds.push_back(best);
    }
  }
  return preds;
}

Result<double> Trainer::Evaluate(const Tensor& x,
                                 const std::vector<int>& labels) {
  GOGGLES_ASSIGN_OR_RETURN(std::vector<int> preds, Predict(x));
  if (preds.size() != labels.size()) {
    return Status::Internal("Evaluate: prediction count mismatch");
  }
  int64_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return labels.empty() ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(labels.size());
}

}  // namespace goggles::nn
