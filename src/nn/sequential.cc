#include "nn/sequential.h"

namespace goggles::nn {

int Sequential::Add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return static_cast<int>(layers_.size()) - 1;
}

Result<Tensor> Sequential::Forward(const Tensor& x) {
  Tensor cur = x;
  for (auto& layer : layers_) {
    GOGGLES_ASSIGN_OR_RETURN(cur, layer->Forward(cur));
  }
  return cur;
}

Result<Tensor> Sequential::Forward(const Tensor& x) const {
  Tensor cur = x;
  for (const auto& layer : layers_) {
    GOGGLES_ASSIGN_OR_RETURN(cur, layer->ForwardInference(cur));
  }
  return cur;
}

Result<Tensor> Sequential::ForwardWithTaps(const Tensor& x,
                                           const std::vector<int>& tap_layers,
                                           std::vector<Tensor>* taps) {
  taps->clear();
  taps->reserve(tap_layers.size());
  size_t next_tap = 0;
  Tensor cur = x;
  for (int i = 0; i < num_layers(); ++i) {
    GOGGLES_ASSIGN_OR_RETURN(cur, layers_[static_cast<size_t>(i)]->Forward(cur));
    if (next_tap < tap_layers.size() && tap_layers[next_tap] == i) {
      taps->push_back(cur);
      ++next_tap;
    }
  }
  if (next_tap != tap_layers.size()) {
    return Status::InvalidArgument(
        "ForwardWithTaps: tap_layers must be ascending valid layer indices");
  }
  return cur;
}

Status Sequential::ForwardTaps(const Tensor& x,
                               const std::vector<int>& tap_layers,
                               std::vector<Tensor>* taps) const {
  taps->clear();
  if (tap_layers.empty()) return Status::OK();
  for (size_t t = 0; t < tap_layers.size(); ++t) {
    if (tap_layers[t] < 0 || tap_layers[t] >= num_layers() ||
        (t > 0 && tap_layers[t] <= tap_layers[t - 1])) {
      return Status::InvalidArgument(
          "ForwardTaps: tap_layers must be ascending valid layer indices");
    }
  }
  taps->reserve(tap_layers.size());
  size_t next_tap = 0;
  Tensor cur = x;
  for (int i = 0; i <= tap_layers.back(); ++i) {
    GOGGLES_ASSIGN_OR_RETURN(
        cur, layers_[static_cast<size_t>(i)]->ForwardInference(cur));
    if (next_tap < tap_layers.size() && tap_layers[next_tap] == i) {
      taps->push_back(cur);
      ++next_tap;
    }
  }
  return Status::OK();
}

Result<Tensor> Sequential::ForwardUpTo(const Tensor& x, int upto_layer) {
  if (upto_layer < 0 || upto_layer >= num_layers()) {
    return Status::OutOfRange("ForwardUpTo: layer index out of range");
  }
  Tensor cur = x;
  for (int i = 0; i <= upto_layer; ++i) {
    GOGGLES_ASSIGN_OR_RETURN(cur, layers_[static_cast<size_t>(i)]->Forward(cur));
  }
  return cur;
}

Result<Tensor> Sequential::Backward(const Tensor& grad_output) {
  Tensor cur = grad_output;
  for (int i = num_layers() - 1; i >= 0; --i) {
    GOGGLES_ASSIGN_OR_RETURN(cur, layers_[static_cast<size_t>(i)]->Backward(cur));
  }
  return cur;
}

std::vector<Parameter*> Sequential::Params() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Params()) out.push_back(p);
  }
  return out;
}

void Sequential::ZeroGrad() {
  for (auto& layer : layers_) layer->ZeroGrad();
}

int64_t Sequential::NumParameters() {
  int64_t total = 0;
  for (Parameter* p : Params()) total += p->value.NumElements();
  return total;
}

}  // namespace goggles::nn
