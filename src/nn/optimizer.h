#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"

/// \file optimizer.h
/// \brief First-order optimizers (SGD with momentum, Adam).
///
/// The paper trains FSL and end models "with the Adam optimizer with a
/// learning rate of 1e-3" (§5.1.3); Adam here uses the same defaults.

namespace goggles::nn {

/// \brief Interface for parameter-update rules.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// \brief Applies one update using each parameter's accumulated gradient.
  virtual void Step(const std::vector<Parameter*>& params) = 0;
};

/// \brief Stochastic gradient descent with classical momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float learning_rate, float momentum = 0.9f,
               float weight_decay = 0.0f)
      : lr_(learning_rate), momentum_(momentum), weight_decay_(weight_decay) {}

  void Step(const std::vector<Parameter*>& params) override;

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;  // lazily sized to match params
};

/// \brief Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(float learning_rate = 1e-3f, float beta1 = 0.9f,
                float beta2 = 0.999f, float epsilon = 1e-8f)
      : lr_(learning_rate), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}

  void Step(const std::vector<Parameter*>& params) override;

 private:
  float lr_, beta1_, beta2_, epsilon_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace goggles::nn
