#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/ops.h"
#include "util/rng.h"

/// \file layers.h
/// \brief Concrete layers: Conv2D, MaxPool2D, ReLU, Flatten, Linear.

namespace goggles::nn {

/// \brief 2-D convolution with He-normal initialization.
class Conv2D : public Layer {
 public:
  /// \param in_channels  input channel count
  /// \param out_channels filter count
  /// \param kernel       square kernel size
  /// \param stride/pad   convolution geometry
  /// \param rng          initializer source (He-normal fan-in scaling)
  Conv2D(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride, int64_t pad, Rng* rng);

  Result<Tensor> Forward(const Tensor& x) override;
  Result<Tensor> ForwardInference(const Tensor& x) const override;
  Result<Tensor> Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Conv2D"; }

  int64_t out_channels() const { return weight_.value.dim(0); }

  /// \brief Switches the INFERENCE path to a quantized weight format
  /// (kBf16 or kInt8; kF32 restores the default). Quantizes the current
  /// weights once, so call after training / weight loading. Training
  /// (Forward/Backward) always stays f32. Not thread-safe against
  /// concurrent ForwardInference calls — flip precision before serving.
  void SetInferencePrecision(ConvPrecision precision);

  ConvPrecision inference_precision() const { return inference_precision_; }

 private:
  Conv2dParams params_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
  ConvPrecision inference_precision_ = ConvPrecision::kF32;
  QuantizedConvWeights qweights_;  ///< valid iff precision != kF32
};

/// \brief Square-window max pooling.
class MaxPool2D : public Layer {
 public:
  MaxPool2D(int64_t kernel, int64_t stride) : kernel_(kernel), stride_(stride) {}

  Result<Tensor> Forward(const Tensor& x) override;
  Result<Tensor> ForwardInference(const Tensor& x) const override;
  Result<Tensor> Backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2D"; }

 private:
  int64_t kernel_;
  int64_t stride_;
  std::vector<int64_t> cached_argmax_;
  std::vector<int64_t> cached_input_shape_;
};

/// \brief Elementwise rectifier.
class ReLU : public Layer {
 public:
  Result<Tensor> Forward(const Tensor& x) override;
  Result<Tensor> ForwardInference(const Tensor& x) const override;
  Result<Tensor> Backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

/// \brief Collapses [N, C, H, W] (or any trailing dims) to [N, D].
class Flatten : public Layer {
 public:
  Result<Tensor> Forward(const Tensor& x) override;
  Result<Tensor> ForwardInference(const Tensor& x) const override;
  Result<Tensor> Backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<int64_t> cached_input_shape_;
};

/// \brief Fully-connected layer with He-normal initialization.
class Linear : public Layer {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng);

  Result<Tensor> Forward(const Tensor& x) override;
  Result<Tensor> ForwardInference(const Tensor& x) const override;
  Result<Tensor> Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Linear"; }

  int64_t in_features() const { return weight_.value.dim(1); }
  int64_t out_features() const { return weight_.value.dim(0); }

 private:
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace goggles::nn
