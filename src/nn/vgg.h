#pragma once

#include <vector>

#include "nn/sequential.h"
#include "util/status.h"

/// \file vgg.h
/// \brief `VggMini`: the VGG-style backbone used for affinity coding.
///
/// The paper builds its 50 affinity functions on the 5 max-pooling layers of
/// an ImageNet-pretrained VGG-16 (§3). Offline we cannot ship those weights,
/// so `VggMini` reproduces the *structural* property GOGGLES relies on —
/// a stack of conv/ReLU stages each ending in max-pool, yielding filter maps
/// at 5 scales — and is pretrained in-repo on the SynthNet corpus (see
/// DESIGN.md, substitution table).

namespace goggles::nn {

/// \brief Architecture hyper-parameters for VggMini.
struct VggMiniConfig {
  int in_channels = 3;
  int image_size = 32;
  /// Output channels of each conv stage; one max-pool follows each stage,
  /// so `stage_channels.size()` is also the number of pooling layers (the
  /// paper's 5).
  std::vector<int> stage_channels = {8, 16, 32, 48, 64};
  int convs_per_stage = 1;
  int num_classes = 16;
  uint64_t seed = 1234;
};

/// \brief A built backbone: the network plus bookkeeping for feature taps.
struct VggMini {
  Sequential net;
  VggMiniConfig config;
  /// Layer indices (into `net`) of the max-pool layers, ascending. These
  /// are the tap points GOGGLES extracts prototypes from.
  std::vector<int> pool_layer_indices;
  /// Index of the Flatten layer (the penultimate feature representation
  /// right after it feeds the classifier head).
  int flatten_layer_index = -1;
  /// Flattened feature dimension entering the classifier head.
  int64_t feature_dim = 0;
};

/// \brief Constructs a randomly-initialized VggMini per `config`.
Result<VggMini> BuildVggMini(const VggMiniConfig& config);

}  // namespace goggles::nn
