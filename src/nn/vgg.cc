#include "nn/vgg.h"

#include <memory>

#include "nn/layers.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace goggles::nn {

Result<VggMini> BuildVggMini(const VggMiniConfig& config) {
  if (config.stage_channels.empty()) {
    return Status::InvalidArgument("VggMini: need at least one stage");
  }
  if (config.convs_per_stage < 1) {
    return Status::InvalidArgument("VggMini: convs_per_stage must be >= 1");
  }
  int size = config.image_size;
  for (size_t s = 0; s < config.stage_channels.size(); ++s) {
    if (size < 2) {
      return Status::InvalidArgument(StrFormat(
          "VggMini: image_size %d too small for %zu pooling stages",
          config.image_size, config.stage_channels.size()));
    }
    size /= 2;
  }

  VggMini model;
  model.config = config;
  Rng rng(config.seed);

  int in_ch = config.in_channels;
  for (int ch : config.stage_channels) {
    for (int conv = 0; conv < config.convs_per_stage; ++conv) {
      model.net.Add(std::make_unique<Conv2D>(in_ch, ch, /*kernel=*/3,
                                             /*stride=*/1, /*pad=*/1, &rng));
      model.net.Add(std::make_unique<ReLU>());
      in_ch = ch;
    }
    int pool_index =
        model.net.Add(std::make_unique<MaxPool2D>(/*kernel=*/2, /*stride=*/2));
    model.pool_layer_indices.push_back(pool_index);
  }

  const int64_t final_spatial =
      config.image_size >> config.stage_channels.size();
  model.feature_dim =
      static_cast<int64_t>(config.stage_channels.back()) * final_spatial *
      final_spatial;
  model.flatten_layer_index = model.net.Add(std::make_unique<Flatten>());
  model.net.Add(
      std::make_unique<Linear>(model.feature_dim, config.num_classes, &rng));
  return model;
}

}  // namespace goggles::nn
