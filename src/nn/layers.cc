#include "nn/layers.h"

#include <cmath>

namespace goggles::nn {

Conv2D::Conv2D(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t pad, Rng* rng) {
  params_.stride = stride;
  params_.pad = pad;
  const float fan_in = static_cast<float>(in_channels * kernel * kernel);
  const float stddev = std::sqrt(2.0f / fan_in);
  weight_.name = "conv.weight";
  weight_.value = Tensor::RandomNormal({out_channels, in_channels, kernel, kernel},
                                       stddev, rng);
  weight_.grad = Tensor::Zeros({out_channels, in_channels, kernel, kernel});
  bias_.name = "conv.bias";
  bias_.value = Tensor::Zeros({out_channels});
  bias_.grad = Tensor::Zeros({out_channels});
}

Result<Tensor> Conv2D::Forward(const Tensor& x) {
  cached_input_ = x;
  return Conv2dForward(x, weight_.value, bias_.value, params_);
}

Result<Tensor> Conv2D::ForwardInference(const Tensor& x) const {
  if (inference_precision_ != ConvPrecision::kF32) {
    return Conv2dForwardQuantized(x, qweights_, bias_.value, params_);
  }
  return Conv2dForward(x, weight_.value, bias_.value, params_);
}

void Conv2D::SetInferencePrecision(ConvPrecision precision) {
  inference_precision_ = precision;
  if (precision == ConvPrecision::kF32) {
    qweights_ = QuantizedConvWeights();  // drop the stale payload
    return;
  }
  qweights_ = QuantizeConvWeights(weight_.value, precision);
}

Result<Tensor> Conv2D::Backward(const Tensor& grad_output) {
  GOGGLES_ASSIGN_OR_RETURN(
      Conv2dGrads grads,
      Conv2dBackward(cached_input_, weight_.value, grad_output, params_));
  GOGGLES_RETURN_NOT_OK(weight_.grad.AddInPlace(grads.dw));
  GOGGLES_RETURN_NOT_OK(bias_.grad.AddInPlace(grads.db));
  return std::move(grads.dx);
}

Result<Tensor> MaxPool2D::Forward(const Tensor& x) {
  cached_input_shape_ = x.shape();
  GOGGLES_ASSIGN_OR_RETURN(MaxPoolResult result,
                           MaxPool2dForward(x, kernel_, stride_));
  cached_argmax_ = std::move(result.argmax);
  return std::move(result.y);
}

Result<Tensor> MaxPool2D::Backward(const Tensor& grad_output) {
  return MaxPool2dBackward(cached_argmax_, cached_input_shape_, grad_output);
}

Result<Tensor> MaxPool2D::ForwardInference(const Tensor& x) const {
  return MaxPool2dInference(x, kernel_, stride_);
}

Result<Tensor> ReLU::Forward(const Tensor& x) {
  cached_input_ = x;
  return ReluForward(x);
}

Result<Tensor> ReLU::Backward(const Tensor& grad_output) {
  return ReluBackward(cached_input_, grad_output);
}

Result<Tensor> ReLU::ForwardInference(const Tensor& x) const {
  return ReluForward(x);
}

Result<Tensor> Flatten::Forward(const Tensor& x) {
  cached_input_shape_ = x.shape();
  Tensor y = x;
  const int64_t n = x.dim(0);
  GOGGLES_RETURN_NOT_OK(y.Reshape({n, x.NumElements() / n}));
  return y;
}

Result<Tensor> Flatten::Backward(const Tensor& grad_output) {
  Tensor dx = grad_output;
  GOGGLES_RETURN_NOT_OK(dx.Reshape(cached_input_shape_));
  return dx;
}

Result<Tensor> Flatten::ForwardInference(const Tensor& x) const {
  Tensor y = x;
  const int64_t n = x.dim(0);
  GOGGLES_RETURN_NOT_OK(y.Reshape({n, x.NumElements() / n}));
  return y;
}

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
  weight_.name = "linear.weight";
  weight_.value = Tensor::RandomNormal({out_features, in_features}, stddev, rng);
  weight_.grad = Tensor::Zeros({out_features, in_features});
  bias_.name = "linear.bias";
  bias_.value = Tensor::Zeros({out_features});
  bias_.grad = Tensor::Zeros({out_features});
}

Result<Tensor> Linear::Forward(const Tensor& x) {
  cached_input_ = x;
  return LinearForward(x, weight_.value, bias_.value);
}

Result<Tensor> Linear::ForwardInference(const Tensor& x) const {
  return LinearForward(x, weight_.value, bias_.value);
}

Result<Tensor> Linear::Backward(const Tensor& grad_output) {
  GOGGLES_ASSIGN_OR_RETURN(
      LinearGrads grads,
      LinearBackward(cached_input_, weight_.value, grad_output));
  GOGGLES_RETURN_NOT_OK(weight_.grad.AddInPlace(grads.dw));
  GOGGLES_RETURN_NOT_OK(bias_.grad.AddInPlace(grads.db));
  return std::move(grads.dx);
}

}  // namespace goggles::nn
