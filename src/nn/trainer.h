#pragma once

#include <cstdint>
#include <vector>

#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "util/rng.h"
#include "util/status.h"

/// \file trainer.h
/// \brief Minibatch trainer for `Sequential` models.
///
/// Supports hard labels and probabilistic ("soft") labels; the latter is
/// how downstream end models consume GOGGLES output (paper §2.1: minimize
/// the expected loss under the probabilistic label distribution).

namespace goggles::nn {

/// \brief Training hyper-parameters.
struct TrainerConfig {
  int epochs = 5;
  int batch_size = 32;
  float learning_rate = 1e-3f;
  enum class OptimizerKind { kSgd, kAdam } optimizer = OptimizerKind::kAdam;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  bool shuffle = true;
  uint64_t seed = 42;
  bool verbose = false;
};

/// \brief Runs minibatch SGD/Adam over a Sequential model.
class Trainer {
 public:
  /// \param net borrowed; must outlive the trainer.
  Trainer(Sequential* net, const TrainerConfig& config);

  /// \brief Trains against soft target distributions.
  ///
  /// \param x       [N, ...] input tensor (first dim is the sample index)
  /// \param targets [N, K] rows sum to 1
  /// \returns mean loss of the final epoch
  Result<double> FitSoft(const Tensor& x, const Tensor& targets);

  /// \brief Trains against integer labels (one-hot encoded internally).
  Result<double> Fit(const Tensor& x, const std::vector<int>& labels,
                     int num_classes);

  /// \brief Argmax predictions.
  Result<std::vector<int>> Predict(const Tensor& x, int batch_size = 64);

  /// \brief Fraction of correct argmax predictions.
  Result<double> Evaluate(const Tensor& x, const std::vector<int>& labels);

 private:
  Result<double> RunEpoch(const Tensor& x, const Tensor& targets, Rng* rng);

  Sequential* net_;
  TrainerConfig config_;
  std::unique_ptr<Optimizer> optimizer_;
};

/// \brief One-hot encodes labels into an [N, K] tensor.
Tensor MakeOneHot(const std::vector<int>& labels, int num_classes);

/// \brief Gathers rows `indices` of `x` (first-dimension gather).
Tensor GatherRows(const Tensor& x, const std::vector<int>& indices);

}  // namespace goggles::nn
