#pragma once

#include <string>

#include "nn/sequential.h"
#include "util/status.h"

/// \file serialize.h
/// \brief Binary save/load of a Sequential model's parameters.
///
/// Enables caching the pretrained VggMini backbone on disk so every bench /
/// example process does not have to retrain it (the paper's analogue:
/// downloading pretrained VGG-16 weights once).

namespace goggles::nn {

/// \brief Writes all parameters (in layer order) to `path`.
///
/// Format: magic "GGLW", version, parameter count; then per parameter:
/// name length+bytes, ndim, dims, raw float32 payload.
Status SaveParameters(Sequential* net, const std::string& path);

/// \brief Loads parameters saved by SaveParameters into `net`.
///
/// The architecture must match (same parameter order, names and shapes).
Status LoadParameters(Sequential* net, const std::string& path);

}  // namespace goggles::nn
