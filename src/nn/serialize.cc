#include "nn/serialize.h"

#include <cstdint>
#include <fstream>

#include "util/binary_io.h"
#include "util/string_util.h"

namespace goggles::nn {
namespace {

using io::ReadPod;
using io::WritePod;

constexpr char kMagic[4] = {'G', 'G', 'L', 'W'};
constexpr uint32_t kVersion = 1;

}  // namespace

Status SaveParameters(Sequential* net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("SaveParameters: cannot open " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  const std::vector<Parameter*> params = net->Params();
  WritePod(out, static_cast<uint64_t>(params.size()));
  for (const Parameter* p : params) {
    WritePod(out, static_cast<uint32_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    WritePod(out, static_cast<uint32_t>(p->value.ndim()));
    for (int64_t d : p->value.shape()) WritePod(out, d);
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.NumElements() *
                                           sizeof(float)));
  }
  if (!out.good()) return Status::IOError("SaveParameters: write failed");
  return Status::OK();
}

Status LoadParameters(Sequential* net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("LoadParameters: cannot open " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::string(magic, 4) != std::string(kMagic, 4)) {
    return Status::IOError("LoadParameters: bad magic");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::IOError("LoadParameters: unsupported version");
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return Status::IOError("LoadParameters: truncated");

  std::vector<Parameter*> params = net->Params();
  if (count != params.size()) {
    return Status::InvalidArgument(StrFormat(
        "LoadParameters: parameter count mismatch (file %llu vs model %zu)",
        static_cast<unsigned long long>(count), params.size()));
  }
  for (Parameter* p : params) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len)) return Status::IOError("truncated name len");
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (name != p->name) {
      return Status::InvalidArgument(
          StrFormat("LoadParameters: parameter name mismatch ('%s' vs '%s')",
                    name.c_str(), p->name.c_str()));
    }
    uint32_t ndim = 0;
    if (!ReadPod(in, &ndim)) return Status::IOError("truncated ndim");
    std::vector<int64_t> shape(ndim);
    for (auto& d : shape) {
      if (!ReadPod(in, &d)) return Status::IOError("truncated shape");
    }
    if (shape != p->value.shape()) {
      return Status::InvalidArgument("LoadParameters: shape mismatch for " +
                                     p->name);
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.NumElements() *
                                         sizeof(float)));
    if (!in.good()) return Status::IOError("LoadParameters: truncated payload");
  }
  return Status::OK();
}

}  // namespace goggles::nn
