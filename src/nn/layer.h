#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

/// \file layer.h
/// \brief Abstract layer interface for the sequential NN substrate.

namespace goggles::nn {

/// \brief A trainable parameter: value plus accumulated gradient.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
};

/// \brief One differentiable layer.
///
/// Layers cache whatever they need during Forward (inputs, argmax masks) so
/// the subsequent Backward call can compute exact gradients. A layer is
/// therefore stateful across one Forward/Backward pair; `Sequential` owns
/// the call ordering.
class Layer {
 public:
  virtual ~Layer() = default;

  /// \brief Computes the layer output for `x`.
  virtual Result<Tensor> Forward(const Tensor& x) = 0;

  /// \brief Inference-only forward pass: same output as Forward but no
  /// cached state, so it is const and safe to call concurrently from many
  /// threads on one shared layer. Backward must not follow this call.
  ///
  /// The default fails loudly so a subclass without a stateless path can
  /// never be silently raced through the concurrent extraction entry
  /// points.
  virtual Result<Tensor> ForwardInference(const Tensor& x) const {
    (void)x;
    return Status::Internal(name() + ": no const inference path implemented");
  }

  /// \brief Given d(loss)/d(output), accumulates parameter gradients and
  /// returns d(loss)/d(input). Must follow a Forward call.
  virtual Result<Tensor> Backward(const Tensor& grad_output) = 0;

  /// \brief Trainable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> Params() { return {}; }

  /// \brief Sets all parameter gradients to zero.
  void ZeroGrad() {
    for (Parameter* p : Params()) p->grad.Fill(0.0f);
  }

  /// \brief Layer type name for debugging/serialization.
  virtual std::string name() const = 0;
};

}  // namespace goggles::nn
