#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

/// \file sequential.h
/// \brief Ordered layer container with feature taps.
///
/// Besides plain forward/backward, `Sequential` can return the activations
/// of selected intermediate layers in a single pass — GOGGLES taps the five
/// max-pool outputs to extract prototypes (paper §3.1).

namespace goggles::nn {

/// \brief A feed-forward stack of layers.
class Sequential {
 public:
  Sequential() = default;

  // Movable, not copyable (owns layer state).
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;
  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;

  /// \brief Appends a layer; returns its index.
  int Add(std::unique_ptr<Layer> layer);

  int num_layers() const { return static_cast<int>(layers_.size()); }

  Layer* layer(int i) { return layers_[static_cast<size_t>(i)].get(); }
  const Layer* layer(int i) const { return layers_[static_cast<size_t>(i)].get(); }

  /// \brief Full forward pass.
  Result<Tensor> Forward(const Tensor& x);

  /// \brief Forward pass that also captures the outputs of `tap_layers`
  /// (indices into the layer stack, ascending). `taps[i]` receives the
  /// output of layer `tap_layers[i]`.
  Result<Tensor> ForwardWithTaps(const Tensor& x,
                                 const std::vector<int>& tap_layers,
                                 std::vector<Tensor>* taps);

  /// \brief Forward only through layers [0, upto_layer] inclusive.
  Result<Tensor> ForwardUpTo(const Tensor& x, int upto_layer);

  /// \brief Backward pass through every layer (after a full Forward).
  Result<Tensor> Backward(const Tensor& grad_output);

  /// \brief All trainable parameters in layer order.
  std::vector<Parameter*> Params();

  /// \brief Zeroes all parameter gradients.
  void ZeroGrad();

  /// \brief Total number of trainable scalars.
  int64_t NumParameters();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace goggles::nn
