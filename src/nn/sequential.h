#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

/// \file sequential.h
/// \brief Ordered layer container with feature taps.
///
/// Besides plain forward/backward, `Sequential` can return the activations
/// of selected intermediate layers in a single pass — GOGGLES taps the five
/// max-pool outputs to extract prototypes (paper §3.1).

namespace goggles::nn {

/// \brief A feed-forward stack of layers.
class Sequential {
 public:
  Sequential() = default;

  // Movable, not copyable (owns layer state).
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;
  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;

  /// \brief Appends a layer; returns its index.
  int Add(std::unique_ptr<Layer> layer);

  int num_layers() const { return static_cast<int>(layers_.size()); }

  Layer* layer(int i) { return layers_[static_cast<size_t>(i)].get(); }
  const Layer* layer(int i) const { return layers_[static_cast<size_t>(i)].get(); }

  /// \brief Full forward pass (training path: layers cache activations
  /// for a subsequent Backward).
  Result<Tensor> Forward(const Tensor& x);

  /// \brief Thread-safe inference forward pass. Routed through the
  /// layers' const ForwardInference path, so no layer state is mutated and
  /// any number of threads may forward through one shared network
  /// concurrently. Backward must not follow this call.
  Result<Tensor> Forward(const Tensor& x) const;

  /// \brief Forward pass that also captures the outputs of `tap_layers`
  /// (indices into the layer stack, ascending). `taps[i]` receives the
  /// output of layer `tap_layers[i]`.
  Result<Tensor> ForwardWithTaps(const Tensor& x,
                                 const std::vector<int>& tap_layers,
                                 std::vector<Tensor>* taps);

  /// \brief Thread-safe taps-only inference: runs layers [0, last tap]
  /// and captures the requested outputs, skipping everything after the
  /// last tap. Besides saving the unused tail compute (feature extraction
  /// discards the classifier head's output), this accepts any input
  /// resolution the tapped prefix supports — e.g. conv/pool filter maps
  /// for images larger than the classifier head was sized for.
  Status ForwardTaps(const Tensor& x, const std::vector<int>& tap_layers,
                     std::vector<Tensor>* taps) const;

  /// \brief Forward only through layers [0, upto_layer] inclusive.
  Result<Tensor> ForwardUpTo(const Tensor& x, int upto_layer);

  /// \brief Backward pass through every layer (after a full Forward).
  Result<Tensor> Backward(const Tensor& grad_output);

  /// \brief All trainable parameters in layer order.
  std::vector<Parameter*> Params();

  /// \brief Zeroes all parameter gradients.
  void ZeroGrad();

  /// \brief Total number of trainable scalars.
  int64_t NumParameters();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace goggles::nn
