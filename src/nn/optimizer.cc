#include "nn/optimizer.h"

#include <cmath>

namespace goggles::nn {

void Sgd::Step(const std::vector<Parameter*>& params) {
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (Parameter* p : params) velocity_.push_back(Tensor::Zeros(p->value.shape()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    Parameter* p = params[i];
    Tensor& vel = velocity_[i];
    float* v = vel.data();
    float* w = p->value.data();
    const float* g = p->grad.data();
    for (int64_t j = 0; j < p->value.NumElements(); ++j) {
      float grad = g[j] + weight_decay_ * w[j];
      v[j] = momentum_ * v[j] + grad;
      w[j] -= lr_ * v[j];
    }
  }
}

void Adam::Step(const std::vector<Parameter*>& params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (Parameter* p : params) {
      m_.push_back(Tensor::Zeros(p->value.shape()));
      v_.push_back(Tensor::Zeros(p->value.shape()));
    }
    t_ = 0;
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params.size(); ++i) {
    Parameter* p = params[i];
    float* m = m_[i].data();
    float* v = v_[i].data();
    float* w = p->value.data();
    const float* g = p->grad.data();
    for (int64_t j = 0; j < p->value.NumElements(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + epsilon_);
    }
  }
}

}  // namespace goggles::nn
