#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

/// \file metrics.h
/// \brief Evaluation metrics for labeling and end-model experiments.

namespace goggles::eval {

/// \brief Fraction of positions where pred == truth.
double Accuracy(const std::vector<int>& pred, const std::vector<int>& truth);

/// \brief Accuracy restricted to positions NOT in `exclude` (used to score
/// labeling accuracy on the non-development rows, as in the paper).
double AccuracyExcluding(const std::vector<int>& pred,
                         const std::vector<int>& truth,
                         const std::vector<int>& exclude);

/// \brief K x K confusion matrix: entry (c, k) counts cluster c / truth k.
Matrix ConfusionMatrix(const std::vector<int>& clusters,
                       const std::vector<int>& truth, int num_classes);

/// \brief Accuracy under the *optimal* cluster-to-class mapping (Hungarian
/// on the confusion matrix). The paper grants this to all clustering
/// baselines (§5.1.6): "we use the optimal cluster-class mapping for all
/// baselines".
double AccuracyWithOptimalMapping(const std::vector<int>& clusters,
                                  const std::vector<int>& truth,
                                  int num_classes);

/// \brief Same, excluding the given positions.
double AccuracyWithOptimalMappingExcluding(const std::vector<int>& clusters,
                                           const std::vector<int>& truth,
                                           int num_classes,
                                           const std::vector<int>& exclude);

/// \brief Mean of a sample.
double Mean(const std::vector<double>& values);

/// \brief Unbiased standard deviation (0 for < 2 samples).
double StdDev(const std::vector<double>& values);

/// \brief Area under the ROC curve of `scores` against binary `labels`
/// (probability a random positive scores above a random negative). Used to
/// quantify per-affinity-function separation in the Figure 2 bench.
double AucRoc(const std::vector<double>& scores, const std::vector<int>& labels);

}  // namespace goggles::eval
