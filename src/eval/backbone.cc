#include "eval/backbone.h"

#include <sys/stat.h>

#include <cstdio>

#include "data/synthnet.h"
#include "nn/serialize.h"
#include "nn/trainer.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace goggles::eval {
namespace {

/// Deterministic cache key from every field that affects the weights.
std::string CacheFileName(const BackboneOptions& options) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(static_cast<uint64_t>(options.arch.in_channels));
  mix(static_cast<uint64_t>(options.arch.image_size));
  for (int c : options.arch.stage_channels) mix(static_cast<uint64_t>(c));
  mix(static_cast<uint64_t>(options.arch.convs_per_stage));
  mix(static_cast<uint64_t>(options.arch.num_classes));
  mix(options.arch.seed);
  mix(static_cast<uint64_t>(options.pretrain_images_per_class));
  mix(static_cast<uint64_t>(options.epochs));
  mix(static_cast<uint64_t>(options.learning_rate * 1e6f));
  mix(static_cast<uint64_t>(options.batch_size));
  mix(options.data_seed);
  return StrFormat("vggmini_%016llx.bin",
                   static_cast<unsigned long long>(h));
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Options override first, then GOGGLES_EXTRACT_PRECISION (unknown value
/// warns and falls back to f32), else f32.
ConvPrecision ResolveExtractPrecision(const BackboneOptions& options) {
  if (options.extract_precision.has_value()) {
    return *options.extract_precision;
  }
  const std::string env = GetEnvOr("GOGGLES_EXTRACT_PRECISION", "");
  if (env.empty()) return ConvPrecision::kF32;
  ConvPrecision parsed = ConvPrecision::kF32;
  if (!ParseConvPrecisionName(env, &parsed)) {
    GOGGLES_LOG(WARNING) << "GOGGLES_EXTRACT_PRECISION=\"" << env
                         << "\" is not a precision name (f32|bf16|int8); "
                            "using f32";
  }
  return parsed;
}

/// Applies the resolved precision to a freshly built extractor.
std::shared_ptr<features::FeatureExtractor> FinishExtractor(
    const BackboneOptions& options, nn::VggMini model) {
  auto extractor =
      std::make_shared<features::FeatureExtractor>(std::move(model));
  const ConvPrecision precision = ResolveExtractPrecision(options);
  if (precision != ConvPrecision::kF32) {
    extractor->SetInferencePrecision(precision);
    if (options.verbose) {
      GOGGLES_LOG(INFO) << "extractor conv inference precision: "
                        << ConvPrecisionName(precision);
    }
  }
  return extractor;
}

}  // namespace

Result<std::shared_ptr<features::FeatureExtractor>> GetPretrainedExtractor(
    const BackboneOptions& options, double* train_accuracy) {
  GOGGLES_ASSIGN_OR_RETURN(nn::VggMini model, nn::BuildVggMini(options.arch));

  std::string cache_dir = GetEnvOr("GOGGLES_CACHE_DIR", options.cache_dir);
  std::string cache_path;
  if (!cache_dir.empty()) {
    ::mkdir(cache_dir.c_str(), 0755);  // best effort
    cache_path = cache_dir + "/" + CacheFileName(options);
  }

  if (!cache_path.empty() && FileExists(cache_path)) {
    Status st = nn::LoadParameters(&model.net, cache_path);
    if (st.ok()) {
      if (options.verbose) {
        GOGGLES_LOG(INFO) << "loaded cached backbone: " << cache_path;
      }
      if (train_accuracy != nullptr) *train_accuracy = -1.0;  // unknown
      return FinishExtractor(options, std::move(model));
    }
    GOGGLES_LOG(WARNING) << "cache load failed (" << st.ToString()
                         << "); retraining";
  }

  // Pretrain on SynthNet (the ImageNet stand-in).
  data::SynthNetConfig data_config;
  data_config.images_per_class = options.pretrain_images_per_class;
  data_config.image_size = options.arch.image_size;
  data_config.seed = options.data_seed;
  data::LabeledDataset corpus = data::GenerateSynthNet(data_config);

  Tensor x = data::StackImages(corpus.images);
  nn::TrainerConfig tc;
  tc.epochs = options.epochs;
  tc.batch_size = options.batch_size;
  tc.learning_rate = options.learning_rate;
  tc.seed = options.arch.seed + 1;
  tc.verbose = options.verbose;
  nn::Trainer trainer(&model.net, tc);

  WallTimer timer;
  GOGGLES_ASSIGN_OR_RETURN(double final_loss,
                           trainer.Fit(x, corpus.labels, corpus.num_classes));
  GOGGLES_ASSIGN_OR_RETURN(double acc, trainer.Evaluate(x, corpus.labels));
  if (options.verbose) {
    GOGGLES_LOG(INFO) << StrFormat(
        "pretrained backbone in %.1fs (loss=%.3f, synthnet train acc=%.3f)",
        timer.ElapsedSeconds(), final_loss, acc);
  }
  if (train_accuracy != nullptr) *train_accuracy = acc;

  if (!cache_path.empty()) {
    Status st = nn::SaveParameters(&model.net, cache_path);
    if (!st.ok()) {
      GOGGLES_LOG(WARNING) << "backbone cache write failed: " << st.ToString();
    }
  }
  return FinishExtractor(options, std::move(model));
}

}  // namespace goggles::eval
