#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "linalg/hungarian.h"

namespace goggles::eval {

double Accuracy(const std::vector<int>& pred, const std::vector<int>& truth) {
  if (pred.empty() || pred.size() != truth.size()) return 0.0;
  int64_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == truth[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

double AccuracyExcluding(const std::vector<int>& pred,
                         const std::vector<int>& truth,
                         const std::vector<int>& exclude) {
  std::set<int> skip(exclude.begin(), exclude.end());
  int64_t correct = 0, total = 0;
  for (size_t i = 0; i < pred.size() && i < truth.size(); ++i) {
    if (skip.count(static_cast<int>(i)) > 0) continue;
    ++total;
    if (pred[i] == truth[i]) ++correct;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) / static_cast<double>(total);
}

Matrix ConfusionMatrix(const std::vector<int>& clusters,
                       const std::vector<int>& truth, int num_classes) {
  Matrix confusion(num_classes, num_classes, 0.0);
  for (size_t i = 0; i < clusters.size() && i < truth.size(); ++i) {
    confusion(clusters[i], truth[i]) += 1.0;
  }
  return confusion;
}

namespace {

double MappedAccuracy(const std::vector<int>& clusters,
                      const std::vector<int>& truth, int num_classes,
                      const std::set<int>& skip) {
  Matrix confusion(num_classes, num_classes, 0.0);
  int64_t total = 0;
  for (size_t i = 0; i < clusters.size() && i < truth.size(); ++i) {
    if (skip.count(static_cast<int>(i)) > 0) continue;
    confusion(clusters[i], truth[i]) += 1.0;
    ++total;
  }
  if (total == 0) return 0.0;
  Result<std::vector<int>> assignment = SolveAssignmentMax(confusion);
  if (!assignment.ok()) return 0.0;
  double correct = AssignmentObjective(confusion, *assignment);
  return correct / static_cast<double>(total);
}

}  // namespace

double AccuracyWithOptimalMapping(const std::vector<int>& clusters,
                                  const std::vector<int>& truth,
                                  int num_classes) {
  return MappedAccuracy(clusters, truth, num_classes, {});
}

double AccuracyWithOptimalMappingExcluding(const std::vector<int>& clusters,
                                           const std::vector<int>& truth,
                                           int num_classes,
                                           const std::vector<int>& exclude) {
  return MappedAccuracy(clusters, truth, num_classes,
                        std::set<int>(exclude.begin(), exclude.end()));
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double AucRoc(const std::vector<double>& scores,
              const std::vector<int>& labels) {
  // Rank-sum formulation with midrank tie handling.
  const size_t n = scores.size();
  if (n == 0 || labels.size() != n) return 0.5;
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] < scores[b]; });

  double rank_sum_pos = 0.0;
  int64_t num_pos = 0, num_neg = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t t = i; t <= j; ++t) {
      if (labels[order[t]] == 1) {
        rank_sum_pos += midrank;
        ++num_pos;
      } else {
        ++num_neg;
      }
    }
    i = j + 1;
  }
  if (num_pos == 0 || num_neg == 0) return 0.5;
  const double u = rank_sum_pos -
                   static_cast<double>(num_pos) * (num_pos + 1) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

}  // namespace goggles::eval
