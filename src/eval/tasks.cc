#include "eval/tasks.h"

#include "data/registry.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace goggles::eval {
namespace {

int DefaultImagesPerClass(const std::string& dataset_name) {
  if (dataset_name == "birds") return 60;
  if (dataset_name == "signs") return 40;
  return 120;  // binary corpora
}

LabelingTask MakeTaskFromBinaryDataset(const std::string& dataset_name,
                                       const std::string& task_name,
                                       const data::LabeledDataset& binary,
                                       const TaskSuiteConfig& config,
                                       Rng* rng) {
  LabelingTask task;
  task.dataset_name = dataset_name;
  task.task_name = task_name;
  task.num_classes = binary.num_classes;
  data::TrainTestSplit split =
      data::StratifiedSplit(binary, config.train_fraction, rng);
  task.train = std::move(split.train);
  task.test = std::move(split.test);
  task.dev_indices =
      data::SampleDevIndices(task.train, config.dev_per_class, rng);
  for (int idx : task.dev_indices) {
    task.dev_labels.push_back(task.train.labels[static_cast<size_t>(idx)]);
  }
  return task;
}

}  // namespace

Result<std::vector<LabelingTask>> MakeTasks(const std::string& dataset_name,
                                            const TaskSuiteConfig& config) {
  const int per_class = config.images_per_class > 0
                            ? config.images_per_class
                            : DefaultImagesPerClass(dataset_name);
  GOGGLES_ASSIGN_OR_RETURN(
      data::LabeledDataset corpus,
      data::GenerateDataset(dataset_name, per_class, /*seed=*/0));

  Rng rng(config.seed ^ 0xC0FFEE);
  std::vector<LabelingTask> tasks;
  if (corpus.num_classes == 2) {
    tasks.push_back(MakeTaskFromBinaryDataset(dataset_name, dataset_name,
                                              corpus, config, &rng));
    return tasks;
  }

  // Multi-class corpus: sample binary class-pair tasks (paper §5.1.1).
  const std::vector<std::pair<int, int>> pairs =
      data::SampleClassPairs(corpus.num_classes, config.num_pairs, &rng);
  for (const auto& [a, b] : pairs) {
    data::LabeledDataset binary = data::SelectClasses(corpus, {a, b});
    const std::string task_name =
        StrFormat("%s[%02dv%02d]", dataset_name.c_str(), a, b);
    tasks.push_back(MakeTaskFromBinaryDataset(dataset_name, task_name, binary,
                                              config, &rng));
  }
  return tasks;
}

}  // namespace goggles::eval
