#pragma once

#include <memory>

#include "eval/tasks.h"
#include "features/extractor.h"
#include "goggles/pipeline.h"
#include "linalg/matrix.h"
#include "util/status.h"

/// \file runners.h
/// \brief Shared experiment runners used by the benches and examples: one
/// function per system/column of the paper's Tables 1 and 2.
///
/// All labeling accuracies are measured on the training split excluding the
/// development rows (the paper "reports the performance of GOGGLES on the
/// remaining images from each dataset"); end-to-end accuracies are measured
/// on the held-out test split.

namespace goggles::eval {

/// \brief Shared state across runners (pretrained backbone + config).
struct RunnerContext {
  std::shared_ptr<features::FeatureExtractor> extractor;
  GogglesConfig goggles;
};

/// \brief GOGGLES labeling accuracy; optionally returns the full result
/// (probabilistic labels) for downstream end-model training.
Result<double> RunGogglesLabeling(const LabelingTask& task,
                                  const RunnerContext& ctx,
                                  LabelingResult* result_out = nullptr);

/// \brief Representation ablations of Table 1: a single cosine affinity
/// function over HOG or Logits embeddings, fed to GOGGLES' class inference.
enum class RepresentationKind { kHog, kLogits };
Result<double> RunRepresentationAffinity(const LabelingTask& task,
                                         const RunnerContext& ctx,
                                         RepresentationKind kind);

/// \brief Class-inference baselines of Table 1, all consuming the GOGGLES
/// affinity matrix and granted the optimal cluster-to-class mapping.
enum class ClusteringKind { kKMeans, kGmm, kSpectral };
Result<double> RunClusteringBaseline(const LabelingTask& task,
                                     const RunnerContext& ctx,
                                     ClusteringKind kind);

/// \brief Snorkel over CUB-style attribute labeling functions (only valid
/// for tasks whose dataset carries attributes, i.e. SynthBirds).
/// Optionally returns probabilistic labels for end-model training.
Result<double> RunSnorkelLabeling(const LabelingTask& task,
                                  Matrix* proba_out = nullptr);

/// \brief Snuba over PCA-projected logits primitives (§5.1.2).
Result<double> RunSnubaLabeling(const LabelingTask& task,
                                const RunnerContext& ctx,
                                Matrix* proba_out = nullptr);

/// \brief FSL baseline: linear head on frozen features, trained on the
/// development set; returns accuracy on the held-out test split.
Result<double> RunFslEndToEnd(const LabelingTask& task,
                              const RunnerContext& ctx);

/// \brief Trains the end model on probabilistic labels for the training
/// split and returns held-out test accuracy (Table 2 pipeline).
Result<double> RunEndModelFromSoftLabels(const LabelingTask& task,
                                         const RunnerContext& ctx,
                                         const Matrix& soft_labels);

/// \brief Supervised upper bound: end model trained on ground-truth labels.
Result<double> RunSupervisedUpperBound(const LabelingTask& task,
                                       const RunnerContext& ctx);

}  // namespace goggles::eval
