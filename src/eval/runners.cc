#include "eval/runners.h"

#include "baselines/attribute_lfs.h"
#include "baselines/end_model.h"
#include "baselines/fsl.h"
#include "baselines/kmeans.h"
#include "baselines/label_model.h"
#include "baselines/snuba.h"
#include "baselines/spectral.h"
#include "eval/metrics.h"
#include "features/hog.h"
#include "goggles/base_gmm.h"
#include "goggles/hierarchical.h"
#include "linalg/pca.h"

namespace goggles::eval {
namespace {

std::vector<int> HardLabelsFromProba(const Matrix& proba) {
  std::vector<int> hard(static_cast<size_t>(proba.rows()), 0);
  for (int64_t i = 0; i < proba.rows(); ++i) {
    int best = 0;
    for (int64_t c = 1; c < proba.cols(); ++c) {
      if (proba(i, c) > proba(i, best)) best = static_cast<int>(c);
    }
    hard[static_cast<size_t>(i)] = best;
  }
  return hard;
}

}  // namespace

Result<double> RunGogglesLabeling(const LabelingTask& task,
                                  const RunnerContext& ctx,
                                  LabelingResult* result_out) {
  GogglesPipeline pipeline(ctx.extractor, ctx.goggles);
  GOGGLES_ASSIGN_OR_RETURN(
      LabelingResult result,
      pipeline.Label(task.train.images, task.dev_indices, task.dev_labels,
                     task.num_classes));
  const double accuracy = AccuracyExcluding(result.hard_labels,
                                            task.train.labels,
                                            task.dev_indices);
  if (result_out != nullptr) *result_out = std::move(result);
  return accuracy;
}

Result<double> RunRepresentationAffinity(const LabelingTask& task,
                                         const RunnerContext& ctx,
                                         RepresentationKind kind) {
  Matrix embedding;
  if (kind == RepresentationKind::kHog) {
    GOGGLES_ASSIGN_OR_RETURN(embedding,
                             features::ComputeHogMatrix(task.train.images));
  } else {
    GOGGLES_ASSIGN_OR_RETURN(embedding,
                             ctx.extractor->Logits(task.train.images));
  }
  VectorCosineAffinity affinity(
      kind == RepresentationKind::kHog ? "hog" : "logits", std::move(embedding));
  GOGGLES_RETURN_NOT_OK(affinity.Prepare(task.train.images));
  std::vector<AffinityFunction*> fns = {&affinity};
  GOGGLES_ASSIGN_OR_RETURN(
      Matrix a, BuildAffinityMatrix(fns, static_cast<int>(task.train.size())));

  HierarchicalLabeler labeler(ctx.goggles.inference);
  GOGGLES_ASSIGN_OR_RETURN(
      LabelingResult result,
      labeler.Fit(a, task.dev_indices, task.dev_labels, task.num_classes));
  return AccuracyExcluding(result.hard_labels, task.train.labels,
                           task.dev_indices);
}

Result<double> RunClusteringBaseline(const LabelingTask& task,
                                     const RunnerContext& ctx,
                                     ClusteringKind kind) {
  GogglesPipeline pipeline(ctx.extractor, ctx.goggles);
  GOGGLES_ASSIGN_OR_RETURN(Matrix affinity,
                           pipeline.BuildAffinity(task.train.images));

  std::vector<int> clusters;
  switch (kind) {
    case ClusteringKind::kKMeans: {
      baselines::KMeansConfig config;
      config.num_clusters = task.num_classes;
      baselines::KMeans km(config);
      GOGGLES_RETURN_NOT_OK(km.Fit(affinity));
      clusters = km.labels();
      break;
    }
    case ClusteringKind::kGmm: {
      // Naive GMM on the full affinity rows. Diagonal covariance: with
      // alpha*N features a full covariance matrix is singular (this is
      // exactly the paper's high-dimensionality argument in §4).
      GmmConfig config;
      config.num_components = task.num_classes;
      DiagonalGmm gmm(config);
      GOGGLES_RETURN_NOT_OK(gmm.Fit(affinity));
      GOGGLES_ASSIGN_OR_RETURN(Matrix proba, gmm.PredictProba(affinity));
      clusters = HardLabelsFromProba(proba);
      break;
    }
    case ClusteringKind::kSpectral: {
      baselines::SpectralConfig config;
      config.num_clusters = task.num_classes;
      GOGGLES_ASSIGN_OR_RETURN(clusters,
                               baselines::SpectralCoclusterRows(affinity, config));
      break;
    }
  }
  // The paper grants all clustering baselines the optimal mapping (§5.1.6).
  return AccuracyWithOptimalMappingExcluding(clusters, task.train.labels,
                                             task.num_classes,
                                             task.dev_indices);
}

Result<double> RunSnorkelLabeling(const LabelingTask& task, Matrix* proba_out) {
  GOGGLES_ASSIGN_OR_RETURN(Matrix votes,
                           baselines::BuildAttributeVotes(task.train));
  baselines::LabelModelConfig config;
  config.num_classes = task.num_classes;
  baselines::LabelModel model(config);
  GOGGLES_RETURN_NOT_OK(model.Fit(votes));
  GOGGLES_ASSIGN_OR_RETURN(Matrix proba, model.PredictProba(votes));
  const double accuracy = AccuracyExcluding(HardLabelsFromProba(proba),
                                            task.train.labels,
                                            task.dev_indices);
  if (proba_out != nullptr) *proba_out = std::move(proba);
  return accuracy;
}

Result<double> RunSnubaLabeling(const LabelingTask& task,
                                const RunnerContext& ctx, Matrix* proba_out) {
  // Primitives: top-10 PCA of the backbone logits (paper §5.1.2).
  GOGGLES_ASSIGN_OR_RETURN(Matrix logits,
                           ctx.extractor->Logits(task.train.images));
  GOGGLES_ASSIGN_OR_RETURN(Pca pca, Pca::Fit(logits, 10));
  GOGGLES_ASSIGN_OR_RETURN(Matrix primitives, pca.Transform(logits));

  baselines::SnubaConfig config;
  config.num_classes = task.num_classes;
  GOGGLES_ASSIGN_OR_RETURN(
      baselines::SnubaResult result,
      baselines::RunSnuba(primitives, task.dev_indices, task.dev_labels,
                          config));
  const double accuracy = AccuracyExcluding(HardLabelsFromProba(result.proba),
                                            task.train.labels,
                                            task.dev_indices);
  if (proba_out != nullptr) *proba_out = std::move(result.proba);
  return accuracy;
}

Result<double> RunFslEndToEnd(const LabelingTask& task,
                              const RunnerContext& ctx) {
  GOGGLES_ASSIGN_OR_RETURN(
      Matrix train_features,
      ctx.extractor->PenultimateFeatures(task.train.images));
  GOGGLES_ASSIGN_OR_RETURN(Matrix test_features,
                           ctx.extractor->PenultimateFeatures(task.test.images));

  // Support set = the development examples.
  Matrix support(static_cast<int64_t>(task.dev_indices.size()),
                 train_features.cols());
  for (size_t i = 0; i < task.dev_indices.size(); ++i) {
    for (int64_t j = 0; j < train_features.cols(); ++j) {
      support(static_cast<int64_t>(i), j) =
          train_features(task.dev_indices[i], j);
    }
  }
  baselines::FslConfig config;
  baselines::FewShotBaseline fsl(config);
  GOGGLES_RETURN_NOT_OK(fsl.Fit(support, task.dev_labels, task.num_classes));
  return fsl.Evaluate(test_features, task.test.labels);
}

Result<double> RunEndModelFromSoftLabels(const LabelingTask& task,
                                         const RunnerContext& ctx,
                                         const Matrix& soft_labels) {
  if (soft_labels.rows() != task.train.size()) {
    return Status::InvalidArgument(
        "RunEndModelFromSoftLabels: soft labels must cover the train split");
  }
  GOGGLES_ASSIGN_OR_RETURN(
      Matrix train_features,
      ctx.extractor->PenultimateFeatures(task.train.images));
  GOGGLES_ASSIGN_OR_RETURN(Matrix test_features,
                           ctx.extractor->PenultimateFeatures(task.test.images));
  baselines::EndModelConfig config;
  baselines::EndModel model(train_features.cols(), task.num_classes, config);
  GOGGLES_RETURN_NOT_OK(model.FitSoft(train_features, soft_labels));
  return model.Evaluate(test_features, task.test.labels);
}

Result<double> RunSupervisedUpperBound(const LabelingTask& task,
                                       const RunnerContext& ctx) {
  GOGGLES_ASSIGN_OR_RETURN(
      Matrix train_features,
      ctx.extractor->PenultimateFeatures(task.train.images));
  GOGGLES_ASSIGN_OR_RETURN(Matrix test_features,
                           ctx.extractor->PenultimateFeatures(task.test.images));
  baselines::EndModelConfig config;
  baselines::EndModel model(train_features.cols(), task.num_classes, config);
  GOGGLES_RETURN_NOT_OK(model.FitHard(train_features, task.train.labels));
  return model.Evaluate(test_features, task.test.labels);
}

}  // namespace goggles::eval
