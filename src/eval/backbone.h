#pragma once

#include <memory>
#include <optional>
#include <string>

#include "features/extractor.h"
#include "nn/vgg.h"
#include "util/status.h"

/// \file backbone.h
/// \brief Pretrained VggMini backbone with a disk cache.
///
/// The paper downloads ImageNet-pretrained VGG-16 weights once and reuses
/// them for every labeling task. Our substitute trains VggMini on SynthNet
/// once, caches the weights on disk (keyed by the configuration), and every
/// bench / example / test reuses the cached weights.

namespace goggles::eval {

/// \brief Pretraining configuration.
struct BackboneOptions {
  nn::VggMiniConfig arch;           ///< defaults: 5 stages, 16 classes
  int pretrain_images_per_class = 80;
  int epochs = 8;
  float learning_rate = 1e-3f;
  int batch_size = 32;
  uint64_t data_seed = 101;
  /// Cache directory; overridden by $GOGGLES_CACHE_DIR. Empty disables
  /// caching.
  std::string cache_dir = "/tmp/goggles_cache";
  bool verbose = false;
  /// Conv inference precision of the returned extractor. When unset, the
  /// GOGGLES_EXTRACT_PRECISION env var (f32|bf16|int8) decides; an unknown
  /// env value warns and falls back to f32. Pretraining itself always runs
  /// f32 — this only requantizes the extractor handed back (and the cached
  /// weights on disk stay f32, so the cache key is precision-independent).
  std::optional<ConvPrecision> extract_precision;
};

/// \brief Trains (or loads from cache) the SynthNet backbone and wraps it
/// in a FeatureExtractor.
///
/// Also reports the backbone's train accuracy on SynthNet via
/// `train_accuracy` when non-null (sanity signal that pretraining worked).
Result<std::shared_ptr<features::FeatureExtractor>> GetPretrainedExtractor(
    const BackboneOptions& options = {}, double* train_accuracy = nullptr);

}  // namespace goggles::eval
