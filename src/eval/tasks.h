#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

/// \file tasks.h
/// \brief Labeling-task construction matching the paper's protocol (§5.1):
/// binary class-pair tasks for the multi-class corpora (10 random pairs for
/// CUB/GTSRB stand-ins), the native binary task for the 2-class corpora,
/// a stratified train/test split, and a 5-per-class development set drawn
/// from the training split.

namespace goggles::eval {

/// \brief One binary labeling task instance.
struct LabelingTask {
  std::string dataset_name;  ///< e.g. "birds"
  std::string task_name;     ///< e.g. "birds[03v17]"
  data::LabeledDataset train;  ///< labeling pool (ground truth kept for eval)
  data::LabeledDataset test;   ///< held-out split for end models
  std::vector<int> dev_indices;  ///< development rows within `train`
  std::vector<int> dev_labels;   ///< their labels
  int num_classes = 2;
};

/// \brief Task-suite construction parameters.
struct TaskSuiteConfig {
  int dev_per_class = 5;      ///< the paper's default development set
  int num_pairs = 10;         ///< class pairs for multi-class datasets
  double train_fraction = 0.6;
  /// Images per class when generating the corpus; <= 0 uses per-dataset
  /// defaults (birds 60, signs 40, binary corpora 120).
  int images_per_class = 0;
  uint64_t seed = 7;
};

/// \brief Builds the task list for one dataset ("birds", "signs",
/// "surface", "tbxray", "pnxray").
Result<std::vector<LabelingTask>> MakeTasks(const std::string& dataset_name,
                                            const TaskSuiteConfig& config);

}  // namespace goggles::eval
