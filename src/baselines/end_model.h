#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "nn/sequential.h"
#include "util/status.h"

/// \file end_model.h
/// \brief Downstream discriminative "end model" (paper §2.1 / §5.5).
///
/// Mirrors the paper's transfer-learning recipe: the convolutional backbone
/// is frozen; only the fully-connected head is (re)trained — either on
/// GOGGLES/Snorkel/Snuba probabilistic labels (soft cross-entropy, the
/// expected-loss objective of §2.1), or on ground-truth labels for the
/// supervised upper bound. Trained with Adam at lr 1e-3 as in §5.1.3.

namespace goggles::baselines {

/// \brief End-model hyper-parameters.
struct EndModelConfig {
  int hidden_dim = 32;   ///< width of the single hidden FC layer
  int epochs = 60;
  int batch_size = 32;
  float learning_rate = 1e-3f;
  uint64_t seed = 43;
};

/// \brief Two-layer MLP head over frozen backbone features.
class EndModel {
 public:
  /// \param feature_dim dimensionality of the frozen features
  EndModel(int64_t feature_dim, int num_classes, EndModelConfig config);

  /// \brief Trains on probabilistic labels (rows of `soft_labels` sum to 1).
  Status FitSoft(const Matrix& features, const Matrix& soft_labels);

  /// \brief Trains on hard labels (supervised upper bound).
  Status FitHard(const Matrix& features, const std::vector<int>& labels);

  /// \brief Argmax predictions.
  Result<std::vector<int>> Predict(const Matrix& features) const;

  /// \brief Accuracy against ground truth.
  Result<double> Evaluate(const Matrix& features,
                          const std::vector<int>& labels) const;

 private:
  EndModelConfig config_;
  int num_classes_;
  // Mutable because Layer::Forward caches; prediction is logically const.
  mutable nn::Sequential net_;
};

/// \brief Converts a double Matrix to a 2-D float Tensor.
Tensor MatrixToTensor(const Matrix& m);

}  // namespace goggles::baselines
