#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

/// \file kmeans.h
/// \brief K-Means clustering (k-means++ seeding), a class-inference
/// baseline of Table 1 and the final step of spectral co-clustering.

namespace goggles::baselines {

/// \brief K-Means hyper-parameters.
struct KMeansConfig {
  int num_clusters = 2;
  int max_iters = 100;
  int num_restarts = 3;
  double tol = 1e-8;  ///< stop when inertia improves less than this
  uint64_t seed = 23;
};

/// \brief Lloyd's algorithm with k-means++ initialization.
class KMeans {
 public:
  explicit KMeans(KMeansConfig config) : config_(config) {}

  /// \brief Clusters rows of `x`; keeps the best of `num_restarts` runs.
  Status Fit(const Matrix& x);

  /// \brief Cluster id per training row.
  const std::vector<int>& labels() const { return labels_; }

  /// \brief Cluster centers (num_clusters x D).
  const Matrix& centers() const { return centers_; }

  /// \brief Final within-cluster sum of squared distances.
  double inertia() const { return inertia_; }

  /// \brief Assigns new rows to the nearest center.
  Result<std::vector<int>> Predict(const Matrix& x) const;

 private:
  KMeansConfig config_;
  std::vector<int> labels_;
  Matrix centers_;
  double inertia_ = 0.0;
};

}  // namespace goggles::baselines
