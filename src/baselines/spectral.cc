#include "baselines/spectral.h"

#include <algorithm>
#include <cmath>

#include "baselines/kmeans.h"
#include "linalg/svd.h"

namespace goggles::baselines {

Result<std::vector<int>> SpectralCoclusterRows(const Matrix& a,
                                               const SpectralConfig& config) {
  const int64_t n = a.rows(), m = a.cols();
  if (n == 0 || m == 0) {
    return Status::InvalidArgument("SpectralCoclusterRows: empty matrix");
  }

  // Shift to non-negative.
  double min_v = a(0, 0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) min_v = std::min(min_v, a(i, j));
  }
  Matrix shifted = a;
  if (min_v < 0.0) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < m; ++j) shifted(i, j) -= min_v;
    }
  }

  // Bipartite normalization: An = D1^{-1/2} A D2^{-1/2}.
  std::vector<double> row_sum(static_cast<size_t>(n), 0.0);
  std::vector<double> col_sum(static_cast<size_t>(m), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      row_sum[static_cast<size_t>(i)] += shifted(i, j);
      col_sum[static_cast<size_t>(j)] += shifted(i, j);
    }
  }
  for (auto& v : row_sum) v = v > 1e-12 ? 1.0 / std::sqrt(v) : 0.0;
  for (auto& v : col_sum) v = v > 1e-12 ? 1.0 / std::sqrt(v) : 0.0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      shifted(i, j) *= row_sum[static_cast<size_t>(i)] *
                       col_sum[static_cast<size_t>(j)];
    }
  }

  // l = 1 + ceil(log2 k) leading singular vectors; the first is trivial.
  const int k = config.num_clusters;
  const int l = 1 + static_cast<int>(std::ceil(std::log2(std::max(2, k))));
  GOGGLES_ASSIGN_OR_RETURN(SvdResult svd,
                           TruncatedSvd(shifted, l, config.svd_iters,
                                        config.seed));

  // Row embedding: D1^{-1/2} * U[:, 1..l-1].
  const int embed_dim = std::max(1, l - 1);
  Matrix embedding(n, embed_dim);
  for (int64_t i = 0; i < n; ++i) {
    for (int e = 0; e < embed_dim; ++e) {
      const int col = std::min<int>(e + 1, static_cast<int>(svd.u.cols()) - 1);
      embedding(i, e) = row_sum[static_cast<size_t>(i)] * svd.u(i, col);
    }
  }

  KMeansConfig km_config;
  km_config.num_clusters = k;
  km_config.seed = config.seed + 1;
  KMeans km(km_config);
  GOGGLES_RETURN_NOT_OK(km.Fit(embedding));
  return km.labels();
}

}  // namespace goggles::baselines
