#include "baselines/label_model.h"

#include <algorithm>
#include <cmath>

namespace goggles::baselines {

Result<Matrix> LabelModel::EStep(const Matrix& votes) const {
  const int64_t n = votes.rows(), num_lfs = votes.cols();
  const int k = config_.num_classes;
  Matrix gamma(n, k);
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double> log_p(static_cast<size_t>(k));
    for (int c = 0; c < k; ++c) {
      log_p[static_cast<size_t>(c)] =
          std::log(std::max(priors_[static_cast<size_t>(c)], 1e-12));
    }
    for (int64_t l = 0; l < num_lfs; ++l) {
      const int vote = static_cast<int>(votes(i, l));
      if (vote == kAbstainVote) continue;
      const double acc = accuracies_[static_cast<size_t>(l)];
      const double wrong = (1.0 - acc) / std::max(1, k - 1);
      for (int c = 0; c < k; ++c) {
        log_p[static_cast<size_t>(c)] += std::log(vote == c ? acc : wrong);
      }
    }
    double max_lp = log_p[0];
    for (int c = 1; c < k; ++c) max_lp = std::max(max_lp, log_p[static_cast<size_t>(c)]);
    double total = 0.0;
    for (int c = 0; c < k; ++c) {
      gamma(i, c) = std::exp(log_p[static_cast<size_t>(c)] - max_lp);
      total += gamma(i, c);
    }
    for (int c = 0; c < k; ++c) gamma(i, c) /= total;
  }
  return gamma;
}

Status LabelModel::Fit(const Matrix& votes) {
  const int64_t n = votes.rows(), num_lfs = votes.cols();
  if (n == 0 || num_lfs == 0) {
    return Status::InvalidArgument("LabelModel::Fit: empty votes matrix");
  }
  const int k = config_.num_classes;
  accuracies_.assign(static_cast<size_t>(num_lfs), config_.init_accuracy);
  priors_.assign(static_cast<size_t>(k), 1.0 / k);

  double prev_change = 1e30;
  for (int iter = 0; iter < config_.max_iters; ++iter) {
    GOGGLES_ASSIGN_OR_RETURN(Matrix gamma, EStep(votes));

    // M-step: accuracy = expected fraction of correct non-abstain votes.
    std::vector<double> new_acc(static_cast<size_t>(num_lfs));
    for (int64_t l = 0; l < num_lfs; ++l) {
      double correct = 0.0, voted = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const int vote = static_cast<int>(votes(i, l));
        if (vote == kAbstainVote) continue;
        voted += 1.0;
        correct += gamma(i, vote);
      }
      double acc = voted > 0 ? correct / voted : config_.init_accuracy;
      new_acc[static_cast<size_t>(l)] =
          std::clamp(acc, config_.min_accuracy, config_.max_accuracy);
    }
    double change = 0.0;
    for (int64_t l = 0; l < num_lfs; ++l) {
      change += std::fabs(new_acc[static_cast<size_t>(l)] -
                          accuracies_[static_cast<size_t>(l)]);
    }
    accuracies_ = std::move(new_acc);
    if (config_.learn_priors) {
      std::vector<double> new_priors(static_cast<size_t>(k), 0.0);
      for (int64_t i = 0; i < n; ++i) {
        for (int c = 0; c < k; ++c) {
          new_priors[static_cast<size_t>(c)] += gamma(i, c);
        }
      }
      for (auto& p : new_priors) p /= static_cast<double>(n);
      priors_ = std::move(new_priors);
    }
    if (change < config_.tol && prev_change < config_.tol) break;
    prev_change = change;
  }
  return Status::OK();
}

Result<Matrix> LabelModel::PredictProba(const Matrix& votes) const {
  if (accuracies_.empty()) {
    return Status::Internal("LabelModel::PredictProba: not fitted");
  }
  if (static_cast<size_t>(votes.cols()) != accuracies_.size()) {
    return Status::InvalidArgument("LabelModel::PredictProba: LF count mismatch");
  }
  return EStep(votes);
}

Matrix MajorityVoteProba(const Matrix& votes, int num_classes) {
  const int64_t n = votes.rows();
  Matrix proba(n, num_classes, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double> counts(static_cast<size_t>(num_classes), 0.0);
    double total = 0.0;
    for (int64_t l = 0; l < votes.cols(); ++l) {
      const int vote = static_cast<int>(votes(i, l));
      if (vote == kAbstainVote) continue;
      counts[static_cast<size_t>(vote)] += 1.0;
      total += 1.0;
    }
    if (total == 0.0) {
      for (int c = 0; c < num_classes; ++c) proba(i, c) = 1.0 / num_classes;
    } else {
      for (int c = 0; c < num_classes; ++c) proba(i, c) = counts[static_cast<size_t>(c)] / total;
    }
  }
  return proba;
}

}  // namespace goggles::baselines
