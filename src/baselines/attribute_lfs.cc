#include "baselines/attribute_lfs.h"

#include "baselines/label_model.h"

namespace goggles::baselines {

Result<Matrix> BuildAttributeVotes(const data::LabeledDataset& task) {
  if (!task.has_attributes()) {
    return Status::InvalidArgument(
        "BuildAttributeVotes: dataset has no attribute metadata");
  }
  if (task.num_classes != 2) {
    return Status::InvalidArgument(
        "BuildAttributeVotes: expected a binary class-pair task");
  }
  const int64_t num_attrs = task.class_attributes.cols();

  // Attributes owned by exactly one class become LFs.
  std::vector<int> lf_attr;    // attribute index
  std::vector<int> lf_class;   // class the attribute implies
  for (int64_t a = 0; a < num_attrs; ++a) {
    const bool in0 = task.class_attributes(0, a) > 0.5;
    const bool in1 = task.class_attributes(1, a) > 0.5;
    if (in0 == in1) continue;  // both or neither: abstains always, skip
    lf_attr.push_back(static_cast<int>(a));
    lf_class.push_back(in1 ? 1 : 0);
  }
  if (lf_attr.empty()) {
    return Status::InvalidArgument(
        "BuildAttributeVotes: classes share all attributes (no usable LFs)");
  }

  Matrix votes(task.size(), static_cast<int64_t>(lf_attr.size()),
               static_cast<double>(kAbstainVote));
  for (int64_t i = 0; i < task.size(); ++i) {
    for (size_t l = 0; l < lf_attr.size(); ++l) {
      if (task.image_attributes(i, lf_attr[l]) > 0.5) {
        votes(i, static_cast<int64_t>(l)) = lf_class[l];
      }
    }
  }
  return votes;
}

}  // namespace goggles::baselines
