#include "baselines/end_model.h"

#include <memory>

#include "nn/layers.h"
#include "nn/trainer.h"
#include "util/rng.h"

namespace goggles::baselines {

Tensor MatrixToTensor(const Matrix& m) {
  Tensor t({m.rows(), m.cols()});
  for (int64_t i = 0; i < m.rows(); ++i) {
    for (int64_t j = 0; j < m.cols(); ++j) {
      t.At2(i, j) = static_cast<float>(m(i, j));
    }
  }
  return t;
}

EndModel::EndModel(int64_t feature_dim, int num_classes, EndModelConfig config)
    : config_(config), num_classes_(num_classes) {
  Rng rng(config_.seed);
  net_.Add(std::make_unique<nn::Linear>(feature_dim, config_.hidden_dim, &rng));
  net_.Add(std::make_unique<nn::ReLU>());
  net_.Add(std::make_unique<nn::Linear>(config_.hidden_dim, num_classes, &rng));
}

Status EndModel::FitSoft(const Matrix& features, const Matrix& soft_labels) {
  if (features.rows() != soft_labels.rows()) {
    return Status::InvalidArgument("EndModel::FitSoft: row count mismatch");
  }
  if (soft_labels.cols() != num_classes_) {
    return Status::InvalidArgument("EndModel::FitSoft: class count mismatch");
  }
  nn::TrainerConfig tc;
  tc.epochs = config_.epochs;
  tc.batch_size = config_.batch_size;
  tc.learning_rate = config_.learning_rate;
  tc.seed = config_.seed;
  nn::Trainer trainer(&net_, tc);
  GOGGLES_ASSIGN_OR_RETURN(
      double loss,
      trainer.FitSoft(MatrixToTensor(features), MatrixToTensor(soft_labels)));
  (void)loss;
  return Status::OK();
}

Status EndModel::FitHard(const Matrix& features,
                         const std::vector<int>& labels) {
  Matrix one_hot(features.rows(), num_classes_, 0.0);
  if (static_cast<size_t>(features.rows()) != labels.size()) {
    return Status::InvalidArgument("EndModel::FitHard: label count mismatch");
  }
  for (size_t i = 0; i < labels.size(); ++i) {
    one_hot(static_cast<int64_t>(i), labels[i]) = 1.0;
  }
  return FitSoft(features, one_hot);
}

Result<std::vector<int>> EndModel::Predict(const Matrix& features) const {
  GOGGLES_ASSIGN_OR_RETURN(Tensor logits,
                           net_.Forward(MatrixToTensor(features)));
  std::vector<int> preds(static_cast<size_t>(logits.dim(0)), 0);
  for (int64_t i = 0; i < logits.dim(0); ++i) {
    int best = 0;
    for (int64_t c = 1; c < logits.dim(1); ++c) {
      if (logits.At2(i, c) > logits.At2(i, best)) best = static_cast<int>(c);
    }
    preds[static_cast<size_t>(i)] = best;
  }
  return preds;
}

Result<double> EndModel::Evaluate(const Matrix& features,
                                  const std::vector<int>& labels) const {
  GOGGLES_ASSIGN_OR_RETURN(std::vector<int> preds, Predict(features));
  if (preds.size() != labels.size()) {
    return Status::InvalidArgument("EndModel::Evaluate: label count mismatch");
  }
  int64_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return preds.empty() ? 0.0
                       : static_cast<double>(correct) /
                             static_cast<double>(preds.size());
}

}  // namespace goggles::baselines
