#pragma once

#include "data/dataset.h"
#include "linalg/matrix.h"
#include "util/status.h"

/// \file attribute_lfs.h
/// \brief CUB-style attribute labeling functions for the Snorkel baseline.
///
/// Paper §5.1.2: "each attribute annotation in the union of the
/// class-specific attributes acts as a labeling function which outputs a
/// binary label corresponding to the class that the attribute belongs to.
/// If an attribute belongs to both classes from the class-pair, the
/// labeling function abstains." Attributes in neither class are skipped.

namespace goggles::baselines {

/// \brief Builds the Snorkel votes matrix (n x num_lfs) for a binary task
/// carrying attribute metadata (e.g. a SynthBirds class-pair task).
///
/// Vote semantics: LF for attribute a votes class c when the image is
/// annotated with a and a belongs only to class c; otherwise it abstains.
Result<Matrix> BuildAttributeVotes(const data::LabeledDataset& task);

}  // namespace goggles::baselines
