#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

/// \file fsl.h
/// \brief Few-shot learning baseline (Chen et al., ICLR 2019 "Baseline"):
/// a frozen pretrained backbone plus a linear classifier head trained on
/// the few labeled (development) examples — the paper's FSL comparator
/// (§5.1.3), trained with Adam at lr 1e-3 as in the paper.

namespace goggles::baselines {

/// \brief FSL training hyper-parameters.
struct FslConfig {
  int epochs = 100;
  float learning_rate = 1e-3f;
  int batch_size = 16;
  uint64_t seed = 41;
};

/// \brief Linear softmax head over frozen features.
class FewShotBaseline {
 public:
  explicit FewShotBaseline(FslConfig config) : config_(config) {}

  /// \brief Trains the head on the support (development) examples.
  ///
  /// \param support_features rows = support examples (frozen features).
  /// \param support_labels   their classes.
  Status Fit(const Matrix& support_features,
             const std::vector<int>& support_labels, int num_classes);

  /// \brief Argmax class predictions for query features.
  Result<std::vector<int>> Predict(const Matrix& query_features) const;

  /// \brief Accuracy on a labeled query set.
  Result<double> Evaluate(const Matrix& query_features,
                          const std::vector<int>& query_labels) const;

 private:
  FslConfig config_;
  int num_classes_ = 0;
  Matrix weight_;              // K x D
  std::vector<double> bias_;   // K
};

}  // namespace goggles::baselines
