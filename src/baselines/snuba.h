#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

/// \file snuba.h
/// \brief Snuba-style automatic heuristic synthesis (Varma & Ré, VLDB'19),
/// the paper's main data-programming comparator.
///
/// Following the paper's setup (§5.1.2), primitives are the top-10 PCA
/// projections of the backbone logits. Snuba iteratively: (1) generates
/// candidate heuristics (decision stumps over single primitives with an
/// abstain margin), (2) scores them by weighted F1 on the development set,
/// down-weighting already-covered dev points, (3) commits the best
/// heuristic, and finally (4) aggregates committed heuristics with the
/// generative label model.

namespace goggles::baselines {

/// \brief Snuba hyper-parameters.
struct SnubaConfig {
  int num_classes = 2;
  int max_heuristics = 10;
  /// Candidate thresholds per feature (quantile grid over dev values).
  int thresholds_per_feature = 12;
  /// Abstain margins as fractions of the feature's dev std, from 0 upward.
  int margin_grid = 7;
  double max_margin_fraction = 1.5;
  /// Stop committing when the best weighted F1 drops below this.
  double min_f1 = 0.52;
  /// Weight of an already-covered dev point in the F1 computation.
  double covered_weight = 0.1;
};

/// \brief One synthesized heuristic (decision stump with abstain band).
struct SnubaHeuristic {
  int feature = 0;          ///< primitive dimension
  double threshold = 0.0;
  double margin = 0.0;      ///< |x - threshold| <= margin -> abstain
  int high_class = 1;       ///< class voted when x > threshold
  double dev_f1 = 0.0;      ///< weighted F1 at commit time

  /// \brief Vote for one primitive row (kAbstainVote on the margin band).
  int Vote(const double* primitives) const;
};

/// \brief Result of a Snuba run.
struct SnubaResult {
  std::vector<SnubaHeuristic> heuristics;
  Matrix votes;  ///< n x H vote matrix over all instances
  Matrix proba;  ///< n x K probabilistic labels from the label model
};

/// \brief Runs heuristic synthesis + aggregation.
///
/// \param primitives  n x d primitive matrix (all instances).
/// \param dev_indices rows with known labels.
/// \param dev_labels  their classes.
Result<SnubaResult> RunSnuba(const Matrix& primitives,
                             const std::vector<int>& dev_indices,
                             const std::vector<int>& dev_labels,
                             const SnubaConfig& config);

}  // namespace goggles::baselines
