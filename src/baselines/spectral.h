#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

/// \file spectral.h
/// \brief Spectral co-clustering (Dhillon, KDD 2001), the "Spectral"
/// class-inference baseline of Table 1.
///
/// Treats the (non-negative, shifted) affinity matrix as a bipartite graph
/// between rows and columns, normalizes it, takes the leading singular
/// vectors, and k-means the row embedding.

namespace goggles::baselines {

/// \brief Spectral co-clustering parameters.
struct SpectralConfig {
  int num_clusters = 2;
  int svd_iters = 60;
  uint64_t seed = 29;
};

/// \brief Clusters the rows of `a` via bipartite spectral co-clustering.
///
/// Negative entries are shifted so the matrix is non-negative before
/// normalization (our affinity scores are cosines in [-1, 1]).
Result<std::vector<int>> SpectralCoclusterRows(const Matrix& a,
                                               const SpectralConfig& config);

}  // namespace goggles::baselines
