#include "baselines/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.h"

namespace goggles::baselines {
namespace {

double RowDistanceSquared(const double* a, const double* b, int64_t d) {
  double acc = 0.0;
  for (int64_t j = 0; j < d; ++j) {
    const double diff = a[j] - b[j];
    acc += diff * diff;
  }
  return acc;
}

/// k-means++ seeding: first center uniform, later centers proportional to
/// squared distance from the nearest existing center.
Matrix KMeansPlusPlusInit(const Matrix& x, int k, Rng* rng) {
  const int64_t n = x.rows(), d = x.cols();
  Matrix centers(k, d);
  const int64_t first = rng->UniformInt(0, n - 1);
  for (int64_t j = 0; j < d; ++j) centers(0, j) = x(first, j);

  std::vector<double> dist2(static_cast<size_t>(n),
                            std::numeric_limits<double>::infinity());
  for (int c = 1; c < k; ++c) {
    for (int64_t i = 0; i < n; ++i) {
      const double dd =
          RowDistanceSquared(x.RowPtr(i), centers.RowPtr(c - 1), d);
      dist2[static_cast<size_t>(i)] =
          std::min(dist2[static_cast<size_t>(i)], dd);
    }
    const int64_t pick = rng->Categorical(dist2);
    for (int64_t j = 0; j < d; ++j) centers(c, j) = x(pick, j);
  }
  return centers;
}

}  // namespace

Status KMeans::Fit(const Matrix& x) {
  const int64_t n = x.rows(), d = x.cols();
  const int k = config_.num_clusters;
  if (n < k) return Status::InvalidArgument("KMeans: fewer rows than clusters");

  Rng rng(config_.seed);
  double best_inertia = std::numeric_limits<double>::infinity();

  for (int restart = 0; restart < std::max(1, config_.num_restarts);
       ++restart) {
    Rng restart_rng = rng.Fork(static_cast<uint64_t>(restart));
    Matrix centers = KMeansPlusPlusInit(x, k, &restart_rng);
    std::vector<int> assign(static_cast<size_t>(n), 0);
    double inertia = 0.0;

    for (int iter = 0; iter < config_.max_iters; ++iter) {
      // Assignment step.
      inertia = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        double best = std::numeric_limits<double>::infinity();
        int best_c = 0;
        for (int c = 0; c < k; ++c) {
          const double dd = RowDistanceSquared(x.RowPtr(i), centers.RowPtr(c), d);
          if (dd < best) {
            best = dd;
            best_c = c;
          }
        }
        assign[static_cast<size_t>(i)] = best_c;
        inertia += best;
      }
      // Update step; empty clusters are re-seeded from a random row.
      Matrix new_centers(k, d, 0.0);
      std::vector<int64_t> counts(static_cast<size_t>(k), 0);
      for (int64_t i = 0; i < n; ++i) {
        const int c = assign[static_cast<size_t>(i)];
        ++counts[static_cast<size_t>(c)];
        const double* row = x.RowPtr(i);
        for (int64_t j = 0; j < d; ++j) new_centers(c, j) += row[j];
      }
      double shift = 0.0;
      for (int c = 0; c < k; ++c) {
        if (counts[static_cast<size_t>(c)] == 0) {
          const int64_t pick = restart_rng.UniformInt(0, n - 1);
          for (int64_t j = 0; j < d; ++j) new_centers(c, j) = x(pick, j);
        } else {
          const double inv = 1.0 / static_cast<double>(counts[static_cast<size_t>(c)]);
          for (int64_t j = 0; j < d; ++j) new_centers(c, j) *= inv;
        }
        shift += RowDistanceSquared(new_centers.RowPtr(c), centers.RowPtr(c), d);
      }
      centers = std::move(new_centers);
      if (shift < config_.tol) break;
    }

    if (inertia < best_inertia) {
      best_inertia = inertia;
      centers_ = centers;
      labels_ = assign;
    }
  }
  inertia_ = best_inertia;
  return Status::OK();
}

Result<std::vector<int>> KMeans::Predict(const Matrix& x) const {
  if (centers_.rows() == 0) return Status::Internal("KMeans: not fitted");
  if (x.cols() != centers_.cols()) {
    return Status::InvalidArgument("KMeans::Predict: dimension mismatch");
  }
  std::vector<int> out(static_cast<size_t>(x.rows()), 0);
  for (int64_t i = 0; i < x.rows(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (int64_t c = 0; c < centers_.rows(); ++c) {
      const double dd =
          RowDistanceSquared(x.RowPtr(i), centers_.RowPtr(c), x.cols());
      if (dd < best) {
        best = dd;
        out[static_cast<size_t>(i)] = static_cast<int>(c);
      }
    }
  }
  return out;
}

}  // namespace goggles::baselines
