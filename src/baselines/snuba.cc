#include "baselines/snuba.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "baselines/label_model.h"

namespace goggles::baselines {

int SnubaHeuristic::Vote(const double* primitives) const {
  const double x = primitives[feature];
  if (std::fabs(x - threshold) <= margin) return kAbstainVote;
  return x > threshold ? high_class : 1 - high_class;
}

namespace {

/// Weighted macro-F1 of a heuristic on the dev set: the mean of the F1 for
/// class 1 and the F1 for class 0, with abstained true-positives counted as
/// false negatives and covered points down-weighted. Averaging over both
/// classes (rather than taking the better one) is essential: a stump that
/// votes confidently for one class and abstains on everything else would
/// otherwise score a perfect one-sided F1 while carrying no information
/// about the other class.
double WeightedDevF1(const SnubaHeuristic& h, const Matrix& primitives,
                     const std::vector<int>& dev_indices,
                     const std::vector<int>& dev_labels,
                     const std::vector<double>& weights) {
  double total = 0.0;
  for (int positive = 0; positive < 2; ++positive) {
    double tp = 0.0, fp = 0.0, fn = 0.0;
    for (size_t i = 0; i < dev_indices.size(); ++i) {
      const int vote = h.Vote(primitives.RowPtr(dev_indices[i]));
      const double w = weights[i];
      const bool truth_pos = dev_labels[i] == positive;
      if (vote == kAbstainVote) {
        if (truth_pos) fn += w;  // positive left uncovered
        continue;
      }
      const bool vote_pos = vote == positive;
      if (vote_pos && truth_pos) tp += w;
      if (vote_pos && !truth_pos) fp += w;
      if (!vote_pos && truth_pos) fn += w;
    }
    const double denom = 2.0 * tp + fp + fn;
    if (denom > 0) total += 2.0 * tp / denom;
  }
  return total / 2.0;
}

bool SameHeuristic(const SnubaHeuristic& a, const SnubaHeuristic& b) {
  return a.feature == b.feature && a.threshold == b.threshold &&
         a.margin == b.margin && a.high_class == b.high_class;
}

}  // namespace

Result<SnubaResult> RunSnuba(const Matrix& primitives,
                             const std::vector<int>& dev_indices,
                             const std::vector<int>& dev_labels,
                             const SnubaConfig& config) {
  if (config.num_classes != 2) {
    return Status::NotImplemented(
        "RunSnuba: binary tasks only (matches the paper's evaluation)");
  }
  if (dev_indices.empty()) {
    return Status::InvalidArgument("RunSnuba: development set required");
  }
  const int64_t n = primitives.rows();
  const int64_t d = primitives.cols();

  // Per-feature dev statistics for threshold/margin grids.
  std::vector<std::vector<double>> dev_values(static_cast<size_t>(d));
  std::vector<double> dev_std(static_cast<size_t>(d), 0.0);
  for (int64_t f = 0; f < d; ++f) {
    auto& vals = dev_values[static_cast<size_t>(f)];
    double mean = 0.0;
    for (int idx : dev_indices) {
      vals.push_back(primitives(idx, f));
      mean += primitives(idx, f);
    }
    mean /= static_cast<double>(vals.size());
    double var = 0.0;
    for (double v : vals) var += (v - mean) * (v - mean);
    dev_std[static_cast<size_t>(f)] =
        std::sqrt(var / std::max<size_t>(1, vals.size() - 1));
    std::sort(vals.begin(), vals.end());
  }

  SnubaResult result;
  std::vector<double> weights(dev_indices.size(), 1.0);

  for (int round = 0; round < config.max_heuristics; ++round) {
    SnubaHeuristic best_h;
    double best_f1 = 0.0;
    for (int64_t f = 0; f < d; ++f) {
      const auto& vals = dev_values[static_cast<size_t>(f)];
      const double sigma = dev_std[static_cast<size_t>(f)];
      // Quantile threshold grid over the dev values of this primitive,
      // using midpoints between consecutive sorted values so no dev point
      // sits exactly on a threshold.
      for (int t = 1; t <= config.thresholds_per_feature; ++t) {
        const double q = static_cast<double>(t) /
                         (config.thresholds_per_feature + 1);
        const size_t pos = std::min(vals.size() - 2,
                                    static_cast<size_t>(q * vals.size()));
        const double threshold = 0.5 * (vals[pos] + vals[pos + 1]);
        for (int m = 0; m < config.margin_grid; ++m) {
          const double margin = sigma * config.max_margin_fraction *
                                static_cast<double>(m) /
                                std::max(1, config.margin_grid - 1);
          for (int high_class = 0; high_class < 2; ++high_class) {
            SnubaHeuristic h;
            h.feature = static_cast<int>(f);
            h.threshold = threshold;
            h.margin = margin;
            h.high_class = high_class;
            bool duplicate = false;
            for (const SnubaHeuristic& committed : result.heuristics) {
              if (SameHeuristic(h, committed)) {
                duplicate = true;
                break;
              }
            }
            if (duplicate) continue;
            const double f1 = WeightedDevF1(h, primitives, dev_indices,
                                            dev_labels, weights);
            // Prefer the widest abstain band among (near-)equal dev F1:
            // Snuba tunes its confidence threshold beta for precision, and
            // a tiny dev set cannot distinguish margins that all leave the
            // dev points outside the band. This is the mechanism behind
            // Snuba's low coverage (and near-random aggregate labels) with
            // 10-example development sets in the paper (§5.2).
            if (f1 > best_f1 + 1e-9 ||
                (f1 > best_f1 - 1e-9 && h.margin > best_h.margin)) {
              best_f1 = std::max(best_f1, f1);
              best_h = h;
            }
          }
        }
      }
    }
    if (best_f1 < config.min_f1) break;
    best_h.dev_f1 = best_f1;
    result.heuristics.push_back(best_h);

    // Down-weight dev points now covered (Snuba's diversity mechanism).
    bool all_covered = true;
    for (size_t i = 0; i < dev_indices.size(); ++i) {
      if (best_h.Vote(primitives.RowPtr(dev_indices[i])) != kAbstainVote) {
        weights[i] = config.covered_weight;
      } else if (weights[i] == 1.0) {
        all_covered = false;
      }
    }
    if (all_covered && static_cast<int>(result.heuristics.size()) >= 3) break;
  }

  if (result.heuristics.empty()) {
    // Degenerate fallback: a single best-effort stump so downstream
    // consumers still receive (noisy) labels, mirroring Snuba's behavior of
    // always emitting at least one heuristic.
    SnubaHeuristic h;
    h.feature = 0;
    h.threshold = dev_values[0][dev_values[0].size() / 2];
    result.heuristics.push_back(h);
  }

  const int64_t num_h = static_cast<int64_t>(result.heuristics.size());
  result.votes = Matrix(n, num_h, static_cast<double>(kAbstainVote));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t h = 0; h < num_h; ++h) {
      result.votes(i, h) = result.heuristics[static_cast<size_t>(h)].Vote(
          primitives.RowPtr(i));
    }
  }

  LabelModelConfig lm_config;
  lm_config.num_classes = config.num_classes;
  LabelModel lm(lm_config);
  GOGGLES_RETURN_NOT_OK(lm.Fit(result.votes));
  GOGGLES_ASSIGN_OR_RETURN(result.proba, lm.PredictProba(result.votes));
  return result;
}

}  // namespace goggles::baselines
