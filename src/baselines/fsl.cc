#include "baselines/fsl.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace goggles::baselines {
namespace {

/// Row softmax in place.
void SoftmaxRow(std::vector<double>* v) {
  double max_v = (*v)[0];
  for (double x : *v) max_v = std::max(max_v, x);
  double total = 0.0;
  for (double& x : *v) {
    x = std::exp(x - max_v);
    total += x;
  }
  for (double& x : *v) x /= total;
}

}  // namespace

Status FewShotBaseline::Fit(const Matrix& support_features,
                            const std::vector<int>& support_labels,
                            int num_classes) {
  const int64_t n = support_features.rows();
  const int64_t d = support_features.cols();
  if (n == 0) return Status::InvalidArgument("FewShotBaseline: empty support");
  if (static_cast<size_t>(n) != support_labels.size()) {
    return Status::InvalidArgument("FewShotBaseline: label count mismatch");
  }
  num_classes_ = num_classes;
  weight_ = Matrix(num_classes, d, 0.0);
  bias_.assign(static_cast<size_t>(num_classes), 0.0);

  // Adam state.
  Matrix m_w(num_classes, d, 0.0), v_w(num_classes, d, 0.0);
  std::vector<double> m_b(static_cast<size_t>(num_classes), 0.0);
  std::vector<double> v_b(static_cast<size_t>(num_classes), 0.0);
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  const double lr = static_cast<double>(config_.learning_rate);
  int64_t t = 0;

  Rng rng(config_.seed);
  std::vector<int> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = static_cast<int>(i);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (int64_t start = 0; start < n; start += config_.batch_size) {
      const int64_t end = std::min<int64_t>(n, start + config_.batch_size);
      Matrix grad_w(num_classes, d, 0.0);
      std::vector<double> grad_b(static_cast<size_t>(num_classes), 0.0);
      const double inv_batch = 1.0 / static_cast<double>(end - start);

      for (int64_t bi = start; bi < end; ++bi) {
        const int idx = order[static_cast<size_t>(bi)];
        const double* x = support_features.RowPtr(idx);
        std::vector<double> logits(static_cast<size_t>(num_classes));
        for (int c = 0; c < num_classes; ++c) {
          double acc = bias_[static_cast<size_t>(c)];
          const double* w = weight_.RowPtr(c);
          for (int64_t j = 0; j < d; ++j) acc += w[j] * x[j];
          logits[static_cast<size_t>(c)] = acc;
        }
        SoftmaxRow(&logits);
        for (int c = 0; c < num_classes; ++c) {
          const double g =
              (logits[static_cast<size_t>(c)] -
               (support_labels[static_cast<size_t>(idx)] == c ? 1.0 : 0.0)) *
              inv_batch;
          grad_b[static_cast<size_t>(c)] += g;
          double* gw = grad_w.RowPtr(c);
          for (int64_t j = 0; j < d; ++j) gw[j] += g * x[j];
        }
      }

      ++t;
      const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(t));
      const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(t));
      for (int c = 0; c < num_classes; ++c) {
        double* w = weight_.RowPtr(c);
        double* mw = m_w.RowPtr(c);
        double* vw = v_w.RowPtr(c);
        const double* gw = grad_w.RowPtr(c);
        for (int64_t j = 0; j < d; ++j) {
          mw[j] = beta1 * mw[j] + (1 - beta1) * gw[j];
          vw[j] = beta2 * vw[j] + (1 - beta2) * gw[j] * gw[j];
          w[j] -= lr * (mw[j] / bc1) / (std::sqrt(vw[j] / bc2) + eps);
        }
        auto& mb = m_b[static_cast<size_t>(c)];
        auto& vb = v_b[static_cast<size_t>(c)];
        const double gb = grad_b[static_cast<size_t>(c)];
        mb = beta1 * mb + (1 - beta1) * gb;
        vb = beta2 * vb + (1 - beta2) * gb * gb;
        bias_[static_cast<size_t>(c)] -= lr * (mb / bc1) / (std::sqrt(vb / bc2) + eps);
      }
    }
  }
  return Status::OK();
}

Result<std::vector<int>> FewShotBaseline::Predict(
    const Matrix& query_features) const {
  if (num_classes_ == 0) return Status::Internal("FewShotBaseline: not fitted");
  if (query_features.cols() != weight_.cols()) {
    return Status::InvalidArgument("FewShotBaseline: dimension mismatch");
  }
  std::vector<int> preds(static_cast<size_t>(query_features.rows()), 0);
  for (int64_t i = 0; i < query_features.rows(); ++i) {
    const double* x = query_features.RowPtr(i);
    double best = -1e300;
    for (int c = 0; c < num_classes_; ++c) {
      double acc = bias_[static_cast<size_t>(c)];
      const double* w = weight_.RowPtr(c);
      for (int64_t j = 0; j < weight_.cols(); ++j) acc += w[j] * x[j];
      if (acc > best) {
        best = acc;
        preds[static_cast<size_t>(i)] = c;
      }
    }
  }
  return preds;
}

Result<double> FewShotBaseline::Evaluate(
    const Matrix& query_features, const std::vector<int>& query_labels) const {
  GOGGLES_ASSIGN_OR_RETURN(std::vector<int> preds, Predict(query_features));
  if (preds.size() != query_labels.size()) {
    return Status::InvalidArgument("FewShotBaseline: label count mismatch");
  }
  int64_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == query_labels[i]) ++correct;
  }
  return preds.empty() ? 0.0
                       : static_cast<double>(correct) /
                             static_cast<double>(preds.size());
}

}  // namespace goggles::baselines
