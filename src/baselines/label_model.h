#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

/// \file label_model.h
/// \brief Generative label model over labeling functions — the aggregation
/// core shared by the Snorkel and Snuba baselines (Ratner et al. 2016/2017).
///
/// Each labeling function (LF) votes a class in {0..K-1} or abstains (-1).
/// Assuming LFs are conditionally independent given the true label, EM
/// (Dawid-Skene style) jointly estimates per-LF accuracies and per-instance
/// posterior labels.

namespace goggles::baselines {

/// \brief Vote value meaning "labeling function abstains on this instance".
constexpr int kAbstainVote = -1;

/// \brief Label-model hyper-parameters.
struct LabelModelConfig {
  int num_classes = 2;
  int max_iters = 100;
  double tol = 1e-8;
  /// Initial LF accuracy (Snorkel's better-than-random prior).
  double init_accuracy = 0.7;
  /// LF accuracies are clamped to [min_accuracy, max_accuracy]. The lower
  /// bound of 0.5 encodes the data-programming premise that every LF is
  /// better than random (paper §1); without it, one-sided LF sets admit a
  /// degenerate "one class explains everything" EM fixed point.
  double min_accuracy = 0.5;
  double max_accuracy = 0.99;
  /// Learn class priors from the posteriors. Off (Snorkel's default
  /// uniform class balance) avoids prior collapse on skewed LF sets.
  bool learn_priors = false;
};

/// \brief Dawid-Skene style generative model over LF votes.
class LabelModel {
 public:
  explicit LabelModel(LabelModelConfig config) : config_(config) {}

  /// \brief Fits LF accuracies and class priors on the votes matrix
  /// (n x num_lfs, entries kAbstainVote or class id).
  Status Fit(const Matrix& votes);

  /// \brief Posterior P(y | votes) per instance (n x K). Instances on which
  /// every LF abstained get the class-prior row.
  Result<Matrix> PredictProba(const Matrix& votes) const;

  /// \brief Estimated accuracy of each labeling function.
  const std::vector<double>& lf_accuracies() const { return accuracies_; }

  /// \brief Estimated class priors.
  const std::vector<double>& class_priors() const { return priors_; }

 private:
  Result<Matrix> EStep(const Matrix& votes) const;

  LabelModelConfig config_;
  std::vector<double> accuracies_;
  std::vector<double> priors_;
};

/// \brief Simple (unweighted) majority-vote probabilistic labels; used as a
/// comparison point in tests.
Matrix MajorityVoteProba(const Matrix& votes, int num_classes);

}  // namespace goggles::baselines
