#include "goggles/pipeline.h"

#include <algorithm>

namespace goggles {

GogglesPipeline::GogglesPipeline(
    std::shared_ptr<features::FeatureExtractor> extractor, GogglesConfig config)
    : extractor_(std::move(extractor)), config_(config) {
  library_ = BuildPrototypeAffinityLibrary(extractor_, config_.top_z);
}

void GogglesPipeline::AddFunction(std::unique_ptr<AffinityFunction> function) {
  extra_functions_.push_back(std::move(function));
}

std::vector<AffinityFunction*> GogglesPipeline::ActiveFunctions() const {
  std::vector<AffinityFunction*> fns = library_.Pointers();
  for (const auto& f : extra_functions_) fns.push_back(f.get());
  if (config_.max_functions > 0 &&
      config_.max_functions < static_cast<int>(fns.size())) {
    fns.resize(static_cast<size_t>(config_.max_functions));
  }
  return fns;
}

int GogglesPipeline::num_functions() const {
  return static_cast<int>(ActiveFunctions().size());
}

Result<Matrix> GogglesPipeline::BuildAffinity(
    const std::vector<data::Image>& images) const {
  std::vector<AffinityFunction*> fns = ActiveFunctions();
  if (fns.empty()) {
    return Status::InvalidArgument("GogglesPipeline: no affinity functions");
  }
  // ActiveFunctions() lists the prototype-library functions first; they
  // all delegate Prepare to the one shared source, whose idempotence
  // check fingerprints the dataset — prepare it once instead of once per
  // function.
  const size_t num_library = std::min(fns.size(), library_.functions.size());
  const int64_t n = static_cast<int64_t>(images.size());
  Matrix a(n, static_cast<int64_t>(fns.size()) * n);
  if (num_library > 0) {
    GOGGLES_RETURN_NOT_OK(library_.source->Prepare(images));
    // The library block goes through the batched GEMM scorer — the same
    // kernel (and accumulation order) the serving path uses for query
    // rows, so a served image reproduces its fit-time scores bit for bit.
    GOGGLES_RETURN_NOT_OK(library_.source->ScorePoolRowsInto(
        static_cast<int>(num_library), &a));
  }
  for (size_t i = num_library; i < fns.size(); ++i) {
    GOGGLES_RETURN_NOT_OK(fns[i]->Prepare(images));
  }
  // User-supplied extra functions only expose the pairwise Score()
  // interface; fill their columns the generic way.
  FillAffinityMatrixColumns(fns, num_library, static_cast<int>(n), &a);
  return a;
}

Result<LabelingResult> GogglesPipeline::Label(
    const std::vector<data::Image>& images,
    const std::vector<int>& dev_indices, const std::vector<int>& dev_labels,
    int num_classes, FittedHierarchicalModel* fitted_out) const {
  if (dev_indices.size() != dev_labels.size()) {
    return Status::InvalidArgument(
        "GogglesPipeline::Label: dev indices/labels size mismatch");
  }
  GOGGLES_ASSIGN_OR_RETURN(Matrix affinity, BuildAffinity(images));
  HierarchicalLabeler labeler(config_.inference);
  return labeler.Fit(affinity, dev_indices, dev_labels, num_classes,
                     fitted_out);
}

}  // namespace goggles
