#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/image.h"
#include "features/extractor.h"
#include "features/prototypes.h"
#include "linalg/matrix.h"
#include "util/status.h"

/// \file affinity.h
/// \brief Affinity functions and affinity matrix construction (paper §2-3).
///
/// An affinity function maps an instance pair to a similarity score. The
/// GOGGLES library contains alpha = 5 layers x Z prototypes functions built
/// on the VggMini backbone (Eq. 2: max over spatial positions of cosine
/// similarity to a prototype), but the interface is open: any pairwise
/// score can participate (see `VectorCosineAffinity` and the
/// `custom_affinity` example).

namespace goggles {

/// \brief Interface every affinity function implements.
class AffinityFunction {
 public:
  virtual ~AffinityFunction() = default;

  /// \brief Human-readable identifier (e.g. "proto[L2,z3]").
  virtual std::string name() const = 0;

  /// \brief Caches per-image state for the dataset; called once before any
  /// Score() call. Must be idempotent.
  virtual Status Prepare(const std::vector<data::Image>& images) = 0;

  /// \brief Affinity of the ordered pair (x_i, x_j). Note Eq. 2 is
  /// asymmetric: the prototype comes from x_j, the search is over x_i.
  virtual float Score(int i, int j) const = 0;
};

/// \brief Shared state for the 5 x Z prototype affinity functions:
/// normalized filter-map position vectors and top-Z prototypes per image
/// per layer. One instance is shared by all functions of one library.
class PrototypeAffinitySource {
 public:
  /// \brief Cached per-layer state for one prepared pool. Public so the
  /// serving artifact store can persist and restore a fitted session.
  struct LayerData {
    int channels = 0;  ///< filter-map channels C at this layer
    int area = 0;      ///< filter-map spatial positions H * W
    /// positions[i]: area x channels row-major, rows L2-normalized.
    std::vector<std::vector<float>> positions;
    /// prototypes[i]: (#unique<=Z) x channels row-major, rows L2-normalized.
    std::vector<std::vector<float>> prototypes;
    /// Unique prototype count per image (the z-wrap divisor).
    std::vector<int> num_prototypes;
  };

  /// \brief Query-side state for an image *outside* the prepared pool:
  /// its normalized position vectors at every layer. Prototypes are not
  /// needed on the query side — Eq. 2 takes the prototype from the pool
  /// image and searches over the query image's positions.
  struct QueryFeatures {
    /// positions[layer]: area x channels row-major, rows L2-normalized.
    std::vector<std::vector<float>> positions;
  };

  /// \brief Shares `extractor` across the library's functions; `top_z`
  /// prototypes are cached per image per layer.
  PrototypeAffinitySource(std::shared_ptr<features::FeatureExtractor> extractor,
                          int top_z)
      : extractor_(std::move(extractor)), top_z_(top_z) {}

  /// \brief Extracts and normalizes features for `images`. Idempotent per
  /// dataset: re-preparing with the same images is a no-op, keyed on a
  /// content fingerprint (not just the image count) so a different
  /// same-sized dataset re-runs extraction instead of reusing stale caches.
  Status Prepare(const std::vector<data::Image>& images);

  /// \brief Backbone pool-layer count (the library's 5).
  int num_layers() const { return extractor_->num_pool_layers(); }
  /// \brief Prototypes per layer (Z).
  int top_z() const { return top_z_; }
  /// \brief Prepared pool size (-1 until prepared).
  int num_images() const { return num_images_; }

  /// \brief Content fingerprint of the prepared pool (0 until prepared).
  uint64_t fingerprint() const { return fingerprint_; }

  /// \brief The prepared per-layer caches (serving artifact export).
  const std::vector<LayerData>& layers() const { return layers_; }

  /// \brief Approximate resident size of the prepared caches in bytes
  /// (position vectors, prototypes, and the packed GEMM panels). Feeds
  /// the serving registry's LRU memory budget.
  uint64_t ApproxMemoryBytes() const;

  /// \brief Restores a prepared state previously captured via layers(),
  /// bypassing feature extraction (serving artifact import). The layer
  /// count must match the extractor's pool-layer count.
  Status Restore(std::vector<LayerData> layers, int num_images,
                 uint64_t fingerprint);

  /// \brief Eq. 2: max_{h,w} cos(v^z_j, v^{(h,w)}_i) at `layer`.
  ///
  /// When image j has fewer than Z unique prototypes at this layer, the
  /// prototype index wraps around (documented deviation: the paper drops
  /// duplicates, leaving some functions undefined for that image; wrapping
  /// keeps the affinity matrix rectangular).
  float Score(int layer, int z, int i, int j) const;

  /// \brief Extracts query-side features for images outside the pool,
  /// using the exact normalization applied by Prepare() so query scores
  /// are bit-identical to pool scores for the same image. Thread-safe:
  /// the backbone forward pass serializes inside FeatureExtractor.
  Result<std::vector<QueryFeatures>> ExtractQueryFeatures(
      const std::vector<data::Image>& images) const;

  /// \brief Eq. 2 for the ordered pair (query, pool image j): the
  /// prototype comes from pool image j, the max runs over the query's
  /// position vectors at `layer`.
  float ScoreQuery(int layer, int z, const QueryFeatures& query, int j) const;

  /// \brief Batched pool-side scoring: fills columns f < `num_functions`
  /// of the affinity matrix `a` (layout A[i, f*N + j], §2.2) for the
  /// round-robin library ordering (function f = layer f % L, prototype
  /// rank f / L). Instead of one dot product per (position, prototype)
  /// pair, each layer runs one GEMM of the stacked position vectors
  /// against the packed prototype panel followed by a max-reduction over
  /// positions — and duplicate prototypes (the z-wrap for images with
  /// fewer than Z unique prototypes) are scored once instead of once per
  /// wrapped z. `a` must be pre-sized to at least num_functions * N cols.
  Status ScorePoolRowsInto(int num_functions, Matrix* a) const;

  /// \brief Batched query-side scoring: the M x (num_functions * N) row
  /// block for `queries` in the same layout (and with the same
  /// float->double cast) as ScorePoolRowsInto. Both sides run the same
  /// GEMM kernel with the same per-element accumulation order, so a query
  /// identical to a pool image reproduces its fit-time scores bit for bit.
  Result<Matrix> ScoreQueryRowsBatched(
      const std::vector<QueryFeatures>& queries, int num_functions) const;

 private:
  /// Per-layer prototypes of all pool images packed into one contiguous
  /// panel (GEMM right-hand side). Derived from `layers_` by Prepare() and
  /// Restore(); never persisted.
  struct PackedPrototypes {
    std::vector<float> data;       ///< total_protos x channels, row-major
    std::vector<int64_t> offsets;  ///< n+1; image j owns [offsets[j], offsets[j+1])
  };

  void BuildPackedPrototypes();

  /// Scores one layer of the library for `m` instances (pool or query
  /// side, selected by `positions_of`) into rows [0, m) of `out`.
  Status ScoreLayerInto(
      int layer, int num_functions, int64_t m,
      const std::function<const std::vector<float>&(int64_t)>& positions_of,
      Matrix* out) const;

  std::shared_ptr<features::FeatureExtractor> extractor_;
  int top_z_;
  int num_images_ = -1;
  uint64_t fingerprint_ = 0;
  std::vector<LayerData> layers_;
  std::vector<PackedPrototypes> packed_;
};

/// \brief One (layer, z) prototype affinity function (Eq. 2).
class PrototypeAffinityFunction : public AffinityFunction {
 public:
  /// \brief The function scoring prototype rank `z` of `layer` over the
  /// shared `source`.
  PrototypeAffinityFunction(std::shared_ptr<PrototypeAffinitySource> source,
                            int layer, int z);

  std::string name() const override;
  Status Prepare(const std::vector<data::Image>& images) override;
  float Score(int i, int j) const override;

 private:
  std::shared_ptr<PrototypeAffinitySource> source_;
  int layer_;
  int z_;
};

/// \brief Affinity = cosine similarity between fixed per-image embedding
/// vectors (used by the HOG and Logits representation ablations, and by
/// user-defined affinity functions over any embedding).
class VectorCosineAffinity : public AffinityFunction {
 public:
  /// \param name       display name
  /// \param embeddings one row per image
  VectorCosineAffinity(std::string name, Matrix embeddings);

  std::string name() const override { return name_; }
  Status Prepare(const std::vector<data::Image>& images) override;
  float Score(int i, int j) const override;

 private:
  std::string name_;
  Matrix embeddings_;
};

/// \brief The GOGGLES affinity function library: 5 layers x Z functions
/// sharing one `PrototypeAffinitySource`.
struct AffinityLibrary {
  /// Shared per-pool caches behind every function of the library.
  std::shared_ptr<PrototypeAffinitySource> source;
  /// The 5 x Z functions in round-robin layer order.
  std::vector<std::unique_ptr<AffinityFunction>> functions;

  /// \brief Raw function pointers in library order (BuildAffinityMatrix
  /// input).
  std::vector<AffinityFunction*> Pointers() const {
    std::vector<AffinityFunction*> out;
    out.reserve(functions.size());
    for (const auto& f : functions) out.push_back(f.get());
    return out;
  }
};

/// \brief Builds the prototype affinity library.
///
/// Functions are ordered round-robin across layers (z=0 of every layer
/// first), so that truncated prefixes — used by the Figure 9 sweep — still
/// span all five scales.
AffinityLibrary BuildPrototypeAffinityLibrary(
    std::shared_ptr<features::FeatureExtractor> extractor, int top_z = 10);

/// \brief Constructs the affinity matrix A in the paper's layout (§2.2):
/// A[i, f*N + j] = f(x_i, x_j) for each function f and instance pair (i,j).
///
/// All functions must already be Prepare()d for `num_images` images.
Result<Matrix> BuildAffinityMatrix(
    const std::vector<AffinityFunction*>& functions, int num_images);

/// \brief Fills columns [first_function, functions.size()) of `a` via the
/// generic pairwise Score() interface, in the layout above. The single
/// authoritative implementation of that layout/cast for functions without
/// a batched scorer — used by BuildAffinityMatrix (whole matrix) and by
/// GogglesPipeline::BuildAffinity (extra-function tail columns).
void FillAffinityMatrixColumns(
    const std::vector<AffinityFunction*>& functions, size_t first_function,
    int num_images, Matrix* a);

}  // namespace goggles
