#include "goggles/ensemble.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "goggles/base_gmm.h"  // LogSumExp
#include "util/rng.h"

namespace goggles {
namespace {

struct BernoulliState {
  Matrix params;  // K x L
  std::vector<double> weights;
};

/// E-step; returns total data log-likelihood. Uses precomputed logs of the
/// parameters for speed.
double EStep(const Matrix& b, const BernoulliState& state, Matrix* log_resp) {
  const int64_t n = b.rows(), l = b.cols();
  const int64_t k = state.params.rows();
  Matrix log_p(k, l), log_q(k, l);
  for (int64_t c = 0; c < k; ++c) {
    for (int64_t j = 0; j < l; ++j) {
      log_p(c, j) = std::log(state.params(c, j));
      log_q(c, j) = std::log(1.0 - state.params(c, j));
    }
  }
  double total_ll = 0.0;
  std::vector<double> scratch(static_cast<size_t>(k));
  for (int64_t i = 0; i < n; ++i) {
    const double* row = b.RowPtr(i);
    for (int64_t c = 0; c < k; ++c) {
      double acc =
          std::log(std::max(state.weights[static_cast<size_t>(c)], 1e-300));
      const double* lp = log_p.RowPtr(c);
      const double* lq = log_q.RowPtr(c);
      for (int64_t j = 0; j < l; ++j) {
        acc += row[j] * lp[j] + (1.0 - row[j]) * lq[j];
      }
      scratch[static_cast<size_t>(c)] = acc;
    }
    const double lse = LogSumExp(scratch.data(), k);
    total_ll += lse;
    for (int64_t c = 0; c < k; ++c) {
      (*log_resp)(i, c) = scratch[static_cast<size_t>(c)] - lse;
    }
  }
  return total_ll;
}

/// M-step (Eq. 11) with Laplace smoothing.
void MStep(const Matrix& b, const Matrix& log_resp, double smoothing,
           BernoulliState* state) {
  const int64_t n = b.rows(), l = b.cols();
  const int64_t k = state->params.rows();
  for (int64_t c = 0; c < k; ++c) {
    double nk = 0.0;
    std::vector<double> acc(static_cast<size_t>(l), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      const double r = std::exp(log_resp(i, c));
      nk += r;
      const double* row = b.RowPtr(i);
      for (int64_t j = 0; j < l; ++j) acc[static_cast<size_t>(j)] += r * row[j];
    }
    for (int64_t j = 0; j < l; ++j) {
      state->params(c, j) =
          (acc[static_cast<size_t>(j)] + smoothing) / (nk + 2.0 * smoothing);
    }
    state->weights[static_cast<size_t>(c)] =
        std::max(nk, 1e-12) / static_cast<double>(n);
  }
}

}  // namespace

Status BernoulliMixture::SetParameters(Matrix params,
                                       std::vector<double> weights,
                                       double final_log_likelihood) {
  if (params.rows() < 1 || params.cols() < 1) {
    return Status::InvalidArgument(
        "BernoulliMixture::SetParameters: empty parameter matrix");
  }
  if (static_cast<int64_t>(weights.size()) != params.rows()) {
    return Status::InvalidArgument(
        "BernoulliMixture::SetParameters: weights length must equal K");
  }
  for (int64_t c = 0; c < params.rows(); ++c) {
    for (int64_t j = 0; j < params.cols(); ++j) {
      if (!(params(c, j) > 0.0) || !(params(c, j) < 1.0)) {
        return Status::InvalidArgument(
            "BernoulliMixture::SetParameters: parameters must lie strictly "
            "inside (0, 1)");
      }
    }
  }
  double weight_sum = 0.0;
  for (double w : weights) {
    if (!std::isfinite(w) || w < 0.0) {
      return Status::InvalidArgument(
          "BernoulliMixture::SetParameters: weights must be finite and "
          "non-negative");
    }
    weight_sum += w;
  }
  if (!(weight_sum > 0.0)) {
    return Status::InvalidArgument(
        "BernoulliMixture::SetParameters: weights must not all be zero");
  }
  params_ = std::move(params);
  weights_ = std::move(weights);
  final_ll_ = final_log_likelihood;
  return Status::OK();
}

Status BernoulliMixture::Fit(const Matrix& b) {
  const int64_t n = b.rows();
  if (n < config_.num_components) {
    return Status::InvalidArgument(
        "BernoulliMixture::Fit: fewer samples than components");
  }
  Rng rng(config_.seed);
  double best_ll = -std::numeric_limits<double>::infinity();

  for (int restart = 0; restart < std::max(1, config_.num_restarts);
       ++restart) {
    Rng restart_rng = rng.Fork(static_cast<uint64_t>(restart));
    // Init: random soft responsibilities -> M-step.
    Matrix log_resp(n, config_.num_components);
    for (int64_t i = 0; i < n; ++i) {
      std::vector<double> weights(static_cast<size_t>(config_.num_components));
      double total = 0.0;
      for (auto& w : weights) {
        w = restart_rng.Uniform(0.05, 1.0);
        total += w;
      }
      for (int64_t c = 0; c < config_.num_components; ++c) {
        log_resp(i, c) = std::log(weights[static_cast<size_t>(c)] / total);
      }
    }
    BernoulliState state;
    state.params = Matrix(config_.num_components, b.cols());
    state.weights.assign(static_cast<size_t>(config_.num_components), 0.0);
    MStep(b, log_resp, config_.smoothing, &state);

    std::vector<double> history;
    double prev_ll = -std::numeric_limits<double>::infinity();
    for (int iter = 0; iter < config_.max_iters; ++iter) {
      const double ll = EStep(b, state, &log_resp);
      history.push_back(ll);
      MStep(b, log_resp, config_.smoothing, &state);
      if (iter > 0 && ll - prev_ll < config_.tol) break;
      prev_ll = ll;
    }
    const double final_ll = history.empty() ? 0.0 : history.back();
    if (final_ll > best_ll) {
      best_ll = final_ll;
      params_ = state.params;
      weights_ = state.weights;
      ll_history_ = std::move(history);
    }
  }
  final_ll_ = best_ll;
  return Status::OK();
}

Result<Matrix> BernoulliMixture::PredictProba(const Matrix& b) const {
  if (params_.rows() == 0) {
    return Status::Internal("BernoulliMixture::PredictProba: not fitted");
  }
  if (b.cols() != params_.cols()) {
    return Status::InvalidArgument(
        "BernoulliMixture::PredictProba: dimension mismatch");
  }
  BernoulliState state{params_, weights_};
  Matrix log_resp(b.rows(), params_.rows());
  EStep(b, state, &log_resp);
  Matrix proba(b.rows(), params_.rows());
  for (int64_t i = 0; i < b.rows(); ++i) {
    for (int64_t c = 0; c < params_.rows(); ++c) {
      proba(i, c) = std::exp(log_resp(i, c));
    }
  }
  return proba;
}

Matrix OneHotConcatLabelPredictions(const std::vector<Matrix>& lps) {
  if (lps.empty()) return Matrix();
  const int64_t n = lps[0].rows();
  const int64_t k = lps[0].cols();
  Matrix out(n, static_cast<int64_t>(lps.size()) * k, 0.0);
  for (size_t f = 0; f < lps.size(); ++f) {
    const Matrix& lp = lps[f];
    for (int64_t i = 0; i < n; ++i) {
      int64_t best = 0;
      for (int64_t c = 1; c < k; ++c) {
        if (lp(i, c) > lp(i, best)) best = c;
      }
      out(i, static_cast<int64_t>(f) * k + best) = 1.0;
    }
  }
  return out;
}

Matrix ConcatLabelPredictions(const std::vector<Matrix>& lps) {
  if (lps.empty()) return Matrix();
  const int64_t n = lps[0].rows();
  const int64_t k = lps[0].cols();
  Matrix out(n, static_cast<int64_t>(lps.size()) * k, 0.0);
  for (size_t f = 0; f < lps.size(); ++f) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < k; ++c) {
        out(i, static_cast<int64_t>(f) * k + c) = lps[f](i, c);
      }
    }
  }
  return out;
}

}  // namespace goggles
