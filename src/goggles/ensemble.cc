#include "goggles/ensemble.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "goggles/em_core.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace goggles {
namespace {

struct BernoulliState {
  Matrix params;  // K x L
  std::vector<double> weights;
};

/// Per-iteration E-step operands: with q = 1 − p, the row log-likelihood
///   log P(b | c) = Σⱼ [bⱼ log pⱼ + (1 − bⱼ) log qⱼ]
///                = Σⱼ log qⱼ + Σⱼ bⱼ (log pⱼ − log qⱼ),
/// so panel row c = log p − log q makes the data-dependent part the dot
/// product b_i · panel_c (one N x K product per iteration — the one-hot
/// LP path rides the same product, its rows just happen to be 0/1), and
/// offsets[c] = log w_c + Σⱼ log qⱼ folds the rest. K x L work per
/// iteration, vs the old triple loop's N·K·L log-free but scalar pass.
void BuildBernoulliPanel(const Matrix& params,
                         const std::vector<double>& weights, Matrix* panel,
                         std::vector<double>* offsets) {
  const int64_t k = params.rows(), l = params.cols();
  if (panel->rows() != k || panel->cols() != l) *panel = Matrix(k, l);
  offsets->resize(static_cast<size_t>(k));
  for (int64_t c = 0; c < k; ++c) {
    const double* p = params.RowPtr(c);
    double* dst = panel->RowPtr(c);
    double log_q_sum = 0.0;
    for (int64_t j = 0; j < l; ++j) {
      const double log_p = std::log(p[j]);
      const double log_q = std::log(1.0 - p[j]);
      dst[j] = log_p - log_q;
      log_q_sum += log_q;
    }
    (*offsets)[static_cast<size_t>(c)] =
        std::log(std::max(weights[static_cast<size_t>(c)], 1e-300)) +
        log_q_sum;
  }
}

/// E-step: one N x K product + the shared in-place log-softmax epilogue.
/// Fills `log_resp` and returns the data log-likelihood.
double EStep(const em::FitOperand& b, const BernoulliState& state,
             em::Engine engine, Matrix* panel, std::vector<double>* offsets,
             Matrix* log_resp) {
  BuildBernoulliPanel(state.params, state.weights, panel, offsets);
  em::ProductNT(b, *panel, engine, log_resp);
  return em::LogSoftmaxRowsInPlace(*offsets, log_resp);
}

/// M-step (Eq. 11) with Laplace smoothing: sums = Bᵀ·R in one product.
/// `sums` is (L x K) — indexed (feature, component).
void MStep(const em::FitOperand& b, const Matrix& log_resp, double smoothing,
           em::Engine engine, Matrix* resp, Matrix* sums,
           std::vector<double>* nk, BernoulliState* state) {
  const int64_t n = b.rows, l = b.cols;
  const int64_t k = state->params.rows();
  em::ExpInto(log_resp, resp);
  em::ColumnSums(*resp, nk);
  em::ProductTB(b, *resp, engine, sums);
  for (int64_t c = 0; c < k; ++c) {
    const double mass = (*nk)[static_cast<size_t>(c)];
    for (int64_t j = 0; j < l; ++j) {
      state->params(c, j) =
          ((*sums)(j, c) + smoothing) / (mass + 2.0 * smoothing);
    }
    state->weights[static_cast<size_t>(c)] =
        std::max(mass, 1e-12) / static_cast<double>(n);
  }
}

}  // namespace

Status BernoulliMixture::SetParameters(Matrix params,
                                       std::vector<double> weights,
                                       double final_log_likelihood) {
  if (params.rows() < 1 || params.cols() < 1) {
    return Status::InvalidArgument(
        "BernoulliMixture::SetParameters: empty parameter matrix");
  }
  if (static_cast<int64_t>(weights.size()) != params.rows()) {
    return Status::InvalidArgument(
        "BernoulliMixture::SetParameters: weights length must equal K");
  }
  for (int64_t c = 0; c < params.rows(); ++c) {
    for (int64_t j = 0; j < params.cols(); ++j) {
      if (!(params(c, j) > 0.0) || !(params(c, j) < 1.0)) {
        return Status::InvalidArgument(
            "BernoulliMixture::SetParameters: parameters must lie strictly "
            "inside (0, 1)");
      }
    }
  }
  double weight_sum = 0.0;
  for (double w : weights) {
    if (!std::isfinite(w) || w < 0.0) {
      return Status::InvalidArgument(
          "BernoulliMixture::SetParameters: weights must be finite and "
          "non-negative");
    }
    weight_sum += w;
  }
  if (!(weight_sum > 0.0)) {
    return Status::InvalidArgument(
        "BernoulliMixture::SetParameters: weights must not all be zero");
  }
  params_ = std::move(params);
  weights_ = std::move(weights);
  final_ll_ = final_log_likelihood;
  return Status::OK();
}

Status BernoulliMixture::Fit(const Matrix& b) {
  const int64_t n = b.rows();
  if (n < config_.num_components) {
    return Status::InvalidArgument(
        "BernoulliMixture::Fit: fewer samples than components");
  }
  const em::Engine engine =
      config_.use_gemm ? em::Engine::kGemm : em::Engine::kReference;
  // Both product orientations of the (constant) LP matrix are packed once
  // and shared read-only across restarts and iterations. The copy handed
  // to the operand is transient on the GEMM engine (released once the
  // packs exist).
  const em::FitOperand bop = em::PackFitOperand(b, engine);
  const Rng rng(config_.seed);
  const int num_restarts = std::max(1, config_.num_restarts);

  // Restarts are embarrassingly parallel (forked RNG streams); slots keep
  // results independent of execution order, and the nested-parallelism
  // collapse keeps the inner DGemm from oversubscribing when Fit already
  // runs inside a worker (hierarchical fit, serve-side refits).
  struct RestartFit {
    BernoulliState state;
    std::vector<double> history;
  };
  std::vector<RestartFit> restarts(static_cast<size_t>(num_restarts));
  ParallelFor(0, num_restarts, [&](int64_t restart) {
    Rng restart_rng = rng.Fork(static_cast<uint64_t>(restart));
    RestartFit& out = restarts[static_cast<size_t>(restart)];

    // Init: random soft responsibilities -> M-step. The draw order is the
    // historical one; the weights scratch is hoisted out of the row loop.
    Matrix log_resp(n, config_.num_components);
    std::vector<double> row_weights(
        static_cast<size_t>(config_.num_components));
    for (int64_t i = 0; i < n; ++i) {
      double total = 0.0;
      for (auto& w : row_weights) {
        w = restart_rng.Uniform(0.05, 1.0);
        total += w;
      }
      for (int64_t c = 0; c < config_.num_components; ++c) {
        log_resp(i, c) = std::log(row_weights[static_cast<size_t>(c)] / total);
      }
    }
    out.state.params = Matrix(config_.num_components, b.cols());
    out.state.weights.assign(static_cast<size_t>(config_.num_components), 0.0);

    Matrix resp, sums, panel;
    std::vector<double> offsets, nk;
    MStep(bop, log_resp, config_.smoothing, engine, &resp, &sums, &nk,
          &out.state);

    double prev_ll = -std::numeric_limits<double>::infinity();
    for (int iter = 0; iter < config_.max_iters; ++iter) {
      const double ll =
          EStep(bop, out.state, engine, &panel, &offsets, &log_resp);
      out.history.push_back(ll);
      MStep(bop, log_resp, config_.smoothing, engine, &resp, &sums, &nk,
            &out.state);
      if (iter > 0 && ll - prev_ll < config_.tol) break;
      prev_ll = ll;
    }
  });

  // Serial best-restart selection in restart order (first strict
  // improvement wins), matching the historical serial loop.
  double best_ll = -std::numeric_limits<double>::infinity();
  int64_t best = -1;
  for (int64_t r = 0; r < num_restarts; ++r) {
    const std::vector<double>& history =
        restarts[static_cast<size_t>(r)].history;
    const double final_ll = history.empty() ? 0.0 : history.back();
    if (final_ll > best_ll) {
      best_ll = final_ll;
      best = r;
    }
  }
  if (best >= 0) {
    RestartFit& winner = restarts[static_cast<size_t>(best)];
    params_ = std::move(winner.state.params);
    weights_ = std::move(winner.state.weights);
    ll_history_ = std::move(winner.history);
  }
  final_ll_ = best_ll;
  return Status::OK();
}

Result<Matrix> BernoulliMixture::PredictProba(const Matrix& b) const {
  if (params_.rows() == 0) {
    return Status::Internal("BernoulliMixture::PredictProba: not fitted");
  }
  if (b.cols() != params_.cols()) {
    return Status::InvalidArgument(
        "BernoulliMixture::PredictProba: dimension mismatch");
  }
  const em::Engine engine =
      config_.use_gemm ? em::Engine::kGemm : em::Engine::kReference;
  Matrix panel;
  std::vector<double> offsets;
  BuildBernoulliPanel(params_, weights_, &panel, &offsets);
  // One matrix end to end: product output -> log-softmax -> exp, all in
  // place (no throwaway E-step buffer + copy).
  Matrix proba;
  em::ProductNT(b, panel, engine, &proba);
  em::LogSoftmaxRowsInPlace(offsets, &proba);
  double* data = proba.data();
  for (int64_t i = 0; i < proba.size(); ++i) data[i] = std::exp(data[i]);
  return proba;
}

Matrix OneHotConcatLabelPredictions(const std::vector<Matrix>& lps) {
  if (lps.empty()) return Matrix();
  const int64_t n = lps[0].rows();
  const int64_t k = lps[0].cols();
  Matrix out(n, static_cast<int64_t>(lps.size()) * k, 0.0);
  for (size_t f = 0; f < lps.size(); ++f) {
    const Matrix& lp = lps[f];
    for (int64_t i = 0; i < n; ++i) {
      int64_t best = 0;
      for (int64_t c = 1; c < k; ++c) {
        if (lp(i, c) > lp(i, best)) best = c;
      }
      out(i, static_cast<int64_t>(f) * k + best) = 1.0;
    }
  }
  return out;
}

Matrix ConcatLabelPredictions(const std::vector<Matrix>& lps) {
  if (lps.empty()) return Matrix();
  const int64_t n = lps[0].rows();
  const int64_t k = lps[0].cols();
  Matrix out(n, static_cast<int64_t>(lps.size()) * k, 0.0);
  for (size_t f = 0; f < lps.size(); ++f) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < k; ++c) {
        out(i, static_cast<int64_t>(f) * k + c) = lps[f](i, c);
      }
    }
  }
  return out;
}

}  // namespace goggles
