#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

/// \file ensemble.h
/// \brief The ensemble layer of the hierarchical generative model (§4.1):
/// a multivariate-Bernoulli mixture over the one-hot-encoded concatenated
/// label prediction matrix LP.

namespace goggles {

/// \brief Bernoulli mixture hyper-parameters.
struct BernoulliMixtureConfig {
  int num_components = 2;  ///< mixture components K
  int max_iters = 100;     ///< EM iteration cap per restart
  double tol = 1e-6;       ///< stop when LL improves less than this
  int num_restarts = 4;    ///< keep the best of this many EM runs
  /// Laplace smoothing added in the M-step so no b_{k,l} hits exactly 0/1
  /// (the paper's "singularity problem" guard).
  double smoothing = 1e-2;
  uint64_t seed = 19;  ///< RNG seed for the restarts' initializations
  /// Run the E/M-step matrix products on the packed DGemm kernels (the
  /// production default). OFF selects the retained serial scalar
  /// reference engine — bit-identical by the accumulation contract in
  /// tensor/gemm.h, enforced by tests/gmm_gemm_test.cc.
  bool use_gemm = true;
};

/// \brief Multivariate Bernoulli mixture (Eq. 7) fit with EM (Eq. 11).
class BernoulliMixture {
 public:
  /// Default-constructs an unfitted model (for SetParameters restore).
  BernoulliMixture() = default;

  /// \brief Constructs an unfitted model with the given hyper-parameters.
  explicit BernoulliMixture(BernoulliMixtureConfig config) : config_(config) {}

  /// \brief Fits to binary matrix `b` (values in [0, 1]; fractional values
  /// are treated as soft memberships, used by the no-one-hot ablation).
  Status Fit(const Matrix& b);

  /// \brief Installs externally-stored parameters (serving artifacts),
  /// making PredictProba available without a Fit() call. `params` is
  /// K x L with entries strictly inside (0, 1); `final_log_likelihood`
  /// restores the recorded training log-likelihood for reporting.
  Status SetParameters(Matrix params, std::vector<double> weights,
                       double final_log_likelihood = 0.0);

  /// \brief Posterior responsibilities per row.
  Result<Matrix> PredictProba(const Matrix& b) const;

  /// \brief Final training log-likelihood of the best restart.
  double final_log_likelihood() const { return final_ll_; }
  /// \brief Per-iteration LL of the best restart.
  const std::vector<double>& log_likelihood_history() const {
    return ll_history_;
  }
  /// \brief Fitted Bernoulli parameters (K x L).
  const Matrix& bernoulli_params() const { return params_; }
  /// \brief Fitted mixture weights (length K).
  const std::vector<double>& weights() const { return weights_; }

 private:
  BernoulliMixtureConfig config_;
  Matrix params_;  // K x L, P(s_l = 1 | component k)
  std::vector<double> weights_;
  double final_ll_ = 0.0;
  std::vector<double> ll_history_;
};

/// \brief One-hot encodes a stack of label prediction matrices (§4.1):
/// for each instance and each LP_f, the argmax class becomes 1, the rest 0;
/// the result is the N x (alpha*K) concatenated binary LP matrix.
Matrix OneHotConcatLabelPredictions(const std::vector<Matrix>& lps);

/// \brief Concatenates LPs without one-hot conversion (ablation).
Matrix ConcatLabelPredictions(const std::vector<Matrix>& lps);

}  // namespace goggles
