#include "goggles/hierarchical.h"

#include <algorithm>

#include "goggles/mapping.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace goggles {
namespace {

/// Ablation path shared by Fit and Infer: average the mapped base LPs
/// (affinity-function quality weighting is lost).
Result<Matrix> AverageLps(const std::vector<Matrix>& lps, int64_t n,
                          int num_classes) {
  Matrix avg(n, num_classes, 0.0);
  for (const Matrix& lp : lps) {
    GOGGLES_RETURN_NOT_OK(avg.AddInPlace(lp));
  }
  avg.Scale(1.0 / static_cast<double>(lps.size()));
  return avg;
}

std::vector<int> IdentityMapping(int num_classes) {
  std::vector<int> identity(static_cast<size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) identity[static_cast<size_t>(k)] = k;
  return identity;
}

void FillHardLabels(LabelingResult* result, int num_classes) {
  const int64_t n = result->soft_labels.rows();
  result->hard_labels.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    int best = 0;
    for (int k = 1; k < num_classes; ++k) {
      if (result->soft_labels(i, k) > result->soft_labels(i, best)) best = k;
    }
    result->hard_labels[static_cast<size_t>(i)] = best;
  }
}

}  // namespace

Result<LabelingResult> HierarchicalLabeler::Fit(
    const Matrix& affinity, const std::vector<int>& dev_indices,
    const std::vector<int>& dev_labels, int num_classes,
    FittedHierarchicalModel* fitted_out) const {
  const int64_t n = affinity.rows();
  if (n == 0) return Status::InvalidArgument("HierarchicalLabeler: empty data");
  if (affinity.cols() % n != 0) {
    return Status::InvalidArgument(
        "HierarchicalLabeler: affinity width must be a multiple of N (one "
        "N-column block per affinity function)");
  }
  const int64_t alpha = affinity.cols() / n;

  // ---- Base layer: one diagonal GMM per affinity function (§4.1). ----
  // Fitting the alpha base models is embarrassingly parallel (the paper
  // notes base models "can be parallelized using different slices of the
  // affinity matrix").
  std::vector<Matrix> lps(static_cast<size_t>(alpha));
  // Fitted GMM parameters (2*alpha*K*N doubles) are only retained when a
  // caller asked for the fitted model.
  std::vector<DiagonalGmm> gmms(
      fitted_out != nullptr ? static_cast<size_t>(alpha) : 0);
  std::vector<Status> statuses(static_cast<size_t>(alpha), Status::OK());
  GmmConfig base_config = config_.base;
  base_config.num_components = num_classes;
  ParallelFor(0, alpha, [&](int64_t f) {
    Matrix block = affinity.Block(0, f * n, n, n);
    GmmConfig cfg = base_config;
    cfg.seed = base_config.seed + static_cast<uint64_t>(f) * 7919;
    DiagonalGmm gmm(cfg);
    Status st = gmm.Fit(block);
    if (!st.ok()) {
      statuses[static_cast<size_t>(f)] = st;
      return;
    }
    Result<Matrix> proba = gmm.PredictProba(block);
    if (!proba.ok()) {
      statuses[static_cast<size_t>(f)] = proba.status();
      return;
    }
    lps[static_cast<size_t>(f)] = std::move(*proba);
    if (fitted_out != nullptr) gmms[static_cast<size_t>(f)] = std::move(gmm);
  });
  for (const Status& st : statuses) GOGGLES_RETURN_NOT_OK(st);

  // Map every base model's clusters to classes using the development set
  // (§4.3: the mapping is applied to each LP_f and to the final L). Like
  // the base fits above, the per-function assignment solves and LP
  // permutations are independent — run them under the same ParallelFor /
  // per-slot Status pattern.
  std::vector<std::vector<int>> base_mappings(static_cast<size_t>(alpha));
  std::fill(statuses.begin(), statuses.end(), Status::OK());
  ParallelFor(0, alpha, [&](int64_t f) {
    Result<std::vector<int>> mapping = ClusterToClassMapping(
        lps[static_cast<size_t>(f)], dev_indices, dev_labels, num_classes);
    if (!mapping.ok()) {
      statuses[static_cast<size_t>(f)] = mapping.status();
      return;
    }
    lps[static_cast<size_t>(f)] =
        ApplyMapping(lps[static_cast<size_t>(f)], *mapping);
    base_mappings[static_cast<size_t>(f)] = std::move(*mapping);
  });
  for (const Status& st : statuses) GOGGLES_RETURN_NOT_OK(st);

  LabelingResult result;
  result.base_label_predictions = lps;

  BernoulliMixture ensemble;
  std::vector<int> ensemble_mapping;
  if (!config_.use_ensemble) {
    GOGGLES_ASSIGN_OR_RETURN(result.soft_labels,
                             AverageLps(lps, n, num_classes));
    result.cluster_to_class = IdentityMapping(num_classes);
  } else {
    // ---- Ensemble layer (§4.1): Bernoulli mixture over one-hot LP. ----
    Matrix concat = config_.one_hot_lp ? OneHotConcatLabelPredictions(lps)
                                       : ConcatLabelPredictions(lps);
    BernoulliMixtureConfig ens_config = config_.ensemble;
    ens_config.num_components = num_classes;
    ensemble = BernoulliMixture(ens_config);
    GOGGLES_RETURN_NOT_OK(ensemble.Fit(concat));
    GOGGLES_ASSIGN_OR_RETURN(Matrix gamma, ensemble.PredictProba(concat));
    result.ensemble_log_likelihood = ensemble.final_log_likelihood();

    GOGGLES_ASSIGN_OR_RETURN(
        std::vector<int> mapping,
        ClusterToClassMapping(gamma, dev_indices, dev_labels, num_classes));
    result.soft_labels = ApplyMapping(gamma, mapping);
    result.cluster_to_class = mapping;
    ensemble_mapping = result.cluster_to_class;
  }

  FillHardLabels(&result, num_classes);

  if (fitted_out != nullptr) {
    fitted_out->num_classes = num_classes;
    fitted_out->pool_size = n;
    fitted_out->one_hot_lp = config_.one_hot_lp;
    fitted_out->use_ensemble = config_.use_ensemble;
    fitted_out->base_models = std::move(gmms);
    fitted_out->base_mappings = std::move(base_mappings);
    fitted_out->ensemble = std::move(ensemble);
    fitted_out->ensemble_mapping = std::move(ensemble_mapping);
  }
  return result;
}

uint64_t FittedHierarchicalModel::ApproxMemoryBytes() const {
  uint64_t bytes = sizeof(*this);
  for (const DiagonalGmm& gmm : base_models) {
    bytes += static_cast<uint64_t>(gmm.means().size()) * sizeof(double);
    bytes += static_cast<uint64_t>(gmm.variances().size()) * sizeof(double);
    bytes += gmm.weights().size() * sizeof(double);
  }
  for (const std::vector<int>& mapping : base_mappings) {
    bytes += mapping.size() * sizeof(int);
  }
  bytes += static_cast<uint64_t>(ensemble.bernoulli_params().size()) *
           sizeof(double);
  bytes += ensemble.weights().size() * sizeof(double);
  bytes += ensemble_mapping.size() * sizeof(int);
  return bytes;
}

Result<LabelingResult> FittedHierarchicalModel::Infer(
    const Matrix& affinity_rows) const {
  if (!fitted()) {
    return Status::Internal("FittedHierarchicalModel::Infer: not fitted");
  }
  const int64_t alpha = num_functions();
  const int64_t m = affinity_rows.rows();
  if (m == 0) {
    return Status::InvalidArgument(
        "FittedHierarchicalModel::Infer: no instances");
  }
  if (pool_size <= 0 || affinity_rows.cols() != alpha * pool_size) {
    return Status::InvalidArgument(
        "FittedHierarchicalModel::Infer: rows must have num_functions * "
        "pool_size affinity columns");
  }

  // Base-layer posterior evaluation per function (no refit), mapped with
  // the stored development-set mappings.
  std::vector<Matrix> lps(static_cast<size_t>(alpha));
  std::vector<Status> statuses(static_cast<size_t>(alpha), Status::OK());
  ParallelFor(0, alpha, [&](int64_t f) {
    Matrix block = affinity_rows.Block(0, f * pool_size, m, pool_size);
    Result<Matrix> proba =
        base_models[static_cast<size_t>(f)].PredictProba(block);
    if (!proba.ok()) {
      statuses[static_cast<size_t>(f)] = proba.status();
      return;
    }
    lps[static_cast<size_t>(f)] =
        ApplyMapping(*proba, base_mappings[static_cast<size_t>(f)]);
  });
  for (const Status& st : statuses) GOGGLES_RETURN_NOT_OK(st);

  LabelingResult result;
  result.base_label_predictions = lps;

  if (!use_ensemble) {
    GOGGLES_ASSIGN_OR_RETURN(result.soft_labels,
                             AverageLps(lps, m, num_classes));
    result.cluster_to_class = IdentityMapping(num_classes);
  } else {
    Matrix concat = one_hot_lp ? OneHotConcatLabelPredictions(lps)
                               : ConcatLabelPredictions(lps);
    GOGGLES_ASSIGN_OR_RETURN(Matrix gamma, ensemble.PredictProba(concat));
    result.ensemble_log_likelihood = ensemble.final_log_likelihood();
    result.soft_labels = ApplyMapping(gamma, ensemble_mapping);
    result.cluster_to_class = ensemble_mapping;
  }

  FillHardLabels(&result, num_classes);
  return result;
}

}  // namespace goggles
