#include "goggles/hierarchical.h"

#include <algorithm>

#include "goggles/mapping.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace goggles {

Result<LabelingResult> HierarchicalLabeler::Fit(
    const Matrix& affinity, const std::vector<int>& dev_indices,
    const std::vector<int>& dev_labels, int num_classes) const {
  const int64_t n = affinity.rows();
  if (n == 0) return Status::InvalidArgument("HierarchicalLabeler: empty data");
  if (affinity.cols() % n != 0) {
    return Status::InvalidArgument(
        "HierarchicalLabeler: affinity width must be a multiple of N (one "
        "N-column block per affinity function)");
  }
  const int64_t alpha = affinity.cols() / n;

  // ---- Base layer: one diagonal GMM per affinity function (§4.1). ----
  // Fitting the alpha base models is embarrassingly parallel (the paper
  // notes base models "can be parallelized using different slices of the
  // affinity matrix").
  std::vector<Matrix> lps(static_cast<size_t>(alpha));
  std::vector<Status> statuses(static_cast<size_t>(alpha), Status::OK());
  GmmConfig base_config = config_.base;
  base_config.num_components = num_classes;
  ParallelFor(0, alpha, [&](int64_t f) {
    Matrix block = affinity.Block(0, f * n, n, n);
    GmmConfig cfg = base_config;
    cfg.seed = base_config.seed + static_cast<uint64_t>(f) * 7919;
    DiagonalGmm gmm(cfg);
    Status st = gmm.Fit(block);
    if (!st.ok()) {
      statuses[static_cast<size_t>(f)] = st;
      return;
    }
    Result<Matrix> proba = gmm.PredictProba(block);
    if (!proba.ok()) {
      statuses[static_cast<size_t>(f)] = proba.status();
      return;
    }
    lps[static_cast<size_t>(f)] = std::move(*proba);
  });
  for (const Status& st : statuses) GOGGLES_RETURN_NOT_OK(st);

  // Map every base model's clusters to classes using the development set
  // (§4.3: the mapping is applied to each LP_f and to the final L).
  for (int64_t f = 0; f < alpha; ++f) {
    GOGGLES_ASSIGN_OR_RETURN(
        std::vector<int> mapping,
        ClusterToClassMapping(lps[static_cast<size_t>(f)], dev_indices,
                              dev_labels, num_classes));
    lps[static_cast<size_t>(f)] =
        ApplyMapping(lps[static_cast<size_t>(f)], mapping);
  }

  LabelingResult result;
  result.base_label_predictions = lps;

  if (!config_.use_ensemble) {
    // Ablation: average the mapped base LPs instead of learning an
    // ensemble. Affinity-function quality weighting is lost.
    Matrix avg(n, num_classes, 0.0);
    for (const Matrix& lp : lps) {
      GOGGLES_RETURN_NOT_OK(avg.AddInPlace(lp));
    }
    avg.Scale(1.0 / static_cast<double>(alpha));
    result.soft_labels = std::move(avg);
    std::vector<int> identity(static_cast<size_t>(num_classes));
    for (int k = 0; k < num_classes; ++k) identity[static_cast<size_t>(k)] = k;
    result.cluster_to_class = identity;
  } else {
    // ---- Ensemble layer (§4.1): Bernoulli mixture over one-hot LP. ----
    Matrix concat = config_.one_hot_lp ? OneHotConcatLabelPredictions(lps)
                                       : ConcatLabelPredictions(lps);
    BernoulliMixtureConfig ens_config = config_.ensemble;
    ens_config.num_components = num_classes;
    BernoulliMixture ensemble(ens_config);
    GOGGLES_RETURN_NOT_OK(ensemble.Fit(concat));
    GOGGLES_ASSIGN_OR_RETURN(Matrix gamma, ensemble.PredictProba(concat));
    result.ensemble_log_likelihood = ensemble.final_log_likelihood();

    GOGGLES_ASSIGN_OR_RETURN(
        std::vector<int> mapping,
        ClusterToClassMapping(gamma, dev_indices, dev_labels, num_classes));
    result.soft_labels = ApplyMapping(gamma, mapping);
    result.cluster_to_class = mapping;
  }

  result.hard_labels.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    int best = 0;
    for (int k = 1; k < num_classes; ++k) {
      if (result.soft_labels(i, k) > result.soft_labels(i, best)) best = k;
    }
    result.hard_labels[static_cast<size_t>(i)] = best;
  }
  return result;
}

}  // namespace goggles
