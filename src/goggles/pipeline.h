#pragma once

#include <memory>
#include <vector>

#include "data/image.h"
#include "features/extractor.h"
#include "goggles/affinity.h"
#include "goggles/hierarchical.h"
#include "util/status.h"

/// \file pipeline.h
/// \brief End-to-end GOGGLES: images -> affinity matrix -> probabilistic
/// labels (Figure 3 of the paper).

namespace goggles {

/// \brief Pipeline hyper-parameters.
struct GogglesConfig {
  /// Prototypes per max-pool layer (the paper's Z = 10, for 5*10 = 50
  /// affinity functions).
  int top_z = 10;
  /// Use only the first `max_functions` affinity functions (<=0 = all);
  /// drives the Figure 9 sweep.
  int max_functions = 0;
  /// Hierarchical-model hyper-parameters and ablation switches.
  HierarchicalConfig inference;
};

/// \brief Orchestrates affinity construction and class inference.
class GogglesPipeline {
 public:
  /// \param extractor pretrained backbone wrapper (shared; the library of
  ///        affinity functions is "populated once and reused for any new
  ///        dataset" — the same extractor serves every labeling task).
  GogglesPipeline(std::shared_ptr<features::FeatureExtractor> extractor,
                  GogglesConfig config = {});

  /// \brief Builds the affinity matrix for `images` using the prototype
  /// affinity library (plus any extra functions added via AddFunction).
  Result<Matrix> BuildAffinity(const std::vector<data::Image>& images) const;

  /// \brief Full labeling run (Figure 3): affinity matrix + hierarchical
  /// inference + development-set mapping.
  ///
  /// \param images      all N instances (unlabeled and development rows).
  /// \param dev_indices positions of development examples within `images`.
  /// \param dev_labels  their classes.
  /// \param num_classes K.
  /// \param fitted_out  optional: receives the fitted hierarchical model
  ///        (persisted by serve/ sessions for online labeling).
  Result<LabelingResult> Label(const std::vector<data::Image>& images,
                               const std::vector<int>& dev_indices,
                               const std::vector<int>& dev_labels,
                               int num_classes,
                               FittedHierarchicalModel* fitted_out = nullptr)
      const;

  /// \brief Registers an additional user-supplied affinity function,
  /// appended after the prototype library (see examples/custom_affinity).
  void AddFunction(std::unique_ptr<AffinityFunction> function);

  /// \brief Number of affinity functions the pipeline will use.
  int num_functions() const;

  /// \brief The prototype affinity library (its shared source holds the
  /// prepared pool caches once Label/BuildAffinity has run).
  const AffinityLibrary& library() const { return library_; }

  /// \brief The configuration the pipeline was built with.
  const GogglesConfig& config() const { return config_; }

 private:
  std::vector<AffinityFunction*> ActiveFunctions() const;

  std::shared_ptr<features::FeatureExtractor> extractor_;
  GogglesConfig config_;
  AffinityLibrary library_;
  std::vector<std::unique_ptr<AffinityFunction>> extra_functions_;
};

}  // namespace goggles
