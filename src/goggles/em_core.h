#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "tensor/gemm.h"

/// \file em_core.h
/// \brief Shared linear-algebra building blocks of the EM fit cores
/// (DiagonalGmm, BernoulliMixture).
///
/// Both mixtures cast their E-step as one N x K matrix product against a
/// per-component parameter panel plus a per-component additive offset,
/// and their M-step as one D x K product of the (augmented) design matrix
/// against the responsibilities. The products run on one of two engines:
/// the packed, blocked, parallel DGemm, or the retained serial scalar
/// reference (DGemmReference) — bit-identical by the accumulation
/// contract in tensor/gemm.h, which the tests enforce. Everything that is
/// NOT a matrix product (the log-softmax epilogue, responsibility
/// exponentiation, column sums) is implemented exactly once here and
/// shared by both engines, so whole EM trajectories are bit-identical
/// across engines and thread counts.

namespace goggles {
namespace em {

/// \brief Which kernel computes the E/M-step matrix products.
enum class Engine {
  kGemm,       ///< packed blocked DGemm (parallel; the production default)
  kReference,  ///< retained serial scalar reference (validation/debugging)
};

/// \brief The constant per-fit design matrix with its once-per-fit packed
/// forms. Every EM iteration multiplies the same N x D matrix; for the
/// skinny per-iteration products (the other operand has K = #components
/// columns) the transposing repack of this operand would dominate the
/// whole call, so both product orientations are packed up front and
/// shared read-only across restarts. On the GEMM engine the packs carry
/// all the data and `raw` is released (the operand then costs 2x the
/// design matrix — one copy per orientation); the reference engine keeps
/// `raw` and builds no packs.
struct FitOperand {
  Matrix raw;               ///< design matrix; empty on the GEMM engine
  DGemmPackedA fwd;         ///< packed op(A) = design (E-step product)
  DGemmPackedA transposed;  ///< packed op(A) = design^T (M-step product)
  int64_t rows = 0;         ///< design-matrix rows (valid on both engines)
  int64_t cols = 0;         ///< design-matrix columns
};

/// \brief Builds the engine's form of the design matrix: packed panels
/// (GEMM engine, `m` released afterwards) or the matrix itself
/// (reference engine, moved into the operand).
FitOperand PackFitOperand(Matrix m, Engine engine);

/// \brief out = design * b^T for b (k x d); out is reshaped to n x k
/// only when its shape differs (reusable across EM iterations).
void ProductNT(const FitOperand& x, const Matrix& b, Engine engine,
               Matrix* out);

/// \brief out = a * b^T for a (n x d), b (k x d) — the unpacked variant
/// used by one-shot posterior evaluation (PredictProba); out is reshaped
/// to n x k only when its shape differs.
void ProductNT(const Matrix& a, const Matrix& b, Engine engine, Matrix* out);

/// \brief out = design^T * b for b (n x k); out is reshaped to d x k
/// only when its shape differs. The output is the *transpose* of the textbook
/// M-step moment matrix — callers index it (dimension, component) — so
/// the product's long dimension rides the fully-utilized row-tile side of
/// the kernel.
void ProductTB(const FitOperand& x, const Matrix& b, Engine engine,
               Matrix* out);

/// \brief Fused E-step epilogue, in place and allocation-free: adds
/// offsets[c] to every row's entry c, replaces each row by its
/// log-softmax (row - LogSumExp(row)), and returns the summed row
/// LogSumExp values — the data log-likelihood when the input holds
/// per-component log joint densities.
double LogSoftmaxRowsInPlace(const std::vector<double>& offsets,
                             Matrix* densities);

/// \brief resp = exp(log_resp) elementwise; resp is reshaped only when
/// its shape differs.
void ExpInto(const Matrix& log_resp, Matrix* resp);

/// \brief Fixed-order per-column sums (ascending rows into one
/// accumulator per column): out[c] = sum_i m(i, c).
void ColumnSums(const Matrix& m, std::vector<double>* out);

}  // namespace em
}  // namespace goggles
