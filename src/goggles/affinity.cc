#include "goggles/affinity.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace goggles {

Status PrototypeAffinitySource::Prepare(const std::vector<data::Image>& images) {
  const int n = static_cast<int>(images.size());
  if (n == num_images_) return Status::OK();  // already prepared

  GOGGLES_ASSIGN_OR_RETURN(std::vector<std::vector<Tensor>> maps,
                           extractor_->PoolFeatureMaps(images));

  layers_.assign(static_cast<size_t>(num_layers()), LayerData());
  for (int layer = 0; layer < num_layers(); ++layer) {
    LayerData& data = layers_[static_cast<size_t>(layer)];
    const auto& layer_maps = maps[static_cast<size_t>(layer)];
    const Tensor& first = layer_maps[0];
    data.channels = static_cast<int>(first.dim(0));
    data.area = static_cast<int>(first.dim(1) * first.dim(2));
    data.positions.resize(static_cast<size_t>(n));
    data.prototypes.resize(static_cast<size_t>(n));
    data.num_prototypes.resize(static_cast<size_t>(n));

    ParallelFor(0, n, [&](int64_t i) {
      const Tensor& fmap = layer_maps[static_cast<size_t>(i)];
      const int c = data.channels;
      const int area = data.area;

      // Position vectors, transposed to position-major and L2-normalized.
      auto& pos = data.positions[static_cast<size_t>(i)];
      pos.resize(static_cast<size_t>(area) * c);
      for (int p = 0; p < area; ++p) {
        float* row = pos.data() + static_cast<size_t>(p) * c;
        for (int ch = 0; ch < c; ++ch) {
          row[ch] = fmap[static_cast<int64_t>(ch) * area + p];
        }
        NormalizeF(row, c);
      }

      // Top-Z prototypes, L2-normalized.
      std::vector<features::Prototype> protos =
          features::ExtractTopZPrototypes(fmap, top_z_);
      auto& pvec = data.prototypes[static_cast<size_t>(i)];
      data.num_prototypes[static_cast<size_t>(i)] =
          static_cast<int>(protos.size());
      pvec.resize(protos.size() * static_cast<size_t>(c));
      for (size_t z = 0; z < protos.size(); ++z) {
        float* row = pvec.data() + z * static_cast<size_t>(c);
        std::copy(protos[z].vector.begin(), protos[z].vector.end(), row);
        NormalizeF(row, c);
      }
    });
  }
  num_images_ = n;
  return Status::OK();
}

float PrototypeAffinitySource::Score(int layer, int z, int i, int j) const {
  const LayerData& data = layers_[static_cast<size_t>(layer)];
  const int c = data.channels;
  const int num_protos = data.num_prototypes[static_cast<size_t>(j)];
  if (num_protos == 0) return 0.0f;
  // Wrap when image j has fewer than Z unique prototypes (see header).
  const int zz = z % num_protos;
  const float* proto =
      data.prototypes[static_cast<size_t>(j)].data() +
      static_cast<size_t>(zz) * c;
  const auto& pos = data.positions[static_cast<size_t>(i)];
  float best = -1.0f;
  for (int p = 0; p < data.area; ++p) {
    const float dot = DotF(pos.data() + static_cast<size_t>(p) * c, proto, c);
    if (dot > best) best = dot;
  }
  return best;
}

PrototypeAffinityFunction::PrototypeAffinityFunction(
    std::shared_ptr<PrototypeAffinitySource> source, int layer, int z)
    : source_(std::move(source)), layer_(layer), z_(z) {}

std::string PrototypeAffinityFunction::name() const {
  return StrFormat("proto[L%d,z%d]", layer_ + 1, z_);
}

Status PrototypeAffinityFunction::Prepare(
    const std::vector<data::Image>& images) {
  return source_->Prepare(images);
}

float PrototypeAffinityFunction::Score(int i, int j) const {
  return source_->Score(layer_, z_, i, j);
}

VectorCosineAffinity::VectorCosineAffinity(std::string name, Matrix embeddings)
    : name_(std::move(name)), embeddings_(std::move(embeddings)) {}

Status VectorCosineAffinity::Prepare(const std::vector<data::Image>& images) {
  if (static_cast<int64_t>(images.size()) != embeddings_.rows()) {
    return Status::InvalidArgument(
        "VectorCosineAffinity: embedding rows must match image count");
  }
  return Status::OK();
}

float VectorCosineAffinity::Score(int i, int j) const {
  const int64_t d = embeddings_.cols();
  const double* a = embeddings_.RowPtr(i);
  const double* b = embeddings_.RowPtr(j);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int64_t k = 0; k < d; ++k) {
    dot += a[k] * b[k];
    na += a[k] * a[k];
    nb += b[k] * b[k];
  }
  if (na < 1e-24 || nb < 1e-24) return 0.0f;
  return static_cast<float>(dot / std::sqrt(na * nb));
}

AffinityLibrary BuildPrototypeAffinityLibrary(
    std::shared_ptr<features::FeatureExtractor> extractor, int top_z) {
  AffinityLibrary library;
  library.source =
      std::make_shared<PrototypeAffinitySource>(extractor, top_z);
  const int num_layers = extractor->num_pool_layers();
  // Round-robin across layers so prefixes span all scales (Figure 9).
  for (int z = 0; z < top_z; ++z) {
    for (int layer = 0; layer < num_layers; ++layer) {
      library.functions.push_back(
          std::make_unique<PrototypeAffinityFunction>(library.source, layer, z));
    }
  }
  return library;
}

Result<Matrix> BuildAffinityMatrix(
    const std::vector<AffinityFunction*>& functions, int num_images) {
  if (functions.empty()) {
    return Status::InvalidArgument("BuildAffinityMatrix: no functions");
  }
  const int64_t n = num_images;
  const int64_t alpha = static_cast<int64_t>(functions.size());
  Matrix a(n, alpha * n);
  ParallelFor(0, n, [&](int64_t i) {
    double* row = a.RowPtr(i);
    for (int64_t f = 0; f < alpha; ++f) {
      const AffinityFunction* fn = functions[static_cast<size_t>(f)];
      for (int64_t j = 0; j < n; ++j) {
        row[f * n + j] = static_cast<double>(
            fn->Score(static_cast<int>(i), static_cast<int>(j)));
      }
    }
  });
  return a;
}

}  // namespace goggles
