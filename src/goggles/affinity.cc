#include "goggles/affinity.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "linalg/kernels.h"
#include "tensor/gemm.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace goggles {
namespace {

/// Position vectors of one filter map, transposed to position-major and
/// L2-normalized — the shared representation of Prepare() (pool side) and
/// ExtractQueryFeatures() (query side).
std::vector<float> NormalizedPositions(const Tensor& fmap, int channels,
                                       int area) {
  std::vector<float> pos(static_cast<size_t>(area) * channels);
  for (int p = 0; p < area; ++p) {
    float* row = pos.data() + static_cast<size_t>(p) * channels;
    for (int ch = 0; ch < channels; ++ch) {
      row[ch] = fmap[static_cast<int64_t>(ch) * area + p];
    }
    NormalizeF(row, channels);
  }
  return pos;
}

/// Eq. 2 core: max cosine between `proto` and each of `area` normalized
/// position rows.
float MaxCosineOverPositions(const std::vector<float>& positions,
                             const float* proto, int channels) {
  const int area = static_cast<int>(positions.size()) /
                   std::max(channels, 1);
  float best = -1.0f;
  for (int p = 0; p < area; ++p) {
    const float dot =
        DotF(positions.data() + static_cast<size_t>(p) * channels, proto,
             channels);
    if (dot > best) best = dot;
  }
  return best;
}

}  // namespace

Status PrototypeAffinitySource::Prepare(const std::vector<data::Image>& images) {
  const int n = static_cast<int>(images.size());
  const uint64_t fingerprint = data::FingerprintImages(images);
  if (n == num_images_ && fingerprint == fingerprint_) {
    return Status::OK();  // already prepared for this exact dataset
  }

  GOGGLES_ASSIGN_OR_RETURN(std::vector<std::vector<Tensor>> maps,
                           extractor_->PoolFeatureMaps(images));

  layers_.assign(static_cast<size_t>(num_layers()), LayerData());
  for (int layer = 0; layer < num_layers(); ++layer) {
    LayerData& data = layers_[static_cast<size_t>(layer)];
    const auto& layer_maps = maps[static_cast<size_t>(layer)];
    const Tensor& first = layer_maps[0];
    data.channels = static_cast<int>(first.dim(0));
    data.area = static_cast<int>(first.dim(1) * first.dim(2));
    data.positions.resize(static_cast<size_t>(n));
    data.prototypes.resize(static_cast<size_t>(n));
    data.num_prototypes.resize(static_cast<size_t>(n));

    ParallelFor(0, n, [&](int64_t i) {
      const Tensor& fmap = layer_maps[static_cast<size_t>(i)];
      const int c = data.channels;
      const int area = data.area;

      data.positions[static_cast<size_t>(i)] =
          NormalizedPositions(fmap, c, area);

      // Top-Z prototypes, L2-normalized.
      std::vector<features::Prototype> protos =
          features::ExtractTopZPrototypes(fmap, top_z_);
      auto& pvec = data.prototypes[static_cast<size_t>(i)];
      data.num_prototypes[static_cast<size_t>(i)] =
          static_cast<int>(protos.size());
      pvec.resize(protos.size() * static_cast<size_t>(c));
      for (size_t z = 0; z < protos.size(); ++z) {
        float* row = pvec.data() + z * static_cast<size_t>(c);
        std::copy(protos[z].vector.begin(), protos[z].vector.end(), row);
        NormalizeF(row, c);
      }
    });
  }
  num_images_ = n;
  fingerprint_ = fingerprint;
  BuildPackedPrototypes();
  return Status::OK();
}

Status PrototypeAffinitySource::Restore(std::vector<LayerData> layers,
                                        int num_images, uint64_t fingerprint) {
  if (num_images <= 0) {
    return Status::InvalidArgument(
        "PrototypeAffinitySource::Restore: need a positive pool size");
  }
  if (static_cast<int>(layers.size()) != num_layers()) {
    return Status::InvalidArgument(StrFormat(
        "PrototypeAffinitySource::Restore: %zu layers in artifact vs %d "
        "pool layers in the extractor",
        layers.size(), num_layers()));
  }
  for (const LayerData& data : layers) {
    if (static_cast<int>(data.prototypes.size()) != num_images ||
        static_cast<int>(data.num_prototypes.size()) != num_images) {
      return Status::InvalidArgument(
          "PrototypeAffinitySource::Restore: per-image cache size does not "
          "match the pool size");
    }
  }
  layers_ = std::move(layers);
  num_images_ = num_images;
  fingerprint_ = fingerprint;
  BuildPackedPrototypes();
  return Status::OK();
}

uint64_t PrototypeAffinitySource::ApproxMemoryBytes() const {
  uint64_t bytes = sizeof(*this);
  for (const LayerData& layer : layers_) {
    for (const std::vector<float>& v : layer.positions) {
      bytes += v.capacity() * sizeof(float);
    }
    for (const std::vector<float>& v : layer.prototypes) {
      bytes += v.capacity() * sizeof(float);
    }
    bytes += layer.num_prototypes.capacity() * sizeof(int);
  }
  for (const PackedPrototypes& pack : packed_) {
    bytes += pack.data.capacity() * sizeof(float);
    bytes += pack.offsets.capacity() * sizeof(int64_t);
  }
  return bytes;
}

void PrototypeAffinitySource::BuildPackedPrototypes() {
  const int64_t n = num_images_;
  packed_.assign(layers_.size(), PackedPrototypes());
  for (size_t layer = 0; layer < layers_.size(); ++layer) {
    const LayerData& data = layers_[layer];
    PackedPrototypes& pack = packed_[layer];
    pack.offsets.assign(static_cast<size_t>(n) + 1, 0);
    for (int64_t j = 0; j < n; ++j) {
      pack.offsets[static_cast<size_t>(j) + 1] =
          pack.offsets[static_cast<size_t>(j)] +
          data.num_prototypes[static_cast<size_t>(j)];
    }
    const int64_t total = pack.offsets.back();
    pack.data.resize(static_cast<size_t>(total * data.channels));
    for (int64_t j = 0; j < n; ++j) {
      // Per-image prototype rows are already L2-normalized and contiguous.
      std::copy(data.prototypes[static_cast<size_t>(j)].begin(),
                data.prototypes[static_cast<size_t>(j)].end(),
                pack.data.begin() + pack.offsets[static_cast<size_t>(j)] *
                                        data.channels);
    }
  }
}

Status PrototypeAffinitySource::ScoreLayerInto(
    int layer, int num_functions, int64_t m,
    const std::function<const std::vector<float>&(int64_t)>& positions_of,
    Matrix* out) const {
  const LayerData& data = layers_[static_cast<size_t>(layer)];
  const PackedPrototypes& pack = packed_[static_cast<size_t>(layer)];
  const int64_t n = num_images_;
  const int64_t c = data.channels;
  const int64_t num_protos = pack.offsets.back();
  const int num_layers_total = num_layers();

  // The instances of one call share one resolution (extraction stacks
  // them into one batch), but it need not match the pool's: a query
  // image of a different size yields a different filter-map area, and
  // Eq. 2 only maxes over however many positions the instance has.
  const int64_t area = static_cast<int64_t>(positions_of(0).size()) /
                       std::max<int64_t>(c, 1);

  if (num_protos == 0) {
    // No pool image has a prototype at this layer: every score is 0.
    for (int64_t i = 0; i < m; ++i) {
      double* row = out->RowPtr(i);
      for (int f = layer; f < num_functions; f += num_layers_total) {
        std::fill(row + static_cast<int64_t>(f) * n,
                  row + static_cast<int64_t>(f) * n + n, 0.0);
      }
    }
    return Status::OK();
  }

  // Bound the per-worker buffers — both the stacked positions
  // (block * area * c floats) and the score matrix (block * area *
  // num_protos floats) — to keep the working set cache- and
  // memory-friendly.
  constexpr int64_t kScoreBufferFloats = int64_t{1} << 21;  // 8 MiB
  const int64_t floats_per_image =
      std::max<int64_t>(1, area * std::max(c, num_protos));
  const int64_t block_images =
      std::max<int64_t>(1, kScoreBufferFloats / floats_per_image);

  Status status = Status::OK();
  std::mutex status_mutex;
  ParallelForChunked(0, m, [&](int64_t lo, int64_t hi) {
    std::vector<float> stacked, scores, best;
    for (int64_t b0 = lo; b0 < hi; b0 += block_images) {
      const int64_t mb = std::min(block_images, hi - b0);
      stacked.resize(static_cast<size_t>(mb * area * c));
      for (int64_t i = 0; i < mb; ++i) {
        const std::vector<float>& pos = positions_of(b0 + i);
        if (static_cast<int64_t>(pos.size()) != area * c) {
          std::lock_guard<std::mutex> guard(status_mutex);
          status = Status::InvalidArgument(StrFormat(
              "ScoreLayerInto: layer %d instance %lld position size %zu != "
              "area*channels %lld — all instances of one call must share "
              "one resolution",
              layer, static_cast<long long>(b0 + i), pos.size(),
              static_cast<long long>(area * c)));
          return;
        }
        std::copy(pos.begin(), pos.end(),
                  stacked.begin() + static_cast<size_t>(i * area * c));
      }
      // scores[(i*area + p), q] = <position p of instance i, prototype q>:
      // one GEMM over the packed prototype panel. Serial inside — the
      // instance loop above is already the parallel axis.
      scores.resize(static_cast<size_t>(mb * area * num_protos));
      SGemmWithThreads(false, true, mb * area, num_protos, c, 1.0f,
                       stacked.data(), c, pack.data.data(), c, 0.0f,
                       scores.data(), num_protos, /*num_threads=*/1);
      // Eq. 2 max over positions, in ascending-position order (the exact
      // reduction order of the scalar Score()/ScoreQuery() path).
      best.assign(static_cast<size_t>(mb * num_protos), -1.0f);
      for (int64_t i = 0; i < mb; ++i) {
        float* bi = best.data() + i * num_protos;
        const float* srows = scores.data() + i * area * num_protos;
        for (int64_t p = 0; p < area; ++p) {
          const float* srow = srows + p * num_protos;
          for (int64_t q = 0; q < num_protos; ++q) {
            if (srow[q] > bi[q]) bi[q] = srow[q];
          }
        }
      }
      // Scatter into A[i, f*N + j] with the z-wrap for images that have
      // fewer than Z unique prototypes.
      for (int64_t i = 0; i < mb; ++i) {
        const float* bi = best.data() + i * num_protos;
        double* row = out->RowPtr(b0 + i);
        for (int f = layer; f < num_functions; f += num_layers_total) {
          const int z = f / num_layers_total;
          double* dst = row + static_cast<int64_t>(f) * n;
          for (int64_t j = 0; j < n; ++j) {
            const int np = data.num_prototypes[static_cast<size_t>(j)];
            dst[j] = np == 0
                         ? 0.0
                         : static_cast<double>(
                               bi[pack.offsets[static_cast<size_t>(j)] +
                                  z % np]);
          }
        }
      }
    }
  });
  return status;
}

Status PrototypeAffinitySource::ScorePoolRowsInto(int num_functions,
                                                 Matrix* a) const {
  if (num_images_ <= 0) {
    return Status::Internal(
        "PrototypeAffinitySource::ScorePoolRowsInto: source not prepared");
  }
  if (a->rows() < num_images_ ||
      a->cols() < static_cast<int64_t>(num_functions) * num_images_) {
    return Status::InvalidArgument(
        "ScorePoolRowsInto: output matrix too small");
  }
  for (int layer = 0; layer < num_layers() && layer < num_functions;
       ++layer) {
    const auto& positions = layers_[static_cast<size_t>(layer)].positions;
    GOGGLES_RETURN_NOT_OK(ScoreLayerInto(
        layer, num_functions, num_images_,
        [&positions](int64_t i) -> const std::vector<float>& {
          return positions[static_cast<size_t>(i)];
        },
        a));
  }
  return Status::OK();
}

Result<Matrix> PrototypeAffinitySource::ScoreQueryRowsBatched(
    const std::vector<QueryFeatures>& queries, int num_functions) const {
  if (num_images_ <= 0) {
    return Status::Internal(
        "PrototypeAffinitySource::ScoreQueryRowsBatched: source not prepared");
  }
  if (queries.empty() || num_functions <= 0) {
    return Status::InvalidArgument(
        "ScoreQueryRowsBatched: need queries and functions");
  }
  const int64_t m = static_cast<int64_t>(queries.size());
  Matrix rows(m, static_cast<int64_t>(num_functions) * num_images_);
  for (int layer = 0; layer < num_layers() && layer < num_functions;
       ++layer) {
    GOGGLES_RETURN_NOT_OK(ScoreLayerInto(
        layer, num_functions, m,
        [&queries, layer](int64_t i) -> const std::vector<float>& {
          return queries[static_cast<size_t>(i)]
              .positions[static_cast<size_t>(layer)];
        },
        &rows));
  }
  return rows;
}

float PrototypeAffinitySource::Score(int layer, int z, int i, int j) const {
  const LayerData& data = layers_[static_cast<size_t>(layer)];
  const int c = data.channels;
  const int num_protos = data.num_prototypes[static_cast<size_t>(j)];
  if (num_protos == 0) return 0.0f;
  // Wrap when image j has fewer than Z unique prototypes (see header).
  const int zz = z % num_protos;
  const float* proto =
      data.prototypes[static_cast<size_t>(j)].data() +
      static_cast<size_t>(zz) * c;
  return MaxCosineOverPositions(data.positions[static_cast<size_t>(i)], proto,
                                c);
}

Result<std::vector<PrototypeAffinitySource::QueryFeatures>>
PrototypeAffinitySource::ExtractQueryFeatures(
    const std::vector<data::Image>& images) const {
  if (num_images_ <= 0) {
    return Status::Internal(
        "PrototypeAffinitySource::ExtractQueryFeatures: source not prepared");
  }
  if (images.empty()) {
    return Status::InvalidArgument(
        "PrototypeAffinitySource::ExtractQueryFeatures: no images");
  }
  GOGGLES_ASSIGN_OR_RETURN(std::vector<std::vector<Tensor>> maps,
                           extractor_->PoolFeatureMaps(images));
  const int n = static_cast<int>(images.size());
  std::vector<QueryFeatures> out(static_cast<size_t>(n));
  for (int layer = 0; layer < num_layers(); ++layer) {
    const auto& layer_maps = maps[static_cast<size_t>(layer)];
    const int channels = static_cast<int>(layer_maps[0].dim(0));
    if (channels != layers_[static_cast<size_t>(layer)].channels) {
      return Status::InvalidArgument(StrFormat(
          "ExtractQueryFeatures: layer %d channel mismatch (query %d vs "
          "pool %d)",
          layer, channels, layers_[static_cast<size_t>(layer)].channels));
    }
  }
  ParallelFor(0, n, [&](int64_t i) {
    QueryFeatures& q = out[static_cast<size_t>(i)];
    q.positions.resize(static_cast<size_t>(num_layers()));
    for (int layer = 0; layer < num_layers(); ++layer) {
      const Tensor& fmap =
          maps[static_cast<size_t>(layer)][static_cast<size_t>(i)];
      const int c = static_cast<int>(fmap.dim(0));
      const int area = static_cast<int>(fmap.dim(1) * fmap.dim(2));
      q.positions[static_cast<size_t>(layer)] =
          NormalizedPositions(fmap, c, area);
    }
  });
  return out;
}

float PrototypeAffinitySource::ScoreQuery(int layer, int z,
                                          const QueryFeatures& query,
                                          int j) const {
  const LayerData& data = layers_[static_cast<size_t>(layer)];
  const int c = data.channels;
  const int num_protos = data.num_prototypes[static_cast<size_t>(j)];
  if (num_protos == 0) return 0.0f;
  const int zz = z % num_protos;
  const float* proto =
      data.prototypes[static_cast<size_t>(j)].data() +
      static_cast<size_t>(zz) * c;
  return MaxCosineOverPositions(query.positions[static_cast<size_t>(layer)],
                                proto, c);
}

PrototypeAffinityFunction::PrototypeAffinityFunction(
    std::shared_ptr<PrototypeAffinitySource> source, int layer, int z)
    : source_(std::move(source)), layer_(layer), z_(z) {}

std::string PrototypeAffinityFunction::name() const {
  return StrFormat("proto[L%d,z%d]", layer_ + 1, z_);
}

Status PrototypeAffinityFunction::Prepare(
    const std::vector<data::Image>& images) {
  return source_->Prepare(images);
}

float PrototypeAffinityFunction::Score(int i, int j) const {
  return source_->Score(layer_, z_, i, j);
}

VectorCosineAffinity::VectorCosineAffinity(std::string name, Matrix embeddings)
    : name_(std::move(name)), embeddings_(std::move(embeddings)) {}

Status VectorCosineAffinity::Prepare(const std::vector<data::Image>& images) {
  if (static_cast<int64_t>(images.size()) != embeddings_.rows()) {
    return Status::InvalidArgument(
        "VectorCosineAffinity: embedding rows must match image count");
  }
  return Status::OK();
}

float VectorCosineAffinity::Score(int i, int j) const {
  const int64_t d = embeddings_.cols();
  const double* a = embeddings_.RowPtr(i);
  const double* b = embeddings_.RowPtr(j);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int64_t k = 0; k < d; ++k) {
    dot += a[k] * b[k];
    na += a[k] * a[k];
    nb += b[k] * b[k];
  }
  if (na < 1e-24 || nb < 1e-24) return 0.0f;
  return static_cast<float>(dot / std::sqrt(na * nb));
}

AffinityLibrary BuildPrototypeAffinityLibrary(
    std::shared_ptr<features::FeatureExtractor> extractor, int top_z) {
  AffinityLibrary library;
  library.source =
      std::make_shared<PrototypeAffinitySource>(extractor, top_z);
  const int num_layers = extractor->num_pool_layers();
  // Round-robin across layers so prefixes span all scales (Figure 9).
  for (int z = 0; z < top_z; ++z) {
    for (int layer = 0; layer < num_layers; ++layer) {
      library.functions.push_back(
          std::make_unique<PrototypeAffinityFunction>(library.source, layer, z));
    }
  }
  return library;
}

void FillAffinityMatrixColumns(
    const std::vector<AffinityFunction*>& functions, size_t first_function,
    int num_images, Matrix* a) {
  if (first_function >= functions.size()) return;
  const int64_t n = num_images;
  ParallelFor(0, n, [&](int64_t i) {
    double* row = a->RowPtr(i);
    for (size_t f = first_function; f < functions.size(); ++f) {
      const AffinityFunction* fn = functions[f];
      double* dst = row + static_cast<int64_t>(f) * n;
      for (int64_t j = 0; j < n; ++j) {
        dst[j] = static_cast<double>(
            fn->Score(static_cast<int>(i), static_cast<int>(j)));
      }
    }
  });
}

Result<Matrix> BuildAffinityMatrix(
    const std::vector<AffinityFunction*>& functions, int num_images) {
  if (functions.empty()) {
    return Status::InvalidArgument("BuildAffinityMatrix: no functions");
  }
  const int64_t n = num_images;
  const int64_t alpha = static_cast<int64_t>(functions.size());
  Matrix a(n, alpha * n);
  FillAffinityMatrixColumns(functions, 0, num_images, &a);
  return a;
}

}  // namespace goggles
