#include "goggles/em_core.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/gemm.h"

namespace goggles {
namespace em {
namespace {

void EnsureShape(int64_t rows, int64_t cols, Matrix* m) {
  if (m->rows() != rows || m->cols() != cols) *m = Matrix(rows, cols);
}

}  // namespace

FitOperand PackFitOperand(Matrix m, Engine engine) {
  FitOperand op;
  op.rows = m.rows();
  op.cols = m.cols();
  if (engine == Engine::kGemm) {
    // The packs carry all the data; `m` is dropped on return so the
    // operand costs one copy per orientation, not two plus the raw.
    op.fwd = DGemmPackOperandA(/*transpose_a=*/false, m.rows(), m.cols(),
                               m.data(), m.cols());
    op.transposed = DGemmPackOperandA(/*transpose_a=*/true, m.cols(),
                                      m.rows(), m.data(), m.cols());
  } else {
    op.raw = std::move(m);
  }
  return op;
}

void ProductNT(const FitOperand& x, const Matrix& b, Engine engine,
               Matrix* out) {
  const int64_t n = x.rows, d = x.cols, k = b.rows();
  EnsureShape(n, k, out);
  if (engine == Engine::kGemm) {
    DGemmWithPackedA(x.fwd, /*transpose_b=*/true, k, b.data(), d, 0.0,
                     out->data(), k);
  } else {
    DGemmReference(/*transpose_a=*/false, /*transpose_b=*/true, n, k, d, 1.0,
                   x.raw.data(), d, b.data(), d, 0.0, out->data(), k);
  }
}

void ProductNT(const Matrix& a, const Matrix& b, Engine engine, Matrix* out) {
  const int64_t n = a.rows(), d = a.cols(), k = b.rows();
  EnsureShape(n, k, out);
  if (engine == Engine::kGemm) {
    DGemm(/*transpose_a=*/false, /*transpose_b=*/true, n, k, d, 1.0, a.data(),
          d, b.data(), d, 0.0, out->data(), k);
  } else {
    DGemmReference(/*transpose_a=*/false, /*transpose_b=*/true, n, k, d, 1.0,
                   a.data(), d, b.data(), d, 0.0, out->data(), k);
  }
}

void ProductTB(const FitOperand& x, const Matrix& b, Engine engine,
               Matrix* out) {
  const int64_t n = x.rows, d = x.cols, k = b.cols();
  EnsureShape(d, k, out);
  if (engine == Engine::kGemm) {
    DGemmWithPackedA(x.transposed, /*transpose_b=*/false, k, b.data(), k, 0.0,
                     out->data(), k);
  } else {
    DGemmReference(/*transpose_a=*/true, /*transpose_b=*/false, d, k, n, 1.0,
                   x.raw.data(), d, b.data(), k, 0.0, out->data(), k);
  }
}

double LogSoftmaxRowsInPlace(const std::vector<double>& offsets,
                             Matrix* densities) {
  const int64_t n = densities->rows(), k = densities->cols();
  double total_ll = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    double* row = densities->RowPtr(i);
    // Pass 1: fold in the per-component offsets and track the row max.
    double max_v = -std::numeric_limits<double>::infinity();
    for (int64_t c = 0; c < k; ++c) {
      row[c] += offsets[static_cast<size_t>(c)];
      max_v = std::max(max_v, row[c]);
    }
    double lse = max_v;
    if (std::isfinite(max_v)) {
      double acc = 0.0;
      for (int64_t c = 0; c < k; ++c) acc += std::exp(row[c] - max_v);
      lse = max_v + std::log(acc);
    }
    total_ll += lse;
    for (int64_t c = 0; c < k; ++c) row[c] -= lse;
  }
  return total_ll;
}

void ExpInto(const Matrix& log_resp, Matrix* resp) {
  EnsureShape(log_resp.rows(), log_resp.cols(), resp);
  const double* src = log_resp.data();
  double* dst = resp->data();
  const int64_t size = log_resp.size();
  for (int64_t i = 0; i < size; ++i) dst[i] = std::exp(src[i]);
}

void ColumnSums(const Matrix& m, std::vector<double>* out) {
  const int64_t n = m.rows(), k = m.cols();
  out->assign(static_cast<size_t>(k), 0.0);
  double* acc = out->data();
  for (int64_t i = 0; i < n; ++i) {
    const double* row = m.RowPtr(i);
    for (int64_t c = 0; c < k; ++c) acc[c] += row[c];
  }
}

}  // namespace em
}  // namespace goggles
