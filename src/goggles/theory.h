#pragma once

/// \file theory.h
/// \brief Development-set size theory (paper §4.4, Theorem 1, Figure 7).
///
/// Given labeling accuracy eta and d development examples per class, the
/// probability that the majority-vote mapping assigns class k' to its
/// correct cluster is lower-bounded by a multinomial tail (Eq. 18), and the
/// probability of a completely correct mapping by the product over classes
/// (Eq. 19/21). The paper's "rho = eta/(K-1)" is a typo — probabilities
/// must sum to one, so this implementation uses rho = (1-eta)/(K-1).
/// The bound is computed by the dynamic program of Eq. 22-23.

namespace goggles {

/// \brief P_l(k'): lower bound on the probability one class maps to its
/// correct cluster (Eq. 18, strict-majority, ties excluded).
///
/// \param num_classes   K >= 2
/// \param dev_per_class d >= 0 development examples for the class
/// \param accuracy      eta, the labeler's per-example accuracy
double ClassMappingProbabilityLowerBound(int num_classes, int dev_per_class,
                                         double accuracy);

/// \brief Product-over-classes lower bound on a fully correct mapping
/// (Theorem 1).
double CorrectMappingProbabilityLowerBound(int num_classes, int dev_per_class,
                                           double accuracy);

/// \brief Smallest d (per class) such that the Theorem-1 bound reaches
/// `target_probability`; returns -1 if not reached by `max_d`.
int RequiredDevPerClass(int num_classes, double accuracy,
                        double target_probability, int max_d = 200);

/// \brief Brute-force enumeration of Eq. 18 (exponential in K; tests only).
double ClassMappingProbabilityBruteForce(int num_classes, int dev_per_class,
                                         double accuracy);

}  // namespace goggles
