#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

/// \file mapping.h
/// \brief Cluster-to-class mapping from the development set (paper §4.3).
///
/// The hierarchical model clusters instances; the development set decides
/// which cluster is which class. The "goodness" of a mapping g is
/// L_g = sum_k sum_{l in LS_{g(k)}} gamma_{l,k} (Eq. 12), maximized over
/// one-to-one mappings — an assignment problem solved in O(K^3) (Eq. 14/16).

namespace goggles {

/// \brief Finds the one-to-one cluster->class mapping maximizing Eq. 12.
///
/// \param gamma       N x K posterior responsibilities (cluster columns).
/// \param dev_indices row indices of development examples.
/// \param dev_labels  their true class labels (same length).
/// \param num_classes K.
/// \returns mapping[k] = class assigned to cluster k. With an empty
/// development set the identity mapping is returned (clusters unnamed).
Result<std::vector<int>> ClusterToClassMapping(
    const Matrix& gamma, const std::vector<int>& dev_indices,
    const std::vector<int>& dev_labels, int num_classes);

/// \brief Reorders the columns of `gamma` so column g(k) receives cluster
/// k's posteriors, aligning clusters with true classes.
Matrix ApplyMapping(const Matrix& gamma, const std::vector<int>& mapping);

/// \brief Specialized K=2 mapping from Eq. 15 (used to cross-check the
/// assignment-solver path in tests).
std::vector<int> BinaryMappingEq15(const Matrix& gamma,
                                   const std::vector<int>& dev_indices,
                                   const std::vector<int>& dev_labels);

}  // namespace goggles
