#include "goggles/base_gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "goggles/em_core.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace goggles {

double LogSumExp(const double* v, int64_t n) {
  double max_v = -std::numeric_limits<double>::infinity();
  for (int64_t i = 0; i < n; ++i) max_v = std::max(max_v, v[i]);
  if (!std::isfinite(max_v)) return max_v;
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) acc += std::exp(v[i] - max_v);
  return max_v + std::log(acc);
}

namespace {

constexpr double kLog2Pi = 1.8378770664093453;

struct GmmState {
  Matrix means;      // K x D
  Matrix variances;  // K x D
  std::vector<double> weights;
};

/// N x 2D augmented design matrix [x² | x]: carrying the squares next to
/// the values lets one product produce both Gaussian dot-product terms of
/// the E-step AND both raw moments of the M-step. Computed once per Fit
/// and shared read-only across restarts.
Matrix AugmentWithSquares(const Matrix& x) {
  const int64_t n = x.rows(), d = x.cols();
  Matrix xaug(n, 2 * d);
  for (int64_t i = 0; i < n; ++i) {
    const double* row = x.RowPtr(i);
    double* out = xaug.RowPtr(i);
    for (int64_t j = 0; j < d; ++j) {
      out[j] = row[j] * row[j];
      out[d + j] = row[j];
    }
  }
  return xaug;
}

/// Per-iteration E-step operands (Eq. 6 with diagonal covariance,
/// expanded): with the log density written as
///   log N(x | μ, diag σ²) = −½(D log 2π + Σⱼ log σ²ⱼ + Σⱼ x²ⱼ/σ²ⱼ
///                             − 2 Σⱼ xⱼ·μⱼ/σ²ⱼ + Σⱼ μ²ⱼ/σ²ⱼ),
/// panel row c = [−½/σ²ⱼ | μⱼ/σ²ⱼ] makes the data-dependent part the dot
/// product xaug_i · panel_c, and offsets[c] folds the rest together with
/// the mixture log-weight:
///   log w_c + log N(x_i | μ_c, σ²_c) = xaug_i · panel_c + offsets[c].
/// Everything here is K x D work per iteration — the old row loop
/// re-evaluated log σ²ⱼ once per (row, component, dimension).
void BuildGaussianPanel(const Matrix& means, const Matrix& variances,
                        const std::vector<double>& weights, Matrix* panel,
                        std::vector<double>* offsets) {
  const int64_t k = means.rows(), d = means.cols();
  if (panel->rows() != k || panel->cols() != 2 * d) *panel = Matrix(k, 2 * d);
  offsets->resize(static_cast<size_t>(k));
  for (int64_t c = 0; c < k; ++c) {
    const double* mean = means.RowPtr(c);
    const double* var = variances.RowPtr(c);
    double* p = panel->RowPtr(c);
    double logdet_plus_mahal = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const double inv = 1.0 / var[j];
      const double mu_iv = mean[j] * inv;
      p[j] = -0.5 * inv;
      p[d + j] = mu_iv;
      logdet_plus_mahal += std::log(var[j]) + mean[j] * mu_iv;
    }
    (*offsets)[static_cast<size_t>(c)] =
        std::log(std::max(weights[static_cast<size_t>(c)], 1e-300)) -
        0.5 * (static_cast<double>(d) * kLog2Pi + logdet_plus_mahal);
  }
}

/// E-step: one N x K product + the shared in-place log-softmax epilogue.
/// Fills `log_resp` and returns the data log-likelihood. `panel`/`offsets`
/// are per-restart scratch reused across iterations.
double EStep(const em::FitOperand& xaug, const GmmState& state,
             em::Engine engine, Matrix* panel, std::vector<double>* offsets,
             Matrix* log_resp) {
  BuildGaussianPanel(state.means, state.variances, state.weights, panel,
                     offsets);
  em::ProductNT(xaug, *panel, engine, log_resp);
  return em::LogSoftmaxRowsInPlace(*offsets, log_resp);
}

/// M-step (Eq. 10): moments = [x² | x]ᵀ·R yields Σᵢ rᵢ x²ⱼ and Σᵢ rᵢ xⱼ in
/// one product, so μ = S₁/Nₖ and σ² = S₂/Nₖ − μ² (the E[x²]−μ² form; the
/// variance floor doubles as the guard against its cancellation residue).
/// `moments` is (2D x K): rows [0, D) hold the squared moments, rows
/// [D, 2D) the plain ones.
void MStep(const em::FitOperand& xaug, const Matrix& log_resp,
           double var_floor, em::Engine engine, Matrix* resp, Matrix* moments,
           std::vector<double>* nk, GmmState* state) {
  const int64_t n = xaug.rows, d = xaug.cols / 2;
  const int64_t k = state->means.rows();
  em::ExpInto(log_resp, resp);
  em::ColumnSums(*resp, nk);
  em::ProductTB(xaug, *resp, engine, moments);
  for (int64_t c = 0; c < k; ++c) {
    const double mass = std::max((*nk)[static_cast<size_t>(c)], 1e-12);
    for (int64_t j = 0; j < d; ++j) {
      const double mean = (*moments)(d + j, c) / mass;
      state->means(c, j) = mean;
      state->variances(c, j) =
          std::max((*moments)(j, c) / mass - mean * mean, var_floor);
    }
    state->weights[static_cast<size_t>(c)] = mass / static_cast<double>(n);
  }
}

/// Random-point initialization: distinct data rows as means, global column
/// variance as the shared initial variance.
GmmState InitState(const Matrix& x, int k, Rng* rng, double var_floor) {
  const int64_t n = x.rows(), d = x.cols();
  GmmState state;
  state.means = Matrix(k, d);
  state.variances = Matrix(k, d);
  state.weights.assign(static_cast<size_t>(k), 1.0 / k);

  std::vector<int> picks = rng->SampleWithoutReplacement(
      static_cast<int>(n), k);
  for (int c = 0; c < k; ++c) {
    const double* row = x.RowPtr(picks[static_cast<size_t>(c)]);
    for (int64_t j = 0; j < d; ++j) state.means(c, j) = row[j];
  }

  std::vector<double> col_mean = ColumnMeans(x);
  for (int64_t j = 0; j < d; ++j) {
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double diff = x(i, j) - col_mean[static_cast<size_t>(j)];
      acc += diff * diff;
    }
    const double var = std::max(acc / static_cast<double>(n), var_floor);
    for (int c = 0; c < k; ++c) state.variances(c, j) = var;
  }
  return state;
}

}  // namespace

Status DiagonalGmm::SetParameters(Matrix means, Matrix variances,
                                  std::vector<double> weights) {
  if (means.rows() < 1 || means.cols() < 1) {
    return Status::InvalidArgument("DiagonalGmm::SetParameters: empty means");
  }
  if (variances.rows() != means.rows() || variances.cols() != means.cols()) {
    return Status::InvalidArgument(
        "DiagonalGmm::SetParameters: means/variances shape mismatch");
  }
  if (static_cast<int64_t>(weights.size()) != means.rows()) {
    return Status::InvalidArgument(
        "DiagonalGmm::SetParameters: weights length must equal K");
  }
  for (int64_t c = 0; c < variances.rows(); ++c) {
    for (int64_t j = 0; j < variances.cols(); ++j) {
      if (!(variances(c, j) > 0.0) || !std::isfinite(variances(c, j)) ||
          !std::isfinite(means(c, j))) {
        return Status::InvalidArgument(
            "DiagonalGmm::SetParameters: means must be finite and variances "
            "finite and positive");
      }
    }
  }
  double weight_sum = 0.0;
  for (double w : weights) {
    if (!std::isfinite(w) || w < 0.0) {
      return Status::InvalidArgument(
          "DiagonalGmm::SetParameters: weights must be finite and "
          "non-negative");
    }
    weight_sum += w;
  }
  if (!(weight_sum > 0.0)) {
    return Status::InvalidArgument(
        "DiagonalGmm::SetParameters: weights must not all be zero");
  }
  means_ = std::move(means);
  variances_ = std::move(variances);
  weights_ = std::move(weights);
  return Status::OK();
}

Status DiagonalGmm::Fit(const Matrix& x) {
  if (x.rows() < config_.num_components) {
    return Status::InvalidArgument(
        "DiagonalGmm::Fit: fewer samples than components");
  }
  if (config_.num_components < 1) {
    return Status::InvalidArgument("DiagonalGmm::Fit: need >= 1 component");
  }

  const em::Engine engine =
      config_.use_gemm ? em::Engine::kGemm : em::Engine::kReference;
  // Both product orientations of the design matrix are packed once and
  // shared read-only across restarts and iterations (the unpacked
  // augmentation is released as soon as the packs exist).
  const em::FitOperand xop =
      em::PackFitOperand(AugmentWithSquares(x), engine);
  const Rng rng(config_.seed);
  const int num_restarts = std::max(1, config_.num_restarts);

  // Restarts are embarrassingly parallel (forked RNG streams) and each
  // slot is independent, so results do not depend on execution order.
  // Per-restart scratch is allocated once and reused across iterations;
  // under an outer ParallelFor (the hierarchical base-model loop) or a
  // ScopedSerialKernels marker this collapses to a serial loop and the
  // inner DGemm keeps its bit-identical-at-any-thread-count contract.
  struct RestartFit {
    GmmState state;
    std::vector<double> history;
  };
  std::vector<RestartFit> restarts(static_cast<size_t>(num_restarts));
  ParallelFor(0, num_restarts, [&](int64_t restart) {
    Rng restart_rng = rng.Fork(static_cast<uint64_t>(restart));
    RestartFit& out = restarts[static_cast<size_t>(restart)];
    out.state =
        InitState(x, config_.num_components, &restart_rng, config_.var_floor);

    Matrix log_resp, resp, panel, moments;
    std::vector<double> offsets, nk;
    double prev_ll = -std::numeric_limits<double>::infinity();
    for (int iter = 0; iter < config_.max_iters; ++iter) {
      const double ll =
          EStep(xop, out.state, engine, &panel, &offsets, &log_resp);
      out.history.push_back(ll);
      MStep(xop, log_resp, config_.var_floor, engine, &resp, &moments, &nk,
            &out.state);
      if (iter > 0 && ll - prev_ll < config_.tol) break;
      prev_ll = ll;
    }
  });

  // Best-restart selection stays serial and in restart order (first
  // strict improvement wins), matching the historical serial loop.
  double best_ll = -std::numeric_limits<double>::infinity();
  int64_t best = -1;
  for (int64_t r = 0; r < num_restarts; ++r) {
    const std::vector<double>& history =
        restarts[static_cast<size_t>(r)].history;
    const double final_ll = history.empty() ? 0.0 : history.back();
    if (final_ll > best_ll) {
      best_ll = final_ll;
      best = r;
    }
  }
  if (best >= 0) {
    RestartFit& winner = restarts[static_cast<size_t>(best)];
    means_ = std::move(winner.state.means);
    variances_ = std::move(winner.state.variances);
    weights_ = std::move(winner.state.weights);
    ll_history_ = std::move(winner.history);
  }
  final_ll_ = best_ll;
  return Status::OK();
}

Result<Matrix> DiagonalGmm::PredictProba(const Matrix& x) const {
  if (means_.rows() == 0) {
    return Status::Internal("DiagonalGmm::PredictProba: model not fitted");
  }
  if (x.cols() != means_.cols()) {
    return Status::InvalidArgument(
        "DiagonalGmm::PredictProba: dimension mismatch");
  }
  const em::Engine engine =
      config_.use_gemm ? em::Engine::kGemm : em::Engine::kReference;
  const Matrix xaug = AugmentWithSquares(x);
  Matrix panel;
  std::vector<double> offsets;
  BuildGaussianPanel(means_, variances_, weights_, &panel, &offsets);
  // One matrix end to end: the product output is log-softmaxed and then
  // exponentiated in place (no throwaway E-step buffer + copy).
  Matrix proba;
  em::ProductNT(xaug, panel, engine, &proba);
  em::LogSoftmaxRowsInPlace(offsets, &proba);
  double* data = proba.data();
  for (int64_t i = 0; i < proba.size(); ++i) data[i] = std::exp(data[i]);
  return proba;
}

}  // namespace goggles
