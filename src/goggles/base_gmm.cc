#include "goggles/base_gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.h"

namespace goggles {

double LogSumExp(const double* v, int64_t n) {
  double max_v = -std::numeric_limits<double>::infinity();
  for (int64_t i = 0; i < n; ++i) max_v = std::max(max_v, v[i]);
  if (!std::isfinite(max_v)) return max_v;
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) acc += std::exp(v[i] - max_v);
  return max_v + std::log(acc);
}

namespace {

constexpr double kLog2Pi = 1.8378770664093453;

struct GmmState {
  Matrix means;      // K x D
  Matrix variances;  // K x D
  std::vector<double> weights;
};

/// Log density of row `x` under component k (diagonal Gaussian, Eq. 6 with
/// diagonal covariance).
double LogGaussianDiag(const double* x, const double* mean, const double* var,
                       int64_t d) {
  double acc = 0.0;
  for (int64_t j = 0; j < d; ++j) {
    const double diff = x[j] - mean[j];
    acc += std::log(var[j]) + diff * diff / var[j];
  }
  return -0.5 * (static_cast<double>(d) * kLog2Pi + acc);
}

/// E-step: fills `log_resp` (N x K) and returns the data log-likelihood.
double EStep(const Matrix& x, const GmmState& state, Matrix* log_resp) {
  const int64_t n = x.rows(), d = x.cols();
  const int64_t k = state.means.rows();
  double total_ll = 0.0;
  std::vector<double> scratch(static_cast<size_t>(k));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < k; ++c) {
      scratch[static_cast<size_t>(c)] =
          std::log(std::max(state.weights[static_cast<size_t>(c)], 1e-300)) +
          LogGaussianDiag(x.RowPtr(i), state.means.RowPtr(c),
                          state.variances.RowPtr(c), d);
    }
    const double lse = LogSumExp(scratch.data(), k);
    total_ll += lse;
    for (int64_t c = 0; c < k; ++c) {
      (*log_resp)(i, c) = scratch[static_cast<size_t>(c)] - lse;
    }
  }
  return total_ll;
}

/// M-step (Eq. 10), with a variance floor for numerical stability.
void MStep(const Matrix& x, const Matrix& log_resp, double var_floor,
           GmmState* state) {
  const int64_t n = x.rows(), d = x.cols();
  const int64_t k = state->means.rows();
  for (int64_t c = 0; c < k; ++c) {
    double nk = 0.0;
    std::vector<double> mean(static_cast<size_t>(d), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      const double r = std::exp(log_resp(i, c));
      nk += r;
      const double* row = x.RowPtr(i);
      for (int64_t j = 0; j < d; ++j) mean[static_cast<size_t>(j)] += r * row[j];
    }
    nk = std::max(nk, 1e-12);
    for (int64_t j = 0; j < d; ++j) {
      state->means(c, j) = mean[static_cast<size_t>(j)] / nk;
    }
    std::vector<double> var(static_cast<size_t>(d), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      const double r = std::exp(log_resp(i, c));
      const double* row = x.RowPtr(i);
      for (int64_t j = 0; j < d; ++j) {
        const double diff = row[j] - state->means(c, j);
        var[static_cast<size_t>(j)] += r * diff * diff;
      }
    }
    for (int64_t j = 0; j < d; ++j) {
      state->variances(c, j) =
          std::max(var[static_cast<size_t>(j)] / nk, var_floor);
    }
    state->weights[static_cast<size_t>(c)] = nk / static_cast<double>(n);
  }
}

/// Random-point initialization: distinct data rows as means, global column
/// variance as the shared initial variance.
GmmState InitState(const Matrix& x, int k, Rng* rng, double var_floor) {
  const int64_t n = x.rows(), d = x.cols();
  GmmState state;
  state.means = Matrix(k, d);
  state.variances = Matrix(k, d);
  state.weights.assign(static_cast<size_t>(k), 1.0 / k);

  std::vector<int> picks = rng->SampleWithoutReplacement(
      static_cast<int>(n), k);
  for (int c = 0; c < k; ++c) {
    const double* row = x.RowPtr(picks[static_cast<size_t>(c)]);
    for (int64_t j = 0; j < d; ++j) state.means(c, j) = row[j];
  }

  std::vector<double> col_mean = ColumnMeans(x);
  for (int64_t j = 0; j < d; ++j) {
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double diff = x(i, j) - col_mean[static_cast<size_t>(j)];
      acc += diff * diff;
    }
    const double var = std::max(acc / static_cast<double>(n), var_floor);
    for (int c = 0; c < k; ++c) state.variances(c, j) = var;
  }
  return state;
}

}  // namespace

Status DiagonalGmm::SetParameters(Matrix means, Matrix variances,
                                  std::vector<double> weights) {
  if (means.rows() < 1 || means.cols() < 1) {
    return Status::InvalidArgument("DiagonalGmm::SetParameters: empty means");
  }
  if (variances.rows() != means.rows() || variances.cols() != means.cols()) {
    return Status::InvalidArgument(
        "DiagonalGmm::SetParameters: means/variances shape mismatch");
  }
  if (static_cast<int64_t>(weights.size()) != means.rows()) {
    return Status::InvalidArgument(
        "DiagonalGmm::SetParameters: weights length must equal K");
  }
  for (int64_t c = 0; c < variances.rows(); ++c) {
    for (int64_t j = 0; j < variances.cols(); ++j) {
      if (!(variances(c, j) > 0.0) || !std::isfinite(variances(c, j)) ||
          !std::isfinite(means(c, j))) {
        return Status::InvalidArgument(
            "DiagonalGmm::SetParameters: means must be finite and variances "
            "finite and positive");
      }
    }
  }
  double weight_sum = 0.0;
  for (double w : weights) {
    if (!std::isfinite(w) || w < 0.0) {
      return Status::InvalidArgument(
          "DiagonalGmm::SetParameters: weights must be finite and "
          "non-negative");
    }
    weight_sum += w;
  }
  if (!(weight_sum > 0.0)) {
    return Status::InvalidArgument(
        "DiagonalGmm::SetParameters: weights must not all be zero");
  }
  means_ = std::move(means);
  variances_ = std::move(variances);
  weights_ = std::move(weights);
  return Status::OK();
}

Status DiagonalGmm::Fit(const Matrix& x) {
  if (x.rows() < config_.num_components) {
    return Status::InvalidArgument(
        "DiagonalGmm::Fit: fewer samples than components");
  }
  if (config_.num_components < 1) {
    return Status::InvalidArgument("DiagonalGmm::Fit: need >= 1 component");
  }

  Rng rng(config_.seed);
  double best_ll = -std::numeric_limits<double>::infinity();

  for (int restart = 0; restart < std::max(1, config_.num_restarts);
       ++restart) {
    Rng restart_rng = rng.Fork(static_cast<uint64_t>(restart));
    GmmState state =
        InitState(x, config_.num_components, &restart_rng, config_.var_floor);
    Matrix log_resp(x.rows(), config_.num_components);

    std::vector<double> history;
    double prev_ll = -std::numeric_limits<double>::infinity();
    for (int iter = 0; iter < config_.max_iters; ++iter) {
      const double ll = EStep(x, state, &log_resp);
      history.push_back(ll);
      MStep(x, log_resp, config_.var_floor, &state);
      if (iter > 0 && ll - prev_ll < config_.tol) break;
      prev_ll = ll;
    }
    const double final_ll = history.empty() ? 0.0 : history.back();
    if (final_ll > best_ll) {
      best_ll = final_ll;
      means_ = state.means;
      variances_ = state.variances;
      weights_ = state.weights;
      ll_history_ = std::move(history);
    }
  }
  final_ll_ = best_ll;
  return Status::OK();
}

Result<Matrix> DiagonalGmm::PredictProba(const Matrix& x) const {
  if (means_.rows() == 0) {
    return Status::Internal("DiagonalGmm::PredictProba: model not fitted");
  }
  if (x.cols() != means_.cols()) {
    return Status::InvalidArgument(
        "DiagonalGmm::PredictProba: dimension mismatch");
  }
  GmmState state{means_, variances_, weights_};
  Matrix log_resp(x.rows(), means_.rows());
  EStep(x, state, &log_resp);
  Matrix proba(x.rows(), means_.rows());
  for (int64_t i = 0; i < x.rows(); ++i) {
    for (int64_t c = 0; c < means_.rows(); ++c) {
      proba(i, c) = std::exp(log_resp(i, c));
    }
  }
  return proba;
}

}  // namespace goggles
