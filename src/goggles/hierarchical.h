#pragma once

#include <vector>

#include "goggles/base_gmm.h"
#include "goggles/ensemble.h"
#include "linalg/matrix.h"
#include "util/status.h"

/// \file hierarchical.h
/// \brief The hierarchical generative model for class inference (paper §4):
/// one diagonal-covariance GMM per affinity function (base layer), one-hot
/// concatenation of their label prediction matrices, a multivariate
/// Bernoulli mixture (ensemble layer), and development-set cluster-to-class
/// mapping of both layers.

namespace goggles {

/// \brief Inference hyper-parameters, plus ablation switches (§4.1 design
/// choices, exercised by bench_ablation_inference).
struct HierarchicalConfig {
  GmmConfig base;                   ///< per-function base GMM knobs
  BernoulliMixtureConfig ensemble;  ///< ensemble Bernoulli-mixture knobs
  /// One-hot encode LP before the ensemble (paper's design). Off = feed raw
  /// posteriors to the Bernoulli mixture (ablation).
  bool one_hot_lp = true;
  /// Use the Bernoulli ensemble (paper's design). Off = average the mapped
  /// base-model LPs (ablation).
  bool use_ensemble = true;
};

/// \brief Output of class inference.
struct LabelingResult {
  /// N x K probabilistic labels, columns aligned to true classes via the
  /// development-set mapping.
  Matrix soft_labels;
  /// Argmax of soft_labels per row.
  std::vector<int> hard_labels;
  /// Ensemble-level cluster -> class mapping that was applied.
  std::vector<int> cluster_to_class;
  /// Per-affinity-function label prediction matrices, each already mapped
  /// to true-class columns (diagnostics / Figure 2-style analyses).
  std::vector<Matrix> base_label_predictions;
  /// Final ensemble training log-likelihood.
  double ensemble_log_likelihood = 0.0;
};

/// \brief The fitted state of one labeling run: every base GMM, the
/// Bernoulli ensemble, and the development-set cluster-to-class mappings
/// of both layers. Captured by HierarchicalLabeler::Fit so the expensive
/// EM fits can be persisted (serve/ artifacts) and reused to label new
/// instances online via Infer() — evaluation only, no refit.
struct FittedHierarchicalModel {
  int num_classes = 0;  ///< number of classes K
  /// Pool size N the model was fitted on; new affinity rows must have
  /// num_functions() * pool_size columns.
  int64_t pool_size = 0;
  /// One-hot-LP design flag the model was fitted under (see
  /// HierarchicalConfig).
  bool one_hot_lp = true;
  bool use_ensemble = true;  ///< ensemble design flag (see HierarchicalConfig)
  /// One fitted diagonal GMM per affinity function, paired with its
  /// development-set cluster-to-class mapping.
  std::vector<DiagonalGmm> base_models;
  /// Per-function cluster-to-class mappings (parallel to base_models).
  std::vector<std::vector<int>> base_mappings;
  /// Fitted ensemble (unused when !use_ensemble).
  BernoulliMixture ensemble;
  /// Ensemble-level cluster-to-class mapping.
  std::vector<int> ensemble_mapping;

  /// \brief Affinity-function count alpha the model was fitted over.
  int64_t num_functions() const {
    return static_cast<int64_t>(base_models.size());
  }
  /// \brief True once base models are present (fit or restore).
  bool fitted() const { return !base_models.empty(); }

  /// \brief Approximate resident size of the fitted parameters in bytes
  /// (GMM means/variances/weights, mappings, ensemble). Used by the
  /// serving registry's LRU memory budget; intentionally an estimate —
  /// container bookkeeping overhead is not counted.
  uint64_t ApproxMemoryBytes() const;

  /// \brief Evaluates the fitted stack on new instances without refitting.
  ///
  /// \param affinity_rows M x (alpha * pool_size): one row per new
  ///        instance in the §2.2 layout, scored against the *fitted pool*.
  /// For rows taken from the fitted affinity matrix this reproduces the
  /// Fit-time labels bit-for-bit (posterior evaluation is deterministic).
  Result<LabelingResult> Infer(const Matrix& affinity_rows) const;
};

/// \brief Runs the full §4 inference stack on an affinity matrix.
class HierarchicalLabeler {
 public:
  /// \brief Builds a labeler with the given hyper-parameters.
  explicit HierarchicalLabeler(HierarchicalConfig config)
      : config_(config) {}

  /// \brief Fits base + ensemble models and maps clusters to classes.
  ///
  /// \param affinity     N x (alpha*N) matrix in the §2.2 layout.
  /// \param dev_indices  rows with known labels (the development set).
  /// \param dev_labels   their classes.
  /// \param num_classes  K.
  /// \param fitted_out   optional: receives the fitted model state for
  ///        persistence / online inference.
  Result<LabelingResult> Fit(const Matrix& affinity,
                             const std::vector<int>& dev_indices,
                             const std::vector<int>& dev_labels,
                             int num_classes,
                             FittedHierarchicalModel* fitted_out = nullptr)
      const;

  /// \brief The configuration the labeler was built with.
  const HierarchicalConfig& config() const { return config_; }

 private:
  HierarchicalConfig config_;
};

}  // namespace goggles
