#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

/// \file base_gmm.h
/// \brief Diagonal-covariance Gaussian mixture, the base model of the
/// hierarchical generative model (paper §4.1).
///
/// One GMM is fit per affinity function on that function's N-column slice
/// A_f of the affinity matrix. The paper's key design choice — a *diagonal*
/// covariance matrix — cuts the parameter count from K*(N choose 2) to K*N
/// and is preserved here. EM updates follow Eq. 8-10.

namespace goggles {

/// \brief GMM hyper-parameters.
struct GmmConfig {
  int num_components = 2;   ///< mixture components K
  int max_iters = 100;      ///< EM iteration cap per restart
  double tol = 1e-6;        ///< stop when LL improves less than this
  int num_restarts = 3;     ///< keep the best of this many EM runs
  double var_floor = 1e-6;  ///< lower bound on per-dimension variance
  uint64_t seed = 17;       ///< RNG seed for the restarts' initializations
  /// Run the E/M-step matrix products on the packed DGemm kernels (the
  /// production default). OFF selects the retained serial scalar
  /// reference engine — bit-identical by the accumulation contract in
  /// tensor/gemm.h, enforced by tests/gmm_gemm_test.cc.
  bool use_gemm = true;
};

/// \brief Diagonal-covariance Gaussian mixture fit with EM.
class DiagonalGmm {
 public:
  /// Default-constructs an unfitted model (for SetParameters restore).
  DiagonalGmm() = default;

  /// \brief Constructs an unfitted model with the given hyper-parameters.
  explicit DiagonalGmm(GmmConfig config) : config_(config) {}

  /// \brief Fits the mixture to `x` (rows = samples).
  Status Fit(const Matrix& x);

  /// \brief Installs externally-stored parameters (serving artifacts),
  /// making PredictProba available without a Fit() call. `means` and
  /// `variances` are K x D; `weights` has K entries.
  Status SetParameters(Matrix means, Matrix variances,
                       std::vector<double> weights);

  /// \brief Posterior responsibilities P(y = k | s) for each row (Eq. 8).
  Result<Matrix> PredictProba(const Matrix& x) const;

  /// \brief Final training log-likelihood of the best restart.
  double final_log_likelihood() const { return final_ll_; }

  /// \brief Per-iteration LL of the best restart (monotone by EM theory;
  /// asserted in the property tests).
  const std::vector<double>& log_likelihood_history() const {
    return ll_history_;
  }

  /// \brief Fitted component means (K x D).
  const Matrix& means() const { return means_; }
  /// \brief Fitted per-dimension variances (K x D).
  const Matrix& variances() const { return variances_; }
  /// \brief Fitted mixture weights (length K).
  const std::vector<double>& weights() const { return weights_; }

 private:
  GmmConfig config_;
  Matrix means_;       // K x D
  Matrix variances_;   // K x D
  std::vector<double> weights_;  // K
  double final_ll_ = 0.0;
  std::vector<double> ll_history_;
};

/// \brief Numerically-stable log(sum(exp(v))).
double LogSumExp(const double* v, int64_t n);

}  // namespace goggles
