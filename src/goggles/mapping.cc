#include "goggles/mapping.h"

#include "linalg/hungarian.h"

namespace goggles {

Result<std::vector<int>> ClusterToClassMapping(
    const Matrix& gamma, const std::vector<int>& dev_indices,
    const std::vector<int>& dev_labels, int num_classes) {
  if (dev_indices.size() != dev_labels.size()) {
    return Status::InvalidArgument(
        "ClusterToClassMapping: dev indices/labels size mismatch");
  }
  if (gamma.cols() != num_classes) {
    return Status::InvalidArgument(
        "ClusterToClassMapping: gamma must have K columns");
  }
  std::vector<int> identity(static_cast<size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) identity[static_cast<size_t>(k)] = k;
  if (dev_indices.empty()) return identity;

  // w(k, k') = sum of cluster-k responsibility over dev examples of class k'
  // (Eq. 16's reward matrix).
  Matrix w(num_classes, num_classes, 0.0);
  for (size_t i = 0; i < dev_indices.size(); ++i) {
    const int row = dev_indices[i];
    const int label = dev_labels[i];
    if (row < 0 || row >= gamma.rows()) {
      return Status::OutOfRange("ClusterToClassMapping: dev index out of range");
    }
    if (label < 0 || label >= num_classes) {
      return Status::OutOfRange("ClusterToClassMapping: dev label out of range");
    }
    for (int k = 0; k < num_classes; ++k) {
      w(k, label) += gamma(row, k);
    }
  }
  return SolveAssignmentMax(w);
}

Matrix ApplyMapping(const Matrix& gamma, const std::vector<int>& mapping) {
  Matrix out(gamma.rows(), gamma.cols(), 0.0);
  for (int64_t k = 0; k < gamma.cols(); ++k) {
    const int target = mapping[static_cast<size_t>(k)];
    for (int64_t i = 0; i < gamma.rows(); ++i) {
      out(i, target) = gamma(i, k);
    }
  }
  return out;
}

std::vector<int> BinaryMappingEq15(const Matrix& gamma,
                                   const std::vector<int>& dev_indices,
                                   const std::vector<int>& dev_labels) {
  // Eq. 15: keep identity iff cluster 1's responsibility mass on class-1
  // dev examples is at least its mass on class-0 dev examples.
  double mass_ls1 = 0.0, mass_ls0 = 0.0;
  for (size_t i = 0; i < dev_indices.size(); ++i) {
    const double g1 = gamma(dev_indices[i], 1);
    if (dev_labels[i] == 1) {
      mass_ls1 += g1;
    } else {
      mass_ls0 += g1;
    }
  }
  if (mass_ls1 >= mass_ls0) return {0, 1};
  return {1, 0};
}

}  // namespace goggles
