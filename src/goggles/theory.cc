#include "goggles/theory.h"

#include <cmath>
#include <functional>
#include <vector>

namespace goggles {
namespace {

/// W(j, r): sum over compositions (d_1..d_j) of r with each d_i <= cap of
/// prod_i 1/d_i! — the DP inner kernel of Eq. 23. Computed iteratively.
/// Values are bounded by e^j, so doubles suffice.
std::vector<double> ConvolveCappedInverseFactorials(int cells, int total,
                                                    int cap) {
  // dp[r] after processing c cells = W(c, r).
  std::vector<double> dp(static_cast<size_t>(total) + 1, 0.0);
  dp[0] = 1.0;
  std::vector<double> inv_fact(static_cast<size_t>(cap) + 1);
  inv_fact[0] = 1.0;
  for (int x = 1; x <= cap; ++x) {
    inv_fact[static_cast<size_t>(x)] =
        inv_fact[static_cast<size_t>(x - 1)] / static_cast<double>(x);
  }
  for (int c = 0; c < cells; ++c) {
    std::vector<double> next(static_cast<size_t>(total) + 1, 0.0);
    for (int r = 0; r <= total; ++r) {
      if (dp[static_cast<size_t>(r)] == 0.0) continue;
      for (int x = 0; x <= cap && r + x <= total; ++x) {
        next[static_cast<size_t>(r + x)] +=
            dp[static_cast<size_t>(r)] * inv_fact[static_cast<size_t>(x)];
      }
    }
    dp = std::move(next);
  }
  return dp;
}

}  // namespace

double ClassMappingProbabilityLowerBound(int num_classes, int dev_per_class,
                                         double accuracy) {
  const int k = num_classes;
  const int d = dev_per_class;
  if (k < 2 || d <= 0) return 0.0;
  const double eta = accuracy;
  const double rho = (1.0 - eta) / static_cast<double>(k - 1);

  // Sum over t = count in the correct cluster; the d - t remaining dev
  // examples spread over the K-1 wrong clusters, each count strictly < t.
  double total = 0.0;
  for (int t = 1; t <= d; ++t) {
    const int rest = d - t;
    if (rest > (k - 1) * (t - 1)) continue;  // cannot keep all below t
    if (eta <= 0.0 && t > 0) continue;
    if (rho <= 0.0 && rest > 0) continue;

    // Multinomial weight: d!/t! * eta^t * rho^rest * W(K-1, rest | cap=t-1).
    const std::vector<double> w =
        ConvolveCappedInverseFactorials(k - 1, rest, t - 1);
    const double log_coeff = std::lgamma(static_cast<double>(d) + 1.0) -
                             std::lgamma(static_cast<double>(t) + 1.0) +
                             static_cast<double>(t) * std::log(eta) +
                             (rest > 0 ? static_cast<double>(rest) *
                                             std::log(rho)
                                       : 0.0);
    total += std::exp(log_coeff) * w[static_cast<size_t>(rest)];
  }
  return std::min(1.0, total);
}

double CorrectMappingProbabilityLowerBound(int num_classes, int dev_per_class,
                                           double accuracy) {
  const double per_class =
      ClassMappingProbabilityLowerBound(num_classes, dev_per_class, accuracy);
  return std::pow(per_class, num_classes);
}

int RequiredDevPerClass(int num_classes, double accuracy,
                        double target_probability, int max_d) {
  for (int d = 1; d <= max_d; ++d) {
    if (CorrectMappingProbabilityLowerBound(num_classes, d, accuracy) >=
        target_probability) {
      return d;
    }
  }
  return -1;
}

double ClassMappingProbabilityBruteForce(int num_classes, int dev_per_class,
                                         double accuracy) {
  const int k = num_classes;
  const int d = dev_per_class;
  if (k < 2 || d <= 0) return 0.0;
  const double eta = accuracy;
  const double rho = (1.0 - eta) / static_cast<double>(k - 1);

  // Enumerate every ordered sequence of per-example cluster assignments;
  // each sequence's probability is a product of eta / rho factors, which
  // sums to exactly the multinomial tail of Eq. 18.
  double total = 0.0;
  std::vector<int> counts(static_cast<size_t>(k), 0);
  std::function<void(int, double)> seq = [&](int placed, double prob) {
    if (placed == d) {
      const int t = counts[0];
      for (int c = 1; c < k; ++c) {
        if (counts[static_cast<size_t>(c)] >= t) return;
      }
      total += prob;
      return;
    }
    for (int c = 0; c < k; ++c) {
      ++counts[static_cast<size_t>(c)];
      seq(placed + 1, prob * (c == 0 ? eta : rho));
      --counts[static_cast<size_t>(c)];
    }
  };
  seq(0, 1.0);
  return total;
}

}  // namespace goggles
