#include "data/raster.h"

#include <algorithm>
#include <cmath>

namespace goggles::data {
namespace {

inline void BlendPixel(Image* img, int c, int y, int x, float value,
                       float alpha) {
  float& p = img->at(c, y, x);
  p = (1.0f - alpha) * p + alpha * value;
}

inline void BlendAt(Image* img, int x, int y, const Color& color,
                    float alpha) {
  if (x < 0 || x >= img->width || y < 0 || y >= img->height) return;
  for (int c = 0; c < img->channels; ++c) {
    BlendPixel(img, c, y, x, color.channel(c), alpha);
  }
}

}  // namespace

void FillConstant(Image* img, const Color& color) {
  for (int c = 0; c < img->channels; ++c) {
    const float v = color.channel(c);
    for (int y = 0; y < img->height; ++y) {
      for (int x = 0; x < img->width; ++x) img->at(c, y, x) = v;
    }
  }
}

void FillVerticalGradient(Image* img, const Color& top, const Color& bottom) {
  for (int y = 0; y < img->height; ++y) {
    const float t = img->height > 1
                        ? static_cast<float>(y) /
                              static_cast<float>(img->height - 1)
                        : 0.0f;
    for (int c = 0; c < img->channels; ++c) {
      const float v = (1.0f - t) * top.channel(c) + t * bottom.channel(c);
      for (int x = 0; x < img->width; ++x) img->at(c, y, x) = v;
    }
  }
}

void AddGaussianNoise(Image* img, float sigma, Rng* rng) {
  for (float& v : img->pixels) {
    v += static_cast<float>(rng->Gaussian(0.0, sigma));
  }
}

void AddSaltPepper(Image* img, float frac, Rng* rng) {
  const int64_t area = static_cast<int64_t>(img->height) * img->width;
  const int64_t count = static_cast<int64_t>(frac * static_cast<double>(area));
  for (int64_t i = 0; i < count; ++i) {
    int x = static_cast<int>(rng->UniformInt(0, img->width - 1));
    int y = static_cast<int>(rng->UniformInt(0, img->height - 1));
    float v = rng->Bernoulli(0.5) ? 1.0f : 0.0f;
    for (int c = 0; c < img->channels; ++c) img->at(c, y, x) = v;
  }
}

void GaussianBlur3x3(Image* img, int passes) {
  const int h = img->height, w = img->width;
  std::vector<float> tmp(static_cast<size_t>(h) * w);
  for (int pass = 0; pass < passes; ++pass) {
    for (int c = 0; c < img->channels; ++c) {
      // Horizontal [1 2 1]/4 with clamped borders.
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
          const int xm = std::max(0, x - 1), xp = std::min(w - 1, x + 1);
          tmp[static_cast<size_t>(y) * w + x] =
              0.25f * img->at(c, y, xm) + 0.5f * img->at(c, y, x) +
              0.25f * img->at(c, y, xp);
        }
      }
      // Vertical [1 2 1]/4.
      for (int y = 0; y < h; ++y) {
        const int ym = std::max(0, y - 1), yp = std::min(h - 1, y + 1);
        for (int x = 0; x < w; ++x) {
          img->at(c, y, x) = 0.25f * tmp[static_cast<size_t>(ym) * w + x] +
                             0.5f * tmp[static_cast<size_t>(y) * w + x] +
                             0.25f * tmp[static_cast<size_t>(yp) * w + x];
        }
      }
    }
  }
}

void ScaleBrightness(Image* img, float factor) {
  for (float& v : img->pixels) v *= factor;
}

void ApplyPhotometricJitter(Image* img, Rng* rng, float brightness_lo,
                            float brightness_hi, float cast) {
  const float brightness =
      static_cast<float>(rng->Uniform(brightness_lo, brightness_hi));
  for (int c = 0; c < img->channels; ++c) {
    const float channel_factor =
        brightness *
        static_cast<float>(rng->Uniform(1.0 - cast, 1.0 + cast));
    for (int y = 0; y < img->height; ++y) {
      for (int x = 0; x < img->width; ++x) {
        img->at(c, y, x) *= channel_factor;
      }
    }
  }
}

void DrawFilledRect(Image* img, int x0, int y0, int x1, int y1,
                    const Color& color, float alpha) {
  x0 = std::max(0, x0);
  y0 = std::max(0, y0);
  x1 = std::min(img->width - 1, x1);
  y1 = std::min(img->height - 1, y1);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) BlendAt(img, x, y, color, alpha);
  }
}

void DrawRectOutline(Image* img, int x0, int y0, int x1, int y1, int thickness,
                     const Color& color) {
  for (int t = 0; t < thickness; ++t) {
    const int xi0 = x0 + t, yi0 = y0 + t, xi1 = x1 - t, yi1 = y1 - t;
    if (xi0 > xi1 || yi0 > yi1) break;
    for (int x = xi0; x <= xi1; ++x) {
      BlendAt(img, x, yi0, color, 1.0f);
      BlendAt(img, x, yi1, color, 1.0f);
    }
    for (int y = yi0; y <= yi1; ++y) {
      BlendAt(img, xi0, y, color, 1.0f);
      BlendAt(img, xi1, y, color, 1.0f);
    }
  }
}

void DrawFilledEllipse(Image* img, float cx, float cy, float rx, float ry,
                       const Color& color, float alpha) {
  if (rx <= 0.0f || ry <= 0.0f) return;
  const int x0 = std::max(0, static_cast<int>(std::floor(cx - rx)));
  const int x1 = std::min(img->width - 1, static_cast<int>(std::ceil(cx + rx)));
  const int y0 = std::max(0, static_cast<int>(std::floor(cy - ry)));
  const int y1 =
      std::min(img->height - 1, static_cast<int>(std::ceil(cy + ry)));
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const float dx = (static_cast<float>(x) - cx) / rx;
      const float dy = (static_cast<float>(y) - cy) / ry;
      if (dx * dx + dy * dy <= 1.0f) BlendAt(img, x, y, color, alpha);
    }
  }
}

void DrawFilledCircle(Image* img, float cx, float cy, float radius,
                      const Color& color, float alpha) {
  DrawFilledEllipse(img, cx, cy, radius, radius, color, alpha);
}

void DrawRing(Image* img, float cx, float cy, float radius, float thickness,
              const Color& color) {
  const float inner = std::max(0.0f, radius - thickness);
  const int x0 = std::max(0, static_cast<int>(std::floor(cx - radius)));
  const int x1 =
      std::min(img->width - 1, static_cast<int>(std::ceil(cx + radius)));
  const int y0 = std::max(0, static_cast<int>(std::floor(cy - radius)));
  const int y1 =
      std::min(img->height - 1, static_cast<int>(std::ceil(cy + radius)));
  const float r2 = radius * radius;
  const float i2 = inner * inner;
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const float dx = static_cast<float>(x) - cx;
      const float dy = static_cast<float>(y) - cy;
      const float d2 = dx * dx + dy * dy;
      if (d2 <= r2 && d2 >= i2) BlendAt(img, x, y, color, 1.0f);
    }
  }
}

void DrawFilledTriangle(Image* img, float cx, float cy, float size, bool up,
                        const Color& color) {
  const int half = static_cast<int>(size / 2.0f);
  for (int row = 0; row <= static_cast<int>(size); ++row) {
    // Width grows from apex to base.
    const float frac = size > 0 ? static_cast<float>(row) / size : 0.0f;
    const int half_width = static_cast<int>(frac * half);
    const int y = up ? static_cast<int>(cy) - half + row
                     : static_cast<int>(cy) + half - row;
    for (int x = static_cast<int>(cx) - half_width;
         x <= static_cast<int>(cx) + half_width; ++x) {
      BlendAt(img, x, y, color, 1.0f);
    }
  }
}

void DrawTriangleOutline(Image* img, float cx, float cy, float size, bool up,
                         int thickness, const Color& color) {
  const float apex_y = up ? cy - size / 2 : cy + size / 2;
  const float base_y = up ? cy + size / 2 : cy - size / 2;
  const float half = size / 2;
  DrawLine(img, cx, apex_y, cx - half, base_y, thickness, color);
  DrawLine(img, cx, apex_y, cx + half, base_y, thickness, color);
  DrawLine(img, cx - half, base_y, cx + half, base_y, thickness, color);
}

void DrawFilledDiamond(Image* img, float cx, float cy, float radius,
                       const Color& color) {
  const int r = static_cast<int>(radius);
  for (int dy = -r; dy <= r; ++dy) {
    const int span = r - std::abs(dy);
    for (int dx = -span; dx <= span; ++dx) {
      BlendAt(img, static_cast<int>(cx) + dx, static_cast<int>(cy) + dy, color,
              1.0f);
    }
  }
}

void DrawDiamondOutline(Image* img, float cx, float cy, float radius,
                        int thickness, const Color& color) {
  const int r = static_cast<int>(radius);
  for (int dy = -r; dy <= r; ++dy) {
    const int span = r - std::abs(dy);
    for (int t = 0; t < thickness && t <= span; ++t) {
      BlendAt(img, static_cast<int>(cx) - span + t, static_cast<int>(cy) + dy,
              color, 1.0f);
      BlendAt(img, static_cast<int>(cx) + span - t, static_cast<int>(cy) + dy,
              color, 1.0f);
    }
  }
}

void DrawCross(Image* img, float cx, float cy, float size, int thickness,
               const Color& color) {
  const float half = size / 2;
  DrawFilledRect(img, static_cast<int>(cx - half),
                 static_cast<int>(cy) - thickness / 2,
                 static_cast<int>(cx + half),
                 static_cast<int>(cy) + thickness / 2, color);
  DrawFilledRect(img, static_cast<int>(cx) - thickness / 2,
                 static_cast<int>(cy - half),
                 static_cast<int>(cx) + thickness / 2,
                 static_cast<int>(cy + half), color);
}

void DrawLine(Image* img, float x0, float y0, float x1, float y1,
              int thickness, const Color& color) {
  const float dx = x1 - x0;
  const float dy = y1 - y0;
  const int steps =
      std::max(1, static_cast<int>(std::ceil(std::max(std::fabs(dx),
                                                      std::fabs(dy)))));
  const int half = std::max(0, thickness / 2);
  for (int s = 0; s <= steps; ++s) {
    const float t = static_cast<float>(s) / static_cast<float>(steps);
    const int px = static_cast<int>(std::lround(x0 + t * dx));
    const int py = static_cast<int>(std::lround(y0 + t * dy));
    for (int oy = -half; oy <= half; ++oy) {
      for (int ox = -half; ox <= half; ++ox) {
        BlendAt(img, px + ox, py + oy, color, 1.0f);
      }
    }
  }
}

void DrawStripedRect(Image* img, int x0, int y0, int x1, int y1, float period,
                     bool horizontal, const Color& color) {
  if (period < 1.0f) period = 1.0f;
  x0 = std::max(0, x0);
  y0 = std::max(0, y0);
  x1 = std::min(img->width - 1, x1);
  y1 = std::min(img->height - 1, y1);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const float pos = horizontal ? static_cast<float>(y) : static_cast<float>(x);
      const float wave =
          0.5f * (1.0f + std::sin(2.0f * static_cast<float>(M_PI) * pos / period));
      BlendAt(img, x, y, color, wave);
    }
  }
}

void DrawCheckerRect(Image* img, int x0, int y0, int x1, int y1, int cell,
                     const Color& c0, const Color& c1) {
  if (cell < 1) cell = 1;
  x0 = std::max(0, x0);
  y0 = std::max(0, y0);
  x1 = std::min(img->width - 1, x1);
  y1 = std::min(img->height - 1, y1);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const bool odd = (((x - x0) / cell) + ((y - y0) / cell)) % 2 == 1;
      BlendAt(img, x, y, odd ? c1 : c0, 1.0f);
    }
  }
}

void DrawSoftBlob(Image* img, float cx, float cy, float sigma, float amplitude,
                  const Color& color) {
  if (sigma <= 0.0f) return;
  const float reach = 3.0f * sigma;
  const int x0 = std::max(0, static_cast<int>(cx - reach));
  const int x1 = std::min(img->width - 1, static_cast<int>(cx + reach));
  const int y0 = std::max(0, static_cast<int>(cy - reach));
  const int y1 = std::min(img->height - 1, static_cast<int>(cy + reach));
  const float inv2s2 = 1.0f / (2.0f * sigma * sigma);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const float dx = static_cast<float>(x) - cx;
      const float dy = static_cast<float>(y) - cy;
      const float g = amplitude * std::exp(-(dx * dx + dy * dy) * inv2s2);
      for (int c = 0; c < img->channels; ++c) {
        img->at(c, y, x) += g * color.channel(c);
      }
    }
  }
}

}  // namespace goggles::data
