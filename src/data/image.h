#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

/// \file image.h
/// \brief Dense float image (CHW, values nominally in [0, 1]).

namespace goggles::data {

/// \brief A single image in channel-major (CHW) layout.
struct Image {
  int channels = 0;
  int height = 0;
  int width = 0;
  std::vector<float> pixels;  ///< size = channels * height * width

  Image() = default;
  Image(int c, int h, int w, float fill = 0.0f)
      : channels(c), height(h), width(w),
        pixels(static_cast<size_t>(c) * h * w, fill) {}

  float& at(int c, int y, int x) {
    return pixels[(static_cast<size_t>(c) * height + y) * width + x];
  }
  float at(int c, int y, int x) const {
    return pixels[(static_cast<size_t>(c) * height + y) * width + x];
  }

  int64_t NumElements() const {
    return static_cast<int64_t>(pixels.size());
  }
};

/// \brief Stacks images (all same shape) into an [N, C, H, W] tensor.
Tensor StackImages(const std::vector<Image>& images);

/// \brief Stacks a subset of images selected by `indices`.
Tensor StackImageSubset(const std::vector<Image>& images,
                        const std::vector<int>& indices);

/// \brief Clamps all pixels to [0, 1].
void ClampImage(Image* img);

/// \brief Mean pixel value across all channels.
float ImageMean(const Image& img);

/// \brief Order-sensitive FNV-1a content fingerprint over the images'
/// shapes and pixel bytes. Lets caches key idempotence on dataset
/// *content* rather than image count (two same-sized datasets collide on
/// count but not, in practice, on this fingerprint).
uint64_t FingerprintImages(const std::vector<Image>& images);

}  // namespace goggles::data
