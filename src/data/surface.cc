#include "data/surface.h"

#include "data/raster.h"

namespace goggles::data {

LabeledDataset GenerateSynthSurface(const SynthSurfaceConfig& config) {
  LabeledDataset dataset;
  dataset.name = "surface";
  dataset.num_classes = 2;
  dataset.class_names = {"good_finish", "bad_finish"};

  Rng rng(config.seed);
  for (int label = 0; label < 2; ++label) {
    Rng class_rng = rng.Fork(static_cast<uint64_t>(label));
    for (int i = 0; i < config.images_per_class; ++i) {
      Image img(3, config.image_size, config.image_size);
      // Machined metal base: gray with a soft vertical sheen.
      const float base = static_cast<float>(class_rng.Uniform(0.45, 0.6));
      FillVerticalGradient(&img, Color::Gray(base + 0.08f),
                           Color::Gray(base - 0.05f));
      // Horizontal machining marks present on both classes.
      DrawStripedRect(&img, 0, 0, img.width - 1, img.height - 1,
                      static_cast<float>(class_rng.Uniform(6.0, 10.0)),
                      /*horizontal=*/true, Color::Gray(base + 0.12f));

      if (label == 0) {
        // Smooth finish: faint noise, occasionally a light benign mark so
        // the classes overlap (the original dataset is hard for untrained
        // eyes, ~89% for GOGGLES).
        AddGaussianNoise(&img, config.smooth_sigma, &class_rng);
        if (class_rng.Bernoulli(0.3)) {
          const float x0 = static_cast<float>(class_rng.UniformInt(4, 27));
          const float y0 = static_cast<float>(class_rng.UniformInt(4, 27));
          DrawLine(&img, x0, y0, x0 + 4, y0 + 1, 1, Color::Gray(0.75f));
        }
      } else {
        // Rough finish: grain + scratches. Amplitude varies per image so
        // the easiest "bad" overlaps the hardest "good".
        const float sigma = config.rough_sigma *
                            static_cast<float>(class_rng.Uniform(0.5, 1.2));
        AddGaussianNoise(&img, sigma, &class_rng);
        const int num_scratches = static_cast<int>(class_rng.UniformInt(1, 4));
        for (int s = 0; s < num_scratches; ++s) {
          const float x0 = static_cast<float>(class_rng.UniformInt(0, 31));
          const float y0 = static_cast<float>(class_rng.UniformInt(0, 31));
          const float dx = static_cast<float>(class_rng.UniformInt(-7, 7));
          const float dy = static_cast<float>(class_rng.UniformInt(-3, 3));
          DrawLine(&img, x0, y0, x0 + dx, y0 + dy, 1,
                   Color::Gray(class_rng.Bernoulli(0.5) ? 0.85f : 0.3f));
        }
      }
      // Shop-floor lighting variation.
      ApplyPhotometricJitter(&img, &class_rng, 0.7f, 1.3f, 0.05f);
      ClampImage(&img);
      dataset.images.push_back(std::move(img));
      dataset.labels.push_back(label);
    }
  }
  return dataset;
}

}  // namespace goggles::data
