#include "data/birds.h"

#include <string>

#include "data/raster.h"
#include "util/string_util.h"

namespace goggles::data {
namespace {

const char* kAttributeNames[kBirdNumAttributes] = {
    "has_crest",     "dark_head",    "striped_wing", "spotted_belly",
    "long_tail",     "bright_body",  "eye_ring",     "barred_tail",
    "large_beak",    "wing_patch",   "checker_back", "dark_outline"};

/// Hamming distance between two attribute rows.
int AttrDistance(const Matrix& attrs, int64_t a, int64_t b) {
  int dist = 0;
  for (int64_t c = 0; c < attrs.cols(); ++c) {
    if (attrs(a, c) != attrs(b, c)) ++dist;
  }
  return dist;
}

/// Builds a class-attribute table where every class pair differs in at
/// least 3 attributes (so sampled binary tasks are well posed), mirroring
/// how CUB species differ in several visual attributes.
Matrix BuildClassAttributeTable(int num_classes, Rng* rng) {
  Matrix attrs(num_classes, kBirdNumAttributes);
  for (int k = 0; k < num_classes; ++k) {
    for (int guard = 0; guard < 10000; ++guard) {
      for (int a = 0; a < kBirdNumAttributes; ++a) {
        attrs(k, a) = rng->Bernoulli(0.45) ? 1.0 : 0.0;
      }
      bool distinct = true;
      for (int prev = 0; prev < k; ++prev) {
        if (AttrDistance(attrs, prev, k) < 3) {
          distinct = false;
          break;
        }
      }
      if (distinct) break;
    }
  }
  return attrs;
}

// Every attribute must render as a cue large enough to survive the
// backbone's receptive fields at 32x32 (CUB species pairs are visually
// distinct at VGG feature-map scale; sub-pixel decorations would make the
// task impossible for any affinity function, not just ours).
void RenderBird(Image* img, const std::vector<int>& attrs, Rng* rng) {
  const float jx = static_cast<float>(rng->UniformInt(-2, 2));
  const float jy = static_cast<float>(rng->UniformInt(-2, 2));
  const float cx = 15.0f + jx;
  const float cy = 17.0f + jy;
  // bright_body: warm yellow vs dull slate — a strong hue cue.
  const Color body_color = attrs[5] ? Color{0.95f, 0.85f, 0.25f}
                                    : Color{0.3f, 0.4f, 0.55f};
  const Color head_color = attrs[1] ? Color{0.1f, 0.08f, 0.12f}  // dark_head
                                    : Color{0.85f, 0.75f, 0.5f};
  const Color accent = {0.12f, 0.1f, 0.15f};

  // Branch the bird perches on.
  DrawLine(img, 0, 28 + jy, 31, 26 + jy, 1, {0.35f, 0.25f, 0.15f});

  // Tail first (behind the body). long_tail: 12px vs 4px stub.
  const float tail_len = attrs[4] ? 12.0f : 4.0f;
  DrawLine(img, cx + 5, cy + 1, cx + 5 + tail_len, cy + 4, 3, body_color);
  if (attrs[7]) {  // barred_tail: strong dark bars across the tail
    for (int b = 0; b <= 3; ++b) {
      const float t = static_cast<float>(b) / 3.0f;
      DrawLine(img, cx + 6 + t * (tail_len - 1), cy - 1,
               cx + 6 + t * (tail_len - 1), cy + 6, 2, accent);
    }
  }

  // Body and head.
  DrawFilledEllipse(img, cx, cy, 7.5f, 5.5f, body_color);
  const float hx = cx - 6.0f, hy = cy - 7.0f;
  DrawFilledCircle(img, hx, hy, 4.0f, head_color);

  if (attrs[11]) {  // dark_outline: thick ring around the body
    DrawRing(img, cx, cy, 8.5f, 2.0f, accent);
  }
  if (attrs[0]) {  // has_crest: tall triangle on the head
    DrawFilledTriangle(img, hx, hy - 6.0f, 8.0f, /*up=*/true,
                       {0.85f, 0.2f, 0.2f});
  }
  if (attrs[6]) {  // eye_ring: big bright ring
    DrawRing(img, hx + 1.0f, hy - 0.5f, 2.6f, 1.2f, {0.98f, 0.98f, 0.95f});
  } else {
    DrawFilledCircle(img, hx + 1.0f, hy - 0.5f, 1.0f, accent);
  }
  // Beak. large_beak: long orange wedge vs small one.
  const float beak = attrs[8] ? 7.0f : 2.5f;
  DrawFilledTriangle(img, hx - 5.0f, hy + 1.0f, beak, /*up=*/false,
                     {0.95f, 0.6f, 0.1f});

  // Wing.
  const Color wing_color = attrs[5] ? Color{0.7f, 0.55f, 0.2f}
                                    : Color{0.2f, 0.28f, 0.4f};
  DrawFilledEllipse(img, cx + 1.0f, cy - 1.0f, 5.0f, 3.5f, wing_color);
  if (attrs[2]) {  // striped_wing: high-contrast stripes over the wing
    DrawStripedRect(img, static_cast<int>(cx - 4), static_cast<int>(cy - 4),
                    static_cast<int>(cx + 6), static_cast<int>(cy + 2), 3.0f,
                    /*horizontal=*/true, {0.95f, 0.95f, 0.95f});
  }
  if (attrs[9]) {  // wing_patch: large white patch
    DrawFilledCircle(img, cx + 2.0f, cy - 1.0f, 2.8f, {0.97f, 0.97f, 0.97f});
  }
  if (attrs[10]) {  // checker_back: checkerboard saddle
    DrawCheckerRect(img, static_cast<int>(cx - 4), static_cast<int>(cy - 5),
                    static_cast<int>(cx + 5), static_cast<int>(cy - 2), 2,
                    accent, {0.9f, 0.9f, 0.85f});
  }
  if (attrs[3]) {  // spotted_belly: bold dark spots on the lower body
    for (int s = 0; s < 4; ++s) {
      const float sx = cx - 4.5f + 3.0f * static_cast<float>(s) +
                       static_cast<float>(rng->UniformInt(-1, 1));
      const float sy = cy + 3.0f + static_cast<float>(rng->UniformInt(0, 1));
      DrawFilledCircle(img, sx, sy, 1.3f, accent);
    }
  }
}

}  // namespace

LabeledDataset GenerateSynthBirds(const SynthBirdsConfig& config) {
  LabeledDataset dataset;
  dataset.name = "birds";
  dataset.num_classes = config.num_classes;
  for (int a = 0; a < kBirdNumAttributes; ++a) {
    dataset.attribute_names.push_back(kAttributeNames[a]);
  }

  Rng rng(config.seed);
  dataset.class_attributes = BuildClassAttributeTable(config.num_classes, &rng);

  const int64_t total =
      static_cast<int64_t>(config.num_classes) * config.images_per_class;
  dataset.image_attributes = Matrix(total, kBirdNumAttributes);

  int64_t row = 0;
  for (int k = 0; k < config.num_classes; ++k) {
    dataset.class_names.push_back(StrFormat("species_%02d", k));
    Rng class_rng = rng.Fork(static_cast<uint64_t>(1000 + k));
    std::vector<int> attrs(kBirdNumAttributes);
    for (int a = 0; a < kBirdNumAttributes; ++a) {
      attrs[static_cast<size_t>(a)] =
          dataset.class_attributes(k, a) > 0.5 ? 1 : 0;
    }
    for (int i = 0; i < config.images_per_class; ++i, ++row) {
      Image img(3, config.image_size, config.image_size);
      // Sky background with slight vertical gradient.
      const float sky = static_cast<float>(class_rng.Uniform(0.55, 0.75));
      FillVerticalGradient(&img, {sky * 0.9f, sky, 1.0f},
                           {sky, sky, 0.9f});
      RenderBird(&img, attrs, &class_rng);
      ApplyPhotometricJitter(&img, &class_rng, 0.6f, 1.25f, 0.12f);
      AddGaussianNoise(&img, config.pixel_noise_sigma, &class_rng);
      ClampImage(&img);
      dataset.images.push_back(std::move(img));
      dataset.labels.push_back(k);

      // Noisy image-level annotations (CUB-style).
      for (int a = 0; a < kBirdNumAttributes; ++a) {
        double truth = dataset.class_attributes(k, a);
        if (class_rng.Bernoulli(config.annotation_noise)) truth = 1.0 - truth;
        dataset.image_attributes(row, a) = truth;
      }
    }
  }
  return dataset;
}

}  // namespace goggles::data
