#include "data/synthnet.h"

#include "data/raster.h"

namespace goggles::data {
namespace {

const char* kClassNames[kSynthNetNumClasses] = {
    "filled_circle", "ring",          "filled_square", "square_outline",
    "triangle_up",   "triangle_down", "cross",         "h_stripes",
    "v_stripes",     "checkerboard",  "twin_blobs",    "diagonal_line",
    "bullseye",      "square_grid",   "soft_blob",     "x_shape"};

Color RandomPaletteColor(Rng* rng) {
  static const Color kPalette[] = {
      {0.9f, 0.2f, 0.2f}, {0.2f, 0.8f, 0.3f}, {0.2f, 0.3f, 0.9f},
      {0.9f, 0.8f, 0.2f}, {0.8f, 0.3f, 0.8f}, {0.2f, 0.8f, 0.8f},
      {0.95f, 0.6f, 0.2f}, {0.85f, 0.85f, 0.85f}};
  return kPalette[rng->UniformInt(0, 7)];
}

void RenderClass(Image* img, int label, Rng* rng) {
  const float size = static_cast<float>(img->width);
  const float cx = size / 2 + static_cast<float>(rng->UniformInt(-4, 4));
  const float cy = size / 2 + static_cast<float>(rng->UniformInt(-4, 4));
  const float scale = static_cast<float>(rng->Uniform(0.65, 1.1));
  const Color color = RandomPaletteColor(rng);
  const Color color2 = RandomPaletteColor(rng);

  switch (label) {
    case 0:
      DrawFilledCircle(img, cx, cy, 7.0f * scale, color);
      break;
    case 1:
      DrawRing(img, cx, cy, 8.0f * scale, 2.5f, color);
      break;
    case 2:
      DrawFilledRect(img, static_cast<int>(cx - 6 * scale),
                     static_cast<int>(cy - 6 * scale),
                     static_cast<int>(cx + 6 * scale),
                     static_cast<int>(cy + 6 * scale), color);
      break;
    case 3:
      DrawRectOutline(img, static_cast<int>(cx - 7 * scale),
                      static_cast<int>(cy - 7 * scale),
                      static_cast<int>(cx + 7 * scale),
                      static_cast<int>(cy + 7 * scale), 2, color);
      break;
    case 4:
      DrawFilledTriangle(img, cx, cy, 14.0f * scale, /*up=*/true, color);
      break;
    case 5:
      DrawFilledTriangle(img, cx, cy, 14.0f * scale, /*up=*/false, color);
      break;
    case 6:
      DrawCross(img, cx, cy, 14.0f * scale, 3, color);
      break;
    case 7:
      DrawStripedRect(img, 2, 2, img->width - 3, img->height - 3,
                      5.0f * scale + 2.0f, /*horizontal=*/true, color);
      break;
    case 8:
      DrawStripedRect(img, 2, 2, img->width - 3, img->height - 3,
                      5.0f * scale + 2.0f, /*horizontal=*/false, color);
      break;
    case 9:
      DrawCheckerRect(img, 3, 3, img->width - 4, img->height - 4,
                      3 + static_cast<int>(2 * scale), color, color2);
      break;
    case 10:
      DrawSoftBlob(img, cx - 6 * scale, cy, 3.0f * scale, 0.9f, color);
      DrawSoftBlob(img, cx + 6 * scale, cy, 3.0f * scale, 0.9f, color);
      break;
    case 11:
      DrawLine(img, cx - 9 * scale, cy - 9 * scale, cx + 9 * scale,
               cy + 9 * scale, 2, color);
      break;
    case 12:
      DrawRing(img, cx, cy, 9.0f * scale, 2.0f, color);
      DrawFilledCircle(img, cx, cy, 3.5f * scale, color2);
      break;
    case 13:
      for (int gy = 0; gy < 2; ++gy) {
        for (int gx = 0; gx < 2; ++gx) {
          const float ox = cx + (gx == 0 ? -5.0f : 5.0f) * scale;
          const float oy = cy + (gy == 0 ? -5.0f : 5.0f) * scale;
          DrawFilledRect(img, static_cast<int>(ox - 2.5f * scale),
                         static_cast<int>(oy - 2.5f * scale),
                         static_cast<int>(ox + 2.5f * scale),
                         static_cast<int>(oy + 2.5f * scale), color);
        }
      }
      break;
    case 14:
      DrawSoftBlob(img, cx, cy, 5.5f * scale, 0.9f, color);
      break;
    case 15:
      DrawLine(img, cx - 8 * scale, cy - 8 * scale, cx + 8 * scale,
               cy + 8 * scale, 2, color);
      DrawLine(img, cx - 8 * scale, cy + 8 * scale, cx + 8 * scale,
               cy - 8 * scale, 2, color);
      break;
    default:
      break;
  }
}

}  // namespace

LabeledDataset GenerateSynthNet(const SynthNetConfig& config) {
  LabeledDataset dataset;
  dataset.name = "synthnet";
  dataset.num_classes = kSynthNetNumClasses;
  for (const char* name : kClassNames) dataset.class_names.push_back(name);

  Rng rng(config.seed);
  for (int label = 0; label < kSynthNetNumClasses; ++label) {
    Rng class_rng = rng.Fork(static_cast<uint64_t>(label));
    for (int i = 0; i < config.images_per_class; ++i) {
      Image img(3, config.image_size, config.image_size);
      const float bg = static_cast<float>(class_rng.Uniform(0.1, 0.45));
      FillVerticalGradient(&img, Color::Gray(bg),
                           Color::Gray(bg + 0.1f));
      RenderClass(&img, label, &class_rng);
      AddGaussianNoise(&img, config.noise_sigma, &class_rng);
      ClampImage(&img);
      dataset.images.push_back(std::move(img));
      dataset.labels.push_back(label);
    }
  }
  return dataset;
}

}  // namespace goggles::data
