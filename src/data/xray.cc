#include "data/xray.h"

#include "data/raster.h"

namespace goggles::data {
namespace {

/// Renders the shared chest anatomy and returns the two lung centers.
struct LungGeometry {
  float left_cx, right_cx, cy, rx, ry;
};

LungGeometry RenderChest(Image* img, Rng* rng) {
  const float jx = static_cast<float>(rng->UniformInt(-1, 1));
  const float jy = static_cast<float>(rng->UniformInt(-1, 1));

  // Dark background, bright thorax.
  FillConstant(img, Color::Gray(0.08f));
  DrawFilledEllipse(img, 16.0f + jx, 17.0f + jy, 13.5f, 14.5f,
                    Color::Gray(0.55f));
  // Mediastinum (bright center column).
  DrawFilledRect(img, static_cast<int>(14 + jx), static_cast<int>(4 + jy),
                 static_cast<int>(18 + jx), static_cast<int>(30 + jy),
                 Color::Gray(0.68f));

  LungGeometry geo;
  geo.left_cx = 10.5f + jx;
  geo.right_cx = 21.5f + jx;
  geo.cy = 17.0f + jy;
  geo.rx = 5.0f;
  geo.ry = 8.5f;
  // Dark lung fields.
  DrawFilledEllipse(img, geo.left_cx, geo.cy, geo.rx, geo.ry,
                    Color::Gray(0.22f));
  DrawFilledEllipse(img, geo.right_cx, geo.cy, geo.rx, geo.ry,
                    Color::Gray(0.22f));
  // Rib arcs (horizontal bright lines across the lungs).
  for (int r = 0; r < 4; ++r) {
    const float ry = geo.cy - 6.0f + 4.0f * static_cast<float>(r);
    DrawLine(img, geo.left_cx - geo.rx, ry, geo.right_cx + geo.rx, ry - 1.0f,
             1, Color::Gray(0.42f));
  }
  return geo;
}

Image RenderXrayImage(const SynthXrayConfig& config, bool abnormal, bool tb,
                      Rng* rng) {
  Image img(3, config.image_size, config.image_size);
  LungGeometry geo = RenderChest(&img, rng);

  if (abnormal) {
    // Per-image severity: mild cases carry cues too weak for any affinity
    // function, so the achievable labeling accuracy sits mid-range (as for
    // the real TB/PN corpora) instead of collapsing to 0.5 or 1.0.
    const float severity = static_cast<float>(rng->Uniform(0.25, 1.25));
    if (tb) {
      // TB: several bright nodules inside the lung fields.
      const int num_nodules = static_cast<int>(rng->UniformInt(2, 5));
      for (int n = 0; n < num_nodules; ++n) {
        const bool left = rng->Bernoulli(0.5);
        const float cx = (left ? geo.left_cx : geo.right_cx) +
                         static_cast<float>(rng->UniformInt(-3, 3));
        const float cy = geo.cy + static_cast<float>(rng->UniformInt(-6, 6));
        const float sigma = static_cast<float>(rng->Uniform(1.3, 2.1));
        DrawSoftBlob(&img, cx, cy, sigma,
                     config.nodule_amplitude * severity,
                     Color::Gray(1.0f));
      }
    } else {
      // Pneumonia: several wide diffuse haze patches.
      const int num_patches = static_cast<int>(rng->UniformInt(2, 4));
      for (int n = 0; n < num_patches; ++n) {
        const bool left = rng->Bernoulli(0.5);
        const float cx = (left ? geo.left_cx : geo.right_cx) +
                         static_cast<float>(rng->UniformInt(-2, 2));
        const float cy = geo.cy + static_cast<float>(rng->UniformInt(-5, 5));
        const float sigma = static_cast<float>(rng->Uniform(2.8, 4.5));
        DrawSoftBlob(&img, cx, cy, sigma,
                     config.haze_amplitude * severity,
                     Color::Gray(1.0f));
      }
    }
  } else if (!tb) {
    // Normal pneumonia-corpus images occasionally have mild benign haze,
    // creating the class overlap that makes PN-Xray hard.
    if (rng->Bernoulli(0.3)) {
      DrawSoftBlob(&img,
                   (rng->Bernoulli(0.5) ? geo.left_cx : geo.right_cx),
                   geo.cy + static_cast<float>(rng->UniformInt(-4, 4)),
                   static_cast<float>(rng->Uniform(2.0, 3.0)),
                   config.haze_amplitude * 0.4f, Color::Gray(1.0f));
    }
  }

  GaussianBlur3x3(&img, 1);
  // X-ray dose / exposure variation (grayscale: no color cast).
  ApplyPhotometricJitter(&img, rng, 0.88f, 1.12f, 0.0f);
  AddGaussianNoise(&img, config.noise_sigma, rng);
  ClampImage(&img);
  return img;
}

LabeledDataset GenerateXray(const SynthXrayConfig& config, bool tb,
                            const std::string& name,
                            const std::string& abnormal_name) {
  LabeledDataset dataset;
  dataset.name = name;
  dataset.num_classes = 2;
  dataset.class_names = {"normal", abnormal_name};

  Rng rng(config.seed + (tb ? 0 : 77));
  for (int label = 0; label < 2; ++label) {
    Rng class_rng = rng.Fork(static_cast<uint64_t>(label));
    for (int i = 0; i < config.images_per_class; ++i) {
      dataset.images.push_back(
          RenderXrayImage(config, /*abnormal=*/label == 1, tb, &class_rng));
      dataset.labels.push_back(label);
    }
  }
  return dataset;
}

}  // namespace

LabeledDataset GenerateSynthTBXray(const SynthXrayConfig& config) {
  return GenerateXray(config, /*tb=*/true, "tbxray", "tuberculosis");
}

LabeledDataset GenerateSynthPNXray(const SynthXrayConfig& config) {
  return GenerateXray(config, /*tb=*/false, "pnxray", "pneumonia");
}

}  // namespace goggles::data
