#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

/// \file registry.h
/// \brief Name-based access to the five evaluation corpora + SynthNet.

namespace goggles::data {

/// \brief The evaluation datasets in the paper's Table 1 order.
std::vector<std::string> EvaluationDatasetNames();

/// \brief Generates a dataset by name.
///
/// Known names: "synthnet", "birds" (CUB stand-in), "signs" (GTSRB),
/// "surface", "tbxray", "pnxray". `images_per_class` <= 0 keeps each
/// generator's default.
Result<LabeledDataset> GenerateDataset(const std::string& name,
                                       int images_per_class = 0,
                                       uint64_t seed = 0);

}  // namespace goggles::data
