#pragma once

#include "data/dataset.h"

/// \file birds.h
/// \brief SynthBirds: CUB-200-2011 stand-in (see DESIGN.md).
///
/// Fine-grained classes defined compositionally by binary visual attributes
/// (crest, wing stripes, belly spots, ...), rendered as stylized bird
/// figures. Like CUB, the dataset carries (a) a class-level attribute table
/// and (b) noisy image-level attribute annotations, which the Snorkel
/// baseline turns into labeling functions exactly as the paper describes
/// (§5.1.2).

namespace goggles::data {

/// \brief Generation parameters for SynthBirds.
struct SynthBirdsConfig {
  int num_classes = 20;
  int images_per_class = 30;
  int image_size = 32;
  uint64_t seed = 202;
  /// Probability an image-level attribute annotation is flipped relative to
  /// the class truth (models imperfect human annotation in CUB).
  double annotation_noise = 0.05;
  float pixel_noise_sigma = 0.04f;
};

/// \brief Number of binary attributes per class.
constexpr int kBirdNumAttributes = 12;

/// \brief Generates the SynthBirds corpus with attribute metadata.
LabeledDataset GenerateSynthBirds(const SynthBirdsConfig& config);

}  // namespace goggles::data
