#pragma once

#include <string>
#include <utility>
#include <vector>

#include "data/image.h"
#include "linalg/matrix.h"
#include "util/rng.h"
#include "util/status.h"

/// \file dataset.h
/// \brief Labeled image dataset container and task-construction helpers.
///
/// Mirrors the paper's experimental setup (§5.1): multi-class corpora from
/// which binary labeling tasks are sampled as class pairs, stratified
/// train/test splits, and a small labeled development set (default 5 per
/// class) drawn from the training split.

namespace goggles::data {

/// \brief A labeled dataset, optionally with CUB-style attribute metadata.
struct LabeledDataset {
  std::string name;
  int num_classes = 0;
  std::vector<Image> images;
  std::vector<int> labels;
  std::vector<std::string> class_names;

  /// CUB-style metadata (empty for datasets without attributes):
  /// `class_attributes(k, a)` = 1 if class k exhibits attribute a;
  /// `image_attributes(i, a)` = noisy per-image annotation of attribute a.
  Matrix class_attributes;
  Matrix image_attributes;
  std::vector<std::string> attribute_names;

  int64_t size() const { return static_cast<int64_t>(images.size()); }
  bool has_attributes() const { return class_attributes.rows() > 0; }
};

/// \brief Restriction of a dataset to `classes`, relabeled 0..k-1 in the
/// given order. Attribute metadata rows are carried over.
LabeledDataset SelectClasses(const LabeledDataset& dataset,
                             const std::vector<int>& classes);

/// \brief Stratified train/test split.
struct TrainTestSplit {
  LabeledDataset train;
  LabeledDataset test;
};

/// \brief Splits per class with the given train fraction (deterministic
/// given `rng` state). Each class contributes at least one test example
/// when it has two or more instances.
TrainTestSplit StratifiedSplit(const LabeledDataset& dataset,
                               double train_fraction, Rng* rng);

/// \brief Samples `per_class` development indices per class (indices into
/// `dataset`). This is the paper's 5-per-class development set.
std::vector<int> SampleDevIndices(const LabeledDataset& dataset, int per_class,
                                  Rng* rng);

/// \brief Samples `num_pairs` distinct unordered class pairs.
std::vector<std::pair<int, int>> SampleClassPairs(int num_classes,
                                                  int num_pairs, Rng* rng);

/// \brief Counts instances per class.
std::vector<int> ClassCounts(const LabeledDataset& dataset);

}  // namespace goggles::data
