#include "data/image.h"

#include <algorithm>

namespace goggles::data {

Tensor StackImages(const std::vector<Image>& images) {
  if (images.empty()) return Tensor();
  const Image& first = images[0];
  Tensor out({static_cast<int64_t>(images.size()), first.channels,
              first.height, first.width});
  const int64_t stride = first.NumElements();
  for (size_t i = 0; i < images.size(); ++i) {
    std::copy(images[i].pixels.begin(), images[i].pixels.end(),
              out.data() + static_cast<int64_t>(i) * stride);
  }
  return out;
}

Tensor StackImageSubset(const std::vector<Image>& images,
                        const std::vector<int>& indices) {
  std::vector<Image> subset;
  subset.reserve(indices.size());
  for (int idx : indices) subset.push_back(images[static_cast<size_t>(idx)]);
  return StackImages(subset);
}

void ClampImage(Image* img) {
  for (float& v : img->pixels) v = std::clamp(v, 0.0f, 1.0f);
}

float ImageMean(const Image& img) {
  if (img.pixels.empty()) return 0.0f;
  double acc = 0.0;
  for (float v : img.pixels) acc += v;
  return static_cast<float>(acc / static_cast<double>(img.pixels.size()));
}

}  // namespace goggles::data
