#include "data/image.h"

#include <algorithm>
#include <cstring>

namespace goggles::data {
namespace {

inline uint64_t Fnv1a(const void* data, size_t n, uint64_t hash) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

Tensor StackImages(const std::vector<Image>& images) {
  if (images.empty()) return Tensor();
  const Image& first = images[0];
  Tensor out({static_cast<int64_t>(images.size()), first.channels,
              first.height, first.width});
  const int64_t stride = first.NumElements();
  for (size_t i = 0; i < images.size(); ++i) {
    std::copy(images[i].pixels.begin(), images[i].pixels.end(),
              out.data() + static_cast<int64_t>(i) * stride);
  }
  return out;
}

Tensor StackImageSubset(const std::vector<Image>& images,
                        const std::vector<int>& indices) {
  std::vector<Image> subset;
  subset.reserve(indices.size());
  for (int idx : indices) subset.push_back(images[static_cast<size_t>(idx)]);
  return StackImages(subset);
}

void ClampImage(Image* img) {
  for (float& v : img->pixels) v = std::clamp(v, 0.0f, 1.0f);
}

float ImageMean(const Image& img) {
  if (img.pixels.empty()) return 0.0f;
  double acc = 0.0;
  for (float v : img.pixels) acc += v;
  return static_cast<float>(acc / static_cast<double>(img.pixels.size()));
}

uint64_t FingerprintImages(const std::vector<Image>& images) {
  uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  const uint64_t n = images.size();
  hash = Fnv1a(&n, sizeof(n), hash);
  for (const Image& img : images) {
    const int32_t dims[3] = {img.channels, img.height, img.width};
    hash = Fnv1a(dims, sizeof(dims), hash);
    hash = Fnv1a(img.pixels.data(), img.pixels.size() * sizeof(float), hash);
  }
  return hash;
}

}  // namespace goggles::data
