#pragma once

#include "data/dataset.h"

/// \file surface.h
/// \brief SynthSurface: surface-finish dataset stand-in (see DESIGN.md).
///
/// Binary texture discrimination between "good" (smooth) and "bad" (rough)
/// metallic surfaces — no shape cue at all, only texture statistics, which
/// is what made the original dataset challenging for untrained eyes.

namespace goggles::data {

/// \brief Generation parameters for SynthSurface.
struct SynthSurfaceConfig {
  int images_per_class = 120;
  int image_size = 32;
  uint64_t seed = 404;
  /// Roughness noise amplitude for the "bad" class; the "good" class uses
  /// a fraction of it, and both vary per image, creating class overlap.
  float rough_sigma = 0.12f;
  float smooth_sigma = 0.05f;
};

/// \brief Generates the SynthSurface corpus (class 0 = good, 1 = bad).
LabeledDataset GenerateSynthSurface(const SynthSurfaceConfig& config);

}  // namespace goggles::data
