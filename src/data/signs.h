#pragma once

#include "data/dataset.h"

/// \file signs.h
/// \brief SynthSigns: GTSRB stand-in (see DESIGN.md).
///
/// 43 traffic-sign-like classes formed by border shape x border color x
/// inner glyph, rendered with heavy nuisance variation (blur, occlusion,
/// brightness jitter, position jitter) to reproduce GTSRB's difficulty —
/// the paper's hardest dataset for GOGGLES (70.5%).

namespace goggles::data {

/// \brief Generation parameters for SynthSigns.
struct SynthSignsConfig {
  int images_per_class = 30;
  int image_size = 32;
  uint64_t seed = 303;
  float noise_sigma = 0.14f;
  int blur_passes = 2;
  double occlusion_probability = 0.6;
};

/// \brief Number of sign classes, as in GTSRB.
constexpr int kSignsNumClasses = 43;

/// \brief Generates the SynthSigns corpus.
LabeledDataset GenerateSynthSigns(const SynthSignsConfig& config);

}  // namespace goggles::data
