#pragma once

#include "data/dataset.h"

/// \file synthnet.h
/// \brief SynthNet: the pretraining corpus for the VggMini backbone.
///
/// Plays the role of ImageNet in the paper: a source-domain, multi-class
/// corpus the backbone is trained on *once*; the resulting intermediate
/// filter maps are then reused as affinity functions on every (disjoint)
/// target task. Its 16 classes exercise a range of low/mid-level visual
/// concepts (edges, curves, corners, textures, blobs) so the learned
/// channels transfer.

namespace goggles::data {

/// \brief Generation parameters for SynthNet.
struct SynthNetConfig {
  int images_per_class = 80;
  int image_size = 32;
  uint64_t seed = 101;
  float noise_sigma = 0.05f;
};

/// \brief Number of SynthNet classes (fixed recipe list).
constexpr int kSynthNetNumClasses = 16;

/// \brief Generates the SynthNet corpus.
LabeledDataset GenerateSynthNet(const SynthNetConfig& config);

}  // namespace goggles::data
