#include "data/registry.h"

#include "data/birds.h"
#include "data/signs.h"
#include "data/surface.h"
#include "data/synthnet.h"
#include "data/xray.h"

namespace goggles::data {

std::vector<std::string> EvaluationDatasetNames() {
  return {"birds", "signs", "surface", "tbxray", "pnxray"};
}

Result<LabeledDataset> GenerateDataset(const std::string& name,
                                       int images_per_class, uint64_t seed) {
  if (name == "synthnet") {
    SynthNetConfig config;
    if (images_per_class > 0) config.images_per_class = images_per_class;
    if (seed != 0) config.seed = seed;
    return GenerateSynthNet(config);
  }
  if (name == "birds") {
    SynthBirdsConfig config;
    if (images_per_class > 0) config.images_per_class = images_per_class;
    if (seed != 0) config.seed = seed;
    return GenerateSynthBirds(config);
  }
  if (name == "signs") {
    SynthSignsConfig config;
    if (images_per_class > 0) config.images_per_class = images_per_class;
    if (seed != 0) config.seed = seed;
    return GenerateSynthSigns(config);
  }
  if (name == "surface") {
    SynthSurfaceConfig config;
    if (images_per_class > 0) config.images_per_class = images_per_class;
    if (seed != 0) config.seed = seed;
    return GenerateSynthSurface(config);
  }
  if (name == "tbxray" || name == "pnxray") {
    SynthXrayConfig config;
    if (images_per_class > 0) config.images_per_class = images_per_class;
    if (seed != 0) config.seed = seed;
    return name == "tbxray" ? GenerateSynthTBXray(config)
                            : GenerateSynthPNXray(config);
  }
  return Status::NotFound("unknown dataset: " + name);
}

}  // namespace goggles::data
