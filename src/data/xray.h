#pragma once

#include "data/dataset.h"

/// \file xray.h
/// \brief SynthTBXray / SynthPNXray: medical imaging stand-ins (DESIGN.md).
///
/// Both render a stylized chest radiograph (bright thorax, two dark lung
/// fields, rib arcs) in grayscale. The abnormal class differs:
///  - TB: a few small, bright, *localized* nodules inside the lung fields;
///  - Pneumonia: *diffuse* low-amplitude haze patches — deliberately the
///    hardest signal for prototype-based affinities, matching the paper
///    (PN-Xray is GOGGLES' second-lowest accuracy).

namespace goggles::data {

/// \brief Generation parameters for the two X-ray corpora.
struct SynthXrayConfig {
  int images_per_class = 120;
  int image_size = 32;
  uint64_t seed = 505;
  /// Nodule brightness for TB abnormal images.
  float nodule_amplitude = 0.75f;
  /// Haze brightness for pneumonia images.
  float haze_amplitude = 0.28f;
  float noise_sigma = 0.05f;
};

/// \brief TB screening corpus (class 0 = normal, 1 = tuberculosis).
LabeledDataset GenerateSynthTBXray(const SynthXrayConfig& config);

/// \brief Pneumonia corpus (class 0 = normal, 1 = pneumonia).
LabeledDataset GenerateSynthPNXray(const SynthXrayConfig& config);

}  // namespace goggles::data
