#pragma once

#include "data/image.h"
#include "util/rng.h"

/// \file raster.h
/// \brief Procedural drawing primitives for the synthetic dataset
/// generators (DESIGN.md substitution table: these stand in for the visual
/// structure of the paper's five real-world datasets).

namespace goggles::data {

/// \brief RGB color; for grayscale images only `r` is used per channel.
struct Color {
  float r = 0.0f;
  float g = 0.0f;
  float b = 0.0f;

  float channel(int c) const { return c == 0 ? r : (c == 1 ? g : b); }
  static Color Gray(float v) { return {v, v, v}; }
};

/// \brief Fills the whole image with `color`.
void FillConstant(Image* img, const Color& color);

/// \brief Vertical linear gradient from `top` (row 0) to `bottom`.
void FillVerticalGradient(Image* img, const Color& top, const Color& bottom);

/// \brief Adds i.i.d. N(0, sigma^2) noise to every pixel.
void AddGaussianNoise(Image* img, float sigma, Rng* rng);

/// \brief Sets a fraction `frac` of pixels to 0 or 1 at random.
void AddSaltPepper(Image* img, float frac, Rng* rng);

/// \brief Separable 3x3 binomial blur, applied `passes` times.
void GaussianBlur3x3(Image* img, int passes = 1);

/// \brief Multiplies all pixels by `factor` (brightness jitter).
void ScaleBrightness(Image* img, float factor);

/// \brief Random global brightness (x [brightness_lo, brightness_hi]) and
/// per-channel color cast (x [1-cast, 1+cast]) — the photometric nuisance
/// present in every real capture pipeline (exposure, white balance, X-ray
/// dose). Global representations are sensitive to it; GOGGLES' normalized
/// prototype cosine is largely invariant.
void ApplyPhotometricJitter(Image* img, Rng* rng, float brightness_lo,
                            float brightness_hi, float cast);

/// \brief Alpha-blends `color` over the axis-aligned rectangle
/// [x0, x1] x [y0, y1] (inclusive, clipped to the image).
void DrawFilledRect(Image* img, int x0, int y0, int x1, int y1,
                    const Color& color, float alpha = 1.0f);

/// \brief Rectangle outline of the given thickness.
void DrawRectOutline(Image* img, int x0, int y0, int x1, int y1, int thickness,
                     const Color& color);

/// \brief Filled axis-aligned ellipse centered at (cx, cy).
void DrawFilledEllipse(Image* img, float cx, float cy, float rx, float ry,
                       const Color& color, float alpha = 1.0f);

/// \brief Filled circle (ellipse with rx == ry).
void DrawFilledCircle(Image* img, float cx, float cy, float radius,
                      const Color& color, float alpha = 1.0f);

/// \brief Annulus with outer radius `radius` and the given thickness.
void DrawRing(Image* img, float cx, float cy, float radius, float thickness,
              const Color& color);

/// \brief Filled isoceles triangle; `up` selects apex direction.
void DrawFilledTriangle(Image* img, float cx, float cy, float size, bool up,
                        const Color& color);

/// \brief Triangle outline (rendered as filled minus inset).
void DrawTriangleOutline(Image* img, float cx, float cy, float size, bool up,
                         int thickness, const Color& color);

/// \brief Filled diamond: |x-cx| + |y-cy| <= radius.
void DrawFilledDiamond(Image* img, float cx, float cy, float radius,
                       const Color& color);

/// \brief Diamond outline of the given thickness.
void DrawDiamondOutline(Image* img, float cx, float cy, float radius,
                        int thickness, const Color& color);

/// \brief Plus-shaped cross centered at (cx, cy).
void DrawCross(Image* img, float cx, float cy, float size, int thickness,
               const Color& color);

/// \brief Line segment with square brush of the given thickness.
void DrawLine(Image* img, float x0, float y0, float x1, float y1,
              int thickness, const Color& color);

/// \brief Sinusoidal stripes over a rectangle. `horizontal` selects stripe
/// orientation; `period` is in pixels; stripes blend `color` with alpha
/// proportional to the sinusoid.
void DrawStripedRect(Image* img, int x0, int y0, int x1, int y1, float period,
                     bool horizontal, const Color& color);

/// \brief Checkerboard pattern over a rectangle with square cells.
void DrawCheckerRect(Image* img, int x0, int y0, int x1, int y1, int cell,
                     const Color& c0, const Color& c1);

/// \brief Additive Gaussian intensity bump (soft blob) at (cx, cy).
void DrawSoftBlob(Image* img, float cx, float cy, float sigma, float amplitude,
                  const Color& color);

}  // namespace goggles::data
