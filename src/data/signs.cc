#include "data/signs.h"

#include "data/raster.h"
#include "util/string_util.h"

namespace goggles::data {
namespace {

enum class BorderShape { kRing, kTriangle, kSquare, kDiamond };

struct SignRecipe {
  BorderShape shape;
  Color border;
  int glyph;  // 0 none, 1 vbar, 2 hbar, 3 cross, 4 dot, 5 two dots, 6 wedge
};

/// Deterministically enumerates the 43 class recipes from the cross
/// product of 4 shapes x 3 colors x 7 glyphs (truncated to 43, GTSRB's
/// class count).
SignRecipe RecipeForClass(int label) {
  static const Color kBorderColors[3] = {
      {0.85f, 0.15f, 0.15f},  // red
      {0.15f, 0.25f, 0.85f},  // blue
      {0.9f, 0.8f, 0.15f}};   // yellow
  SignRecipe recipe;
  recipe.shape = static_cast<BorderShape>(label % 4);
  recipe.border = kBorderColors[(label / 4) % 3];
  recipe.glyph = (label / 12) % 7;
  return recipe;
}

void RenderSign(Image* img, const SignRecipe& recipe, Rng* rng) {
  const float cx = 16.0f + static_cast<float>(rng->UniformInt(-5, 5));
  const float cy = 16.0f + static_cast<float>(rng->UniformInt(-5, 5));
  const float scale = static_cast<float>(rng->Uniform(0.55, 1.05));
  const float radius = 11.0f * scale;
  const Color face = {0.92f, 0.92f, 0.9f};
  const Color glyph_color = {0.1f, 0.1f, 0.12f};

  switch (recipe.shape) {
    case BorderShape::kRing:
      DrawFilledCircle(img, cx, cy, radius, face);
      DrawRing(img, cx, cy, radius, 2.5f * scale, recipe.border);
      break;
    case BorderShape::kTriangle:
      DrawFilledTriangle(img, cx, cy, 2.0f * radius, /*up=*/true, face);
      DrawTriangleOutline(img, cx, cy, 2.0f * radius, /*up=*/true, 2,
                          recipe.border);
      break;
    case BorderShape::kSquare:
      DrawFilledRect(img, static_cast<int>(cx - radius * 0.8f),
                     static_cast<int>(cy - radius * 0.8f),
                     static_cast<int>(cx + radius * 0.8f),
                     static_cast<int>(cy + radius * 0.8f), face);
      DrawRectOutline(img, static_cast<int>(cx - radius * 0.8f),
                      static_cast<int>(cy - radius * 0.8f),
                      static_cast<int>(cx + radius * 0.8f),
                      static_cast<int>(cy + radius * 0.8f), 2, recipe.border);
      break;
    case BorderShape::kDiamond:
      DrawFilledDiamond(img, cx, cy, radius, face);
      DrawDiamondOutline(img, cx, cy, radius, 2, recipe.border);
      break;
  }

  const float g = 5.0f * scale;
  switch (recipe.glyph) {
    case 0:
      break;
    case 1:
      DrawFilledRect(img, static_cast<int>(cx - 1), static_cast<int>(cy - g),
                     static_cast<int>(cx + 1), static_cast<int>(cy + g),
                     glyph_color);
      break;
    case 2:
      DrawFilledRect(img, static_cast<int>(cx - g), static_cast<int>(cy - 1),
                     static_cast<int>(cx + g), static_cast<int>(cy + 1),
                     glyph_color);
      break;
    case 3:
      DrawCross(img, cx, cy, 2.0f * g, 2, glyph_color);
      break;
    case 4:
      DrawFilledCircle(img, cx, cy, 2.5f * scale, glyph_color);
      break;
    case 5:
      DrawFilledCircle(img, cx - 3.0f * scale, cy, 1.8f * scale, glyph_color);
      DrawFilledCircle(img, cx + 3.0f * scale, cy, 1.8f * scale, glyph_color);
      break;
    case 6:
      DrawFilledTriangle(img, cx, cy, 1.6f * g, /*up=*/false, glyph_color);
      break;
    default:
      break;
  }
}

}  // namespace

LabeledDataset GenerateSynthSigns(const SynthSignsConfig& config) {
  LabeledDataset dataset;
  dataset.name = "signs";
  dataset.num_classes = kSignsNumClasses;

  Rng rng(config.seed);
  for (int label = 0; label < kSignsNumClasses; ++label) {
    dataset.class_names.push_back(StrFormat("sign_%02d", label));
    Rng class_rng = rng.Fork(static_cast<uint64_t>(label));
    const SignRecipe recipe = RecipeForClass(label);
    for (int i = 0; i < config.images_per_class; ++i) {
      Image img(3, config.image_size, config.image_size);
      // Street scene background: gray road-ish gradient.
      const float bg = static_cast<float>(class_rng.Uniform(0.3, 0.6));
      FillVerticalGradient(&img, Color::Gray(bg + 0.15f), Color::Gray(bg));
      RenderSign(&img, recipe, &class_rng);

      // Heavy nuisance augmentation (GTSRB-like difficulty).
      if (class_rng.Bernoulli(config.occlusion_probability)) {
        const int ox = static_cast<int>(class_rng.UniformInt(0, 20));
        const int oy = static_cast<int>(class_rng.UniformInt(0, 20));
        const int size = static_cast<int>(class_rng.UniformInt(8, 14));
        DrawFilledRect(&img, ox, oy, ox + size, oy + size,
                       Color::Gray(static_cast<float>(class_rng.Uniform(0.2, 0.7))));
      }
      ScaleBrightness(&img, static_cast<float>(class_rng.Uniform(0.45, 1.35)));
      GaussianBlur3x3(&img, config.blur_passes);
      AddGaussianNoise(&img, config.noise_sigma, &class_rng);
      ClampImage(&img);
      dataset.images.push_back(std::move(img));
      dataset.labels.push_back(label);
    }
  }
  return dataset;
}

}  // namespace goggles::data
