#include "data/dataset.h"

#include <algorithm>
#include <set>

namespace goggles::data {

LabeledDataset SelectClasses(const LabeledDataset& dataset,
                             const std::vector<int>& classes) {
  LabeledDataset out;
  out.name = dataset.name;
  out.num_classes = static_cast<int>(classes.size());
  out.attribute_names = dataset.attribute_names;

  std::vector<int> new_label(static_cast<size_t>(dataset.num_classes), -1);
  for (size_t i = 0; i < classes.size(); ++i) {
    new_label[static_cast<size_t>(classes[i])] = static_cast<int>(i);
    out.class_names.push_back(
        dataset.class_names.empty()
            ? ""
            : dataset.class_names[static_cast<size_t>(classes[i])]);
  }

  std::vector<int> kept;
  for (int64_t i = 0; i < dataset.size(); ++i) {
    const int mapped = new_label[static_cast<size_t>(dataset.labels[static_cast<size_t>(i)])];
    if (mapped >= 0) {
      out.images.push_back(dataset.images[static_cast<size_t>(i)]);
      out.labels.push_back(mapped);
      kept.push_back(static_cast<int>(i));
    }
  }

  if (dataset.has_attributes()) {
    const int64_t num_attrs = dataset.class_attributes.cols();
    out.class_attributes = Matrix(out.num_classes, num_attrs);
    for (size_t i = 0; i < classes.size(); ++i) {
      for (int64_t a = 0; a < num_attrs; ++a) {
        out.class_attributes(static_cast<int64_t>(i), a) =
            dataset.class_attributes(classes[i], a);
      }
    }
    out.image_attributes = Matrix(static_cast<int64_t>(kept.size()), num_attrs);
    for (size_t i = 0; i < kept.size(); ++i) {
      for (int64_t a = 0; a < num_attrs; ++a) {
        out.image_attributes(static_cast<int64_t>(i), a) =
            dataset.image_attributes(kept[i], a);
      }
    }
  }
  return out;
}

TrainTestSplit StratifiedSplit(const LabeledDataset& dataset,
                               double train_fraction, Rng* rng) {
  TrainTestSplit split;
  split.train.name = dataset.name;
  split.test.name = dataset.name;
  split.train.num_classes = dataset.num_classes;
  split.test.num_classes = dataset.num_classes;
  split.train.class_names = dataset.class_names;
  split.test.class_names = dataset.class_names;
  split.train.attribute_names = dataset.attribute_names;
  split.test.attribute_names = dataset.attribute_names;
  split.train.class_attributes = dataset.class_attributes;
  split.test.class_attributes = dataset.class_attributes;

  std::vector<int> train_idx;
  std::vector<int> test_idx;
  for (int k = 0; k < dataset.num_classes; ++k) {
    std::vector<int> members;
    for (int64_t i = 0; i < dataset.size(); ++i) {
      if (dataset.labels[static_cast<size_t>(i)] == k) {
        members.push_back(static_cast<int>(i));
      }
    }
    rng->Shuffle(&members);
    int n_train = static_cast<int>(train_fraction * static_cast<double>(members.size()));
    if (members.size() >= 2) {
      n_train = std::clamp(n_train, 1, static_cast<int>(members.size()) - 1);
    } else {
      n_train = static_cast<int>(members.size());
    }
    for (size_t i = 0; i < members.size(); ++i) {
      if (static_cast<int>(i) < n_train) {
        train_idx.push_back(members[i]);
      } else {
        test_idx.push_back(members[i]);
      }
    }
  }
  std::sort(train_idx.begin(), train_idx.end());
  std::sort(test_idx.begin(), test_idx.end());

  auto fill = [&dataset](const std::vector<int>& indices, LabeledDataset* out) {
    const bool attrs = dataset.has_attributes();
    if (attrs) {
      out->image_attributes =
          Matrix(static_cast<int64_t>(indices.size()),
                 dataset.image_attributes.cols());
    }
    for (size_t i = 0; i < indices.size(); ++i) {
      out->images.push_back(dataset.images[static_cast<size_t>(indices[i])]);
      out->labels.push_back(dataset.labels[static_cast<size_t>(indices[i])]);
      if (attrs) {
        for (int64_t a = 0; a < dataset.image_attributes.cols(); ++a) {
          out->image_attributes(static_cast<int64_t>(i), a) =
              dataset.image_attributes(indices[i], a);
        }
      }
    }
  };
  fill(train_idx, &split.train);
  fill(test_idx, &split.test);
  return split;
}

std::vector<int> SampleDevIndices(const LabeledDataset& dataset, int per_class,
                                  Rng* rng) {
  std::vector<int> dev;
  for (int k = 0; k < dataset.num_classes; ++k) {
    std::vector<int> members;
    for (int64_t i = 0; i < dataset.size(); ++i) {
      if (dataset.labels[static_cast<size_t>(i)] == k) {
        members.push_back(static_cast<int>(i));
      }
    }
    rng->Shuffle(&members);
    const int take = std::min<int>(per_class, static_cast<int>(members.size()));
    for (int i = 0; i < take; ++i) dev.push_back(members[static_cast<size_t>(i)]);
  }
  std::sort(dev.begin(), dev.end());
  return dev;
}

std::vector<std::pair<int, int>> SampleClassPairs(int num_classes,
                                                  int num_pairs, Rng* rng) {
  std::set<std::pair<int, int>> seen;
  std::vector<std::pair<int, int>> pairs;
  const int64_t max_pairs =
      static_cast<int64_t>(num_classes) * (num_classes - 1) / 2;
  int guard = 0;
  while (static_cast<int64_t>(pairs.size()) <
             std::min<int64_t>(num_pairs, max_pairs) &&
         guard < 100000) {
    ++guard;
    int a = static_cast<int>(rng->UniformInt(0, num_classes - 1));
    int b = static_cast<int>(rng->UniformInt(0, num_classes - 1));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (seen.insert({a, b}).second) pairs.push_back({a, b});
  }
  return pairs;
}

std::vector<int> ClassCounts(const LabeledDataset& dataset) {
  std::vector<int> counts(static_cast<size_t>(dataset.num_classes), 0);
  for (int label : dataset.labels) ++counts[static_cast<size_t>(label)];
  return counts;
}

}  // namespace goggles::data
