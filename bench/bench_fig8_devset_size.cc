/// \file bench_fig8_devset_size.cc
/// \brief Reproduces **Figure 8** of the paper: GOGGLES labeling accuracy
/// as a function of the development set size (0 to 40 total labels).
///
/// The affinity matrix is built once per task; only the inference +
/// mapping stage is re-run per development-set size, exactly isolating the
/// effect Figure 8 studies. Accuracy is always evaluated on the rows
/// outside the largest (40-label) development pool so every point is
/// measured on the same instances.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "goggles/hierarchical.h"
#include "goggles/mapping.h"
#include "goggles/pipeline.h"
#include "util/table.h"

namespace goggles::bench {
namespace {

constexpr int kMaxDevPerClass = 20;  // pool: 40 total for binary tasks
const std::vector<int> kDevSizes = {0, 2, 4, 8, 12, 20, 30, 40};

void RunExperiment() {
  BenchScale scale = GetBenchScale();
  // Inference is re-run per dev size; keep the task count modest.
  scale.num_pairs = std::min(scale.num_pairs, 3);
  Banner("Figure 8 — labeling accuracy vs development set size", scale);
  eval::RunnerContext ctx = MakeBenchContext();

  std::map<std::string, std::map<int, std::vector<double>>> curves;
  for (const std::string& dataset : data::EvaluationDatasetNames()) {
    for (int rep = 0; rep < EffectiveReps(dataset, scale); ++rep) {
      for (const eval::LabelingTask& task :
           MakeDatasetTasks(dataset, scale, rep, kMaxDevPerClass)) {
        GogglesPipeline pipeline(ctx.extractor, ctx.goggles);
        Result<Matrix> affinity = pipeline.BuildAffinity(task.train.images);
        affinity.status().Abort("affinity");
        HierarchicalLabeler labeler(ctx.goggles.inference);

        // Split the dev pool per class so subsets stay balanced.
        std::vector<int> pool_by_class[2];
        for (size_t i = 0; i < task.dev_indices.size(); ++i) {
          pool_by_class[task.dev_labels[i]].push_back(task.dev_indices[i]);
        }
        for (int m : kDevSizes) {
          std::vector<int> dev_idx, dev_lab;
          for (int k = 0; k < 2; ++k) {
            const int take = std::min<int>(
                m / 2, static_cast<int>(pool_by_class[k].size()));
            for (int i = 0; i < take; ++i) {
              dev_idx.push_back(pool_by_class[k][static_cast<size_t>(i)]);
              dev_lab.push_back(k);
            }
          }
          Result<LabelingResult> result =
              labeler.Fit(*affinity, dev_idx, dev_lab, 2);
          result.status().Abort("inference");
          // Evaluate outside the full pool so all m share the same rows.
          curves[dataset][m].push_back(eval::AccuracyExcluding(
              result->hard_labels, task.train.labels, task.dev_indices));
        }
      }
    }
    std::printf("  [%s done]\n", dataset.c_str());
  }

  AsciiTable table("Figure 8 (ours): labeling accuracy (%) vs dev set size");
  std::vector<std::string> header = {"Dataset"};
  for (int m : kDevSizes) header.push_back(StrFormat("m=%d", m));
  table.SetHeader(header);
  for (const std::string& dataset : data::EvaluationDatasetNames()) {
    std::vector<std::string> row = {dataset};
    for (int m : kDevSizes) {
      row.push_back(Pct(eval::Mean(curves[dataset][m])));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "Shape check (paper Fig. 8): accuracy rises with the first few dev\n"
      "labels (m=0 leaves the cluster naming to chance), converges by\n"
      "m ~ 10 (5/class), and easier datasets converge earlier.\n");
}

void BM_MappingStage(benchmark::State& state) {
  // Times just the dev-set mapping given fixed posteriors.
  Rng rng(3);
  const int n = 200;
  Matrix gamma(n, 2);
  for (int i = 0; i < n; ++i) {
    const double p = rng.Uniform();
    gamma(i, 0) = p;
    gamma(i, 1) = 1 - p;
  }
  std::vector<int> dev_idx, dev_lab;
  for (int i = 0; i < 40; ++i) {
    dev_idx.push_back(i);
    dev_lab.push_back(i % 2);
  }
  for (auto _ : state) {
    auto mapping = goggles::ClusterToClassMapping(gamma, dev_idx, dev_lab, 2);
    benchmark::DoNotOptimize(mapping.ok());
  }
}
BENCHMARK(BM_MappingStage)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace goggles::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  goggles::bench::RunExperiment();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
