/// \file bench_table1_labeling.cc
/// \brief Reproduces **Table 1** of the paper: labeling accuracy on the
/// training split for GOGGLES vs data programming (Snorkel, Snuba),
/// representation ablations (HOG, Logits) and class-inference baselines
/// (K-Means, GMM, Spectral co-clustering) across the five datasets.
///
/// The affinity matrix is built once per task and shared by GOGGLES and the
/// clustering baselines (exactly what §5.1.6 prescribes: "All methods use
/// the GOGGLES affinity matrix as input data"). Also registers
/// google-benchmark timers for the two pipeline phases.

#include <benchmark/benchmark.h>

#include <map>

#include "baselines/kmeans.h"
#include "baselines/spectral.h"
#include "bench_common.h"
#include "goggles/base_gmm.h"
#include "goggles/hierarchical.h"
#include "goggles/pipeline.h"
#include "quant_gate.h"
#include "util/table.h"
#include "util/timer.h"

namespace goggles::bench {
namespace {

struct Cell {
  std::vector<double> values;
  void Add(double v) { values.push_back(v); }
  double MeanOrNeg() const { return values.empty() ? -1.0 : eval::Mean(values); }
};

std::vector<int> HardLabels(const Matrix& proba) {
  std::vector<int> out;
  for (int64_t i = 0; i < proba.rows(); ++i) {
    out.push_back(proba(i, 1) > proba(i, 0) ? 1 : 0);
  }
  return out;
}

/// Runs every Table-1 system on one task, sharing the affinity matrix.
void RunTask(const eval::LabelingTask& task, const eval::RunnerContext& ctx,
             std::map<std::string, Cell>* row) {
  GogglesPipeline pipeline(ctx.extractor, ctx.goggles);
  Result<Matrix> affinity = pipeline.BuildAffinity(task.train.images);
  affinity.status().Abort("affinity");

  // GOGGLES.
  HierarchicalLabeler labeler(ctx.goggles.inference);
  Result<LabelingResult> goggles =
      labeler.Fit(*affinity, task.dev_indices, task.dev_labels, 2);
  goggles.status().Abort("goggles");
  (*row)["GOGGLES"].Add(eval::AccuracyExcluding(
      goggles->hard_labels, task.train.labels, task.dev_indices));

  // Snorkel (attribute tasks only).
  if (task.train.has_attributes()) {
    Result<double> snorkel = eval::RunSnorkelLabeling(task);
    if (snorkel.ok()) (*row)["Snorkel"].Add(*snorkel);
  }

  // Snuba.
  Result<double> snuba = eval::RunSnubaLabeling(task, ctx);
  snuba.status().Abort("snuba");
  (*row)["Snuba"].Add(*snuba);

  // Representation ablations.
  Result<double> hog = eval::RunRepresentationAffinity(
      task, ctx, eval::RepresentationKind::kHog);
  hog.status().Abort("hog");
  (*row)["HoG"].Add(*hog);
  Result<double> logits = eval::RunRepresentationAffinity(
      task, ctx, eval::RepresentationKind::kLogits);
  logits.status().Abort("logits");
  (*row)["Logits"].Add(*logits);

  // Clustering baselines on the shared affinity matrix, optimal mapping.
  {
    baselines::KMeansConfig config;
    config.num_clusters = 2;
    baselines::KMeans km(config);
    km.Fit(*affinity).Abort("kmeans");
    (*row)["K-Means"].Add(eval::AccuracyWithOptimalMappingExcluding(
        km.labels(), task.train.labels, 2, task.dev_indices));
  }
  {
    GmmConfig config;
    config.num_components = 2;
    DiagonalGmm gmm(config);
    gmm.Fit(*affinity).Abort("gmm");
    Result<Matrix> proba = gmm.PredictProba(*affinity);
    proba.status().Abort("gmm proba");
    (*row)["GMM"].Add(eval::AccuracyWithOptimalMappingExcluding(
        HardLabels(*proba), task.train.labels, 2, task.dev_indices));
  }
  {
    baselines::SpectralConfig config;
    config.num_clusters = 2;
    Result<std::vector<int>> labels =
        baselines::SpectralCoclusterRows(*affinity, config);
    labels.status().Abort("spectral");
    (*row)["Spectral"].Add(eval::AccuracyWithOptimalMappingExcluding(
        *labels, task.train.labels, 2, task.dev_indices));
  }
}

const std::vector<std::string> kSystems = {
    "GOGGLES", "Snorkel", "Snuba", "HoG", "Logits",
    "K-Means", "GMM",     "Spectral"};

// Paper Table 1 reference values (percent), "-" where not evaluated.
const std::map<std::string, std::vector<std::string>> kPaperTable1 = {
    {"birds",   {"97.83", "89.17", "58.83", "62.93", "96.35", "98.67", "97.62", "72.08"}},
    {"signs",   {"70.51", "-", "62.74", "75.48", "64.77", "70.74", "69.64", "62.40"}},
    {"surface", {"89.18", "-", "57.86", "85.82", "54.08", "69.08", "69.14", "60.82"}},
    {"tbxray",  {"76.89", "-", "59.47", "69.13", "67.16", "76.33", "76.70", "75.00"}},
    {"pnxray",  {"74.39", "-", "55.50", "53.11", "71.18", "50.66", "68.66", "75.90"}}};

const std::map<std::string, std::string> kPaperName = {
    {"birds", "CUB"},     {"signs", "GTSRB"},   {"surface", "Surface"},
    {"tbxray", "TB-Xray"}, {"pnxray", "PN-Xray"}};

void RunExperiment() {
  const BenchScale scale = GetBenchScale();
  Banner("Table 1 — labeling accuracy on the training split (percent)", scale);
  eval::RunnerContext ctx = MakeBenchContext();
  GateQuantizedExtraction(&ctx, scale);

  std::map<std::string, std::map<std::string, Cell>> rows;
  WallTimer timer;
  for (const std::string& dataset : data::EvaluationDatasetNames()) {
    for (int rep = 0; rep < EffectiveReps(dataset, scale); ++rep) {
      for (const eval::LabelingTask& task :
           MakeDatasetTasks(dataset, scale, rep)) {
        RunTask(task, ctx, &rows[dataset]);
      }
    }
    std::printf("  [%s done in %.1fs total]\n", dataset.c_str(),
                timer.ElapsedSeconds());
  }

  AsciiTable table("Table 1 (ours): mean labeling accuracy, % — dev = 5/class");
  std::vector<std::string> header = {"Dataset"};
  for (const auto& s : kSystems) header.push_back(s);
  table.SetHeader(header);
  std::map<std::string, Cell> averages;
  for (const std::string& dataset : data::EvaluationDatasetNames()) {
    std::vector<std::string> cells = {kPaperName.at(dataset)};
    for (const auto& system : kSystems) {
      const double mean = rows[dataset][system].MeanOrNeg();
      cells.push_back(Pct(mean));
      if (mean >= 0.0) averages[system].Add(mean);
    }
    table.AddRow(cells);
  }
  table.AddSeparator();
  std::vector<std::string> avg_row = {"Average"};
  for (const auto& system : kSystems) {
    avg_row.push_back(system == "Snorkel" ? "-"
                                          : Pct(averages[system].MeanOrNeg()));
  }
  table.AddRow(avg_row);
  table.Print();

  AsciiTable paper("Paper Table 1 (reference): labeling accuracy, %");
  paper.SetHeader(header);
  for (const std::string& dataset : data::EvaluationDatasetNames()) {
    std::vector<std::string> cells = {kPaperName.at(dataset)};
    for (const std::string& v : kPaperTable1.at(dataset)) cells.push_back(v);
    paper.AddRow(cells);
  }
  paper.Print();
  std::printf(
      "Shape checks: GOGGLES >> Snuba everywhere; GOGGLES best-or-near-best\n"
      "on average; birds (CUB) easiest, signs (GTSRB) hardest.\n");
}

// ---- google-benchmark timers for the two pipeline phases ----

eval::RunnerContext* g_ctx = nullptr;
eval::LabelingTask* g_task = nullptr;

void BM_AffinityMatrixBuild(benchmark::State& state) {
  GogglesPipeline pipeline(g_ctx->extractor, g_ctx->goggles);
  for (auto _ : state) {
    Result<Matrix> a = pipeline.BuildAffinity(g_task->train.images);
    benchmark::DoNotOptimize(a.ok());
  }
}
BENCHMARK(BM_AffinityMatrixBuild)->Unit(benchmark::kMillisecond);

void BM_HierarchicalInference(benchmark::State& state) {
  GogglesPipeline pipeline(g_ctx->extractor, g_ctx->goggles);
  Result<Matrix> a = pipeline.BuildAffinity(g_task->train.images);
  a.status().Abort("affinity");
  HierarchicalLabeler labeler(g_ctx->goggles.inference);
  for (auto _ : state) {
    Result<LabelingResult> r =
        labeler.Fit(*a, g_task->dev_indices, g_task->dev_labels, 2);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_HierarchicalInference)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace goggles::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  goggles::bench::RunExperiment();

  // Micro-timers on a representative task.
  auto ctx = goggles::bench::MakeBenchContext();
  auto scale = goggles::bench::GetBenchScale();
  auto tasks = goggles::bench::MakeDatasetTasks("tbxray", scale, 0);
  goggles::bench::g_ctx = &ctx;
  goggles::bench::g_task = &tasks[0];
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
