/// \file bench_table2_endmodel.cc
/// \brief Reproduces **Table 2** of the paper: end-model accuracy on the
/// held-out test set. Probabilistic labels from Snorkel/Snuba/GOGGLES
/// train the downstream discriminative model (frozen backbone + FC head,
/// soft cross-entropy); FSL trains the head on the development set only;
/// the supervised upper bound uses ground-truth training labels.

#include <benchmark/benchmark.h>

#include <map>

#include "baselines/end_model.h"
#include "bench_common.h"
#include "quant_gate.h"
#include "util/table.h"
#include "util/timer.h"

namespace goggles::bench {
namespace {

struct Cell {
  std::vector<double> values;
  void Add(double v) { values.push_back(v); }
  double MeanOrNeg() const { return values.empty() ? -1.0 : eval::Mean(values); }
};

void RunTask(const eval::LabelingTask& task, const eval::RunnerContext& ctx,
             std::map<std::string, Cell>* row) {
  // FSL.
  Result<double> fsl = eval::RunFslEndToEnd(task, ctx);
  fsl.status().Abort("fsl");
  (*row)["FSL"].Add(*fsl);

  // Snorkel -> end model (attribute tasks only).
  if (task.train.has_attributes()) {
    Matrix snorkel_proba;
    Result<double> snorkel = eval::RunSnorkelLabeling(task, &snorkel_proba);
    if (snorkel.ok()) {
      Result<double> end =
          eval::RunEndModelFromSoftLabels(task, ctx, snorkel_proba);
      if (end.ok()) (*row)["Snorkel"].Add(*end);
    }
  }

  // Snuba -> end model.
  Matrix snuba_proba;
  Result<double> snuba = eval::RunSnubaLabeling(task, ctx, &snuba_proba);
  snuba.status().Abort("snuba");
  Result<double> snuba_end =
      eval::RunEndModelFromSoftLabels(task, ctx, snuba_proba);
  snuba_end.status().Abort("snuba end");
  (*row)["Snuba"].Add(*snuba_end);

  // GOGGLES -> end model.
  LabelingResult goggles;
  Result<double> label_acc = eval::RunGogglesLabeling(task, ctx, &goggles);
  label_acc.status().Abort("goggles");
  Result<double> goggles_end =
      eval::RunEndModelFromSoftLabels(task, ctx, goggles.soft_labels);
  goggles_end.status().Abort("goggles end");
  (*row)["GOGGLES"].Add(*goggles_end);

  // Supervised upper bound.
  Result<double> upper = eval::RunSupervisedUpperBound(task, ctx);
  upper.status().Abort("upper");
  (*row)["UpperBound"].Add(*upper);
}

const std::vector<std::string> kSystems = {"FSL", "Snorkel", "Snuba",
                                           "GOGGLES", "UpperBound"};

const std::map<std::string, std::vector<std::string>> kPaperTable2 = {
    {"birds",   {"84.74", "87.85", "56.32", "95.30", "98.44"}},
    {"signs",   {"90.72", "-", "70.11", "91.54", "98.94"}},
    {"surface", {"76.00", "-", "51.67", "83.33", "92.00"}},
    {"tbxray",  {"66.42", "-", "62.71", "70.90", "82.09"}},
    {"pnxray",  {"68.28", "-", "62.19", "69.06", "74.22"}}};

const std::map<std::string, std::string> kPaperName = {
    {"birds", "CUB"},      {"signs", "GTSRB"},   {"surface", "Surface"},
    {"tbxray", "TB-Xray"}, {"pnxray", "PN-Xray"}};

void RunExperiment() {
  const BenchScale scale = GetBenchScale();
  Banner("Table 2 — end model accuracy on the held-out test set (percent)",
         scale);
  eval::RunnerContext ctx = MakeBenchContext();
  GateQuantizedExtraction(&ctx, scale);

  std::map<std::string, std::map<std::string, Cell>> rows;
  WallTimer timer;
  for (const std::string& dataset : data::EvaluationDatasetNames()) {
    for (int rep = 0; rep < EffectiveReps(dataset, scale); ++rep) {
      for (const eval::LabelingTask& task :
           MakeDatasetTasks(dataset, scale, rep)) {
        RunTask(task, ctx, &rows[dataset]);
      }
    }
    std::printf("  [%s done in %.1fs total]\n", dataset.c_str(),
                timer.ElapsedSeconds());
  }

  AsciiTable table(
      "Table 2 (ours): end model accuracy on test, % — dev = 5/class");
  std::vector<std::string> header = {"Dataset"};
  for (const auto& s : kSystems) header.push_back(s);
  table.SetHeader(header);
  std::map<std::string, Cell> averages;
  for (const std::string& dataset : data::EvaluationDatasetNames()) {
    std::vector<std::string> cells = {kPaperName.at(dataset)};
    for (const auto& system : kSystems) {
      const double mean = rows[dataset][system].MeanOrNeg();
      cells.push_back(Pct(mean));
      if (mean >= 0.0) averages[system].Add(mean);
    }
    table.AddRow(cells);
  }
  table.AddSeparator();
  std::vector<std::string> avg_row = {"Average"};
  for (const auto& system : kSystems) {
    avg_row.push_back(system == "Snorkel" ? "-"
                                          : Pct(averages[system].MeanOrNeg()));
  }
  table.AddRow(avg_row);
  table.Print();

  AsciiTable paper("Paper Table 2 (reference): end model accuracy, %");
  paper.SetHeader(header);
  for (const std::string& dataset : data::EvaluationDatasetNames()) {
    std::vector<std::string> cells = {kPaperName.at(dataset)};
    for (const std::string& v : kPaperTable2.at(dataset)) cells.push_back(v);
    paper.AddRow(cells);
  }
  paper.Print();
  std::printf(
      "Shape checks: GOGGLES > FSL and >> Snuba on average; GOGGLES within\n"
      "several points of the supervised upper bound.\n");
}

// ---- google-benchmark timer: end-model training ----

eval::RunnerContext* g_ctx = nullptr;
eval::LabelingTask* g_task = nullptr;

void BM_EndModelTraining(benchmark::State& state) {
  auto features = g_ctx->extractor->PenultimateFeatures(g_task->train.images);
  features.status().Abort("features");
  Matrix one_hot(features->rows(), 2, 0.0);
  for (int64_t i = 0; i < features->rows(); ++i) {
    one_hot(i, g_task->train.labels[static_cast<size_t>(i)]) = 1.0;
  }
  for (auto _ : state) {
    baselines::EndModel model(features->cols(), 2,
                              baselines::EndModelConfig{});
    benchmark::DoNotOptimize(model.FitSoft(*features, one_hot).ok());
  }
}
BENCHMARK(BM_EndModelTraining)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace goggles::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  goggles::bench::RunExperiment();

  auto ctx = goggles::bench::MakeBenchContext();
  auto scale = goggles::bench::GetBenchScale();
  auto tasks = goggles::bench::MakeDatasetTasks("surface", scale, 0);
  goggles::bench::g_ctx = &ctx;
  goggles::bench::g_task = &tasks[0];
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
