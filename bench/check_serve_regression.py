#!/usr/bin/env python3
"""Gate serve-bench metrics from a bench_common.h JSON trajectory.

Usage:
  check_serve_regression.py TRAJECTORY \
      [--metric NAME --min X]... [--max-regress FACTOR]

TRAJECTORY is a BENCH_<name>.json written by the Banner() hook in
bench_common.h: one compact JSON object per line with "bench", "scale",
"build_type" and a flat "metrics" map (the serve benches record
throughput in img/s and latency percentiles in ms; higher-is-better
metrics like `pipeline_speedup` are the ones worth gating).

Only records tagged "build_type":"release" participate — debug timings
are not comparable (bench/run_all.sh refuses to produce them by
default). The LAST release record carrying the metric is the fresh
measurement under test; the release record before it (if any) is the
baseline.

Two checks per --metric, both higher-is-better:
  --min X             absolute floor: fail when fresh < X. This is the
                      primary gate (e.g. pipeline_speedup >= 1.3): a
                      ratio of two numbers measured on the SAME machine
                      in the SAME run, so it carries no hardware delta.
  --max-regress F     relative: fail when fresh < baseline / F
                      (skipped without a baseline record). Absolute
                      cross-run comparison — when the measuring machine
                      differs from the recording machine the factor also
                      absorbs the hardware delta, so keep it loose
                      (default 3.0) for raw img/s metrics.

Exit codes: 0 ok, 1 regression, 2 usage/data error.
"""

import argparse
import json
import sys


def load_release_records(path):
    records = []
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                print(f"warning: {path}:{line_no}: {err}", file=sys.stderr)
                continue
            if record.get("build_type") != "release":
                continue
            records.append(record)
    return records


def metric_history(records, name):
    """All values of `name` across release records, in trajectory order."""
    values = []
    for record in records:
        value = record.get("metrics", {}).get(name)
        if isinstance(value, (int, float)):
            values.append(float(value))
    return values


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trajectory")
    parser.add_argument("--metric", action="append", default=[],
                        help="metric name to gate (repeatable; default "
                             "pipeline_speedup)")
    parser.add_argument("--min", action="append", type=float, default=[],
                        dest="mins",
                        help="absolute floor for the matching --metric "
                             "(positional pairing; default 1.3 for the "
                             "default metric)")
    parser.add_argument("--max-regress", type=float, default=3.0,
                        help="fail when fresh < baseline / FACTOR")
    args = parser.parse_args()
    metrics = args.metric or ["pipeline_speedup"]
    mins = args.mins or ([1.3] if not args.metric else [])
    if len(mins) not in (0, len(metrics)):
        print("error: give one --min per --metric, or none", file=sys.stderr)
        return 2

    records = load_release_records(args.trajectory)
    if not records:
        print(f"error: no release-tagged records in {args.trajectory}",
              file=sys.stderr)
        return 2

    failed = False
    for i, name in enumerate(metrics):
        history = metric_history(records, name)
        if not history:
            print(f"error: metric {name!r} missing from every release "
                  f"record in {args.trajectory}", file=sys.stderr)
            return 2
        fresh = history[-1]
        verdicts = []
        if mins:
            floor = mins[i]
            ok = fresh >= floor
            verdicts.append(f"floor {floor:g}: "
                            f"{'OK' if ok else 'REGRESSION'}")
            failed |= not ok
        if len(history) >= 2:
            baseline = history[-2]
            limit = baseline / args.max_regress
            ok = fresh >= limit
            verdicts.append(
                f"baseline {baseline:.3f} (limit {limit:.3f}, "
                f"/{args.max_regress:g}): {'OK' if ok else 'REGRESSION'}")
            failed |= not ok
        else:
            verdicts.append("no prior record; relative check skipped")
        print(f"{name}: fresh {fresh:.3f} | " + " | ".join(verdicts))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
