#pragma once

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "tensor/ops.h"

/// \file quant_gate.h
/// \brief Labeling-agreement gate for the quantized extraction path.
///
/// The bf16/int8 conv paths sit outside the f32 bit-identity contract, so
/// a bench run that was asked for them (GOGGLES_EXTRACT_PRECISION) first
/// proves they do not move the labels: GOGGLES labeling runs at f32 and at
/// the quantized precision on one task per evaluation dataset, and the
/// hard-label agreement must reach GOGGLES_QUANT_GATE_MIN (default 0.99).
/// Below the threshold the run is REJECTED back to f32 — the bench then
/// measures the full-precision path instead of publishing numbers from an
/// extractor that relabels images. The observed agreement is recorded in
/// the JSON perf record as `quant_agreement` either way.

namespace goggles::bench {

/// \brief Applies the agreement gate to a freshly built bench context.
/// No-op when the extractor already runs f32. Mutates the context's
/// extractor (precision flips), so call before any task runs and never
/// concurrently with extraction.
inline void GateQuantizedExtraction(eval::RunnerContext* ctx,
                                    const BenchScale& scale) {
  features::FeatureExtractor& extractor = *ctx->extractor;
  const ConvPrecision precision = extractor.inference_precision();
  if (precision == ConvPrecision::kF32) return;

  const double threshold = GetEnvDoubleOr("GOGGLES_QUANT_GATE_MIN", 0.99);
  int64_t agree = 0, total = 0;
  for (const std::string& dataset : data::EvaluationDatasetNames()) {
    std::vector<eval::LabelingTask> tasks =
        MakeDatasetTasks(dataset, scale, /*rep=*/0);
    if (tasks.empty()) continue;
    const eval::LabelingTask& task = tasks.front();

    extractor.SetInferencePrecision(ConvPrecision::kF32);
    LabelingResult f32_result;
    Result<double> f32_run = eval::RunGogglesLabeling(task, *ctx, &f32_result);
    f32_run.status().Abort("quant gate f32 labeling");

    extractor.SetInferencePrecision(precision);
    LabelingResult q_result;
    Result<double> q_run = eval::RunGogglesLabeling(task, *ctx, &q_result);
    q_run.status().Abort("quant gate quantized labeling");

    // The labeler may flip the class convention between runs only if the
    // dev anchors disagree, and they are part of the labels compared here,
    // so plain element-wise agreement is the right measure.
    const size_t n = f32_result.hard_labels.size();
    for (size_t i = 0; i < n && i < q_result.hard_labels.size(); ++i) {
      agree += f32_result.hard_labels[i] == q_result.hard_labels[i] ? 1 : 0;
    }
    total += static_cast<int64_t>(n);
  }

  const double agreement =
      total > 0 ? static_cast<double>(agree) / static_cast<double>(total)
                : 0.0;
  RecordBenchMetric("quant_agreement", agreement);
  const bool pass = agreement >= threshold;
  std::printf("quant gate: precision=%s agreement=%.4f threshold=%.2f -> %s\n",
              ConvPrecisionName(precision), agreement, threshold,
              pass ? "PASS (quantized extraction kept)"
                   : "REJECT (falling back to f32 extraction)");
  extractor.SetInferencePrecision(pass ? precision : ConvPrecision::kF32);
}

}  // namespace goggles::bench
