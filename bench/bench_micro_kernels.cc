/// \file bench_micro_kernels.cc
/// \brief google-benchmark microbenchmarks for the computational kernels
/// behind the paper's pipeline: GEMM/conv (backbone), prototype affinity
/// scoring (§3.2), base-GMM and Bernoulli-ensemble EM (§4.2), the
/// assignment solver for cluster mapping (§4.3), the theory DP (§4.4),
/// HOG extraction and truncated SVD (baselines). Supports the §5.3
/// running-time discussion (base models parallelize across slices).

#include <benchmark/benchmark.h>

#include "baselines/kmeans.h"
#include "data/raster.h"
#include "features/hog.h"
#include "goggles/base_gmm.h"
#include "goggles/ensemble.h"
#include "goggles/theory.h"
#include "linalg/hungarian.h"
#include "linalg/kernels.h"
#include "linalg/svd.h"
#include "tensor/gemm.h"
#include "tensor/isa.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace goggles {
namespace {

void BM_SGemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<float> a(static_cast<size_t>(n) * n), b(a.size()), c(a.size());
  for (auto& v : a) v = static_cast<float>(rng.Gaussian());
  for (auto& v : b) v = static_cast<float>(rng.Gaussian());
  for (auto _ : state) {
    SGemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
          c.data(), n);
    benchmark::DoNotOptimize(c[0]);
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_SGemm)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_DGemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<double> a(static_cast<size_t>(n) * n), b(a.size()), c(a.size());
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  for (auto _ : state) {
    DGemm(false, false, n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
          c.data(), n);
    benchmark::DoNotOptimize(c[0]);
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_DGemm)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

/// The EM fit cores' actual GEMM shape: a tall-skinny product against a
/// K-component panel, with the design matrix prepacked once per fit.
void BM_DGemmPackedSkinny(benchmark::State& state) {
  const int64_t n = 200, d = 400, k = 2;
  Rng rng(12);
  std::vector<double> a(static_cast<size_t>(n * d)), b(static_cast<size_t>(k * d));
  std::vector<double> c(static_cast<size_t>(n * k));
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  const DGemmPackedA packed = DGemmPackOperandA(false, n, d, a.data(), d);
  for (auto _ : state) {
    DGemmWithPackedA(packed, /*transpose_b=*/true, k, b.data(), d, 0.0,
                     c.data(), k);
    benchmark::DoNotOptimize(c[0]);
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * d * k);
}
BENCHMARK(BM_DGemmPackedSkinny)->Unit(benchmark::kMicrosecond);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(2);
  Tensor x = Tensor::RandomNormal({8, 16, 32, 32}, 1.0f, &rng);
  Tensor w = Tensor::RandomNormal({32, 16, 3, 3}, 0.1f, &rng);
  Tensor b = Tensor::Zeros({32});
  for (auto _ : state) {
    auto y = Conv2dForward(x, w, b, {1, 1});
    benchmark::DoNotOptimize(y.ok());
  }
}
BENCHMARK(BM_Conv2dForward)->Unit(benchmark::kMillisecond);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(3);
  Tensor x = Tensor::RandomNormal({8, 16, 32, 32}, 1.0f, &rng);
  Tensor w = Tensor::RandomNormal({32, 16, 3, 3}, 0.1f, &rng);
  Tensor b = Tensor::Zeros({32});
  auto y = Conv2dForward(x, w, b, {1, 1});
  y.status().Abort("fwd");
  Tensor dy = Tensor::RandomNormal(y->shape(), 1.0f, &rng);
  for (auto _ : state) {
    auto grads = Conv2dBackward(x, w, dy, {1, 1});
    benchmark::DoNotOptimize(grads.ok());
  }
}
BENCHMARK(BM_Conv2dBackward)->Unit(benchmark::kMillisecond);

void BM_CosineKernel(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(4);
  std::vector<float> a(static_cast<size_t>(d)), b(a.size());
  for (auto& v : a) v = static_cast<float>(rng.Gaussian());
  for (auto& v : b) v = static_cast<float>(rng.Gaussian());
  for (auto _ : state) {
    benchmark::DoNotOptimize(CosineSimilarityF(a.data(), b.data(), d));
  }
}
BENCHMARK(BM_CosineKernel)->Arg(8)->Arg(64)->Arg(512);

/// Eq. 2 inner loop: one prototype against all positions of a filter map.
void BM_PrototypeAffinityScore(benchmark::State& state) {
  const int area = static_cast<int>(state.range(0));
  const int channels = 32;
  Rng rng(5);
  std::vector<float> positions(static_cast<size_t>(area) * channels);
  std::vector<float> proto(static_cast<size_t>(channels));
  for (auto& v : positions) v = static_cast<float>(rng.Gaussian());
  for (auto& v : proto) v = static_cast<float>(rng.Gaussian());
  NormalizeF(proto.data(), channels);
  for (int p = 0; p < area; ++p) {
    NormalizeF(positions.data() + static_cast<size_t>(p) * channels, channels);
  }
  for (auto _ : state) {
    float best = -1.0f;
    for (int p = 0; p < area; ++p) {
      best = std::max(best,
                      DotF(positions.data() + static_cast<size_t>(p) * channels,
                           proto.data(), channels));
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_PrototypeAffinityScore)->Arg(16)->Arg(64)->Arg(256);

void BM_DiagonalGmmFit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  Matrix x(n, n);
  for (int64_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Uniform();
  for (auto _ : state) {
    GmmConfig config;
    config.num_components = 2;
    config.num_restarts = 1;
    DiagonalGmm gmm(config);
    benchmark::DoNotOptimize(gmm.Fit(x).ok());
  }
}
BENCHMARK(BM_DiagonalGmmFit)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_BernoulliMixtureFit(benchmark::State& state) {
  const int alpha = static_cast<int>(state.range(0));
  Rng rng(7);
  Matrix b(150, 2 * alpha);
  for (int64_t i = 0; i < b.size(); ++i) {
    b.data()[i] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
  }
  for (auto _ : state) {
    BernoulliMixtureConfig config;
    config.num_components = 2;
    config.num_restarts = 1;
    BernoulliMixture mix(config);
    benchmark::DoNotOptimize(mix.Fit(b).ok());
  }
}
BENCHMARK(BM_BernoulliMixtureFit)->Arg(10)->Arg(50)
    ->Unit(benchmark::kMillisecond);

void BM_HungarianAssignment(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(8);
  Matrix cost(k, k);
  for (int64_t i = 0; i < cost.size(); ++i) cost.data()[i] = rng.Uniform();
  for (auto _ : state) {
    auto a = SolveAssignmentMin(cost);
    benchmark::DoNotOptimize(a.ok());
  }
}
BENCHMARK(BM_HungarianAssignment)->Arg(2)->Arg(43)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_TheoryDp(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(CorrectMappingProbabilityLowerBound(4, 40, 0.8));
  }
}
BENCHMARK(BM_TheoryDp)->Unit(benchmark::kMicrosecond);

void BM_HogDescriptor(benchmark::State& state) {
  data::Image img(3, 32, 32, 0.3f);
  data::DrawFilledCircle(&img, 16, 16, 9, {0.9f, 0.4f, 0.4f});
  for (auto _ : state) {
    auto hog = features::ComputeHog(img);
    benchmark::DoNotOptimize(hog.ok());
  }
}
BENCHMARK(BM_HogDescriptor)->Unit(benchmark::kMicrosecond);

void BM_TruncatedSvd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(9);
  Matrix a(n, 8 * n);
  for (int64_t i = 0; i < a.size(); ++i) a.data()[i] = rng.Uniform();
  for (auto _ : state) {
    auto svd = TruncatedSvd(a, 2, 30);
    benchmark::DoNotOptimize(svd.ok());
  }
}
BENCHMARK(BM_TruncatedSvd)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_KMeansFit(benchmark::State& state) {
  Rng rng(10);
  Matrix x(200, 400);
  for (int64_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();
  for (auto _ : state) {
    baselines::KMeansConfig config;
    config.num_clusters = 2;
    config.num_restarts = 1;
    baselines::KMeans km(config);
    benchmark::DoNotOptimize(km.Fit(x).ok());
  }
}
BENCHMARK(BM_KMeansFit)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace goggles

// Expanded BENCHMARK_MAIN() so the JSON context carries the ISA tier the
// run dispatched to plus the host's cpu flags — kernel numbers are only
// comparable within one tier, and the trajectory file mixes machines.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("goggles_isa",
                              goggles::IsaTierName(goggles::ActiveIsaTier()));
  benchmark::AddCustomContext("goggles_cpu_flags",
                              goggles::HostCpuFlagsString());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
