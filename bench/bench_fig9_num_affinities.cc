/// \file bench_fig9_num_affinities.cc
/// \brief Reproduces **Figure 9** of the paper: GOGGLES labeling accuracy
/// as the number of affinity functions grows from 5 to the full 50.
///
/// The full 50-function affinity matrix is built once per task; prefixes of
/// the (round-robin layer-ordered) function list are evaluated by slicing
/// the corresponding column blocks, so every sweep point sees the same
/// underlying scores.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "goggles/hierarchical.h"
#include "goggles/pipeline.h"
#include "util/table.h"

namespace goggles::bench {
namespace {

const std::vector<int> kFunctionCounts = {5, 10, 20, 30, 40, 50};

Matrix SliceFunctionPrefix(const Matrix& affinity, int n, int num_functions) {
  return affinity.Block(0, 0, affinity.rows(),
                        static_cast<int64_t>(num_functions) * n);
}

void RunExperiment() {
  BenchScale scale = GetBenchScale();
  scale.num_pairs = std::min(scale.num_pairs, 3);
  Banner("Figure 9 — labeling accuracy vs number of affinity functions",
         scale);
  eval::RunnerContext ctx = MakeBenchContext();

  std::map<std::string, std::map<int, std::vector<double>>> curves;
  for (const std::string& dataset : data::EvaluationDatasetNames()) {
    for (int rep = 0; rep < EffectiveReps(dataset, scale); ++rep) {
      for (const eval::LabelingTask& task :
           MakeDatasetTasks(dataset, scale, rep)) {
        GogglesPipeline pipeline(ctx.extractor, ctx.goggles);
        Result<Matrix> affinity = pipeline.BuildAffinity(task.train.images);
        affinity.status().Abort("affinity");
        const int n = static_cast<int>(task.train.size());
        HierarchicalLabeler labeler(ctx.goggles.inference);
        for (int count : kFunctionCounts) {
          Matrix sliced = SliceFunctionPrefix(*affinity, n, count);
          Result<LabelingResult> result =
              labeler.Fit(sliced, task.dev_indices, task.dev_labels, 2);
          result.status().Abort("inference");
          curves[dataset][count].push_back(eval::AccuracyExcluding(
              result->hard_labels, task.train.labels, task.dev_indices));
        }
      }
    }
    std::printf("  [%s done]\n", dataset.c_str());
  }

  AsciiTable table(
      "Figure 9 (ours): labeling accuracy (%) vs # affinity functions");
  std::vector<std::string> header = {"Dataset"};
  for (int c : kFunctionCounts) header.push_back(StrFormat("a=%d", c));
  table.SetHeader(header);
  for (const std::string& dataset : data::EvaluationDatasetNames()) {
    std::vector<std::string> row = {dataset};
    for (int c : kFunctionCounts) {
      row.push_back(Pct(eval::Mean(curves[dataset][c])));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "Shape check (paper Fig. 9): accuracy generally increases (or\n"
      "saturates) as more affinity functions provide more weak signals.\n");
}

void BM_InferencePerFunctionCount(benchmark::State& state) {
  const int alpha = static_cast<int>(state.range(0));
  Rng rng(9);
  const int n = 80;
  std::vector<int> truth(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) truth[static_cast<size_t>(i)] = i % 2;
  Matrix a(n, static_cast<int64_t>(alpha) * n);
  for (int f = 0; f < alpha; ++f) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        const double base = truth[static_cast<size_t>(i)] ==
                                    truth[static_cast<size_t>(j)]
                                ? 0.8
                                : 0.2;
        a(i, static_cast<int64_t>(f) * n + j) = base + rng.Gaussian() * 0.1;
      }
    }
  }
  goggles::HierarchicalLabeler labeler{goggles::HierarchicalConfig{}};
  std::vector<int> dev_idx = {0, 1, 2, 3};
  std::vector<int> dev_lab = {0, 1, 0, 1};
  for (auto _ : state) {
    auto result = labeler.Fit(a, dev_idx, dev_lab, 2);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_InferencePerFunctionCount)
    ->Arg(5)
    ->Arg(25)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace goggles::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  goggles::bench::RunExperiment();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
