/// \file bench_fig7_devset_theory.cc
/// \brief Reproduces **Figure 7** of the paper: the theoretical lower bound
/// (Theorem 1) on the probability of a correct cluster-to-class mapping as
/// a function of the development set size, for K = 2 and several labeling
/// accuracies eta. Computed with the O(K d^2) dynamic program of §4.4.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "goggles/theory.h"
#include "util/table.h"

namespace goggles::bench {
namespace {

void RunExperiment() {
  const BenchScale scale = GetBenchScale();
  Banner("Figure 7 — dev-set size vs P(correct cluster-class mapping), K=2",
         scale);

  const std::vector<double> etas = {0.6, 0.7, 0.8, 0.9};
  const std::vector<int> dev_sizes = {1, 2, 3, 4, 5, 6, 8, 10, 12, 15, 20, 25, 30};

  AsciiTable table(
      "Theorem 1 lower bound on P(correct mapping); d = dev examples/class "
      "(total dev set = 2d)");
  std::vector<std::string> header = {"d", "total"};
  for (double eta : etas) header.push_back(StrFormat("eta=%.1f", eta));
  table.SetHeader(header);
  for (int d : dev_sizes) {
    std::vector<std::string> row = {StrFormat("%d", d), StrFormat("%d", 2 * d)};
    for (double eta : etas) {
      row.push_back(FormatDouble(
          CorrectMappingProbabilityLowerBound(2, d, eta), 4));
    }
    table.AddRow(row);
  }
  table.Print();

  // ASCII curves, one per eta (the paper's Figure 7 panel).
  std::printf("\nP(correct mapping) vs d (each column = one d, height = P):\n");
  for (double eta : etas) {
    std::printf("\n  eta = %.1f\n", eta);
    for (int level = 10; level >= 1; --level) {
      std::printf("  %4.1f |", level / 10.0);
      for (int d = 1; d <= 30; ++d) {
        const double p = CorrectMappingProbabilityLowerBound(2, d, eta);
        std::printf("%c", p >= level / 10.0 ? '#' : ' ');
      }
      std::printf("|\n");
    }
    std::printf("       +%s+\n        d = 1..30\n", std::string(30, '-').c_str());
  }

  AsciiTable req("Required dev examples/class for P(correct) >= 0.95");
  req.SetHeader({"eta", "required d", "required total (2d)"});
  for (double eta : etas) {
    const int d = RequiredDevPerClass(2, eta, 0.95);
    if (d >= 0) RecordBenchMetric(StrFormat("required_d_eta_%.1f", eta), d);
    req.AddRow({StrFormat("%.1f", eta),
                d < 0 ? "-" : StrFormat("%d", d),
                d < 0 ? "-" : StrFormat("%d", 2 * d)});
  }
  req.Print();
  std::printf(
      "Shape check (paper Fig. 7): at eta = 0.8 roughly 20 total dev\n"
      "examples push P(correct) close to 1; higher eta needs far fewer.\n"
      "(The paper also notes the bound is loose: empirically 5/class is\n"
      "enough on every dataset — see bench_fig8_devset_size.)\n");
}

void BM_TheoryDpBound(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        goggles::CorrectMappingProbabilityLowerBound(4, d, 0.8));
  }
}
BENCHMARK(BM_TheoryDpBound)->Arg(10)->Arg(40)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace goggles::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  goggles::bench::RunExperiment();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
