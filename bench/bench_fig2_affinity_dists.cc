/// \file bench_fig2_affinity_dists.cc
/// \brief Reproduces **Figure 2** of the paper: the distributions of
/// affinity scores for instance pairs of the same class (blue in the paper)
/// vs different classes (yellow), for a highly informative, a weakly
/// informative and an uninformative affinity function.
///
/// Functions are ranked by the AUC of same-class vs different-class scores;
/// the best / median / worst functions play the roles of f1 / f2 / f3.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.h"
#include "goggles/pipeline.h"
#include "util/table.h"

namespace goggles::bench {
namespace {

struct FunctionStats {
  int index = 0;
  double auc = 0.5;
  std::vector<double> same_scores;
  std::vector<double> diff_scores;
};

void PrintHistogramPair(const FunctionStats& stats, const char* role) {
  constexpr int kBins = 24;
  constexpr double kLo = -1.0, kHi = 1.0;
  std::vector<int> same(kBins, 0), diff(kBins, 0);
  auto binof = [&](double v) {
    int b = static_cast<int>((v - kLo) / (kHi - kLo) * kBins);
    return std::clamp(b, 0, kBins - 1);
  };
  for (double v : stats.same_scores) ++same[static_cast<size_t>(binof(v))];
  for (double v : stats.diff_scores) ++diff[static_cast<size_t>(binof(v))];
  int max_count = 1;
  for (int c : same) max_count = std::max(max_count, c);
  for (int c : diff) max_count = std::max(max_count, c);

  std::printf("\n%s: affinity function #%d (AUC %.3f)\n", role, stats.index,
              stats.auc);
  std::printf("  score      same-class (S)                 diff-class (D)\n");
  for (int b = 0; b < kBins; ++b) {
    const double lo = kLo + (kHi - kLo) * b / kBins;
    const int s_len = 28 * same[static_cast<size_t>(b)] / max_count;
    const int d_len = 28 * diff[static_cast<size_t>(b)] / max_count;
    std::printf("  %+5.2f  |%-28.*s|%-28.*s|\n", lo, s_len,
                "SSSSSSSSSSSSSSSSSSSSSSSSSSSS", d_len,
                "DDDDDDDDDDDDDDDDDDDDDDDDDDDD");
  }
}

void RunExperiment() {
  const BenchScale scale = GetBenchScale();
  Banner("Figure 2 — same-class vs different-class affinity distributions",
         scale);
  eval::RunnerContext ctx = MakeBenchContext();
  eval::LabelingTask task = MakeDatasetTasks("birds", scale, 0)[0];
  std::printf("task: %s (n = %lld)\n", task.task_name.c_str(),
              static_cast<long long>(task.train.size()));

  GogglesPipeline pipeline(ctx.extractor, ctx.goggles);
  Result<Matrix> affinity = pipeline.BuildAffinity(task.train.images);
  affinity.status().Abort("affinity");
  const int n = static_cast<int>(task.train.size());
  const int alpha = static_cast<int>(affinity->cols() / n);

  std::vector<FunctionStats> stats(static_cast<size_t>(alpha));
  for (int f = 0; f < alpha; ++f) {
    FunctionStats& s = stats[static_cast<size_t>(f)];
    s.index = f;
    std::vector<double> scores;
    std::vector<int> is_same;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const double v = (*affinity)(i, static_cast<int64_t>(f) * n + j);
        const bool same = task.train.labels[static_cast<size_t>(i)] ==
                          task.train.labels[static_cast<size_t>(j)];
        scores.push_back(v);
        is_same.push_back(same ? 1 : 0);
        (same ? s.same_scores : s.diff_scores).push_back(v);
      }
    }
    s.auc = eval::AucRoc(scores, is_same);
  }

  std::vector<const FunctionStats*> ranked;
  for (const auto& s : stats) ranked.push_back(&s);
  std::sort(ranked.begin(), ranked.end(),
            [](const FunctionStats* a, const FunctionStats* b) {
              return a->auc > b->auc;
            });

  AsciiTable table("Per-function separation (AUC of same vs diff scores)");
  table.SetHeader({"rank", "function", "AUC", "mean(same)", "mean(diff)"});
  for (size_t r = 0; r < ranked.size(); r += 7) {
    table.AddRow({StrFormat("%zu", r + 1), StrFormat("#%d", ranked[r]->index),
                  FormatDouble(ranked[r]->auc, 3),
                  FormatDouble(eval::Mean(ranked[r]->same_scores), 3),
                  FormatDouble(eval::Mean(ranked[r]->diff_scores), 3)});
  }
  table.Print();

  PrintHistogramPair(*ranked.front(), "f1 (most informative)");
  PrintHistogramPair(*ranked[ranked.size() / 2], "f2 (limited power)");
  PrintHistogramPair(*ranked.back(), "f3 (uninformative)");
  std::printf(
      "\nShape check (paper Fig. 2): f1 separates same/diff cleanly, f2\n"
      "partially, f3 overlaps almost entirely (AUC near 0.5).\n");
}

void BM_PairwiseAucRanking(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> scores(10000);
  std::vector<int> labels(10000);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.Uniform();
    labels[i] = rng.Bernoulli(0.5) ? 1 : 0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(goggles::eval::AucRoc(scores, labels));
  }
}
BENCHMARK(BM_PairwiseAucRanking)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace goggles::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  goggles::bench::RunExperiment();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
