#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "data/registry.h"
#include "eval/backbone.h"
#include "eval/metrics.h"
#include "eval/runners.h"
#include "eval/tasks.h"
#include "util/env.h"
#include "util/string_util.h"

/// \file bench_common.h
/// \brief Shared plumbing for the experiment benches: workload scale
/// selection, the pretrained backbone, and small formatting helpers.
///
/// Scale is controlled with the GOGGLES_BENCH_SCALE environment variable:
/// "small" (default; reduced pairs/repetitions so the full bench directory
/// runs in minutes on a laptop) or "paper" (the paper's protocol: 10 class
/// pairs, 10 repetitions).

namespace goggles::bench {

/// \brief Workload sizing knobs resolved from the environment.
struct BenchScale {
  int repetitions;        ///< experiment repetitions averaged per cell
  int num_pairs;          ///< class-pair tasks for multi-class corpora
  int binary_per_class;   ///< images/class for the 2-class corpora
  std::string name;
};

inline BenchScale GetBenchScale() {
  BenchScale scale;
  const std::string mode = GetEnvOr("GOGGLES_BENCH_SCALE", "small");
  if (mode == "paper") {
    scale.repetitions = 10;
    scale.num_pairs = 10;
    scale.binary_per_class = 120;
    scale.name = "paper";
  } else {
    scale.repetitions = 2;
    scale.num_pairs = 4;
    scale.binary_per_class = 90;
    scale.name = "small";
  }
  return scale;
}

/// \brief Builds the default runner context (pretrained backbone, cached
/// under /tmp/goggles_cache or $GOGGLES_CACHE_DIR).
inline eval::RunnerContext MakeBenchContext() {
  eval::BackboneOptions options;
  auto extractor = eval::GetPretrainedExtractor(options);
  extractor.status().Abort("bench backbone");
  eval::RunnerContext ctx;
  ctx.extractor = *extractor;
  return ctx;
}

/// \brief Repetitions for one dataset: binary corpora yield a single task
/// per repetition (vs `num_pairs` for the multi-class ones), so they get
/// proportionally more repetitions to smooth run-to-run variance.
inline int EffectiveReps(const std::string& dataset, const BenchScale& scale) {
  if (dataset == "birds" || dataset == "signs") return scale.repetitions;
  return scale.repetitions * 3;
}

/// \brief Task suites for all five evaluation datasets at the given scale,
/// with a per-repetition seed offset.
inline std::vector<eval::LabelingTask> MakeDatasetTasks(
    const std::string& dataset, const BenchScale& scale, int rep,
    int dev_per_class = 5) {
  eval::TaskSuiteConfig config;
  config.num_pairs = scale.num_pairs;
  config.dev_per_class = dev_per_class;
  config.seed = 1000 + static_cast<uint64_t>(rep) * 131;
  if (dataset != "birds" && dataset != "signs") {
    config.images_per_class = scale.binary_per_class;
  }
  auto tasks = eval::MakeTasks(dataset, config);
  tasks.status().Abort("MakeDatasetTasks");
  return std::move(*tasks);
}

/// \brief "97.83"-style percent formatting; "-" for negative sentinels.
inline std::string Pct(double fraction) {
  if (fraction < 0.0) return "-";
  return FormatPercent(fraction);
}

/// \brief Prints the standard bench banner.
inline void Banner(const char* title, const BenchScale& scale) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("scale=%s (GOGGLES_BENCH_SCALE=small|paper)\n", scale.name.c_str());
  std::printf("================================================================\n\n");
}

}  // namespace goggles::bench
