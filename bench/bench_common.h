#pragma once

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

#include "data/registry.h"
#include "eval/backbone.h"
#include "tensor/isa.h"
#include "eval/metrics.h"
#include "eval/runners.h"
#include "eval/tasks.h"
#include "util/env.h"
#include "util/string_util.h"
#include "util/timer.h"

/// \file bench_common.h
/// \brief Shared plumbing for the experiment benches: workload scale
/// selection, the pretrained backbone, small formatting helpers, and the
/// JSON perf-record hook behind the BENCH_*.json trajectory files.
///
/// Scale is controlled with the GOGGLES_BENCH_SCALE environment variable:
/// "small" (default; reduced pairs/repetitions so the full bench directory
/// runs in minutes on a laptop) or "paper" (the paper's protocol: 10 class
/// pairs, 10 repetitions).
///
/// Every bench that prints the standard Banner() also appends one
/// machine-readable JSON record (one line per run) to
/// `$GOGGLES_BENCH_JSON_DIR/BENCH_<name>.json` when the process exits.
/// The record carries the bench name, scale, build type, the kernel ISA
/// tier the run dispatched to plus the host's cpu flags (perf numbers are
/// only comparable within one tier), wall-clock seconds, a unix
/// timestamp, and any key/value metrics published via
/// RecordBenchMetric(). Set GOGGLES_BENCH_JSON_DIR="" to disable
/// (default: current directory); set GOGGLES_BENCH_NAME to override the
/// name derived from the banner.
///
/// Build-type policy: perf records from non-Release builds are
/// meaningless for the trajectory, so every record is tagged with the
/// build type this header was compiled under ("release" when NDEBUG is
/// set, "debug" otherwise; GOGGLES_BENCH_BUILD_TYPE overrides with the
/// exact CMake build type). bench/run_all.sh refuses to run against a
/// non-Release build dir unless GOGGLES_BENCH_ALLOW_NONRELEASE=1.

namespace goggles::bench {

/// \brief Workload sizing knobs resolved from the environment.
struct BenchScale {
  int repetitions;        ///< experiment repetitions averaged per cell
  int num_pairs;          ///< class-pair tasks for multi-class corpora
  int binary_per_class;   ///< images/class for the 2-class corpora
  std::string name;
};

inline BenchScale GetBenchScale() {
  BenchScale scale;
  const std::string mode = GetEnvOr("GOGGLES_BENCH_SCALE", "small");
  if (mode == "paper") {
    scale.repetitions = 10;
    scale.num_pairs = 10;
    scale.binary_per_class = 120;
    scale.name = "paper";
  } else {
    scale.repetitions = 2;
    scale.num_pairs = 4;
    scale.binary_per_class = 90;
    scale.name = "small";
  }
  return scale;
}

/// \brief Builds the default runner context (pretrained backbone, cached
/// under /tmp/goggles_cache or $GOGGLES_CACHE_DIR).
inline eval::RunnerContext MakeBenchContext() {
  eval::BackboneOptions options;
  auto extractor = eval::GetPretrainedExtractor(options);
  extractor.status().Abort("bench backbone");
  eval::RunnerContext ctx;
  ctx.extractor = *extractor;
  return ctx;
}

/// \brief Repetitions for one dataset: binary corpora yield a single task
/// per repetition (vs `num_pairs` for the multi-class ones), so they get
/// proportionally more repetitions to smooth run-to-run variance.
inline int EffectiveReps(const std::string& dataset, const BenchScale& scale) {
  if (dataset == "birds" || dataset == "signs") return scale.repetitions;
  return scale.repetitions * 3;
}

/// \brief Task suites for all five evaluation datasets at the given scale,
/// with a per-repetition seed offset.
inline std::vector<eval::LabelingTask> MakeDatasetTasks(
    const std::string& dataset, const BenchScale& scale, int rep,
    int dev_per_class = 5) {
  eval::TaskSuiteConfig config;
  config.num_pairs = scale.num_pairs;
  config.dev_per_class = dev_per_class;
  config.seed = 1000 + static_cast<uint64_t>(rep) * 131;
  if (dataset != "birds" && dataset != "signs") {
    config.images_per_class = scale.binary_per_class;
  }
  auto tasks = eval::MakeTasks(dataset, config);
  tasks.status().Abort("MakeDatasetTasks");
  return std::move(*tasks);
}

/// \brief "97.83"-style percent formatting; "-" for negative sentinels.
inline std::string Pct(double fraction) {
  if (fraction < 0.0) return "-";
  return FormatPercent(fraction);
}

/// \brief Build type this translation unit was compiled under, for the
/// perf-record build_type tag. GOGGLES_BENCH_BUILD_TYPE (set by
/// run_all.sh from the CMake cache) takes precedence; the NDEBUG-derived
/// fallback distinguishes release-family builds from plain Debug.
inline std::string BenchBuildType() {
  const std::string from_env = GetEnvOr("GOGGLES_BENCH_BUILD_TYPE", "");
  if (!from_env.empty()) return from_env;
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// \brief Lowercase [a-z0-9_] slug for filenames and JSON string fields.
inline std::string SanitizeBenchName(const std::string& title) {
  std::string out;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!out.empty() && out.back() != '_') {
      out.push_back('_');
    }
    if (out.size() >= 48) break;
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out.empty() ? "unnamed" : out;
}

/// \brief Default trajectory name for this process: the binary name minus
/// its "bench_" prefix, so direct runs and run_all.sh (which exports
/// GOGGLES_BENCH_NAME the same way) append to the same BENCH_<name>.json.
/// Falls back to the banner title off glibc.
inline std::string DefaultBenchName(const std::string& banner_title) {
#ifdef __GLIBC__
  std::string bin = program_invocation_short_name;
  if (!bin.empty()) {
    if (bin.rfind("bench_", 0) == 0) bin = bin.substr(6);
    return SanitizeBenchName(bin);
  }
#endif
  return SanitizeBenchName(banner_title);
}

/// \brief Process-wide collector for the JSON perf record. Armed by
/// Banner(); flushes one JSON line at normal process exit.
class BenchJsonRecorder {
 public:
  static BenchJsonRecorder& Instance() {
    static BenchJsonRecorder recorder;
    return recorder;
  }

  /// \brief Arms the recorder (idempotent: the first call wins). The name
  /// is re-sanitized even when it comes from GOGGLES_BENCH_NAME: it lands
  /// in both a filename and a JSON string literal.
  void Begin(const std::string& bench, const std::string& scale) {
    if (armed_) return;
    armed_ = true;
    bench_ = SanitizeBenchName(GetEnvOr("GOGGLES_BENCH_NAME", bench));
    scale_ = scale;
    timer_.Restart();
  }

  /// \brief Publishes one numeric metric into the record (last write wins
  /// for duplicate keys on replay; records keep insertion order). Keys are
  /// sanitized at insert so deduplication matches what Flush() emits.
  void RecordMetric(const std::string& key, double value) {
    const std::string sanitized = SanitizeBenchName(key);
    for (auto& kv : metrics_) {
      if (kv.first == sanitized) {
        kv.second = value;
        return;
      }
    }
    metrics_.emplace_back(sanitized, value);
  }

  ~BenchJsonRecorder() { Flush(); }

 private:
  BenchJsonRecorder() = default;

  void Flush() {
    if (!armed_) return;
    const std::string dir = GetEnvOr("GOGGLES_BENCH_JSON_DIR", ".");
    if (dir.empty()) return;
    const std::string path = dir + "/BENCH_" + bench_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot append bench record to %s\n",
                   path.c_str());
      return;
    }
    std::fprintf(f,
                 "{\"bench\":\"%s\",\"scale\":\"%s\","
                 "\"build_type\":\"%s\","
                 "\"isa\":\"%s\",\"cpu_flags\":\"%s\","
                 "\"wall_seconds\":%.3f,\"timestamp_unix\":%lld",
                 bench_.c_str(), scale_.c_str(),
                 SanitizeBenchName(BenchBuildType()).c_str(),
                 IsaTierName(ActiveIsaTier()),
                 HostCpuFlagsString().c_str(),
                 timer_.ElapsedSeconds(),
                 static_cast<long long>(std::time(nullptr)));
    std::fprintf(f, ",\"metrics\":{");
    for (size_t i = 0; i < metrics_.size(); ++i) {
      // NaN/inf are not valid JSON tokens; record them as null.
      std::fprintf(f, "%s\"%s\":", i == 0 ? "" : ",",
                   metrics_[i].first.c_str());
      if (std::isfinite(metrics_[i].second)) {
        std::fprintf(f, "%.6g", metrics_[i].second);
      } else {
        std::fprintf(f, "null");
      }
    }
    std::fprintf(f, "}}\n");
    std::fclose(f);
  }

  bool armed_ = false;
  std::string bench_;
  std::string scale_;
  std::vector<std::pair<std::string, double>> metrics_;
  WallTimer timer_;
};

/// \brief Publishes a numeric metric into this run's JSON perf record
/// (no-op until Banner() has armed the recorder's name/scale; the metric
/// is still kept and flushed if Banner() runs later).
inline void RecordBenchMetric(const std::string& key, double value) {
  BenchJsonRecorder::Instance().RecordMetric(key, value);
}

/// \brief Prints the standard bench banner and arms the JSON perf-record
/// hook (flushed at process exit).
inline void Banner(const char* title, const BenchScale& scale) {
  BenchJsonRecorder::Instance().Begin(DefaultBenchName(title), scale.name);
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("scale=%s (GOGGLES_BENCH_SCALE=small|paper)\n", scale.name.c_str());
  std::printf("================================================================\n\n");
}

}  // namespace goggles::bench
