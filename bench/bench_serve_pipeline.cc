/// \file bench_serve_pipeline.cc
/// \brief Serving-path benchmark: the staged flowgraph vs the monolithic
/// worker pool on the same NDJSON request stream.
///
/// A session is fitted once; then the same stream of R `label` requests
/// is replayed through `serve::Service::Run` in four configurations:
///  - monolithic worker pool, coalescing off / on,
///  - pipelined flowgraph, extraction micro-batch 1 / 8.
///
/// In-flight concurrency is pinned to C in every row (queue_capacity for
/// the monolithic pool, admission_capacity for the pipeline), so the
/// throughput and latency numbers compare the execution model, not the
/// admission policy. Per-request latency is measured with a timestamping
/// stream pair: the input streambuf stamps the instant each request line
/// is consumed by the reader, the output streambuf stamps the instant its
/// response line is flushed; responses arrive in input order, so the two
/// stamp vectors pair up index-for-index.
///
/// Metrics land in BENCH_serve_pipeline.json via the bench_common.h hook;
/// the headline metric is `pipeline_speedup` = pipelined (batch 8) img/s
/// divided by monolithic (coalescing off) img/s, gated at >= 1.3x by
/// bench/check_serve_regression.py in CI.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <streambuf>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/json.h"
#include "serve/service.h"
#include "serve/session.h"
#include "util/clock.h"
#include "util/pipeline.h"
#include "util/table.h"

namespace goggles::bench {
namespace {

// C: concurrent in-flight requests. Kept at 2x the extraction batch cap
// so the decode stage refills the extract queue while a batch computes —
// with C == max_batch the batching stage would hold every admitted item
// and starve its own intake.
constexpr int kInFlight = 16;

/// \brief Input streambuf serving one request line per underflow and
/// stamping the instant the reader consumed it.
class TimestampedLineSource : public std::streambuf {
 public:
  TimestampedLineSource(const std::string& text, std::vector<int64_t>* stamps)
      : text_(text), stamps_(stamps) {}

 protected:
  int_type underflow() override {
    if (pos_ >= text_.size()) return traits_type::eof();
    size_t end = text_.find('\n', pos_);
    end = (end == std::string::npos) ? text_.size() : end + 1;
    stamps_->push_back(MonotonicMicros());
    char* base = const_cast<char*>(text_.data());
    setg(base + pos_, base + pos_, base + end);
    pos_ = end;
    return traits_type::to_int_type(*gptr());
  }

 private:
  const std::string& text_;
  std::vector<int64_t>* stamps_;
  size_t pos_ = 0;
};

/// \brief Output streambuf stamping the completion of each response line.
class TimestampingSink : public std::streambuf {
 public:
  explicit TimestampingSink(std::vector<int64_t>* stamps) : stamps_(stamps) {}
  const std::string& str() const { return buffer_; }

 protected:
  int_type overflow(int_type ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) {
      return traits_type::not_eof(ch);
    }
    Put(traits_type::to_char_type(ch));
    return ch;
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    for (std::streamsize i = 0; i < n; ++i) Put(s[i]);
    return n;
  }

 private:
  void Put(char c) {
    buffer_.push_back(c);
    if (c == '\n') stamps_->push_back(MonotonicMicros());
  }

  std::string buffer_;
  std::vector<int64_t>* stamps_;
};

std::string ImageToJson(const data::Image& img) {
  serve::JsonValue obj = serve::JsonValue::MakeObject();
  obj.Set("channels", serve::JsonValue(img.channels));
  obj.Set("height", serve::JsonValue(img.height));
  obj.Set("width", serve::JsonValue(img.width));
  serve::JsonValue pixels = serve::JsonValue::MakeArray();
  for (float v : img.pixels) {
    pixels.Append(serve::JsonValue(static_cast<double>(v)));
  }
  obj.Set("pixels", std::move(pixels));
  return obj.Dump();
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

struct RowResult {
  double seconds = 0.0;
  double img_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double error_rate = 0.0;
};

/// \brief Fraction of NDJSON response lines carrying `"ok":false`.
double ErrorRate(const std::string& responses, int requests) {
  if (requests <= 0) return 0.0;
  int errors = 0;
  size_t pos = 0;
  while ((pos = responses.find("\"ok\":false", pos)) != std::string::npos) {
    ++errors;
    ++pos;
  }
  return static_cast<double>(errors) / static_cast<double>(requests);
}

RowResult ReplayStream(const std::shared_ptr<const serve::Session>& session,
                       const serve::ServiceConfig& config,
                       const std::string& stream, int requests) {
  serve::Service service(session, config);
  std::vector<int64_t> in_stamps;
  std::vector<int64_t> out_stamps;
  in_stamps.reserve(static_cast<size_t>(requests));
  out_stamps.reserve(static_cast<size_t>(requests));
  TimestampedLineSource source(stream, &in_stamps);
  TimestampingSink sink(&out_stamps);
  std::istream in(&source);
  std::ostream out(&sink);

  WallTimer timer;
  Status status = service.Run(in, out);
  RowResult row;
  row.seconds = timer.ElapsedSeconds();
  status.Abort("Service::Run");
  if (in_stamps.size() != static_cast<size_t>(requests) ||
      out_stamps.size() != static_cast<size_t>(requests)) {
    std::fprintf(stderr, "stamp mismatch: %zu reads, %zu responses, %d sent\n",
                 in_stamps.size(), out_stamps.size(), requests);
    std::abort();
  }
  std::vector<double> latency_ms;
  latency_ms.reserve(in_stamps.size());
  for (size_t i = 0; i < in_stamps.size(); ++i) {
    latency_ms.push_back(
        static_cast<double>(out_stamps[i] - in_stamps[i]) / 1000.0);
  }
  row.img_per_s = static_cast<double>(requests) / std::max(row.seconds, 1e-9);
  row.p50_ms = Percentile(latency_ms, 0.50);
  row.p99_ms = Percentile(latency_ms, 0.99);
  row.error_rate = ErrorRate(sink.str(), requests);
  return row;
}

void RunExperiment() {
  BenchScale scale = GetBenchScale();
  Banner("Serving — staged flowgraph vs monolithic worker pool", scale);
  eval::RunnerContext ctx = MakeBenchContext();

  eval::TaskSuiteConfig task_config;
  task_config.num_pairs = 1;
  task_config.images_per_class = scale.name == "paper" ? 150 : 90;
  auto tasks = eval::MakeTasks("surface", task_config);
  tasks.status().Abort("tasks");
  const eval::LabelingTask& task = (*tasks)[0];

  auto fitted =
      serve::Session::Fit(ctx.extractor, task.train.images, task.dev_indices,
                          task.dev_labels, task.num_classes, ctx.goggles);
  fitted.status().Abort("Session::Fit");
  auto session =
      std::make_shared<const serve::Session>(std::move(*fitted));

  // Two request streams of R labels each, serialized once so every row
  // replays identical bytes (same split as bench_serve_multitask):
  //  - unique: every request a distinct held-out test image (cycled),
  //  - hot: two distinct images cycled — duplicate-heavy traffic, the
  //    regime extract-stage dedup and micro-batching are built for.
  const int requests = scale.name == "paper" ? 192 : 64;
  auto make_stream = [&](size_t distinct) {
    std::string stream;
    for (int i = 0; i < requests; ++i) {
      const data::Image& img =
          task.test.images[static_cast<size_t>(i) %
                           std::min(distinct, task.test.images.size())];
      stream += R"({"op":"label","image":)" + ImageToJson(img) + "}\n";
    }
    return stream;
  };
  const std::string unique_stream = make_stream(task.test.images.size());
  const std::string hot_stream = make_stream(2);

  // Monolithic rows: the pre-flowgraph worker pool, in-flight bounded by
  // queue_capacity. Coalescing on/off toggles the micro-batch window.
  serve::ServiceConfig mono;
  mono.pipeline.enabled = false;
  mono.queue_capacity = kInFlight;
  serve::ServiceConfig mono_coalesce = mono;
  mono_coalesce.coalesce.enabled = true;
  mono_coalesce.coalesce.max_batch = 8;
  mono_coalesce.coalesce.window_micros = 2000;

  // Pipelined rows: in-flight bounded by admission_capacity; batch 1
  // disables extraction micro-batching (the pipeline's coalescing
  // analogue), batch 8 enables it with a gather window matching the
  // monolithic coalescer's, so the two batching rows pay the same
  // latency budget.
  serve::ServiceConfig pipe1;
  pipe1.pipeline.admission_capacity = kInFlight;
  pipe1.pipeline.max_batch = 1;
  // One extraction consumer: round-robin across two would split the
  // arrival trickle so neither accumulates a full batch on the small
  // machines this bench targets.
  pipe1.pipeline.extract_threads = 1;
  serve::ServiceConfig pipe8 = pipe1;
  pipe8.pipeline.max_batch = 8;
  pipe8.pipeline.batch_wait_micros = 2000;

  struct NamedRow {
    const char* label;
    const char* metric_prefix;
    const serve::ServiceConfig* config;
  };
  const NamedRow rows[] = {
      {"monolithic, coalesce off", "mono_", &mono},
      {"monolithic, coalesce on", "mono_coalesce_", &mono_coalesce},
      {"pipelined, batch 1", "pipe_batch1_", &pipe1},
      {"pipelined, batch 8", "pipe_batch8_", &pipe8},
  };
  const struct {
    const char* label;
    const char* metric_prefix;
    const std::string* stream;
  } workloads[] = {
      {"unique", "unique_", &unique_stream},
      {"hot", "hot_", &hot_stream},
  };

  AsciiTable table(StrFormat(
      "Serve hot path: %d label requests, %d in flight", requests, kInFlight));
  table.SetHeader(
      {"workload", "mode", "wall (s)", "img/s", "p50 (ms)", "p99 (ms)"});
  double img_per_s[2][4] = {};
  for (int w = 0; w < 2; ++w) {
    for (int r = 0; r < 4; ++r) {
      const NamedRow& row = rows[r];
      // Warm-up replay outside the timers (first-touch allocation, thread
      // spin-up), then the measured replay.
      ReplayStream(session, *row.config, *workloads[w].stream, requests);
      const RowResult result =
          ReplayStream(session, *row.config, *workloads[w].stream, requests);
      img_per_s[w][r] = result.img_per_s;
      table.AddRow({workloads[w].label, row.label,
                    StrFormat("%.3f", result.seconds),
                    StrFormat("%.1f", result.img_per_s),
                    StrFormat("%.2f", result.p50_ms),
                    StrFormat("%.2f", result.p99_ms)});
      const std::string prefix =
          std::string(workloads[w].metric_prefix) + row.metric_prefix;
      RecordBenchMetric(prefix + "img_per_s", result.img_per_s);
      RecordBenchMetric(prefix + "p50_ms", result.p50_ms);
      RecordBenchMetric(prefix + "p99_ms", result.p99_ms);
      std::printf("  [%s / %s done]\n", workloads[w].label, row.label);
    }
  }

  // Headline: the flowgraph (extraction micro-batch 8) against the
  // default monolithic pool (coalescing off) on the duplicate-heavy
  // stream — the sustained-throughput regime the pipeline targets. The
  // unique-stream ratio is recorded alongside for the honest floor.
  const double speedup = img_per_s[1][3] / std::max(img_per_s[1][0], 1e-9);
  const double speedup_unique =
      img_per_s[0][3] / std::max(img_per_s[0][0], 1e-9);
  RecordBenchMetric("in_flight", kInFlight);
  RecordBenchMetric("requests", requests);
  RecordBenchMetric("pipeline_speedup", speedup);
  RecordBenchMetric("pipeline_speedup_unique", speedup_unique);

  // fault_recovery: the same unique stream with ~1% of requests replaced
  // by protocol-level faults (a pixels array of the wrong length). Each
  // bad line still produces exactly one `"ok":false` response carrying a
  // stable error_code, so the replay accounting is unchanged; the row
  // measures how much tail latency the error path costs the healthy
  // requests sharing the flowgraph.
  int faults = 0;
  std::string faulty_stream;
  {
    const std::string bad_image =
        R"({"channels":3,"height":2,"width":2,"pixels":[0.25]})";
    size_t line_start = 0;
    int i = 0;
    while (line_start < unique_stream.size()) {
      size_t line_end = unique_stream.find('\n', line_start);
      if (line_end == std::string::npos) line_end = unique_stream.size() - 1;
      if (i % 97 == 0) {
        faulty_stream +=
            R"({"op":"label","image":)" + bad_image + "}\n";
        ++faults;
      } else {
        faulty_stream +=
            unique_stream.substr(line_start, line_end - line_start + 1);
      }
      line_start = line_end + 1;
      ++i;
    }
  }
  ReplayStream(session, pipe8, faulty_stream, requests);  // warm-up
  const RowResult fault_row =
      ReplayStream(session, pipe8, faulty_stream, requests);
  table.AddRow({"unique+faults", "pipelined, batch 8",
                StrFormat("%.3f", fault_row.seconds),
                StrFormat("%.1f", fault_row.img_per_s),
                StrFormat("%.2f", fault_row.p50_ms),
                StrFormat("%.2f", fault_row.p99_ms)});
  RecordBenchMetric("fault_recovery_img_per_s", fault_row.img_per_s);
  RecordBenchMetric("fault_recovery_p50_ms", fault_row.p50_ms);
  RecordBenchMetric("fault_recovery_p99_ms", fault_row.p99_ms);
  RecordBenchMetric("fault_recovery_error_rate", fault_row.error_rate);
  RecordBenchMetric("fault_recovery_faults_injected", faults);

  table.Print();
  std::printf(
      "pipeline_speedup (hot stream, pipelined batch 8 vs monolithic "
      "coalesce off): %.2fx\n"
      "pipeline_speedup_unique (all-distinct stream): %.2fx\n"
      "The flowgraph overlaps the protocol stages with the model stages\n"
      "and fuses queued extractions into one deduped, batched GEMM;\n"
      "responses remain bit-identical to the serial path in every row.\n",
      speedup, speedup_unique);
  std::printf(
      "fault_recovery (unique stream, %d/%d requests malformed): "
      "%.1f img/s, p99 %.2f ms, error rate %.3f\n",
      faults, requests, fault_row.img_per_s, fault_row.p99_ms,
      fault_row.error_rate);
}

void BM_PipelineSubmitDrain(benchmark::State& state) {
  // Executor overhead floor: items through a 4-stage pipeline with no-op
  // stage bodies (queue hops + doorbells only, no model work).
  const int items = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Pipeline<int> pipe;
    for (const char* name : {"a", "b", "c", "d"}) {
      pipe.AddStage({name, 1, 64, 8}, [](std::vector<int>&) {});
    }
    std::atomic<int> sunk{0};
    pipe.Start([&](int&&) { sunk.fetch_add(1, std::memory_order_relaxed); });
    for (int i = 0; i < items; ++i) pipe.Submit(int(i), /*block=*/true);
    pipe.Drain();
    if (sunk.load() != items) state.SkipWithError("lost items");
  }
  state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_PipelineSubmitDrain)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace goggles::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  goggles::bench::RunExperiment();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
