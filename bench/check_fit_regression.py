#!/usr/bin/env python3
"""Gate a fresh micro-kernel run against the recorded perf trajectory.

Usage:
  check_fit_regression.py BASELINE_TRAJECTORY NEW_RUN_JSON \
      [--bench NAME]... [--factor 1.5]

BASELINE_TRAJECTORY is the repo's BENCH_micro_kernels.json (one compact
google-benchmark report per line, appended by bench/run_all.sh).
NEW_RUN_JSON is a single google-benchmark --benchmark_out report.

For every --bench (default: BM_DiagonalGmmFit/200), the baseline is the
LAST trajectory record that (a) contains the benchmark, (b) was tagged
goggles_build_type == "release" (records without the tag are skipped:
they predate the tagging or came from an ungated run), and (c) was
measured with the SAME google-benchmark library build type as the new
run (a debug-library record only gates a debug-library measurement and
vice versa — mixing the two compares different measurement machinery).
Per benchmark, the minimum real_time across repetition entries is used
on both sides (run with --benchmark_repetitions for a noise-robust
minimum). The check fails when new_min > factor * baseline_min.

Caveat: this is an absolute cross-run comparison; when the measuring
machine differs from the recording machine, the factor also absorbs the
hardware delta. 1.5x is the gate the perf trajectory prescribes for the
fit-path benches on comparable runners.

Exit codes: 0 ok, 1 regression, 2 usage/data error.
"""

import argparse
import json
import sys


def bench_real_time_ms(report, name):
    """Minimum real_time of `name` in ms across repetition ("iteration")
    entries, or None if absent."""
    best = None
    for bench in report.get("benchmarks", []):
        run_name = bench.get("run_name", bench.get("name"))
        if run_name != name or bench.get("run_type") == "aggregate":
            continue
        value = float(bench["real_time"])
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}.get(unit)
        if scale is None:
            raise ValueError(f"unknown time_unit {unit!r} for {name}")
        ms = value * scale
        best = ms if best is None else min(best, ms)
    return best


def record_lib_build_type(context):
    """The benchmark-library build type a record was measured with: the
    run_all.sh probe tag when present, else the library's self-report."""
    return context.get("goggles_benchmark_lib_build_type",
                       context.get("library_build_type", "unknown"))


def load_baseline(trajectory_path, name, lib_build_type):
    """Last release-tagged, library-matched record containing `name`."""
    baseline = None
    with open(trajectory_path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                report = json.loads(line)
            except json.JSONDecodeError as err:
                print(f"warning: {trajectory_path}:{line_no}: {err}",
                      file=sys.stderr)
                continue
            context = report.get("context", {})
            if context.get("goggles_build_type") != "release":
                continue
            if record_lib_build_type(context) != lib_build_type:
                continue
            value = bench_real_time_ms(report, name)
            if value is not None:
                baseline = value
    return baseline


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline_trajectory")
    parser.add_argument("new_run")
    parser.add_argument("--bench", action="append", default=[],
                        help="benchmark name to gate (repeatable; default "
                             "BM_DiagonalGmmFit/200)")
    parser.add_argument("--factor", type=float, default=1.5,
                        help="fail when new > factor * baseline")
    args = parser.parse_args()
    benches = args.bench or ["BM_DiagonalGmmFit/200"]

    with open(args.new_run, encoding="utf-8") as f:
        new_report = json.load(f)
    lib_build_type = record_lib_build_type(new_report.get("context", {}))

    failed = False
    for name in benches:
        new_ms = bench_real_time_ms(new_report, name)
        if new_ms is None:
            print(f"error: {name} missing from {args.new_run}",
                  file=sys.stderr)
            return 2
        baseline_ms = load_baseline(args.baseline_trajectory, name,
                                    lib_build_type)
        if baseline_ms is None:
            print(f"{name}: no release-tagged baseline measured with a "
                  f"'{lib_build_type}' benchmark library in "
                  f"{args.baseline_trajectory}; skipping (nothing "
                  "comparable to gate against)")
            continue
        limit_ms = baseline_ms * args.factor
        verdict = "OK" if new_ms <= limit_ms else "REGRESSION"
        print(f"{name}: new {new_ms:.3f} ms vs baseline {baseline_ms:.3f} ms "
              f"(limit {limit_ms:.3f} ms, x{args.factor:g}) -> {verdict}")
        if new_ms > limit_ms:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
