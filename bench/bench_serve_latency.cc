/// \file bench_serve_latency.cc
/// \brief Serving-path benchmark: fit a labeling session once, then
/// measure online incremental labeling against the full-refit baseline.
///
/// For several pool sizes N the bench reports
///  - full refit: `GogglesPipeline::Label` over pool + new images from
///    scratch (the batch-only path: O((N+B)^2) affinity scores + EM),
///  - incremental: `serve::Session::LabelBatch` of the B new images
///    against the fitted pool (O(B*N) scores + posterior evaluation),
///  - `LabelOne` latency percentiles (p50/p99) and throughput.
///
/// Metrics land in BENCH_serve_latency.json via the bench_common.h hook;
/// the headline metric is `poolN_speedup` = full-refit seconds divided by
/// incremental seconds at the largest pool size.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "goggles/pipeline.h"
#include "serve/json.h"
#include "serve/session.h"
#include "util/table.h"

namespace goggles::bench {
namespace {

constexpr int kNewImages = 16;   ///< online batch size B per request
constexpr int kLatencyCalls = 24;  ///< LabelOne samples for p50/p99

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

void RunExperiment() {
  BenchScale scale = GetBenchScale();
  Banner("Serving — online incremental labeling vs full refit", scale);
  eval::RunnerContext ctx = MakeBenchContext();

  // Pool sizes via the surface corpus' images_per_class knob (train split
  // keeps ~60% of 2*P images).
  const std::vector<int> per_class = scale.name == "paper"
                                         ? std::vector<int>{60, 120, 240}
                                         : std::vector<int>{30, 60, 90};

  AsciiTable table("Serving latency: full refit vs incremental labeling");
  table.SetHeader({"pool N", "refit (s)", StrFormat("batch%d (s)", kNewImages),
                   "speedup", "one p50 (ms)", "one p99 (ms)", "img/s"});

  double largest_speedup = 0.0;
  int largest_pool = 0;
  for (int p : per_class) {
    eval::TaskSuiteConfig task_config;
    task_config.num_pairs = 1;
    task_config.images_per_class = p;
    auto tasks = eval::MakeTasks("surface", task_config);
    tasks.status().Abort("tasks");
    const eval::LabelingTask& task = (*tasks)[0];
    const int pool_size = static_cast<int>(task.train.size());

    // New arrivals: held-out test images the session has never seen.
    std::vector<data::Image> fresh(
        task.test.images.begin(),
        task.test.images.begin() +
            std::min<size_t>(kNewImages, task.test.images.size()));

    // Baseline: the batch-only pipeline must refit on pool + new.
    std::vector<data::Image> pool_plus_new = task.train.images;
    pool_plus_new.insert(pool_plus_new.end(), fresh.begin(), fresh.end());
    GogglesPipeline pipeline(ctx.extractor, ctx.goggles);
    WallTimer timer;
    auto refit = pipeline.Label(pool_plus_new, task.dev_indices,
                                task.dev_labels, task.num_classes);
    refit.status().Abort("full refit");
    const double refit_seconds = timer.ElapsedSeconds();

    // Fit once (outside all timers), then serve.
    auto session =
        serve::Session::Fit(ctx.extractor, task.train.images, task.dev_indices,
                            task.dev_labels, task.num_classes, ctx.goggles);
    session.status().Abort("Session::Fit");

    timer.Restart();
    auto batch = session->LabelBatch(fresh);
    batch.status().Abort("LabelBatch");
    const double batch_seconds = timer.ElapsedSeconds();
    const double speedup = refit_seconds / std::max(batch_seconds, 1e-9);

    std::vector<double> one_millis;
    for (int call = 0; call < kLatencyCalls; ++call) {
      const data::Image& img =
          fresh[static_cast<size_t>(call) % fresh.size()];
      timer.Restart();
      auto one = session->LabelOne(img);
      one.status().Abort("LabelOne");
      one_millis.push_back(timer.ElapsedMillis());
    }
    const double p50 = Percentile(one_millis, 0.50);
    const double p99 = Percentile(one_millis, 0.99);
    const double throughput =
        static_cast<double>(fresh.size()) / std::max(batch_seconds, 1e-9);

    table.AddRow({StrFormat("%d", pool_size), StrFormat("%.3f", refit_seconds),
                  StrFormat("%.3f", batch_seconds),
                  StrFormat("%.1fx", speedup), StrFormat("%.2f", p50),
                  StrFormat("%.2f", p99), StrFormat("%.1f", throughput)});

    const std::string prefix = StrFormat("pool%d_", pool_size);
    RecordBenchMetric(prefix + "full_refit_seconds", refit_seconds);
    RecordBenchMetric(prefix + "label_batch_seconds", batch_seconds);
    RecordBenchMetric(prefix + "speedup", speedup);
    RecordBenchMetric(prefix + "label_one_p50_ms", p50);
    RecordBenchMetric(prefix + "label_one_p99_ms", p99);
    RecordBenchMetric(prefix + "throughput_img_per_s", throughput);
    if (pool_size >= largest_pool) {
      largest_pool = pool_size;
      largest_speedup = speedup;
    }
    std::printf("  [pool %d done]\n", pool_size);
  }
  RecordBenchMetric("largest_pool", largest_pool);
  RecordBenchMetric("largest_pool_speedup", largest_speedup);

  table.Print();
  std::printf(
      "Incremental labeling skips feature re-extraction of the pool and the\n"
      "entire EM refit; the speedup must widen with the pool size (the\n"
      "refit's affinity matrix alone grows as alpha*(N+B)^2).\n");
}

void BM_ServeJsonParse(benchmark::State& state) {
  // Front-end overhead: parsing a stats request line.
  const std::string line = "{\"op\":\"stats\"}";
  for (auto _ : state) {
    auto parsed = serve::JsonValue::Parse(line);
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_ServeJsonParse)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace goggles::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  goggles::bench::RunExperiment();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
