#!/usr/bin/env bash
# Runs every experiment bench and collects the JSON perf trajectory.
#
# Usage: bench/run_all.sh [BUILD_DIR] [BENCH...]
#   BUILD_DIR  directory with the built bench binaries (default: build)
#   BENCH      subset of bench names to run (default: all of them)
#
# Knobs (environment):
#   GOGGLES_BENCH_SCALE     small|paper workload scale (default: small)
#   GOGGLES_NUM_THREADS     worker threads for the parallel kernels
#   GOGGLES_BENCH_JSON_DIR  where BENCH_<name>.json records accumulate
#                           (default: the repo root, next to this script's
#                           parent directory)
#
# Each bench appends one JSON line per run to BENCH_<name>.json via the
# Banner() hook in bench_common.h; bench_micro_kernels (pure
# google-benchmark) writes its JSON report through --benchmark_out.

set -u -o pipefail

script_dir="$(cd "$(dirname "$0")" && pwd)"
repo_root="$(dirname "$script_dir")"
build_dir="${1:-build}"
shift 2>/dev/null || true

if [[ ! -d "$build_dir" ]]; then
  if [[ -d "$repo_root/$build_dir" ]]; then
    build_dir="$repo_root/$build_dir"
  else
    echo "error: build dir '$build_dir' not found; run cmake first" >&2
    exit 2
  fi
fi

# No colon: an explicitly empty GOGGLES_BENCH_JSON_DIR disables records
# (matching the bench_common.h contract); only an unset one defaults.
json_dir="${GOGGLES_BENCH_JSON_DIR-$repo_root}"
if [[ -n "$json_dir" ]]; then
  mkdir -p "$json_dir"
fi

all_benches=(
  bench_table1_labeling
  bench_table2_endmodel
  bench_fig2_affinity_dists
  bench_fig5_affinity_heatmap
  bench_fig7_devset_theory
  bench_fig8_devset_size
  bench_fig9_num_affinities
  bench_ablation_inference
  bench_serve_latency
  bench_micro_kernels
)
if [[ $# -gt 0 ]]; then
  benches=("$@")
else
  benches=("${all_benches[@]}")
fi

echo "scale=${GOGGLES_BENCH_SCALE:-small}  json_dir=${json_dir:-<records disabled>}"
failed=0
for bench in "${benches[@]}"; do
  bin="$build_dir/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build $build_dir)" >&2
    failed=1
    continue
  fi
  name="${bench#bench_}"
  echo
  echo ">>> $bench"
  if [[ "$bench" == bench_micro_kernels && -z "$json_dir" ]]; then
    "$bin" || failed=1
  elif [[ "$bench" == bench_micro_kernels ]]; then
    # --benchmark_out truncates its file; stage to a temp file and append
    # one compact line so this trajectory accumulates like the others.
    tmp_json="$(mktemp)"
    if "$bin" --benchmark_out="$tmp_json" --benchmark_out_format=json; then
      if command -v python3 >/dev/null 2>&1; then
        python3 -c 'import json,sys; print(json.dumps(json.load(open(sys.argv[1])), separators=(",",":")))' \
            "$tmp_json" >> "$json_dir/BENCH_${name}.json" || failed=1
      else
        tr -d '\n' < "$tmp_json" >> "$json_dir/BENCH_${name}.json"
        echo >> "$json_dir/BENCH_${name}.json"
      fi
    else
      failed=1
    fi
    rm -f "$tmp_json"
  else
    GOGGLES_BENCH_NAME="$name" GOGGLES_BENCH_JSON_DIR="$json_dir" \
        "$bin" || failed=1
  fi
done

echo
if [[ "$failed" -ne 0 ]]; then
  echo "bench run finished with failures" >&2
  exit 1
fi
if [[ -n "$json_dir" ]]; then
  echo "all benches done; trajectory records in $json_dir/BENCH_*.json"
else
  echo "all benches done (JSON records disabled)"
fi
