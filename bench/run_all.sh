#!/usr/bin/env bash
# Runs every experiment bench and collects the JSON perf trajectory.
#
# Usage: bench/run_all.sh [BUILD_DIR] [BENCH...]
#   BUILD_DIR  directory with the built bench binaries (default: build)
#   BENCH      subset of bench names to run (default: all of them)
#
# Knobs (environment):
#   GOGGLES_BENCH_SCALE     small|paper workload scale (default: small)
#   GOGGLES_NUM_THREADS     worker threads for the parallel kernels
#   GOGGLES_BENCH_JSON_DIR  where BENCH_<name>.json records accumulate
#                           (default: the repo root, next to this script's
#                           parent directory)
#   GOGGLES_BENCH_ALLOW_NONRELEASE=1
#                           run against a non-Release build dir anyway
#                           (loudly warned; records are tagged with the
#                           offending build type). By default the script
#                           REFUSES non-Release builds: debug-build perf
#                           records poison the BENCH_*.json trajectory.
#   GOGGLES_BENCH_ALLOW_DEBUG_BENCHLIB=1
#                           accept a google-benchmark LIBRARY that
#                           self-reports a debug build (see the library
#                           gate below). Needed with Debian's libbenchmark
#                           packages, which are compiled -O2 but without
#                           NDEBUG and therefore mis-report "debug".
#
# Each bench appends one JSON line per run to BENCH_<name>.json via the
# Banner() hook in bench_common.h; bench_micro_kernels (pure
# google-benchmark) writes its JSON report through --benchmark_out.

set -u -o pipefail

script_dir="$(cd "$(dirname "$0")" && pwd)"
repo_root="$(dirname "$script_dir")"
build_dir="${1:-build}"
shift 2>/dev/null || true

if [[ ! -d "$build_dir" ]]; then
  if [[ -d "$repo_root/$build_dir" ]]; then
    build_dir="$repo_root/$build_dir"
  else
    echo "error: build dir '$build_dir' not found; run cmake first" >&2
    exit 2
  fi
fi

# Build-type gate: perf records only mean something from an optimized
# build. Read the authoritative CMAKE_BUILD_TYPE from the build dir's
# cache; refuse anything but Release unless explicitly overridden, and
# tag every record with the build type either way.
build_type="unknown"
if [[ -f "$build_dir/CMakeCache.txt" ]]; then
  build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
      "$build_dir/CMakeCache.txt" | head -n 1)"
  build_type="${build_type:-unknown}"
fi
if [[ "$build_type" != "Release" ]]; then
  if [[ "${GOGGLES_BENCH_ALLOW_NONRELEASE:-0}" != "1" ]]; then
    echo "error: build dir '$build_dir' is CMAKE_BUILD_TYPE='$build_type'," >&2
    echo "       not Release — its timings would poison the BENCH_*.json" >&2
    echo "       perf trajectory. Rebuild with -DCMAKE_BUILD_TYPE=Release" >&2
    echo "       (cmake --preset release), or set" >&2
    echo "       GOGGLES_BENCH_ALLOW_NONRELEASE=1 to run anyway with" >&2
    echo "       records tagged \"build_type\":\"$(echo "$build_type" \
        | tr '[:upper:]' '[:lower:]')\"." >&2
    exit 2
  fi
  echo "WARNING: benching a '$build_type' build; records are tagged and" >&2
  echo "         must not be compared against Release records." >&2
fi
# Exact CMake build type (lowercased) for the JSON build_type tag.
export GOGGLES_BENCH_BUILD_TYPE="$(echo "$build_type" \
    | tr '[:upper:]' '[:lower:]')"

# google-benchmark LIBRARY build-type gate. The micro-kernel bench links
# the installed benchmark library, whose own NDEBUG state is what the
# JSON context's "library_build_type" field reports — it says nothing
# about the goggles build (that is the goggles_build_type context entry).
# A library without NDEBUG keeps its internal assertions live inside the
# measurement machinery, so a "debug" self-report is refused by default,
# the same way non-Release build dirs are. CAVEAT: Debian's libbenchmark
# packages are compiled -O2 but without NDEBUG and therefore self-report
# "debug"; set GOGGLES_BENCH_ALLOW_DEBUG_BENCHLIB=1 to accept such a
# library. Every micro-kernel record is tagged with the probed value
# (goggles_benchmark_lib_build_type) either way.
probe_bench_lib_build_type() {
  local bin="$1" tmp out=""
  tmp="$(mktemp)"
  # Quick real run (the DP micro-bench takes microseconds): an empty
  # filter would produce no JSON at all.
  if "$bin" --benchmark_filter='BM_TheoryDp' --benchmark_min_time=0.001 \
      --benchmark_out="$tmp" --benchmark_out_format=json >/dev/null 2>&1; then
    out="$(sed -n 's/.*"library_build_type": *"\([a-z]*\)".*/\1/p' "$tmp" \
        | head -n 1)"
  fi
  rm -f "$tmp"
  echo "${out:-unknown}"
}

# No colon: an explicitly empty GOGGLES_BENCH_JSON_DIR disables records
# (matching the bench_common.h contract); only an unset one defaults.
json_dir="${GOGGLES_BENCH_JSON_DIR-$repo_root}"
if [[ -n "$json_dir" ]]; then
  mkdir -p "$json_dir"
fi

all_benches=(
  bench_table1_labeling
  bench_table2_endmodel
  bench_fig2_affinity_dists
  bench_fig5_affinity_heatmap
  bench_fig7_devset_theory
  bench_fig8_devset_size
  bench_fig9_num_affinities
  bench_ablation_inference
  bench_serve_latency
  bench_serve_multitask
  bench_serve_pipeline
  bench_micro_kernels
)
if [[ $# -gt 0 ]]; then
  benches=("$@")
else
  benches=("${all_benches[@]}")
fi

echo "scale=${GOGGLES_BENCH_SCALE:-small}  json_dir=${json_dir:-<records disabled>}"
failed=0
for bench in "${benches[@]}"; do
  bin="$build_dir/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build $build_dir)" >&2
    failed=1
    continue
  fi
  name="${bench#bench_}"
  echo
  echo ">>> $bench"
  if [[ "$bench" == bench_micro_kernels ]]; then
    lib_build_type="$(probe_bench_lib_build_type "$bin")"
    if [[ "$lib_build_type" != "release" \
          && "${GOGGLES_BENCH_ALLOW_DEBUG_BENCHLIB:-0}" != "1" \
          && "${GOGGLES_BENCH_ALLOW_NONRELEASE:-0}" != "1" ]]; then
      echo "error: the google-benchmark library linked into $bench" >&2
      echo "       self-reports build type '$lib_build_type' (its own" >&2
      echo "       NDEBUG state) — its live assertions sit inside the" >&2
      echo "       measurement machinery. Link a Release benchmark" >&2
      echo "       library, or set GOGGLES_BENCH_ALLOW_DEBUG_BENCHLIB=1" >&2
      echo "       if the library is actually optimized (Debian's" >&2
      echo "       libbenchmark is -O2 but compiled without NDEBUG, so" >&2
      echo "       it mis-reports \"debug\")." >&2
      failed=1
      continue
    fi
  fi
  if [[ "$bench" == bench_micro_kernels && -z "$json_dir" ]]; then
    "$bin" "--benchmark_context=goggles_build_type=$GOGGLES_BENCH_BUILD_TYPE" \
        "--benchmark_context=goggles_benchmark_lib_build_type=$lib_build_type" \
        || failed=1
  elif [[ "$bench" == bench_micro_kernels ]]; then
    # --benchmark_out truncates its file; stage to a temp file and append
    # one compact line so this trajectory accumulates like the others.
    tmp_json="$(mktemp)"
    if "$bin" --benchmark_out="$tmp_json" --benchmark_out_format=json \
        "--benchmark_context=goggles_build_type=$GOGGLES_BENCH_BUILD_TYPE" \
        "--benchmark_context=goggles_benchmark_lib_build_type=$lib_build_type"; then
      if command -v python3 >/dev/null 2>&1; then
        python3 -c 'import json,sys; print(json.dumps(json.load(open(sys.argv[1])), separators=(",",":")))' \
            "$tmp_json" >> "$json_dir/BENCH_${name}.json" || failed=1
      else
        tr -d '\n' < "$tmp_json" >> "$json_dir/BENCH_${name}.json"
        echo >> "$json_dir/BENCH_${name}.json"
      fi
    else
      failed=1
    fi
    rm -f "$tmp_json"
  else
    GOGGLES_BENCH_NAME="$name" GOGGLES_BENCH_JSON_DIR="$json_dir" \
        "$bin" || failed=1
  fi
done

echo
if [[ "$failed" -ne 0 ]]; then
  echo "bench run finished with failures" >&2
  exit 1
fi
if [[ -n "$json_dir" ]]; then
  echo "all benches done; trajectory records in $json_dir/BENCH_*.json"
else
  echo "all benches done (JSON records disabled)"
fi
