/// \file bench_fig5_affinity_heatmap.cc
/// \brief Reproduces **Figure 5** of the paper: the affinity matrix
/// visualized as a heatmap with rows/columns sorted by class. Informative
/// functions show a block structure (bright same-class blocks), noisy ones
/// do not. Rendered as ASCII intensity ramps plus block statistics.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.h"
#include "goggles/pipeline.h"
#include "util/table.h"

namespace goggles::bench {
namespace {

/// Prints one function's N x N block as a downsampled ASCII heatmap with
/// instances sorted by class.
void PrintHeatmap(const Matrix& affinity, int f, int n,
                  const std::vector<int>& order, const char* title) {
  constexpr const char* kRamp = " .:-=+*#%@";
  constexpr int kCells = 30;
  std::printf("\n%s\n", title);
  double lo = 1e30, hi = -1e30;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double v = affinity(order[static_cast<size_t>(i)],
                                static_cast<int64_t>(f) * n +
                                    order[static_cast<size_t>(j)]);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const double span = hi > lo ? hi - lo : 1.0;
  const int cells = std::min(kCells, n);
  for (int cy = 0; cy < cells; ++cy) {
    std::printf("  ");
    for (int cx = 0; cx < cells; ++cx) {
      // Average the affinity over the cell.
      double acc = 0.0;
      int count = 0;
      for (int i = cy * n / cells; i < (cy + 1) * n / cells; ++i) {
        for (int j = cx * n / cells; j < (cx + 1) * n / cells; ++j) {
          acc += affinity(order[static_cast<size_t>(i)],
                          static_cast<int64_t>(f) * n +
                              order[static_cast<size_t>(j)]);
          ++count;
        }
      }
      const double v = count > 0 ? acc / count : lo;
      const int level = std::clamp(
          static_cast<int>((v - lo) / span * 9.999), 0, 9);
      std::printf("%c%c", kRamp[level], kRamp[level]);
    }
    std::printf("\n");
  }
}

void RunExperiment() {
  const BenchScale scale = GetBenchScale();
  Banner("Figure 5 — affinity matrix heatmap (rows/cols sorted by class)",
         scale);
  eval::RunnerContext ctx = MakeBenchContext();
  eval::LabelingTask task = MakeDatasetTasks("birds", scale, 0)[0];
  GogglesPipeline pipeline(ctx.extractor, ctx.goggles);
  Result<Matrix> affinity = pipeline.BuildAffinity(task.train.images);
  affinity.status().Abort("affinity");
  const int n = static_cast<int>(task.train.size());
  const int alpha = static_cast<int>(affinity->cols() / n);

  // Sort instances by class (paper: "rows and columns are sorted by class
  // for visual intuition").
  std::vector<int> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::stable_sort(order.begin(), order.end(), [&task](int a, int b) {
    return task.train.labels[static_cast<size_t>(a)] <
           task.train.labels[static_cast<size_t>(b)];
  });

  // Rank functions by block contrast = mean(same) - mean(diff).
  struct Contrast {
    int f;
    double same_mean, diff_mean;
  };
  std::vector<Contrast> contrasts;
  for (int f = 0; f < alpha; ++f) {
    double same = 0.0, diff = 0.0;
    int same_n = 0, diff_n = 0;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const double v = (*affinity)(i, static_cast<int64_t>(f) * n + j);
        if (task.train.labels[static_cast<size_t>(i)] ==
            task.train.labels[static_cast<size_t>(j)]) {
          same += v;
          ++same_n;
        } else {
          diff += v;
          ++diff_n;
        }
      }
    }
    contrasts.push_back({f, same / same_n, diff / diff_n});
  }
  std::sort(contrasts.begin(), contrasts.end(),
            [](const Contrast& a, const Contrast& b) {
              return (a.same_mean - a.diff_mean) > (b.same_mean - b.diff_mean);
            });

  AsciiTable table("Block statistics per affinity function (top/median/worst)");
  table.SetHeader({"function", "mean same-class", "mean diff-class",
                   "contrast"});
  for (const Contrast& c :
       {contrasts.front(), contrasts[contrasts.size() / 2],
        contrasts.back()}) {
    table.AddRow({StrFormat("#%d", c.f), FormatDouble(c.same_mean, 3),
                  FormatDouble(c.diff_mean, 3),
                  FormatDouble(c.same_mean - c.diff_mean, 3)});
  }
  table.Print();

  PrintHeatmap(*affinity, contrasts.front().f, n, order,
               "Informative function: visible 2x2 class-block structure");
  PrintHeatmap(*affinity, contrasts[contrasts.size() / 2].f, n, order,
               "Intermediate function");
  PrintHeatmap(*affinity, contrasts.back().f, n, order,
               "Uninformative function: no block structure");
  std::printf(
      "\nShape check (paper Fig. 5): informative functions show bright\n"
      "diagonal class blocks; uninformative ones are uniform.\n");
}

void BM_BlockContrastScan(benchmark::State& state) {
  Rng rng(7);
  const int n = 128;
  Matrix a(n, n);
  for (int64_t i = 0; i < a.size(); ++i) a.data()[i] = rng.Uniform();
  std::vector<int> labels(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) labels[static_cast<size_t>(i)] = i % 2;
  for (auto _ : state) {
    double same = 0.0, diff = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        (labels[static_cast<size_t>(i)] == labels[static_cast<size_t>(j)]
             ? same
             : diff) += a(i, j);
      }
    }
    benchmark::DoNotOptimize(same - diff);
  }
}
BENCHMARK(BM_BlockContrastScan)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace goggles::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  goggles::bench::RunExperiment();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
