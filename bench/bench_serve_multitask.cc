/// \file bench_serve_multitask.cc
/// \brief Multi-task gateway benchmark: many fitted tasks in one process
/// behind the SessionRegistry, with and without cross-request
/// micro-batching.
///
/// The workload emulates bursty production traffic: W submitter threads
/// drain one shared request counter whose task assignment changes every
/// `kBurst` requests (requests for one task arrive clustered, the way
/// per-task client batches do). Each request resolves its task through
/// the registry (warm LRU hit) and labels one image — either directly
/// (`LabelOne`, the singleton path) or through the `Coalescer`, which
/// gathers concurrent same-task requests into one
/// `ScoreQueryRowsBatched`-backed `LabelBatch` call.
///
/// Two request mixes per task count (1 vs 8 resident tasks):
///  - `unique`: every in-flight image distinct — the coalescing win is
///    batched extraction + fused small-GEMM convolutions + amortized
///    per-call scoring/inference setup;
///  - `hot`: a Zipf-flavored mix (half the requests hit a few hot
///    images, the way popular content hits a real gateway) — concurrent
///    duplicates additionally dedup inside the batch window, which a
///    singleton request path cannot do at all.
///
/// Reported per (tasks, mix): singleton img/s, coalesced img/s, their
/// ratio (`tasksN_<mix>_coalesce_speedup`; the ISSUE's acceptance bar is
/// >= 1.5x at batch-heavy load, i.e. the hot mix at 8 tasks), coalescer
/// batch statistics, and warm registry Acquire() latency. Metrics land
/// in BENCH_serve_multitask.json via the bench_common.h hook.

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/coalescer.h"
#include "serve/registry.h"
#include "serve/session.h"
#include "util/parallel.h"
#include "util/table.h"

namespace goggles::bench {
namespace {

constexpr int kThreads = 16;  ///< concurrent submitters (worker pool stand-in)
constexpr int kBurst = 32;    ///< same-task run length in the request stream

namespace fs = std::filesystem;

/// Deterministic per-request image pick. The `hot` mix sends half the
/// requests to the currently-trending image (it stays hot for a window
/// of requests, the way popular content hits a real gateway, so
/// concurrent requests actually collide and the coalescer can dedup);
/// `unique` cycles the whole query set so a batch window holds distinct
/// images.
const data::Image& PickQuery(const std::vector<data::Image>& queries, int i,
                             bool hot_mix) {
  if (hot_mix && i % 2 == 0) {
    return queries[static_cast<size_t>((i / 32) % 4)];
  }
  return queries[static_cast<size_t>(i) % queries.size()];
}

/// Drains `requests` labeling requests across `kThreads` submitters.
/// Returns wall seconds. `coalescer` == nullptr is the singleton path.
double RunLoad(serve::SessionRegistry* registry,
               const std::vector<std::string>& tasks,
               const std::vector<data::Image>& queries, int requests,
               bool hot_mix, serve::Coalescer* coalescer) {
  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&] {
      // Like the service worker pool: per-request kernels stay on this
      // thread once the submitters cover the cores.
      ScopedSerialKernels serial_kernels;
      while (true) {
        const int i = next.fetch_add(1);
        if (i >= requests || failed.load()) break;
        const std::string& task =
            tasks[static_cast<size_t>(i / kBurst) % tasks.size()];
        auto session = registry->Acquire(task);
        if (!session.ok()) {
          failed.store(true);
          session.status().Abort("Acquire");
        }
        const data::Image& query = PickQuery(queries, i, hot_mix);
        if (coalescer != nullptr) {
          auto label = coalescer->Label(*session, query);
          if (!label.ok()) failed.store(true);
        } else {
          auto label = (*session)->LabelOne(query);
          if (!label.ok()) failed.store(true);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (failed.load()) {
    Status::Internal("multitask bench labeling failed").Abort("RunLoad");
  }
  return timer.ElapsedSeconds();
}

void RunExperiment() {
  BenchScale scale = GetBenchScale();
  Banner("Serving — multi-task gateway + cross-request micro-batching",
         scale);
  eval::RunnerContext ctx = MakeBenchContext();

  const int per_class = scale.name == "paper" ? 120 : 60;
  const int requests = scale.name == "paper" ? 512 : 128;

  // One fitted task, cloned into N distinct artifacts: serving cost is
  // identical per task, and fitting once keeps the bench fast.
  eval::TaskSuiteConfig task_config;
  task_config.num_pairs = 1;
  task_config.images_per_class = per_class;
  auto tasks = eval::MakeTasks("surface", task_config);
  tasks.status().Abort("tasks");
  const eval::LabelingTask& task = (*tasks)[0];
  auto session =
      serve::Session::Fit(ctx.extractor, task.train.images, task.dev_indices,
                          task.dev_labels, task.num_classes, ctx.goggles);
  session.status().Abort("Session::Fit");
  const int pool_size = static_cast<int>(task.train.size());

  const fs::path dir =
      fs::temp_directory_path() / "goggles_bench_multitask_artifacts";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  session->Save((dir / "task_0.ggsa").string()).Abort("Save");
  constexpr int kMaxTasks = 8;
  for (int t = 1; t < kMaxTasks; ++t) {
    fs::copy_file(dir / "task_0.ggsa",
                  dir / ("task_" + std::to_string(t) + ".ggsa"), ec);
  }

  std::vector<data::Image> queries(
      task.test.images.begin(),
      task.test.images.begin() + std::min<size_t>(32, task.test.images.size()));

  AsciiTable table("Multi-task serving: singleton vs coalesced labeling");
  table.SetHeader({"tasks", "mix", "singleton img/s", "coalesced img/s",
                   "speedup", "batches", "mean batch", "deduped"});

  RecordBenchMetric("pool_size", pool_size);
  RecordBenchMetric("threads", kThreads);
  RecordBenchMetric("requests", requests);

  double hot_speedup_at_max_tasks = 0.0;
  for (int num_tasks : {1, kMaxTasks}) {
    serve::RegistryConfig registry_config;
    registry_config.artifact_dir = dir.string();
    serve::SessionRegistry registry(ctx.extractor, registry_config);

    std::vector<std::string> task_names;
    for (int t = 0; t < num_tasks; ++t) {
      task_names.push_back("task_" + std::to_string(t));
      registry.Acquire(task_names.back()).status().Abort("warm Acquire");
    }

    // Warm registry hot path: Acquire() of a resident task.
    {
      WallTimer timer;
      constexpr int kAcquires = 2000;
      for (int i = 0; i < kAcquires; ++i) {
        auto acquired = registry.Acquire(task_names[static_cast<size_t>(i) %
                                                    task_names.size()]);
        if (!acquired.ok()) acquired.status().Abort("warm Acquire");
      }
      RecordBenchMetric(
          StrFormat("tasks%d_acquire_warm_us", num_tasks),
          timer.ElapsedSeconds() * 1e6 / kAcquires);
    }

    for (const bool hot_mix : {false, true}) {
      const char* mix = hot_mix ? "hot" : "unique";
      const double singleton_seconds = RunLoad(&registry, task_names, queries,
                                               requests, hot_mix, nullptr);
      const double singleton_rate =
          static_cast<double>(requests) / std::max(singleton_seconds, 1e-9);

      serve::CoalescerConfig coalesce;
      coalesce.enabled = true;
      // The service clamps the batch to its worker count for the same
      // reason: more in-flight requests than submitters cannot exist.
      coalesce.max_batch = kThreads;
      coalesce.window_micros = 2000;
      serve::Coalescer coalescer(coalesce);
      const double coalesced_seconds = RunLoad(
          &registry, task_names, queries, requests, hot_mix, &coalescer);
      const double coalesced_rate =
          static_cast<double>(requests) / std::max(coalesced_seconds, 1e-9);
      const double speedup = coalesced_rate / std::max(singleton_rate, 1e-9);

      const serve::CoalescerStats stats = coalescer.stats();
      const double mean_batch =
          stats.batches == 0 ? 0.0
                             : static_cast<double>(stats.requests) /
                                   static_cast<double>(stats.batches);
      table.AddRow({StrFormat("%d", num_tasks), mix,
                    StrFormat("%.1f", singleton_rate),
                    StrFormat("%.1f", coalesced_rate),
                    StrFormat("%.2fx", speedup),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          stats.batches)),
                    StrFormat("%.1f", mean_batch),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          stats.deduped))});

      const std::string prefix = StrFormat("tasks%d_%s_", num_tasks, mix);
      RecordBenchMetric(prefix + "singleton_img_per_s", singleton_rate);
      RecordBenchMetric(prefix + "coalesced_img_per_s", coalesced_rate);
      RecordBenchMetric(prefix + "coalesce_speedup", speedup);
      RecordBenchMetric(prefix + "coalesced_batches",
                        static_cast<double>(stats.batches));
      RecordBenchMetric(prefix + "mean_batch_size", mean_batch);
      RecordBenchMetric(prefix + "deduped",
                        static_cast<double>(stats.deduped));
      if (num_tasks == kMaxTasks && hot_mix) hot_speedup_at_max_tasks = speedup;
    }
    RecordBenchMetric(
        StrFormat("tasks%d_resident_bytes", num_tasks),
        static_cast<double>(registry.stats().resident_bytes));
    std::printf("  [%d task%s done]\n", num_tasks,
                num_tasks == 1 ? "" : "s");
  }
  RecordBenchMetric("coalesce_speedup_max_tasks_hot", hot_speedup_at_max_tasks);

  fs::remove_all(dir, ec);
  table.Print();
  std::printf(
      "Coalescing batches the extraction (fused small-spatial conv GEMMs),\n"
      "amortizes per-call scoring/inference setup, and — on the hot mix —\n"
      "dedups concurrent twins inside the window, which the singleton path\n"
      "cannot see at all.\n");
}

}  // namespace
}  // namespace goggles::bench

int main() {
  goggles::bench::RunExperiment();
  return 0;
}
