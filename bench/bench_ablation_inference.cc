/// \file bench_ablation_inference.cc
/// \brief Ablation of the §4.1 design choices of the hierarchical
/// generative model (DESIGN.md §3, "§4.1 design ablation"):
///   1. full hierarchical model (paper design),
///   2. no one-hot LP (raw posteriors into the Bernoulli ensemble),
///   3. base-LP averaging instead of the learned ensemble,
///   4. naive GMM directly on the full affinity rows (the paper's §4
///      "Limitations of Existing Models" strawman) with dev-set mapping.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "goggles/base_gmm.h"
#include "goggles/hierarchical.h"
#include "goggles/mapping.h"
#include "goggles/pipeline.h"
#include "util/table.h"

namespace goggles::bench {
namespace {

double NaiveGmmOnAffinity(const Matrix& affinity,
                          const eval::LabelingTask& task) {
  GmmConfig config;
  config.num_components = 2;
  DiagonalGmm gmm(config);
  gmm.Fit(affinity).Abort("naive gmm");
  Result<Matrix> proba = gmm.PredictProba(affinity);
  proba.status().Abort("naive gmm proba");
  Result<std::vector<int>> mapping = ClusterToClassMapping(
      *proba, task.dev_indices, task.dev_labels, 2);
  mapping.status().Abort("mapping");
  Matrix mapped = ApplyMapping(*proba, *mapping);
  std::vector<int> hard;
  for (int64_t i = 0; i < mapped.rows(); ++i) {
    hard.push_back(mapped(i, 1) > mapped(i, 0) ? 1 : 0);
  }
  return eval::AccuracyExcluding(hard, task.train.labels, task.dev_indices);
}

double HierarchicalVariant(const Matrix& affinity,
                           const eval::LabelingTask& task, bool one_hot,
                           bool use_ensemble) {
  HierarchicalConfig config;
  config.one_hot_lp = one_hot;
  config.use_ensemble = use_ensemble;
  HierarchicalLabeler labeler(config);
  Result<LabelingResult> result =
      labeler.Fit(affinity, task.dev_indices, task.dev_labels, 2);
  result.status().Abort("variant");
  return eval::AccuracyExcluding(result->hard_labels, task.train.labels,
                                 task.dev_indices);
}

void RunExperiment() {
  BenchScale scale = GetBenchScale();
  scale.num_pairs = std::min(scale.num_pairs, 3);
  Banner("Ablation — class-inference design choices of §4.1", scale);
  eval::RunnerContext ctx = MakeBenchContext();

  const std::vector<std::string> variants = {
      "hierarchical (paper)", "no one-hot LP", "base-LP averaging",
      "naive GMM on A"};
  std::map<std::string, std::map<std::string, std::vector<double>>> rows;

  for (const std::string& dataset : data::EvaluationDatasetNames()) {
    for (int rep = 0; rep < EffectiveReps(dataset, scale); ++rep) {
      for (const eval::LabelingTask& task :
           MakeDatasetTasks(dataset, scale, rep)) {
        GogglesPipeline pipeline(ctx.extractor, ctx.goggles);
        Result<Matrix> affinity = pipeline.BuildAffinity(task.train.images);
        affinity.status().Abort("affinity");
        rows[dataset][variants[0]].push_back(
            HierarchicalVariant(*affinity, task, true, true));
        rows[dataset][variants[1]].push_back(
            HierarchicalVariant(*affinity, task, false, true));
        rows[dataset][variants[2]].push_back(
            HierarchicalVariant(*affinity, task, true, false));
        rows[dataset][variants[3]].push_back(
            NaiveGmmOnAffinity(*affinity, task));
      }
    }
    std::printf("  [%s done]\n", dataset.c_str());
  }

  AsciiTable table("Inference ablation: labeling accuracy (%)");
  std::vector<std::string> header = {"Dataset"};
  for (const auto& v : variants) header.push_back(v);
  table.SetHeader(header);
  std::map<std::string, std::vector<double>> avgs;
  for (const std::string& dataset : data::EvaluationDatasetNames()) {
    std::vector<std::string> row = {dataset};
    for (const auto& v : variants) {
      const double mean = eval::Mean(rows[dataset][v]);
      row.push_back(Pct(mean));
      avgs[v].push_back(mean);
    }
    table.AddRow(row);
  }
  table.AddSeparator();
  std::vector<std::string> avg_row = {"Average"};
  for (const auto& v : variants) avg_row.push_back(Pct(eval::Mean(avgs[v])));
  table.AddRow(avg_row);
  table.Print();
  std::printf(
      "Shape check: the full hierarchical design is the best (or tied)\n"
      "variant on average, consistent with the paper's §4.1 arguments for\n"
      "one-hot LP encoding and the learned Bernoulli ensemble.\n");
}

void BM_BaseModelFitPerFunction(benchmark::State& state) {
  Rng rng(15);
  const int n = 100;
  Matrix block(n, n);
  for (int64_t i = 0; i < block.size(); ++i) block.data()[i] = rng.Uniform();
  for (auto _ : state) {
    GmmConfig config;
    config.num_components = 2;
    goggles::DiagonalGmm gmm(config);
    benchmark::DoNotOptimize(gmm.Fit(block).ok());
  }
}
BENCHMARK(BM_BaseModelFitPerFunction)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace goggles::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  goggles::bench::RunExperiment();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
