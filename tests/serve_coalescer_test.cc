#include "serve/coalescer.h"

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/raster.h"
#include "nn/vgg.h"

/// Cross-request micro-batching: coalesced `label` requests must produce
/// scores bit-identical to singleton LabelOne calls — coalescing may only
/// change latency, never results — and errors must reach every batch
/// member.

namespace goggles {
namespace {

data::Image PatternImage(int variant) {
  data::Image img(3, 32, 32, 0.1f);
  switch (variant % 3) {
    case 0:
      data::DrawFilledCircle(&img, 16, 16, 6 + variant % 5, {1.0f, 0.2f, 0.2f});
      break;
    case 1:
      data::DrawFilledRect(&img, 6, 6, 26, 26, {0.2f, 1.0f, 0.2f});
      break;
    default:
      data::DrawCross(&img, 16, 16, 14, 3, {0.2f, 0.2f, 1.0f});
      break;
  }
  return img;
}

std::shared_ptr<features::FeatureExtractor> MakeExtractor() {
  nn::VggMiniConfig config;
  config.stage_channels = {4, 8, 8, 8, 8};
  config.num_classes = 4;
  Result<nn::VggMini> model = nn::BuildVggMini(config);
  model.status().Abort("vgg");
  return std::make_shared<features::FeatureExtractor>(std::move(*model));
}

class ServeCoalescerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto extractor = MakeExtractor();
    std::vector<data::Image> pool;
    for (int i = 0; i < 12; ++i) pool.push_back(PatternImage(i));
    GogglesConfig config;
    config.top_z = 3;
    auto session = serve::Session::Fit(extractor, pool, {0, 1, 2, 3},
                                       {0, 1, 0, 1}, 2, config);
    session.status().Abort("Session::Fit");
    session_ = new std::shared_ptr<const serve::Session>(
        std::make_shared<const serve::Session>(std::move(*session)));
  }

  static void TearDownTestSuite() { delete session_; }

  static std::shared_ptr<const serve::Session>* session_;
};

std::shared_ptr<const serve::Session>* ServeCoalescerTest::session_ = nullptr;

/// The property the whole coalescer rests on: one LabelBatch call over N
/// images equals N independent LabelOne calls bit for bit (the GEMM's
/// fixed accumulation order is independent of the batch shape).
TEST_F(ServeCoalescerTest, LabelBatchRowsMatchLabelOneBitIdentical) {
  std::vector<data::Image> queries;
  for (int i = 30; i < 38; ++i) queries.push_back(PatternImage(i));
  auto batch = (*session_)->LabelBatch(queries);
  ASSERT_TRUE(batch.ok()) << batch.status();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto one = (*session_)->LabelOne(queries[i]);
    ASSERT_TRUE(one.ok());
    EXPECT_EQ(one->hard, batch->hard_labels[i]);
    ASSERT_EQ(static_cast<int64_t>(one->soft.size()),
              batch->soft_labels.cols());
    for (size_t k = 0; k < one->soft.size(); ++k) {
      EXPECT_EQ(one->soft[k],
                batch->soft_labels(static_cast<int64_t>(i),
                                   static_cast<int64_t>(k)))
          << "batch row " << i << " diverges from the singleton call at "
          << "class " << k;
    }
  }
}

TEST_F(ServeCoalescerTest, CoalescedResultsAreBitIdenticalToSingleton) {
  serve::CoalescerConfig config;
  config.enabled = true;
  config.max_batch = 4;
  config.window_micros = 1000;
  // Fake clock, never advanced: the leader cannot time out, so all four
  // threads are GUARANTEED to meet in one batch — no wall-clock window
  // race, deterministic under any scheduler or sanitizer slowdown.
  FakeClock clock;
  serve::Coalescer coalescer(config, &clock);

  constexpr int kRequests = 4;
  std::vector<data::Image> queries;
  for (int i = 0; i < kRequests; ++i) queries.push_back(PatternImage(40 + i));

  std::vector<Result<serve::OnlineLabel>> results(
      kRequests, Result<serve::OnlineLabel>(serve::OnlineLabel{}));
  std::vector<std::thread> threads;
  for (int i = 0; i < kRequests; ++i) {
    threads.emplace_back([&, i] {
      results[static_cast<size_t>(i)] =
          coalescer.Label(*session_, queries[static_cast<size_t>(i)]);
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(results[static_cast<size_t>(i)].ok())
        << results[static_cast<size_t>(i)].status();
    auto direct = (*session_)->LabelOne(queries[static_cast<size_t>(i)]);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(results[static_cast<size_t>(i)]->hard, direct->hard);
    ASSERT_EQ(results[static_cast<size_t>(i)]->soft.size(),
              direct->soft.size());
    for (size_t k = 0; k < direct->soft.size(); ++k) {
      EXPECT_EQ(results[static_cast<size_t>(i)]->soft[k], direct->soft[k])
          << "coalesced result " << i << " diverges at class " << k;
    }
  }

  const serve::CoalescerStats stats = coalescer.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.batches, 1u) << "the frozen window must batch all four";
  EXPECT_EQ(stats.coalesced, 4u);
  EXPECT_EQ(stats.max_batch_size, 4u);
}

TEST_F(ServeCoalescerTest, WindowExpiryFlushesALonelyLeader) {
  serve::CoalescerConfig config;
  config.enabled = true;
  config.max_batch = 4;
  config.window_micros = 1000;
  FakeClock clock;
  serve::Coalescer coalescer(config, &clock);

  // One request can never fill the batch; only the (fake) window expiry
  // can release it. Advance past the deadline once the leader is parked.
  Result<serve::OnlineLabel> result(serve::OnlineLabel{});
  const data::Image query = PatternImage(57);
  std::thread leader([&] { result = coalescer.Label(*session_, query); });
  while (coalescer.stats().requests < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  clock.Advance(config.window_micros + 1);
  leader.join();

  ASSERT_TRUE(result.ok()) << result.status();
  auto direct = (*session_)->LabelOne(query);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(result->soft, direct->soft);
  const serve::CoalescerStats stats = coalescer.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.coalesced, 0u) << "a lonely leader is not a coalesce";
}

TEST_F(ServeCoalescerTest, DisabledCoalescerIsAPassThrough) {
  serve::Coalescer coalescer(serve::CoalescerConfig{});  // enabled=false
  const data::Image query = PatternImage(50);
  auto via = coalescer.Label(*session_, query);
  auto direct = (*session_)->LabelOne(query);
  ASSERT_TRUE(via.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via->hard, direct->hard);
  EXPECT_EQ(via->soft, direct->soft);
  EXPECT_EQ(coalescer.stats().requests, 0u) << "disabled path kept stats";
  EXPECT_EQ(coalescer.stats().batches, 0u);
}

TEST_F(ServeCoalescerTest, MaxBatchOneNeverWaits) {
  serve::CoalescerConfig config;
  config.enabled = true;
  config.max_batch = 1;
  config.window_micros = 60000000;  // would hang if the window applied
  serve::Coalescer coalescer(config);
  auto result = coalescer.Label(*session_, PatternImage(51));
  ASSERT_TRUE(result.ok());
}

TEST_F(ServeCoalescerTest, MixedShapesNeverShareABatch) {
  // Same task, different resolutions: the requests cannot stack into one
  // extraction tensor, so they must flush as separate (correct) batches.
  serve::CoalescerConfig config;
  config.enabled = true;
  config.max_batch = 4;
  config.window_micros = 50000;
  serve::Coalescer coalescer(config);

  data::Image small(3, 16, 16, 0.4f);
  data::DrawFilledCircle(&small, 8, 8, 5, {1.0f, 0.3f, 0.2f});
  const data::Image big = PatternImage(52);

  Result<serve::OnlineLabel> small_result(serve::OnlineLabel{});
  Result<serve::OnlineLabel> big_result(serve::OnlineLabel{});
  std::thread t1([&] { small_result = coalescer.Label(*session_, small); });
  std::thread t2([&] { big_result = coalescer.Label(*session_, big); });
  t1.join();
  t2.join();

  ASSERT_TRUE(small_result.ok()) << small_result.status();
  ASSERT_TRUE(big_result.ok()) << big_result.status();
  auto small_direct = (*session_)->LabelOne(small);
  auto big_direct = (*session_)->LabelOne(big);
  ASSERT_TRUE(small_direct.ok());
  ASSERT_TRUE(big_direct.ok());
  EXPECT_EQ(small_result->soft, small_direct->soft);
  EXPECT_EQ(big_result->soft, big_direct->soft);
  EXPECT_EQ(coalescer.stats().batches, 2u);
}

TEST_F(ServeCoalescerTest, DuplicateImagesInOneWindowAreDedupedBitIdentically) {
  serve::CoalescerConfig config;
  config.enabled = true;
  config.max_batch = 4;
  config.window_micros = 1000;
  // Frozen fake clock: the batch can only flush by filling, so all four
  // requests deterministically share it (see the bit-identity test).
  FakeClock clock;
  serve::Coalescer coalescer(config, &clock);

  // Two distinct images, each submitted twice concurrently (hot content).
  const data::Image hot = PatternImage(55);
  const data::Image cold = PatternImage(56);
  const data::Image* picks[4] = {&hot, &cold, &hot, &cold};
  std::vector<Result<serve::OnlineLabel>> results(
      4, Result<serve::OnlineLabel>(serve::OnlineLabel{}));
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      results[static_cast<size_t>(i)] =
          coalescer.Label(*session_, *picks[i]);
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(results[static_cast<size_t>(i)].ok())
        << results[static_cast<size_t>(i)].status();
    auto direct = (*session_)->LabelOne(*picks[i]);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(results[static_cast<size_t>(i)]->soft, direct->soft)
        << "deduped result " << i << " diverges from the singleton call";
    EXPECT_EQ(results[static_cast<size_t>(i)]->hard, direct->hard);
  }
  // All four landed in one batch: two were twins answered from their
  // duplicate's scores.
  const serve::CoalescerStats stats = coalescer.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.deduped, 2u);
}

TEST_F(ServeCoalescerTest, ErrorsReachEveryBatchMember) {
  auto unfitted = std::make_shared<const serve::Session>();
  serve::CoalescerConfig config;
  config.enabled = true;
  config.max_batch = 2;
  config.window_micros = 100000;
  serve::Coalescer coalescer(config);

  Result<serve::OnlineLabel> r1(serve::OnlineLabel{});
  Result<serve::OnlineLabel> r2(serve::OnlineLabel{});
  const data::Image query = PatternImage(53);
  std::thread t1([&] { r1 = coalescer.Label(unfitted, query); });
  std::thread t2([&] { r2 = coalescer.Label(unfitted, query); });
  t1.join();
  t2.join();
  EXPECT_FALSE(r1.ok());
  EXPECT_FALSE(r2.ok());
}

}  // namespace
}  // namespace goggles
