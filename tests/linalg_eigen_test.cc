#include "linalg/eigen.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace goggles {
namespace {

Matrix RandomSymmetric(int n, Rng* rng) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double v = rng->Gaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

TEST(JacobiEigenTest, IdentityHasUnitEigenvalues) {
  Result<EigenDecomposition> eig = JacobiEigenSymmetric(Matrix::Identity(4));
  ASSERT_TRUE(eig.ok());
  for (double v : eig->values) EXPECT_NEAR(v, 1.0, 1e-10);
}

TEST(JacobiEigenTest, DiagonalMatrixSortedDescending) {
  Matrix d(3, 3, 0.0);
  d(0, 0) = 1.0;
  d(1, 1) = 5.0;
  d(2, 2) = 3.0;
  Result<EigenDecomposition> eig = JacobiEigenSymmetric(d);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 5.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[2], 1.0, 1e-10);
}

TEST(JacobiEigenTest, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix m = Matrix::FromRows({{2, 1}, {1, 2}});
  Result<EigenDecomposition> eig = JacobiEigenSymmetric(m);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-10);
}

TEST(JacobiEigenTest, NonSquareRejected) {
  EXPECT_FALSE(JacobiEigenSymmetric(Matrix(2, 3)).ok());
}

class JacobiPropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(JacobiPropertySweep, EigenEquationHolds) {
  const int n = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(n));
  Matrix a = RandomSymmetric(n, &rng);
  Result<EigenDecomposition> eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  // Check A v_j = lambda_j v_j for every eigenpair.
  for (int j = 0; j < n; ++j) {
    std::vector<double> v(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) v[static_cast<size_t>(i)] = eig->vectors(i, j);
    Result<std::vector<double>> av = MatVec(a, v);
    ASSERT_TRUE(av.ok());
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR((*av)[static_cast<size_t>(i)],
                  eig->values[static_cast<size_t>(j)] * v[static_cast<size_t>(i)],
                  1e-8)
          << "n=" << n << " pair " << j;
    }
  }
}

TEST_P(JacobiPropertySweep, EigenvectorsOrthonormal) {
  const int n = GetParam();
  Rng rng(2000 + static_cast<uint64_t>(n));
  Matrix a = RandomSymmetric(n, &rng);
  Result<EigenDecomposition> eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double dot = 0.0;
      for (int r = 0; r < n; ++r) dot += eig->vectors(r, i) * eig->vectors(r, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST_P(JacobiPropertySweep, TraceEqualsEigenvalueSum) {
  const int n = GetParam();
  Rng rng(3000 + static_cast<uint64_t>(n));
  Matrix a = RandomSymmetric(n, &rng);
  Result<EigenDecomposition> eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  double trace = 0.0, sum = 0.0;
  for (int i = 0; i < n; ++i) trace += a(i, i);
  for (double v : eig->values) sum += v;
  EXPECT_NEAR(trace, sum, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiPropertySweep,
                         ::testing::Values(2, 3, 5, 8, 16, 25));

}  // namespace
}  // namespace goggles
