#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/raster.h"
#include "nn/vgg.h"
#include "serve/artifact.h"
#include "serve/json.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "serve/session.h"
#include "serve/shutdown.h"
#include "util/clock.h"
#include "util/failpoint.h"
#include "util/pipeline.h"

/// Chaos suite: scripted fault scenarios driven end-to-end through the
/// NDJSON gateway. Fault injection uses the failpoint framework, so the
/// injection scenarios require a build configured with
/// -DGOGGLES_FAILPOINTS=ON (CI's chaos job) and GTEST_SKIP themselves in
/// a default build; the protocol-level scenarios (deadlines, admission
/// shedding, graceful drain, corrupt hot reload) run everywhere.
///
/// This binary has a custom main(): re-exec'ing itself with
/// `--publish-crash-child` / `--serve-child` provides the crash-mid-
/// publish and signal-drain child processes (fork+exec, never bare fork —
/// the gtest parent is multi-threaded).

namespace goggles {

const char* g_self_path = nullptr;  ///< argv[0]; set by main()

namespace {

data::Image PatternImage(int variant) {
  data::Image img(3, 32, 32, 0.1f);
  switch (variant % 3) {
    case 0:
      data::DrawFilledCircle(&img, 16, 16, 6 + variant % 5, {1.0f, 0.2f, 0.2f});
      break;
    case 1:
      data::DrawFilledRect(&img, 6, 6, 26, 26, {0.2f, 1.0f, 0.2f});
      break;
    default:
      data::DrawCross(&img, 16, 16, 14, 3, {0.2f, 0.2f, 1.0f});
      break;
  }
  return img;
}

std::shared_ptr<features::FeatureExtractor> MakeExtractor() {
  // Seeded build: every process (parent and re-exec'd children) gets the
  // identical backbone, so artifacts round-trip across processes.
  nn::VggMiniConfig config;
  config.stage_channels = {4, 8, 8, 8, 8};
  config.num_classes = 4;
  Result<nn::VggMini> model = nn::BuildVggMini(config);
  model.status().Abort("vgg");
  return std::make_shared<features::FeatureExtractor>(std::move(*model));
}

std::string ImageToJson(const data::Image& img) {
  serve::JsonValue obj = serve::JsonValue::MakeObject();
  obj.Set("channels", serve::JsonValue(img.channels));
  obj.Set("height", serve::JsonValue(img.height));
  obj.Set("width", serve::JsonValue(img.width));
  serve::JsonValue pixels = serve::JsonValue::MakeArray();
  for (float v : img.pixels) {
    pixels.Append(serve::JsonValue(static_cast<double>(v)));
  }
  obj.Set("pixels", std::move(pixels));
  return obj.Dump();
}

std::string LabelRequestLine(const data::Image& img,
                             const std::string& task = "") {
  std::ostringstream line;
  line << R"({"op":"label",)";
  if (!task.empty()) line << R"("task":")" << task << R"(",)";
  line << R"("image":)" << ImageToJson(img) << "}";
  return line.str();
}

/// Runs `lines` through Service::Run and returns one response per line.
std::vector<std::string> RunGateway(serve::Service& service,
                                    const std::vector<std::string>& lines) {
  std::ostringstream joined;
  for (const std::string& line : lines) joined << line << "\n";
  std::istringstream in(joined.str());
  std::ostringstream out;
  Status status = service.Run(in, out);
  EXPECT_TRUE(status.ok()) << status;
  std::vector<std::string> responses;
  std::istringstream split(out.str());
  std::string response;
  while (std::getline(split, response)) responses.push_back(response);
  return responses;
}

/// Parses a response line and returns its "error_code" ("" when absent).
std::string ErrorCodeOf(const std::string& response_line) {
  auto parsed = serve::JsonValue::Parse(response_line);
  if (!parsed.ok() || !parsed->is_object()) return "<unparseable>";
  const serve::JsonValue* code = parsed->Find("error_code");
  return code != nullptr && code->is_string() ? code->str() : "";
}

bool IsOkResponse(const std::string& response_line) {
  auto parsed = serve::JsonValue::Parse(response_line);
  if (!parsed.ok() || !parsed->is_object()) return false;
  const serve::JsonValue* ok = parsed->Find("ok");
  return ok != nullptr && ok->is_bool() && ok->bool_value();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class ServeChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    extractor_ = new std::shared_ptr<features::FeatureExtractor>(
        MakeExtractor());
    std::vector<data::Image> pool;
    for (int i = 0; i < 12; ++i) pool.push_back(PatternImage(i));
    GogglesConfig config;
    config.top_z = 3;
    auto session = serve::Session::Fit(*extractor_, pool, {0, 1, 2, 3},
                                       {0, 1, 0, 1}, 2, config);
    session.status().Abort("Session::Fit");
    session_ = new std::shared_ptr<const serve::Session>(
        std::make_shared<const serve::Session>(std::move(*session)));
    base_dir_ = new std::string(::testing::TempDir() + "/chaos_" +
                                std::to_string(::getpid()));
    std::filesystem::create_directories(*base_dir_);
    artifact_path_ = new std::string(*base_dir_ + "/alpha.ggsa");
    (*session_)->Save(*artifact_path_).Abort("Save");
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*base_dir_);
    delete artifact_path_;
    delete base_dir_;
    delete session_;
    delete extractor_;
  }

  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }

  /// A fresh artifact directory containing `tasks` copies of the fitted
  /// artifact — mutating scenarios corrupt their own copy, never the
  /// shared one.
  std::string MakeTaskDir(const std::string& label,
                          const std::vector<std::string>& tasks) {
    const std::string dir = *base_dir_ + "/" + label;
    std::filesystem::create_directories(dir);
    for (const std::string& task : tasks) {
      std::filesystem::copy_file(
          *artifact_path_, dir + "/" + task + ".ggsa",
          std::filesystem::copy_options::overwrite_existing);
    }
    return dir;
  }

  /// The fault-free response for one labeled image — the byte-identity
  /// reference every post-recovery response is checked against.
  std::string FaultFreeResponse(const data::Image& img,
                                const std::string& task = "") {
    serve::Service service(*session_, serve::ServiceConfig{});
    auto request = serve::JsonValue::Parse(LabelRequestLine(img, ""));
    EXPECT_TRUE(request.ok());
    std::string response = service.HandleRequest(*request).Dump();
    (void)task;
    return response;
  }

  static std::shared_ptr<features::FeatureExtractor>* extractor_;
  static std::shared_ptr<const serve::Session>* session_;
  static std::string* base_dir_;
  static std::string* artifact_path_;
};

std::shared_ptr<features::FeatureExtractor>* ServeChaosTest::extractor_ =
    nullptr;
std::shared_ptr<const serve::Session>* ServeChaosTest::session_ = nullptr;
std::string* ServeChaosTest::base_dir_ = nullptr;
std::string* ServeChaosTest::artifact_path_ = nullptr;

// ---- Scenario 1: failpoint op over the gateway ----------------------------

TEST_F(ServeChaosTest, FailpointOpArmListDisarmOverGateway) {
  serve::Service service(*session_, serve::ServiceConfig{});
  auto handle = [&](const std::string& line) {
    auto request = serve::JsonValue::Parse(line);
    EXPECT_TRUE(request.ok()) << line;
    return service.HandleRequest(*request);
  };

  // `list` answers in every build and reports whether injection works.
  serve::JsonValue listed = handle(R"({"op":"failpoint","action":"list"})");
  EXPECT_TRUE(listed.Find("ok")->bool_value());
  ASSERT_NE(listed.Find("compiled_in"), nullptr);
  EXPECT_EQ(listed.Find("compiled_in")->bool_value(), failpoint::CompiledIn());

  if (!failpoint::CompiledIn()) {
    serve::JsonValue armed = handle(
        R"({"op":"failpoint","action":"arm","name":"t.x","spec":"return-error"})");
    EXPECT_FALSE(armed.Find("ok")->bool_value());
    EXPECT_EQ(armed.Find("error_code")->str(), "unimplemented");
    return;
  }

  serve::JsonValue armed = handle(
      R"({"op":"failpoint","action":"arm","name":"t.gateway",)"
      R"("spec":"partial-write(9):0.5:3"})");
  EXPECT_TRUE(armed.Find("ok")->bool_value());
  serve::JsonValue after = handle(R"({"op":"failpoint","action":"list"})");
  bool found = false;
  for (const serve::JsonValue& entry : after.Find("failpoints")->items()) {
    if (entry.Find("name")->str() != "t.gateway") continue;
    found = true;
    EXPECT_EQ(entry.Find("action")->str(), "partial-write");
    EXPECT_EQ(entry.Find("arg")->number(), 9.0);
    EXPECT_EQ(entry.Find("probability")->number(), 0.5);
    EXPECT_EQ(entry.Find("count")->number(), 3.0);
  }
  EXPECT_TRUE(found);

  serve::JsonValue bad = handle(
      R"({"op":"failpoint","action":"arm","name":"t.bad","spec":"noise"})");
  EXPECT_FALSE(bad.Find("ok")->bool_value());
  EXPECT_EQ(bad.Find("error_code")->str(), "invalid_argument");

  EXPECT_TRUE(
      handle(R"({"op":"failpoint","action":"disarm_all"})").Find("ok")->bool_value());
  EXPECT_EQ(failpoint::internal::Evaluate("t.gateway").action,
            failpoint::Action::kOff);
}

// ---- Scenario 2: transient load failure -> backoff retry -> recovery ------

TEST_F(ServeChaosTest, TransientLoadFailureRetriesAndRecoversByteIdentical) {
  if (!failpoint::CompiledIn()) GTEST_SKIP() << "needs GOGGLES_FAILPOINTS=ON";
  serve::RegistryConfig rconfig;
  rconfig.artifact_dir = MakeTaskDir("transient", {"alpha"});
  rconfig.load_retry.initial_delay_micros = 500;
  rconfig.load_retry.max_delay_micros = 2000;
  auto registry =
      std::make_shared<serve::SessionRegistry>(*extractor_, rconfig);
  serve::Service service(registry, nullptr, serve::ServiceConfig{});

  // Two injected failures, then clean: the default policy's 4 attempts
  // ride over both and the request never sees the fault.
  ASSERT_TRUE(
      failpoint::ArmFromString("registry.load.transient", "return-error:1:2")
          .ok());
  const data::Image img = PatternImage(40);
  std::vector<std::string> responses =
      RunGateway(service, {LabelRequestLine(img, "alpha")});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(IsOkResponse(responses[0])) << responses[0];
  EXPECT_GE(registry->stats().load_retries, 2u);
  EXPECT_EQ(registry->stats().resident_tasks, 1u);

  // Post-recovery responses are byte-identical to a never-faulted serve.
  EXPECT_EQ(responses[0], FaultFreeResponse(img));
}

// ---- Scenario 3: persistent load failure -> clean io_error, then heal -----

TEST_F(ServeChaosTest, ExhaustedRetriesSurfaceIoErrorThenHeal) {
  if (!failpoint::CompiledIn()) GTEST_SKIP() << "needs GOGGLES_FAILPOINTS=ON";
  serve::RegistryConfig rconfig;
  rconfig.artifact_dir = MakeTaskDir("exhausted", {"alpha"});
  rconfig.load_retry.max_attempts = 2;
  rconfig.load_retry.initial_delay_micros = 500;
  auto registry =
      std::make_shared<serve::SessionRegistry>(*extractor_, rconfig);
  serve::Service service(registry, nullptr, serve::ServiceConfig{});

  ASSERT_TRUE(
      failpoint::ArmFromString("registry.load.transient", "return-error")
          .ok());
  const data::Image img = PatternImage(41);
  std::vector<std::string> faulted =
      RunGateway(service, {LabelRequestLine(img, "alpha")});
  ASSERT_EQ(faulted.size(), 1u);
  EXPECT_FALSE(IsOkResponse(faulted[0]));
  EXPECT_EQ(ErrorCodeOf(faulted[0]), "io_error") << faulted[0];

  // Disarm == the disk recovered: the very next request serves, and its
  // response is byte-identical to the fault-free reference.
  failpoint::DisarmAll();
  std::vector<std::string> healed =
      RunGateway(service, {LabelRequestLine(img, "alpha")});
  ASSERT_EQ(healed.size(), 1u);
  EXPECT_EQ(healed[0], FaultFreeResponse(img));
}

// ---- Scenario 4: corrupt hot reload keeps serving the stale session -------

TEST_F(ServeChaosTest, CorruptHotReloadKeepsServingStaleSession) {
  serve::RegistryConfig rconfig;
  rconfig.artifact_dir = MakeTaskDir("torn", {"alpha"});
  auto registry =
      std::make_shared<serve::SessionRegistry>(*extractor_, rconfig);
  serve::Service service(registry, nullptr, serve::ServiceConfig{});

  const data::Image img = PatternImage(42);
  std::vector<std::string> before =
      RunGateway(service, {LabelRequestLine(img, "alpha")});
  ASSERT_EQ(before.size(), 1u);
  ASSERT_TRUE(IsOkResponse(before[0]));

  // Replace the artifact with a torn prefix (size change guarantees a
  // hot-reload signature mismatch). The resident session must keep
  // serving, byte-identically, while the reload keeps failing.
  const std::string path = rconfig.artifact_dir + "/alpha.ggsa";
  const std::string good = ReadFileBytes(path);
  WriteFileBytes(path, good.substr(0, good.size() / 3));
  std::vector<std::string> after =
      RunGateway(service, {LabelRequestLine(img, "alpha")});
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0], before[0]) << "stale session must keep serving";
  EXPECT_GE(registry->stats().load_failures, 1u);

  // Repairing the file heals the reload on the next acquire.
  WriteFileBytes(path, good);
  std::vector<std::string> healed =
      RunGateway(service, {LabelRequestLine(img, "alpha")});
  ASSERT_EQ(healed.size(), 1u);
  EXPECT_EQ(healed[0], before[0]);
}

// ---- Scenario 5: crash mid-publish (child process) ------------------------

TEST_F(ServeChaosTest, CrashMidPublishLeavesOldArtifactLoadableAndTempReaped) {
  if (!failpoint::CompiledIn()) GTEST_SKIP() << "needs GOGGLES_FAILPOINTS=ON";
  ASSERT_NE(g_self_path, nullptr);
  const std::string dir = MakeTaskDir("crashpub", {"alpha"});
  const std::string path = dir + "/alpha.ggsa";
  const std::string before = ReadFileBytes(path);

  // Re-exec ourselves: the child loads the artifact, arms the crash
  // failpoint, and aborts inside SaveAtomic after staging the temp but
  // before the rename.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::execl(g_self_path, g_self_path, "--publish-crash-child", path.c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed
  }
  int wait_status = 0;
  ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wait_status))
      << "child must die by SIGABRT, status " << wait_status;
  EXPECT_EQ(WTERMSIG(wait_status), SIGABRT);

  // The previous artifact is untouched and loadable; the orphan temp is
  // the only debris.
  EXPECT_EQ(ReadFileBytes(path), before);
  EXPECT_TRUE(serve::Session::Load(path, *extractor_).ok());
  int temps = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (serve::IsArtifactTempFilename(entry.path().filename().string())) {
      ++temps;
    }
  }
  ASSERT_EQ(temps, 1) << "expected exactly the crashed publish's temp";

  // A registry pointed at the directory reaps the orphan on its next
  // scan (age threshold 0: any orphan is fair game immediately).
  serve::RegistryConfig rconfig;
  rconfig.artifact_dir = dir;
  rconfig.temp_reap_age_micros = 0;
  serve::SessionRegistry registry(*extractor_, rconfig);
  EXPECT_GE(registry.stats().temps_reaped, 1u);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_FALSE(
        serve::IsArtifactTempFilename(entry.path().filename().string()))
        << "temp not reaped: " << entry.path();
  }
  // And the artifact still serves.
  EXPECT_TRUE(registry.Acquire("alpha").ok());
}

// ---- Scenario 6: partial write detected on load ---------------------------

TEST_F(ServeChaosTest, PartialWriteIsDetectedOnLoad) {
  if (!failpoint::CompiledIn()) GTEST_SKIP() << "needs GOGGLES_FAILPOINTS=ON";
  const std::string path = *base_dir_ + "/partial.ggsa";
  ASSERT_TRUE(
      failpoint::ArmFromString("artifact.save.partial", "partial-write(64):1:1")
          .ok());
  // The clamped write itself reports success — a silent short write, the
  // worst case — but the CRC-framed format catches it on load.
  ASSERT_TRUE((*session_)->Save(path).ok());
  auto loaded = serve::Artifact::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

// ---- Scenario 7: slow disk delays but does not fail -----------------------

TEST_F(ServeChaosTest, SlowDiskLoadDelaysButSucceeds) {
  if (!failpoint::CompiledIn()) GTEST_SKIP() << "needs GOGGLES_FAILPOINTS=ON";
  ASSERT_TRUE(
      failpoint::ArmFromString("artifact.load.slow", "delay-ms(30):1:1").ok());
  const int64_t start = MonotonicMicros();
  auto loaded = serve::Session::Load(*artifact_path_, *extractor_);
  EXPECT_GE(MonotonicMicros() - start, 25'000);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // And an injected open failure is a clean io_error, healed on disarm.
  ASSERT_TRUE(
      failpoint::ArmFromString("artifact.load.open", "return-error:1:1").ok());
  auto failed = serve::Session::Load(*artifact_path_, *extractor_);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);
  EXPECT_TRUE(serve::Session::Load(*artifact_path_, *extractor_).ok());
}

// ---- Scenario 8: memory pressure -> LRU eviction with in-flight drain -----

TEST_F(ServeChaosTest, MemoryPressureEvictsLruWhileInFlightRequestsDrain) {
  if (!failpoint::CompiledIn()) GTEST_SKIP() << "needs GOGGLES_FAILPOINTS=ON";
  serve::RegistryConfig rconfig;
  rconfig.artifact_dir = MakeTaskDir("pressure", {"alpha", "beta"});
  rconfig.memory_budget_bytes = 1 << 20;  // 1 MiB
  auto registry =
      std::make_shared<serve::SessionRegistry>(*extractor_, rconfig);

  // Every session now reports 2 MiB — any two resident tasks bust the
  // budget, forcing LRU eviction on the second load.
  ASSERT_TRUE(failpoint::ArmFromString("session.memory.pressure",
                                       "return-error(2097152)")
                  .ok());
  auto alpha = registry->Acquire("alpha");
  ASSERT_TRUE(alpha.ok()) << alpha.status();
  std::shared_ptr<const serve::Session> held = *alpha;  // in-flight holder
  auto beta = registry->Acquire("beta");
  ASSERT_TRUE(beta.ok()) << beta.status();
  EXPECT_GE(registry->stats().evictions, 1u);
  EXPECT_EQ(registry->stats().resident_tasks, 1u);

  // The evicted session drains gracefully: the held reference still
  // labels, bit-identically to the fault-free service.
  auto label = held->LabelOne(PatternImage(43));
  ASSERT_TRUE(label.ok()) << label.status();
  auto reference = (*session_)->LabelOne(PatternImage(43));
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(label->hard, reference->hard);
  EXPECT_EQ(label->soft, reference->soft);

  // Releasing the pressure lets alpha re-load on demand.
  failpoint::DisarmAll();
  EXPECT_TRUE(registry->Acquire("alpha").ok());
}

// ---- Scenario 9: stage stall -> deadline shedding + watchdog --------------

TEST_F(ServeChaosTest, StageStallShedsQueuedRequestsOnDeadline) {
  if (!failpoint::CompiledIn()) GTEST_SKIP() << "needs GOGGLES_FAILPOINTS=ON";
  serve::ServiceConfig config;
  config.request_deadline_micros = 30'000;  // 30 ms
  config.pipeline.extract_threads = 1;      // one worker -> stall blocks all
  config.pipeline.watchdog_budget_micros = 5'000;
  serve::Service service(*session_, config);

  // The first extract batch stalls 300 ms; every label request queued
  // behind it ages past the 30 ms deadline and must be shed with
  // `deadline_exceeded` instead of being served stale.
  ASSERT_TRUE(
      failpoint::ArmFromString("serve.stage.extract", "delay-ms(300):1:1")
          .ok());
  std::vector<std::string> lines;
  for (int i = 0; i < 8; ++i) {
    lines.push_back(LabelRequestLine(PatternImage(50 + i)));
  }
  std::vector<std::string> responses = RunGateway(service, lines);
  ASSERT_EQ(responses.size(), lines.size());
  int shed = 0;
  for (const std::string& response : responses) {
    if (ErrorCodeOf(response) == "deadline_exceeded") ++shed;
  }
  EXPECT_GE(shed, 1) << "the stalled batch must shed overdue requests";

  // After the stall clears (count 1), the service heals: a fresh request
  // serves byte-identically to the fault-free reference. The heal run
  // drops the deadline — under ASan/TSan a legitimate extraction can
  // take longer than the tight 30 ms this scenario needs for shedding.
  serve::ServiceConfig healed_config = config;
  healed_config.request_deadline_micros = 0;
  serve::Service healed_service(*session_, healed_config);
  const data::Image img = PatternImage(58);
  std::vector<std::string> healed =
      RunGateway(healed_service, {LabelRequestLine(img)});
  ASSERT_EQ(healed.size(), 1u);
  EXPECT_EQ(healed[0], FaultFreeResponse(img));
}

TEST_F(ServeChaosTest, WatchdogFlagsStalledStage) {
  // Pure pipeline-level check (no failpoints needed): a stage call that
  // overruns the budget is counted in its stalls stat and the pipeline
  // still drains normally.
  Pipeline<int> pipe;
  pipe.AddStage({"stall", 1, 4, 1}, [](std::vector<int>& batch) {
    for (int& v : batch) {
      if (v == 0) SleepForMicros(40'000);
      v += 1;
    }
  });
  pipe.SetWatchdogBudgetMicros(5'000);
  int drained = 0;
  pipe.Start([&](int&&) { ++drained; });
  for (int i = 0; i < 3; ++i) pipe.Submit(int(i), /*block=*/true);
  pipe.Drain();
  EXPECT_EQ(drained, 3);
  std::vector<PipelineStageStats> stats = pipe.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_GE(stats[0].stalls, 1u) << "40ms call vs 5ms budget must be flagged";
}

// ---- Scenario 10: per-request deadlines in both execution modes -----------

TEST_F(ServeChaosTest, ExpiredDeadlineAnswersDeadlineExceededInBothModes) {
  for (const bool pipelined : {true, false}) {
    serve::ServiceConfig config;
    config.pipeline.enabled = pipelined;
    config.request_deadline_micros = 1;  // everything is overdue on arrival
    serve::Service service(*session_, config);
    std::vector<std::string> responses =
        RunGateway(service, {LabelRequestLine(PatternImage(44))});
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_FALSE(IsOkResponse(responses[0]));
    EXPECT_EQ(ErrorCodeOf(responses[0]), "deadline_exceeded")
        << (pipelined ? "pipelined: " : "monolithic: ") << responses[0];
  }
}

// ---- Scenario 11: admission overload sheds with `unavailable` -------------

TEST_F(ServeChaosTest, AdmissionOverloadShedsWithUnavailable) {
  serve::ServiceConfig config;
  config.pipeline.reject_on_full = true;
  config.pipeline.admission_capacity = 1;
  serve::Service service(*session_, config);
  std::vector<std::string> lines;
  for (int i = 0; i < 40; ++i) {
    lines.push_back(LabelRequestLine(PatternImage(60 + i)));
  }
  std::vector<std::string> responses = RunGateway(service, lines);
  ASSERT_EQ(responses.size(), lines.size()) << "every request gets a line";
  int ok = 0, shed = 0;
  for (const std::string& response : responses) {
    if (IsOkResponse(response)) {
      ++ok;
    } else {
      EXPECT_EQ(ErrorCodeOf(response), "unavailable") << response;
      EXPECT_NE(response.find("overloaded"), std::string::npos);
      ++shed;
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1) << "40 requests against a 1-deep admission gate";
  EXPECT_EQ(service.requests_rejected(), static_cast<uint64_t>(shed));
}

// ---- Scenario 12: SIGTERM drains gracefully (child process) ---------------

TEST_F(ServeChaosTest, SigtermDrainsInFlightAndExitsZero) {
  ASSERT_NE(g_self_path, nullptr);
  int to_child[2], from_child[2];
  ASSERT_EQ(::pipe(to_child), 0);
  ASSERT_EQ(::pipe(from_child), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    ::execl(g_self_path, g_self_path, "--serve-child",
            artifact_path_->c_str(), static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);

  // A few requests, answered while the stream stays open...
  const int kRequests = 3;
  {
    std::string batch;
    for (int i = 0; i < kRequests; ++i) {
      batch += LabelRequestLine(PatternImage(70 + i)) + "\n";
    }
    ASSERT_EQ(::write(to_child[1], batch.data(), batch.size()),
              static_cast<ssize_t>(batch.size()));
  }
  std::FILE* from = ::fdopen(from_child[0], "r");
  ASSERT_NE(from, nullptr);
  std::vector<std::string> responses;
  std::string current;
  int ch;
  while (responses.size() < static_cast<size_t>(kRequests) && (ch = std::fgetc(from)) != EOF) {
    if (ch == '\n') {
      responses.push_back(current);
      current.clear();
    } else {
      current.push_back(static_cast<char>(ch));
    }
  }
  ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
  for (const std::string& response : responses) {
    EXPECT_TRUE(IsOkResponse(response)) << response;
  }

  // ...then SIGTERM with the input stream STILL OPEN: the child must
  // unblock its reader, drain, and exit 0 — not die on the signal.
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
  EXPECT_TRUE(WIFEXITED(wait_status))
      << "child must exit, not die on SIGTERM; status " << wait_status;
  EXPECT_EQ(WEXITSTATUS(wait_status), 0);
  while ((ch = std::fgetc(from)) != EOF) {
  }  // child closed stdout on exit
  std::fclose(from);
  ::close(to_child[1]);
}

}  // namespace

// ---- child-process entry points -------------------------------------------

/// `--publish-crash-child <artifact>`: stages an atomic publish over the
/// artifact and crashes between the temp fsync and the rename.
int PublishCrashChildMain(const std::string& artifact_path) {
  auto extractor = MakeExtractor();
  auto session = serve::Session::Load(artifact_path, extractor);
  if (!session.ok()) {
    std::fprintf(stderr, "child: load failed: %s\n",
                 session.status().ToString().c_str());
    return 3;
  }
  if (!failpoint::ArmFromString("artifact.publish.rename", "crash-here")
           .ok()) {
    return 4;
  }
  Status status = session->SaveAtomic(artifact_path);  // must not return
  std::fprintf(stderr, "child: SaveAtomic returned: %s\n",
               status.ToString().c_str());
  return 42;  // failpoints compiled out — the parent skips this test
}

/// `--serve-child <artifact>`: a miniature goggles_serve — tiny backbone,
/// one artifact, graceful SIGTERM/SIGINT drain — for signal tests.
int ServeChildMain(const std::string& artifact_path) {
  auto extractor = MakeExtractor();
  auto session = serve::Session::Load(artifact_path, extractor);
  if (!session.ok()) {
    std::fprintf(stderr, "child: load failed: %s\n",
                 session.status().ToString().c_str());
    return 3;
  }
  serve::ServiceConfig config;
  serve::Service service(
      std::make_shared<const serve::Session>(std::move(*session)), config);
  serve::GracefulShutdown drain([&service] { service.RequestStop(); });
  Status status = service.Run(std::cin, std::cout);
  if (!status.ok()) {
    std::fprintf(stderr, "child: run failed: %s\n",
                 status.ToString().c_str());
    return 5;
  }
  return 0;
}

}  // namespace goggles

int main(int argc, char** argv) {
  goggles::g_self_path = argv[0];
  if (argc == 3 && std::strcmp(argv[1], "--publish-crash-child") == 0) {
    return goggles::PublishCrashChildMain(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "--serve-child") == 0) {
    return goggles::ServeChildMain(argv[2]);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
