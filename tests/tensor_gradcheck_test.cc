/// \file tensor_gradcheck_test.cc
/// \brief Central finite-difference validation of every backward pass.
///
/// For a scalar loss L = sum(w_out * op(x)), the analytic gradient from the
/// backward pass must match (L(x+eps) - L(x-eps)) / (2 eps) elementwise.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "util/rng.h"

namespace goggles {
namespace {

/// Weighted-sum loss over a tensor with fixed random weights, making the
/// upstream gradient dL/dy = weights.
struct WeightedLoss {
  Tensor weights;

  explicit WeightedLoss(const std::vector<int64_t>& shape, Rng* rng)
      : weights(Tensor::RandomNormal(shape, 1.0f, rng)) {}

  double Eval(const Tensor& y) const {
    double acc = 0.0;
    for (int64_t i = 0; i < y.NumElements(); ++i) {
      acc += static_cast<double>(weights[i]) * y[i];
    }
    return acc;
  }
};

constexpr float kEps = 1e-2f;
constexpr double kTol = 2e-2;

/// Checks analytic against numeric gradient for every element of `param`.
void CheckGradient(Tensor* param, const Tensor& analytic_grad,
                   const std::function<double()>& loss_fn) {
  ASSERT_EQ(param->NumElements(), analytic_grad.NumElements());
  for (int64_t i = 0; i < param->NumElements(); ++i) {
    const float orig = (*param)[i];
    (*param)[i] = orig + kEps;
    const double plus = loss_fn();
    (*param)[i] = orig - kEps;
    const double minus = loss_fn();
    (*param)[i] = orig;
    const double numeric = (plus - minus) / (2.0 * kEps);
    EXPECT_NEAR(analytic_grad[i], numeric, kTol)
        << "element " << i << " of " << param->ShapeString();
  }
}

TEST(GradCheckTest, Conv2dInputWeightAndBias) {
  Rng rng(11);
  Tensor x = Tensor::RandomNormal({2, 2, 5, 5}, 1.0f, &rng);
  Tensor w = Tensor::RandomNormal({3, 2, 3, 3}, 0.5f, &rng);
  Tensor b = Tensor::RandomNormal({3}, 0.5f, &rng);
  const Conv2dParams params{1, 1};

  Result<Tensor> y0 = Conv2dForward(x, w, b, params);
  ASSERT_TRUE(y0.ok());
  WeightedLoss loss(y0->shape(), &rng);
  auto loss_fn = [&]() {
    return loss.Eval(*Conv2dForward(x, w, b, params));
  };

  Result<Conv2dGrads> grads = Conv2dBackward(x, w, *(&loss.weights), params);
  ASSERT_TRUE(grads.ok());
  CheckGradient(&x, grads->dx, loss_fn);
  CheckGradient(&w, grads->dw, loss_fn);
  CheckGradient(&b, grads->db, loss_fn);
}

TEST(GradCheckTest, Conv2dStride2) {
  Rng rng(13);
  Tensor x = Tensor::RandomNormal({1, 1, 6, 6}, 1.0f, &rng);
  Tensor w = Tensor::RandomNormal({2, 1, 3, 3}, 0.5f, &rng);
  Tensor b = Tensor::Zeros({2});
  const Conv2dParams params{2, 1};

  Result<Tensor> y0 = Conv2dForward(x, w, b, params);
  ASSERT_TRUE(y0.ok());
  WeightedLoss loss(y0->shape(), &rng);
  auto loss_fn = [&]() { return loss.Eval(*Conv2dForward(x, w, b, params)); };

  Result<Conv2dGrads> grads = Conv2dBackward(x, w, loss.weights, params);
  ASSERT_TRUE(grads.ok());
  CheckGradient(&x, grads->dx, loss_fn);
  CheckGradient(&w, grads->dw, loss_fn);
}

TEST(GradCheckTest, LinearAllParams) {
  Rng rng(17);
  Tensor x = Tensor::RandomNormal({4, 6}, 1.0f, &rng);
  Tensor w = Tensor::RandomNormal({3, 6}, 0.5f, &rng);
  Tensor b = Tensor::RandomNormal({3}, 0.5f, &rng);

  Result<Tensor> y0 = LinearForward(x, w, b);
  ASSERT_TRUE(y0.ok());
  WeightedLoss loss(y0->shape(), &rng);
  auto loss_fn = [&]() { return loss.Eval(*LinearForward(x, w, b)); };

  Result<LinearGrads> grads = LinearBackward(x, w, loss.weights);
  ASSERT_TRUE(grads.ok());
  CheckGradient(&x, grads->dx, loss_fn);
  CheckGradient(&w, grads->dw, loss_fn);
  CheckGradient(&b, grads->db, loss_fn);
}

TEST(GradCheckTest, MaxPoolInput) {
  Rng rng(19);
  // Distinct values so the argmax is stable under the probe epsilon.
  Tensor x({1, 2, 4, 4});
  for (int64_t i = 0; i < x.NumElements(); ++i) {
    x[i] = static_cast<float>(i % 7) + 0.1f * static_cast<float>(i);
  }
  Result<MaxPoolResult> fwd0 = MaxPool2dForward(x, 2, 2);
  ASSERT_TRUE(fwd0.ok());
  WeightedLoss loss(fwd0->y.shape(), &rng);
  auto loss_fn = [&]() { return loss.Eval(MaxPool2dForward(x, 2, 2)->y); };

  Result<Tensor> dx = MaxPool2dBackward(fwd0->argmax, x.shape(), loss.weights);
  ASSERT_TRUE(dx.ok());
  CheckGradient(&x, *dx, loss_fn);
}

TEST(GradCheckTest, ReluInput) {
  Rng rng(23);
  // Keep values away from the kink at 0 (within the probe epsilon).
  Tensor x = Tensor::RandomNormal({3, 7}, 1.0f, &rng);
  for (int64_t i = 0; i < x.NumElements(); ++i) {
    if (std::fabs(x[i]) < 3 * kEps) x[i] = 4 * kEps;
  }
  Tensor y0 = ReluForward(x);
  WeightedLoss loss(y0.shape(), &rng);
  auto loss_fn = [&]() { return loss.Eval(ReluForward(x)); };
  Tensor dx = ReluBackward(x, loss.weights);
  CheckGradient(&x, dx, loss_fn);
}

TEST(GradCheckTest, SoftmaxCrossEntropyLogits) {
  Rng rng(29);
  Tensor logits = Tensor::RandomNormal({5, 4}, 1.0f, &rng);
  // Random soft targets normalized per row.
  Tensor targets({5, 4});
  for (int i = 0; i < 5; ++i) {
    float total = 0.0f;
    for (int j = 0; j < 4; ++j) {
      targets.At2(i, j) = static_cast<float>(rng.Uniform(0.1, 1.0));
      total += targets.At2(i, j);
    }
    for (int j = 0; j < 4; ++j) targets.At2(i, j) /= total;
  }

  Result<SoftmaxCrossEntropyResult> r0 = SoftmaxCrossEntropy(logits, targets);
  ASSERT_TRUE(r0.ok());
  auto loss_fn = [&]() {
    return SoftmaxCrossEntropy(logits, targets)->loss;
  };
  CheckGradient(&logits, r0->dlogits, loss_fn);
}

}  // namespace
}  // namespace goggles
