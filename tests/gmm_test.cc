#include "goggles/base_gmm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace goggles {
namespace {

/// Two well-separated diagonal Gaussian blobs in `dim` dimensions.
Matrix TwoBlobs(int n_per, int dim, double separation, Rng* rng,
                std::vector<int>* truth = nullptr) {
  Matrix x(2 * n_per, dim);
  for (int i = 0; i < 2 * n_per; ++i) {
    const int label = i < n_per ? 0 : 1;
    if (truth != nullptr) truth->push_back(label);
    for (int j = 0; j < dim; ++j) {
      const double center = label == 0 ? 0.0 : separation;
      x(i, j) = center + rng->Gaussian();
    }
  }
  return x;
}

TEST(LogSumExpTest, MatchesDirectComputation) {
  const double v[3] = {1.0, 2.0, 3.0};
  const double expected =
      std::log(std::exp(1.0) + std::exp(2.0) + std::exp(3.0));
  EXPECT_NEAR(LogSumExp(v, 3), expected, 1e-12);
}

TEST(LogSumExpTest, StableForLargeValues) {
  const double v[2] = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(v, 2), 1000.0 + std::log(2.0), 1e-9);
}

TEST(DiagonalGmmTest, SeparatesTwoBlobs) {
  Rng rng(3);
  std::vector<int> truth;
  Matrix x = TwoBlobs(50, 4, 8.0, &rng, &truth);
  GmmConfig config;
  config.num_components = 2;
  DiagonalGmm gmm(config);
  ASSERT_TRUE(gmm.Fit(x).ok());
  Result<Matrix> proba = gmm.PredictProba(x);
  ASSERT_TRUE(proba.ok());

  // Cluster assignments must agree with truth up to label swap.
  int agree = 0;
  for (int i = 0; i < 100; ++i) {
    const int pred = (*proba)(i, 0) > (*proba)(i, 1) ? 0 : 1;
    if (pred == truth[static_cast<size_t>(i)]) ++agree;
  }
  const int correct = std::max(agree, 100 - agree);
  EXPECT_GE(correct, 98);
}

TEST(DiagonalGmmTest, PosteriorsSumToOne) {
  Rng rng(5);
  Matrix x = TwoBlobs(30, 3, 4.0, &rng);
  GmmConfig config;
  config.num_components = 2;
  DiagonalGmm gmm(config);
  ASSERT_TRUE(gmm.Fit(x).ok());
  Result<Matrix> proba = gmm.PredictProba(x);
  ASSERT_TRUE(proba.ok());
  for (int64_t i = 0; i < proba->rows(); ++i) {
    double total = 0.0;
    for (int64_t c = 0; c < proba->cols(); ++c) {
      EXPECT_GE((*proba)(i, c), 0.0);
      total += (*proba)(i, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(DiagonalGmmTest, WeightsSumToOne) {
  Rng rng(7);
  Matrix x = TwoBlobs(30, 3, 5.0, &rng);
  GmmConfig config;
  config.num_components = 2;
  DiagonalGmm gmm(config);
  ASSERT_TRUE(gmm.Fit(x).ok());
  double total = 0.0;
  for (double w : gmm.weights()) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DiagonalGmmTest, MeansNearTrueCenters) {
  Rng rng(9);
  Matrix x = TwoBlobs(200, 2, 10.0, &rng);
  GmmConfig config;
  config.num_components = 2;
  DiagonalGmm gmm(config);
  ASSERT_TRUE(gmm.Fit(x).ok());
  // One mean near 0, the other near 10 (either order).
  const double m0 = gmm.means()(0, 0);
  const double m1 = gmm.means()(1, 0);
  const double lo = std::min(m0, m1), hi = std::max(m0, m1);
  EXPECT_NEAR(lo, 0.0, 0.5);
  EXPECT_NEAR(hi, 10.0, 0.5);
}

TEST(DiagonalGmmTest, VarianceFloorRespected) {
  // Constant data would give zero variance without the floor.
  Matrix x(10, 2, 3.0);
  GmmConfig config;
  config.num_components = 2;
  config.var_floor = 1e-4;
  DiagonalGmm gmm(config);
  ASSERT_TRUE(gmm.Fit(x).ok());
  for (int64_t c = 0; c < 2; ++c) {
    for (int64_t j = 0; j < 2; ++j) {
      EXPECT_GE(gmm.variances()(c, j), 1e-4);
    }
  }
}

TEST(DiagonalGmmTest, InvalidInputsRejected) {
  GmmConfig config;
  config.num_components = 5;
  DiagonalGmm gmm(config);
  EXPECT_FALSE(gmm.Fit(Matrix(3, 2, 1.0)).ok());  // fewer rows than K
  DiagonalGmm unfitted{GmmConfig{}};
  EXPECT_FALSE(unfitted.PredictProba(Matrix(3, 2)).ok());
}

TEST(DiagonalGmmTest, PredictDimensionMismatchRejected) {
  Rng rng(11);
  Matrix x = TwoBlobs(20, 3, 5.0, &rng);
  GmmConfig config;
  DiagonalGmm gmm(config);
  ASSERT_TRUE(gmm.Fit(x).ok());
  EXPECT_FALSE(gmm.PredictProba(Matrix(5, 7)).ok());
}

/// EM property: the log-likelihood sequence is non-decreasing.
class GmmMonotoneSweep
    : public ::testing::TestWithParam<std::tuple<int, double, uint64_t>> {};

TEST_P(GmmMonotoneSweep, LogLikelihoodNonDecreasing) {
  const int dim = std::get<0>(GetParam());
  const double sep = std::get<1>(GetParam());
  const uint64_t seed = std::get<2>(GetParam());
  Rng rng(seed);
  Matrix x = TwoBlobs(40, dim, sep, &rng);
  GmmConfig config;
  config.num_components = 2;
  config.seed = seed;
  config.num_restarts = 1;
  config.tol = 0.0;  // run all iterations
  config.max_iters = 40;
  DiagonalGmm gmm(config);
  ASSERT_TRUE(gmm.Fit(x).ok());
  const auto& history = gmm.log_likelihood_history();
  ASSERT_GE(history.size(), 2u);
  for (size_t i = 1; i < history.size(); ++i) {
    // Small numerical slack for float accumulation.
    ASSERT_GE(history[i], history[i - 1] - 1e-6)
        << "iteration " << i << " decreased the log-likelihood";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Property, GmmMonotoneSweep,
    ::testing::Combine(::testing::Values(2, 8, 32),
                       ::testing::Values(0.5, 2.0, 6.0),
                       ::testing::Values(1ULL, 17ULL)));

TEST(DiagonalGmmTest, MoreRestartsNeverWorse) {
  Rng rng(13);
  Matrix x = TwoBlobs(60, 4, 3.0, &rng);
  GmmConfig one;
  one.num_components = 2;
  one.num_restarts = 1;
  GmmConfig many = one;
  many.num_restarts = 5;
  DiagonalGmm gmm_one(one), gmm_many(many);
  ASSERT_TRUE(gmm_one.Fit(x).ok());
  ASSERT_TRUE(gmm_many.Fit(x).ok());
  EXPECT_GE(gmm_many.final_log_likelihood(),
            gmm_one.final_log_likelihood() - 1e-9);
}

}  // namespace
}  // namespace goggles
