#include "serve/session.h"

#include <gtest/gtest.h>

#include "data/raster.h"
#include "goggles/pipeline.h"
#include "nn/vgg.h"

/// Online incremental labeling: serve::Session must reproduce the batch
/// pipeline's labels exactly — a Session fitted on a pool is the *same
/// computation* as GogglesPipeline::Label, and labeling pool images
/// online through the cached fitted state must agree bit-for-bit with
/// the fitting run (the ISSUE's acceptance criterion).

namespace goggles {
namespace {

data::Image PatternImage(int variant) {
  data::Image img(3, 32, 32, 0.05f * static_cast<float>(variant % 4));
  switch (variant % 3) {
    case 0:
      data::DrawFilledCircle(&img, 16, 16, 6 + variant % 5, {1.0f, 0.2f, 0.2f});
      break;
    case 1:
      data::DrawFilledRect(&img, 6, 6, 26, 26, {0.2f, 1.0f, 0.2f});
      break;
    default:
      data::DrawCross(&img, 16, 16, 14, 3, {0.2f, 0.2f, 1.0f});
      break;
  }
  return img;
}

std::shared_ptr<features::FeatureExtractor> MakeExtractor() {
  nn::VggMiniConfig config;
  config.stage_channels = {4, 8, 8, 8, 8};
  config.num_classes = 4;
  Result<nn::VggMini> model = nn::BuildVggMini(config);
  model.status().Abort("vgg");
  return std::make_shared<features::FeatureExtractor>(std::move(*model));
}

class ServeSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    extractor_ = MakeExtractor();
    // Circles vs rects/crosses, 2 classes; 14-image pool + held-out images.
    for (int i = 0; i < 14; ++i) pool_.push_back(PatternImage(i));
    for (int i = 14; i < 18; ++i) held_out_.push_back(PatternImage(i));
    dev_indices_ = {0, 1, 2, 3};
    dev_labels_ = {0, 1, 2 % 2, 1};
    config_.top_z = 3;  // 15 affinity functions, fast
  }

  std::shared_ptr<features::FeatureExtractor> extractor_;
  std::vector<data::Image> pool_;
  std::vector<data::Image> held_out_;
  std::vector<int> dev_indices_;
  std::vector<int> dev_labels_;
  GogglesConfig config_;
};

TEST_F(ServeSessionTest, FitMatchesBatchPipelineExactly) {
  auto session = serve::Session::Fit(extractor_, pool_, dev_indices_,
                                     dev_labels_, 2, config_);
  ASSERT_TRUE(session.ok()) << session.status();

  GogglesPipeline pipeline(MakeExtractor(), config_);
  auto batch = pipeline.Label(pool_, dev_indices_, dev_labels_, 2);
  ASSERT_TRUE(batch.ok()) << batch.status();

  const Matrix& served = session->pool_result().soft_labels;
  ASSERT_EQ(served.rows(), batch->soft_labels.rows());
  ASSERT_EQ(served.cols(), batch->soft_labels.cols());
  for (int64_t i = 0; i < served.rows(); ++i) {
    for (int64_t k = 0; k < served.cols(); ++k) {
      EXPECT_EQ(served(i, k), batch->soft_labels(i, k))
          << "soft label mismatch at (" << i << ", " << k << ")";
    }
  }
  EXPECT_EQ(session->pool_result().hard_labels, batch->hard_labels);
  EXPECT_EQ(session->pool_size(), static_cast<int64_t>(pool_.size()));
  EXPECT_EQ(session->num_functions(), 15);
}

// The acceptance criterion: labeling the pool images *online* (as if
// they were new arrivals) through the cached fitted state reproduces the
// full GogglesPipeline::Label rerun for the same images, bit for bit.
TEST_F(ServeSessionTest, LabelBatchOnPoolImagesMatchesFullRerun) {
  auto session = serve::Session::Fit(extractor_, pool_, dev_indices_,
                                     dev_labels_, 2, config_);
  ASSERT_TRUE(session.ok()) << session.status();

  auto online = session->LabelBatch(pool_);
  ASSERT_TRUE(online.ok()) << online.status();

  GogglesPipeline pipeline(MakeExtractor(), config_);
  auto rerun = pipeline.Label(pool_, dev_indices_, dev_labels_, 2);
  ASSERT_TRUE(rerun.ok()) << rerun.status();

  ASSERT_EQ(online->soft_labels.rows(), rerun->soft_labels.rows());
  ASSERT_EQ(online->soft_labels.cols(), rerun->soft_labels.cols());
  for (int64_t i = 0; i < online->soft_labels.rows(); ++i) {
    for (int64_t k = 0; k < online->soft_labels.cols(); ++k) {
      EXPECT_EQ(online->soft_labels(i, k), rerun->soft_labels(i, k))
          << "online/rerun label mismatch at (" << i << ", " << k << ")";
    }
  }
  EXPECT_EQ(online->hard_labels, rerun->hard_labels);
}

TEST_F(ServeSessionTest, LabelOneMatchesLabelBatchRow) {
  auto session = serve::Session::Fit(extractor_, pool_, dev_indices_,
                                     dev_labels_, 2, config_);
  ASSERT_TRUE(session.ok()) << session.status();

  auto batch = session->LabelBatch(held_out_);
  ASSERT_TRUE(batch.ok()) << batch.status();
  for (size_t i = 0; i < held_out_.size(); ++i) {
    auto one = session->LabelOne(held_out_[i]);
    ASSERT_TRUE(one.ok()) << one.status();
    EXPECT_EQ(one->hard, batch->hard_labels[i]);
    ASSERT_EQ(one->soft.size(), static_cast<size_t>(batch->soft_labels.cols()));
    for (size_t k = 0; k < one->soft.size(); ++k) {
      EXPECT_EQ(one->soft[k],
                batch->soft_labels(static_cast<int64_t>(i),
                                   static_cast<int64_t>(k)));
    }
  }
}

TEST_F(ServeSessionTest, HeldOutLabelingIsDeterministic) {
  auto session = serve::Session::Fit(extractor_, pool_, dev_indices_,
                                     dev_labels_, 2, config_);
  ASSERT_TRUE(session.ok()) << session.status();
  auto first = session->LabelBatch(held_out_);
  auto second = session->LabelBatch(held_out_);
  ASSERT_TRUE(first.ok() && second.ok());
  for (int64_t i = 0; i < first->soft_labels.rows(); ++i) {
    for (int64_t k = 0; k < first->soft_labels.cols(); ++k) {
      EXPECT_EQ(first->soft_labels(i, k), second->soft_labels(i, k));
    }
  }
}

TEST_F(ServeSessionTest, MaxFunctionsTruncationIsHonoredOnline) {
  GogglesConfig truncated = config_;
  truncated.max_functions = 7;  // prefix spanning all 5 layers
  auto session = serve::Session::Fit(extractor_, pool_, dev_indices_,
                                     dev_labels_, 2, truncated);
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_EQ(session->num_functions(), 7);

  auto online = session->LabelBatch(pool_);
  ASSERT_TRUE(online.ok()) << online.status();

  GogglesPipeline pipeline(MakeExtractor(), truncated);
  auto rerun = pipeline.Label(pool_, dev_indices_, dev_labels_, 2);
  ASSERT_TRUE(rerun.ok()) << rerun.status();
  EXPECT_EQ(online->hard_labels, rerun->hard_labels);
  for (int64_t i = 0; i < online->soft_labels.rows(); ++i) {
    for (int64_t k = 0; k < online->soft_labels.cols(); ++k) {
      EXPECT_EQ(online->soft_labels(i, k), rerun->soft_labels(i, k));
    }
  }
}

TEST_F(ServeSessionTest, InvalidInputsAreRejected) {
  serve::Session unfitted;
  EXPECT_FALSE(unfitted.LabelBatch(held_out_).ok());

  auto session = serve::Session::Fit(extractor_, pool_, dev_indices_,
                                     dev_labels_, 2, config_);
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_FALSE(session->LabelBatch({}).ok());

  EXPECT_FALSE(serve::Session::Fit(nullptr, pool_, dev_indices_, dev_labels_,
                                   2, config_)
                   .ok());
  EXPECT_FALSE(
      serve::Session::Fit(extractor_, {}, dev_indices_, dev_labels_, 2,
                          config_)
          .ok());
}

}  // namespace
}  // namespace goggles
