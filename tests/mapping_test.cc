#include "goggles/mapping.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace goggles {
namespace {

TEST(MappingTest, IdentityWhenClustersAlignWithClasses) {
  // 4 instances, cluster == class already.
  Matrix gamma = Matrix::FromRows(
      {{0.9, 0.1}, {0.8, 0.2}, {0.1, 0.9}, {0.2, 0.8}});
  Result<std::vector<int>> mapping =
      ClusterToClassMapping(gamma, {0, 2}, {0, 1}, 2);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(*mapping, (std::vector<int>{0, 1}));
}

TEST(MappingTest, SwapWhenClustersAreFlipped) {
  Matrix gamma = Matrix::FromRows(
      {{0.9, 0.1}, {0.8, 0.2}, {0.1, 0.9}, {0.2, 0.8}});
  // Dev labels say rows 0,1 are class 1 and rows 2,3 class 0.
  Result<std::vector<int>> mapping =
      ClusterToClassMapping(gamma, {0, 2}, {1, 0}, 2);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(*mapping, (std::vector<int>{1, 0}));
}

TEST(MappingTest, EmptyDevSetYieldsIdentity) {
  Matrix gamma = Matrix::FromRows({{0.9, 0.1}});
  Result<std::vector<int>> mapping = ClusterToClassMapping(gamma, {}, {}, 2);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(*mapping, (std::vector<int>{0, 1}));
}

TEST(MappingTest, ValidatesInputs) {
  Matrix gamma = Matrix::FromRows({{0.9, 0.1}});
  EXPECT_FALSE(ClusterToClassMapping(gamma, {0}, {0, 1}, 2).ok());
  EXPECT_FALSE(ClusterToClassMapping(gamma, {5}, {0}, 2).ok());   // bad index
  EXPECT_FALSE(ClusterToClassMapping(gamma, {0}, {7}, 2).ok());   // bad label
  EXPECT_FALSE(ClusterToClassMapping(gamma, {0}, {0}, 3).ok());   // K mismatch
}

TEST(MappingTest, ApplyMappingPermutesColumns) {
  Matrix gamma = Matrix::FromRows({{0.7, 0.3}, {0.4, 0.6}});
  Matrix mapped = ApplyMapping(gamma, {1, 0});
  EXPECT_DOUBLE_EQ(mapped(0, 1), 0.7);
  EXPECT_DOUBLE_EQ(mapped(0, 0), 0.3);
  EXPECT_DOUBLE_EQ(mapped(1, 1), 0.4);
}

TEST(MappingTest, ThreeClassPermutationRecovered) {
  // Clusters are a cyclic shift of classes: cluster 0 -> class 1,
  // cluster 1 -> class 2, cluster 2 -> class 0.
  const int n = 9;
  Matrix gamma(n, 3, 0.05);
  std::vector<int> dev_indices, dev_labels;
  for (int i = 0; i < n; ++i) {
    const int true_class = i % 3;
    const int cluster = (true_class + 2) % 3;  // inverse of the shift
    gamma(i, cluster) = 0.9;
    dev_indices.push_back(i);
    dev_labels.push_back(true_class);
  }
  Result<std::vector<int>> mapping =
      ClusterToClassMapping(gamma, dev_indices, dev_labels, 3);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(*mapping, (std::vector<int>{1, 2, 0}));
}

TEST(MappingTest, HungarianAgreesWithEq15OnBinaryTasks) {
  // Property check (paper §4.3: Eq. 14 reduces to Eq. 15 when K = 2, under
  // the paper's assumption of equal-size per-class development sets —
  // Eq. 15 compares only cluster-1 masses, which matches the assignment
  // objective exactly when |LS_0| = |LS_1|).
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 20;
    Matrix gamma(n, 2);
    for (int i = 0; i < n; ++i) {
      const double p = rng.Uniform();
      gamma(i, 0) = p;
      gamma(i, 1) = 1.0 - p;
    }
    std::vector<int> dev_indices, dev_labels;
    for (int i = 0; i < 6; ++i) {
      dev_indices.push_back(static_cast<int>(rng.UniformInt(0, n - 1)));
      dev_labels.push_back(i % 2);  // balanced dev set, as the paper assumes
    }
    Result<std::vector<int>> hungarian =
        ClusterToClassMapping(gamma, dev_indices, dev_labels, 2);
    ASSERT_TRUE(hungarian.ok());
    std::vector<int> eq15 = BinaryMappingEq15(gamma, dev_indices, dev_labels);
    // Both maximize the same objective; they can differ only on exact ties.
    double obj_h = 0.0, obj_e = 0.0;
    for (size_t d = 0; d < dev_indices.size(); ++d) {
      for (int k = 0; k < 2; ++k) {
        if ((*hungarian)[static_cast<size_t>(k)] == dev_labels[d]) {
          obj_h += gamma(dev_indices[d], k);
        }
        if (eq15[static_cast<size_t>(k)] == dev_labels[d]) {
          obj_e += gamma(dev_indices[d], k);
        }
      }
    }
    EXPECT_NEAR(obj_h, obj_e, 1e-9) << "trial " << trial;
  }
}

TEST(MappingTest, MappingInvariantToDuplicatedDevEntries) {
  Matrix gamma = Matrix::FromRows(
      {{0.9, 0.1}, {0.8, 0.2}, {0.1, 0.9}, {0.2, 0.8}});
  Result<std::vector<int>> once =
      ClusterToClassMapping(gamma, {0, 2}, {0, 1}, 2);
  Result<std::vector<int>> twice =
      ClusterToClassMapping(gamma, {0, 0, 2, 2}, {0, 0, 1, 1}, 2);
  ASSERT_TRUE(once.ok());
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(*once, *twice);
}

}  // namespace
}  // namespace goggles
