#include "serve/registry.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/raster.h"
#include "nn/vgg.h"
#include "serve/artifact.h"

/// The multi-task gateway's registry: on-demand artifact loads, LRU
/// eviction under a memory budget (in-flight sessions must drain, not
/// crash), hot reload when the artifact file changes, and clean errors
/// for corrupt/oversized/version-skewed artifacts.

namespace goggles {
namespace {

namespace fs = std::filesystem;

data::Image PatternImage(int variant, float base) {
  data::Image img(3, 32, 32, base);
  switch (variant % 3) {
    case 0:
      data::DrawFilledCircle(&img, 16, 16, 6 + variant % 5, {1.0f, 0.2f, 0.2f});
      break;
    case 1:
      data::DrawFilledRect(&img, 6, 6, 26, 26, {0.2f, 1.0f, 0.2f});
      break;
    default:
      data::DrawCross(&img, 16, 16, 14, 3, {0.2f, 0.2f, 1.0f});
      break;
  }
  return img;
}

std::shared_ptr<features::FeatureExtractor> MakeExtractor() {
  nn::VggMiniConfig config;
  config.stage_channels = {4, 8, 8, 8, 8};
  config.num_classes = 4;
  Result<nn::VggMini> model = nn::BuildVggMini(config);
  model.status().Abort("vgg");
  return std::make_shared<features::FeatureExtractor>(std::move(*model));
}

serve::Session FitSession(
    const std::shared_ptr<features::FeatureExtractor>& extractor,
    float base) {
  std::vector<data::Image> pool;
  for (int i = 0; i < 12; ++i) pool.push_back(PatternImage(i, base));
  GogglesConfig config;
  config.top_z = 3;
  auto session =
      serve::Session::Fit(extractor, pool, {0, 1, 2, 3}, {0, 1, 0, 1}, 2,
                          config);
  session.status().Abort("Session::Fit");
  return std::move(*session);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Forces a visibly newer mtime: filesystem timestamp granularity can be
/// coarser than back-to-back writes in a test.
void BumpMtime(const std::string& path) {
  std::error_code ec;
  const fs::file_time_type mtime = fs::last_write_time(path, ec);
  ASSERT_FALSE(ec) << ec.message();
  fs::last_write_time(path, mtime + std::chrono::seconds(2), ec);
  ASSERT_FALSE(ec) << ec.message();
}

class ServeRegistryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    extractor_ = new std::shared_ptr<features::FeatureExtractor>(
        MakeExtractor());
    dir_ = new std::string(::testing::TempDir() + "/registry_tasks");
    fs::create_directories(*dir_);
    session_a_ = new serve::Session(FitSession(*extractor_, 0.1f));
    session_b_ = new serve::Session(FitSession(*extractor_, 0.6f));
    ASSERT_NE(session_a_->pool_fingerprint(), session_b_->pool_fingerprint());
    ASSERT_TRUE(session_a_->Save(*dir_ + "/task_a.ggsa").ok());
    ASSERT_TRUE(session_b_->Save(*dir_ + "/task_b.ggsa").ok());
    for (int i = 20; i < 24; ++i) {
      held_out_.push_back(PatternImage(i, 0.3f));
    }
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    fs::remove_all(*dir_, ec);
    delete session_b_;
    delete session_a_;
    delete dir_;
    delete extractor_;
    held_out_.clear();
  }

  serve::SessionRegistry MakeRegistry(uint64_t budget_bytes = 0,
                                      size_t max_tasks = 0) {
    serve::RegistryConfig config;
    config.artifact_dir = *dir_;
    config.memory_budget_bytes = budget_bytes;
    config.max_resident_tasks = max_tasks;
    return serve::SessionRegistry(*extractor_, config);
  }

  static std::shared_ptr<features::FeatureExtractor>* extractor_;
  static std::string* dir_;
  static serve::Session* session_a_;
  static serve::Session* session_b_;
  static std::vector<data::Image> held_out_;
};

std::shared_ptr<features::FeatureExtractor>* ServeRegistryTest::extractor_ =
    nullptr;
std::string* ServeRegistryTest::dir_ = nullptr;
serve::Session* ServeRegistryTest::session_a_ = nullptr;
serve::Session* ServeRegistryTest::session_b_ = nullptr;
std::vector<data::Image> ServeRegistryTest::held_out_;

TEST_F(ServeRegistryTest, AcquireLoadsOnDemandAndCaches) {
  auto registry = MakeRegistry();
  auto first = registry.Acquire("task_a");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ((*first)->pool_fingerprint(), session_a_->pool_fingerprint());

  auto second = registry.Acquire("task_a");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get()) << "resident session not reused";

  const serve::RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.resident_tasks, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);

  // Labels through the registry-loaded session match the fitting session
  // bit for bit (same artifact round-trip the artifact test locks in).
  auto direct = session_a_->LabelBatch(held_out_);
  auto routed = (*first)->LabelBatch(held_out_);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(direct->hard_labels, routed->hard_labels);
  for (int64_t i = 0; i < direct->soft_labels.rows(); ++i) {
    for (int64_t k = 0; k < direct->soft_labels.cols(); ++k) {
      EXPECT_EQ(direct->soft_labels(i, k), routed->soft_labels(i, k));
    }
  }
}

TEST_F(ServeRegistryTest, DistinctTasksResolveToDistinctSessions) {
  auto registry = MakeRegistry();
  auto a = registry.Acquire("task_a");
  auto b = registry.Acquire("task_b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->pool_fingerprint(), session_a_->pool_fingerprint());
  EXPECT_EQ((*b)->pool_fingerprint(), session_b_->pool_fingerprint());
  EXPECT_NE(a->get(), b->get());
  EXPECT_EQ(registry.stats().resident_tasks, 2u);
}

TEST_F(ServeRegistryTest, InvalidTaskNamesAreRejected) {
  auto registry = MakeRegistry();
  for (const char* name :
       {"", ".", "..", "a/b", "..\\evil", "/etc/passwd", "../task_a"}) {
    auto result = registry.Acquire(name);
    EXPECT_FALSE(result.ok()) << "accepted task name: " << name;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_FALSE(serve::SessionRegistry::IsValidTaskName(
      std::string(300, 'x')));
  EXPECT_TRUE(serve::SessionRegistry::IsValidTaskName("task.v2-final_3"));
}

TEST_F(ServeRegistryTest, MissingTaskIsNotFound) {
  auto registry = MakeRegistry();
  auto result = registry.Acquire("no_such_task");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ServeRegistryTest, HotReloadPicksUpReplacedArtifact) {
  auto registry = MakeRegistry();
  const std::string path = *dir_ + "/reloadable.ggsa";
  WriteFile(path, ReadFile(*dir_ + "/task_a.ggsa"));
  auto before = registry.Acquire("reloadable");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ((*before)->pool_fingerprint(), session_a_->pool_fingerprint());

  // Replace the artifact with task B's bytes and make the mtime visibly
  // newer; the next Acquire must serve B's fitted state.
  WriteFile(path, ReadFile(*dir_ + "/task_b.ggsa"));
  BumpMtime(path);
  auto after = registry.Acquire("reloadable");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->pool_fingerprint(), session_b_->pool_fingerprint());
  EXPECT_EQ(registry.stats().reloads, 1u);

  // The pre-reload shared_ptr still serves (drains) the old state.
  EXPECT_EQ((*before)->pool_fingerprint(), session_a_->pool_fingerprint());
  EXPECT_TRUE((*before)->LabelBatch(held_out_).ok());
  std::remove(path.c_str());
}

TEST_F(ServeRegistryTest, ExplicitLoadRereadsTheFile) {
  auto registry = MakeRegistry();
  const std::string path = *dir_ + "/forced.ggsa";
  WriteFile(path, ReadFile(*dir_ + "/task_a.ggsa"));
  ASSERT_TRUE(registry.Acquire("forced").ok());
  // Same signature, so Acquire would keep the resident session; an
  // explicit load op must re-read regardless.
  auto reloaded = registry.Load("forced");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(registry.stats().loads, 2u);
  std::remove(path.c_str());
}

TEST_F(ServeRegistryTest, DeletedArtifactKeepsServingResidentSession) {
  auto registry = MakeRegistry();
  const std::string path = *dir_ + "/ephemeral.ggsa";
  WriteFile(path, ReadFile(*dir_ + "/task_a.ggsa"));
  auto session = registry.Acquire("ephemeral");
  ASSERT_TRUE(session.ok());
  std::remove(path.c_str());
  // Unstattable file: the resident session keeps serving.
  auto still = registry.Acquire("ephemeral");
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still->get(), session->get());
}

TEST_F(ServeRegistryTest, LruEvictionUnderMemoryBudgetDrainsInFlight) {
  // Budget fits one session but not two: loading B must evict A.
  const uint64_t one_session = session_a_->ApproxMemoryBytes();
  auto registry = MakeRegistry(one_session + one_session / 2);
  auto a = registry.Acquire("task_a");
  ASSERT_TRUE(a.ok());
  auto labels_before = (*a)->LabelBatch(held_out_);
  ASSERT_TRUE(labels_before.ok());

  auto b = registry.Acquire("task_b");
  ASSERT_TRUE(b.ok());
  serve::RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.resident_tasks, 1u);
  for (const serve::TaskInfo& info : registry.ListTasks()) {
    if (info.task == "task_a") {
      EXPECT_FALSE(info.resident);
    }
    if (info.task == "task_b") {
      EXPECT_TRUE(info.resident);
    }
  }

  // The evicted session is still held by this "in-flight request": it
  // must keep labeling, bit-identically, until the holder lets go.
  auto labels_after = (*a)->LabelBatch(held_out_);
  ASSERT_TRUE(labels_after.ok());
  EXPECT_EQ(labels_before->hard_labels, labels_after->hard_labels);
  for (int64_t i = 0; i < labels_before->soft_labels.rows(); ++i) {
    for (int64_t k = 0; k < labels_before->soft_labels.cols(); ++k) {
      EXPECT_EQ(labels_before->soft_labels(i, k),
                labels_after->soft_labels(i, k));
    }
  }

  // Re-acquiring the evicted task cold-loads it again from disk.
  auto again = registry.Acquire("task_a");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(registry.stats().loads, 3u);
}

TEST_F(ServeRegistryTest, MaxResidentTasksCap) {
  auto registry = MakeRegistry(/*budget_bytes=*/0, /*max_tasks=*/1);
  ASSERT_TRUE(registry.Acquire("task_a").ok());
  ASSERT_TRUE(registry.Acquire("task_b").ok());
  EXPECT_EQ(registry.stats().resident_tasks, 1u);
  EXPECT_EQ(registry.stats().evictions, 1u);
}

TEST_F(ServeRegistryTest, UnloadDropsResidency) {
  auto registry = MakeRegistry();
  ASSERT_TRUE(registry.Acquire("task_a").ok());
  ASSERT_TRUE(registry.Unload("task_a").ok());
  EXPECT_EQ(registry.stats().resident_tasks, 0u);
  EXPECT_EQ(registry.Unload("task_a").code(), StatusCode::kNotFound);
  // Not resident, but still on disk: Acquire cold-loads again.
  EXPECT_TRUE(registry.Acquire("task_a").ok());
}

TEST_F(ServeRegistryTest, ListTasksMergesResidentAndOnDisk) {
  auto registry = MakeRegistry();
  ASSERT_TRUE(registry.Acquire("task_a").ok());
  bool saw_a = false, saw_b = false;
  for (const serve::TaskInfo& info : registry.ListTasks()) {
    if (info.task == "task_a") {
      saw_a = true;
      EXPECT_TRUE(info.resident);
      EXPECT_TRUE(info.on_disk);
      EXPECT_EQ(info.pool_size, session_a_->pool_size());
      EXPECT_GT(info.approx_bytes, 0u);
    }
    if (info.task == "task_b") {
      saw_b = true;
      EXPECT_FALSE(info.resident);
      EXPECT_TRUE(info.on_disk);
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST_F(ServeRegistryTest, CorruptOversizedAndVersionSkewedArtifactsFail) {
  auto registry = MakeRegistry();
  const std::string good = ReadFile(*dir_ + "/task_a.ggsa");

  // Not an artifact at all.
  WriteFile(*dir_ + "/garbage.ggsa", "this is not a GGSA file");
  EXPECT_FALSE(registry.Acquire("garbage").ok());

  // Truncated mid-payload.
  WriteFile(*dir_ + "/truncated.ggsa", good.substr(0, good.size() / 2));
  EXPECT_FALSE(registry.Acquire("truncated").ok());

  // Oversized: valid artifact with trailing bytes (e.g. a partially
  // overwritten longer file) must be rejected, not silently accepted.
  WriteFile(*dir_ + "/oversized.ggsa", good + std::string(64, '\x7f'));
  EXPECT_FALSE(registry.Acquire("oversized").ok());

  // Version skew: future format version.
  std::string skewed = good;
  skewed[4] = 99;  // version field follows the 4-byte magic
  WriteFile(*dir_ + "/skewed.ggsa", skewed);
  auto result = registry.Acquire("skewed");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("version"), std::string::npos);

  EXPECT_EQ(registry.stats().load_failures, 4u);
  // Failed loads leave nothing resident and healthy tasks unaffected.
  EXPECT_EQ(registry.stats().resident_tasks, 0u);
  EXPECT_TRUE(registry.Acquire("task_a").ok());

  for (const char* name : {"garbage", "truncated", "oversized", "skewed"}) {
    std::remove((*dir_ + "/" + name + ".ggsa").c_str());
  }
}

TEST_F(ServeRegistryTest, ReloadWhileServingNeverDisrupts) {
  auto registry = MakeRegistry();
  const std::string path = *dir_ + "/live.ggsa";
  WriteFile(path, ReadFile(*dir_ + "/task_a.ggsa"));

  std::atomic<bool> stop{false};
  std::atomic<int> labeled{0};
  std::atomic<bool> failed{false};
  std::thread server([&] {
    while (!stop.load()) {
      auto session = registry.Acquire("live");
      if (!session.ok()) {
        failed.store(true);
        return;
      }
      auto result = (*session)->LabelOne(held_out_[0]);
      if (!result.ok()) {
        failed.store(true);
        return;
      }
      labeled.fetch_add(1);
    }
  });

  // Keep swapping the artifact underneath the serving thread.
  for (int round = 0; round < 6; ++round) {
    const char* source = (round % 2 == 0) ? "/task_b.ggsa" : "/task_a.ggsa";
    WriteFile(path, ReadFile(*dir_ + source));
    BumpMtime(path);
    auto reloaded = registry.Load("live");
    ASSERT_TRUE(reloaded.ok()) << reloaded.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  server.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GT(labeled.load(), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace goggles
