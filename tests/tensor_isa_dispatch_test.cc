#include "tensor/isa.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/kernels.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "util/rng.h"

/// \file tensor_isa_dispatch_test.cc
/// \brief The runtime ISA dispatch contract: strict GOGGLES_ISA parsing,
/// graceful fallback when a binary carries tiers the host lacks, and —
/// the load-bearing invariant — bit-identical f32/f64 kernel results at
/// every tier the host can run (GEMM, conv, the BLAS-1 reductions). Plus
/// the quantized extraction path: exact int8 GEMM, bf16 round-trip, and
/// the quantized conv's own determinism guarantees.

namespace goggles {
namespace {

/// Tiers this process can actually sweep (compiled in AND executable).
std::vector<IsaTier> UsableTiers() {
  std::vector<IsaTier> tiers;
  const uint32_t usable = HostIsaMask() & CompiledIsaMask();
  for (int t = 0; t < kNumIsaTiers; ++t) {
    if ((usable & (1u << t)) != 0) tiers.push_back(static_cast<IsaTier>(t));
  }
  return tiers;
}

/// Restores auto-dispatch after a test forced tiers around.
struct TierSweepGuard {
  ~TierSweepGuard() { ForceIsaTier(ResolveIsaTier(false, IsaTier::kScalar,
                                                  HostIsaMask(),
                                                  CompiledIsaMask())); }
};

std::vector<float> RandomVec(size_t size, Rng* rng) {
  std::vector<float> v(size);
  for (auto& x : v) x = static_cast<float>(rng->Gaussian());
  return v;
}

std::vector<double> RandomVecD(size_t size, Rng* rng) {
  std::vector<double> v(size);
  for (auto& x : v) x = rng->Gaussian();
  return v;
}

// ---------------------------------------------------------------------------
// GOGGLES_ISA parsing and tier resolution
// ---------------------------------------------------------------------------

TEST(IsaParsing, AcceptsExactTierNames) {
  IsaTier tier = IsaTier::kScalar;
  EXPECT_TRUE(ParseIsaTierName("scalar", &tier));
  EXPECT_EQ(tier, IsaTier::kScalar);
  EXPECT_TRUE(ParseIsaTierName("sse2", &tier));
  EXPECT_EQ(tier, IsaTier::kSse2);
  EXPECT_TRUE(ParseIsaTierName("avx2", &tier));
  EXPECT_EQ(tier, IsaTier::kAvx2);
  EXPECT_TRUE(ParseIsaTierName("avx512", &tier));
  EXPECT_EQ(tier, IsaTier::kAvx512);
  EXPECT_TRUE(ParseIsaTierName("neon", &tier));
  EXPECT_EQ(tier, IsaTier::kNeon);
}

TEST(IsaParsing, RejectsEverythingElse) {
  IsaTier tier = IsaTier::kAvx2;
  for (const char* bad : {"", "AVX2", "avx-512", "avx512f", "native", "auto",
                          "scalar ", " sse2", "sse", "3"}) {
    EXPECT_FALSE(ParseIsaTierName(bad, &tier)) << "accepted: '" << bad << "'";
    EXPECT_EQ(tier, IsaTier::kAvx2) << "clobbered out param on '" << bad << "'";
  }
}

TEST(IsaResolution, AutoPicksHighestUsableTier) {
  const uint32_t scalar = IsaTierBit(IsaTier::kScalar);
  const uint32_t sse2 = IsaTierBit(IsaTier::kSse2);
  const uint32_t avx2 = IsaTierBit(IsaTier::kAvx2);
  const uint32_t avx512 = IsaTierBit(IsaTier::kAvx512);
  EXPECT_EQ(ResolveIsaTier(false, IsaTier::kScalar, scalar | sse2 | avx2,
                           scalar | sse2 | avx2),
            IsaTier::kAvx2);
  EXPECT_EQ(ResolveIsaTier(false, IsaTier::kScalar,
                           scalar | sse2 | avx2 | avx512,
                           scalar | sse2 | avx2 | avx512),
            IsaTier::kAvx512);
  EXPECT_EQ(ResolveIsaTier(false, IsaTier::kScalar, scalar, scalar),
            IsaTier::kScalar);
}

TEST(IsaResolution, HonorsUsableRequest) {
  const uint32_t all = IsaTierBit(IsaTier::kScalar) |
                       IsaTierBit(IsaTier::kSse2) | IsaTierBit(IsaTier::kAvx2);
  EXPECT_EQ(ResolveIsaTier(true, IsaTier::kSse2, all, all), IsaTier::kSse2);
  EXPECT_EQ(ResolveIsaTier(true, IsaTier::kScalar, all, all),
            IsaTier::kScalar);
}

TEST(IsaResolution, BinaryCarriesTierHostLacks) {
  // A fat binary with AVX-512 kernels on an AVX2-only host: both the
  // explicit request and auto-detection must degrade to AVX2.
  const uint32_t compiled =
      IsaTierBit(IsaTier::kScalar) | IsaTierBit(IsaTier::kSse2) |
      IsaTierBit(IsaTier::kAvx2) | IsaTierBit(IsaTier::kAvx512);
  const uint32_t host = IsaTierBit(IsaTier::kScalar) |
                        IsaTierBit(IsaTier::kSse2) |
                        IsaTierBit(IsaTier::kAvx2);
  EXPECT_EQ(ResolveIsaTier(true, IsaTier::kAvx512, host, compiled),
            IsaTier::kAvx2);
  EXPECT_EQ(ResolveIsaTier(false, IsaTier::kScalar, host, compiled),
            IsaTier::kAvx2);
}

TEST(IsaResolution, HostTierNotCompiledIn) {
  // The mirror case: a lean binary (scalar only) on a capable host.
  const uint32_t compiled = IsaTierBit(IsaTier::kScalar);
  const uint32_t host = IsaTierBit(IsaTier::kScalar) |
                        IsaTierBit(IsaTier::kSse2) |
                        IsaTierBit(IsaTier::kAvx2);
  EXPECT_EQ(ResolveIsaTier(true, IsaTier::kAvx2, host, compiled),
            IsaTier::kScalar);
  EXPECT_EQ(ResolveIsaTier(false, IsaTier::kScalar, host, compiled),
            IsaTier::kScalar);
}

TEST(IsaResolution, RequestStringPath) {
  // ResolveIsaRequest is the exact env-handling path of ActiveIsaTier().
  const uint32_t usable = IsaTierBit(IsaTier::kScalar) |
                          IsaTierBit(IsaTier::kSse2);
  EXPECT_EQ(ResolveIsaRequest("sse2", usable, usable), IsaTier::kSse2);
  EXPECT_EQ(ResolveIsaRequest("scalar", usable, usable), IsaTier::kScalar);
  // Unknown value: warn + auto (highest usable), never a crash.
  EXPECT_EQ(ResolveIsaRequest("fastest-please", usable, usable),
            IsaTier::kSse2);
  EXPECT_EQ(ResolveIsaRequest("", usable, usable), IsaTier::kSse2);
  // Known tier the binary/host cannot run: warn + best usable.
  EXPECT_EQ(ResolveIsaRequest("avx512", usable, usable), IsaTier::kSse2);
}

TEST(IsaRuntime, MasksAndActiveTierAreCoherent) {
  const uint32_t compiled = CompiledIsaMask();
  const uint32_t host = HostIsaMask();
  EXPECT_NE(compiled & IsaTierBit(IsaTier::kScalar), 0u);
  EXPECT_NE(host & IsaTierBit(IsaTier::kScalar), 0u);
  const IsaTier active = ActiveIsaTier();
  EXPECT_NE((compiled & host) & IsaTierBit(active), 0u);
  EXPECT_FALSE(std::string(IsaTierName(active)).empty());
  EXPECT_FALSE(HostCpuFlagsString().empty());
}

TEST(IsaRuntime, ForceIsaTierRejectsUnusableTier) {
  TierSweepGuard guard;
  const uint32_t usable = HostIsaMask() & CompiledIsaMask();
  for (int t = 0; t < kNumIsaTiers; ++t) {
    const IsaTier tier = static_cast<IsaTier>(t);
    if ((usable & IsaTierBit(tier)) != 0) {
      EXPECT_TRUE(ForceIsaTier(tier));
      EXPECT_EQ(ActiveIsaTier(), tier);
    } else {
      const IsaTier before = ActiveIsaTier();
      EXPECT_FALSE(ForceIsaTier(tier));
      EXPECT_EQ(ActiveIsaTier(), before);
    }
  }
}

// ---------------------------------------------------------------------------
// Forced-tier bit-identity of the f32/f64 kernels
// ---------------------------------------------------------------------------

TEST(TierBitIdentity, SGemmMatchesScalarReferenceAtEveryTier) {
  TierSweepGuard guard;
  Rng rng(20240811);
  // Shapes straddling the micro-tile and k-chunk boundaries of every tier.
  const int64_t shapes[][3] = {{1, 1, 1},   {3, 5, 7},    {8, 16, 32},
                               {17, 33, 70}, {64, 24, 256}, {33, 65, 300}};
  for (const auto& s : shapes) {
    const int64_t m = s[0], n = s[1], k = s[2];
    for (const bool ta : {false, true}) {
      for (const bool tb : {false, true}) {
        const std::vector<float> a = RandomVec(static_cast<size_t>(m * k), &rng);
        const std::vector<float> b = RandomVec(static_cast<size_t>(k * n), &rng);
        const std::vector<float> c0 = RandomVec(static_cast<size_t>(m * n), &rng);
        const int64_t lda = ta ? m : k, ldb = tb ? k : n;
        std::vector<float> want = c0;
        SGemmReference(ta, tb, m, n, k, 0.75f, a.data(), lda, b.data(), ldb,
                       0.5f, want.data(), n);
        for (const IsaTier tier : UsableTiers()) {
          ASSERT_TRUE(ForceIsaTier(tier));
          std::vector<float> got = c0;
          SGemm(ta, tb, m, n, k, 0.75f, a.data(), lda, b.data(), ldb, 0.5f,
                got.data(), n);
          ASSERT_EQ(0, std::memcmp(want.data(), got.data(),
                                   want.size() * sizeof(float)))
              << "tier=" << IsaTierName(tier) << " m=" << m << " n=" << n
              << " k=" << k << " ta=" << ta << " tb=" << tb;
        }
      }
    }
  }
}

TEST(TierBitIdentity, DGemmMatchesScalarReferenceAtEveryTier) {
  TierSweepGuard guard;
  Rng rng(20240812);
  const int64_t shapes[][3] = {{2, 3, 5}, {16, 8, 64}, {31, 9, 257}};
  for (const auto& s : shapes) {
    const int64_t m = s[0], n = s[1], k = s[2];
    for (const bool ta : {false, true}) {
      const std::vector<double> a = RandomVecD(static_cast<size_t>(m * k), &rng);
      const std::vector<double> b = RandomVecD(static_cast<size_t>(k * n), &rng);
      const int64_t lda = ta ? m : k;
      std::vector<double> want(static_cast<size_t>(m * n), 0.0);
      DGemmReference(ta, false, m, n, k, 1.25, a.data(), lda, b.data(), n, 0.0,
                     want.data(), n);
      for (const IsaTier tier : UsableTiers()) {
        ASSERT_TRUE(ForceIsaTier(tier));
        std::vector<double> got(static_cast<size_t>(m * n), 0.0);
        DGemm(ta, false, m, n, k, 1.25, a.data(), lda, b.data(), n, 0.0,
              got.data(), n);
        ASSERT_EQ(0, std::memcmp(want.data(), got.data(),
                                 want.size() * sizeof(double)))
            << "tier=" << IsaTierName(tier) << " m=" << m << " n=" << n
            << " k=" << k << " ta=" << ta;
      }
    }
  }
}

TEST(TierBitIdentity, PackedOperandSurvivesTierSwitch) {
  TierSweepGuard guard;
  Rng rng(20240813);
  const int64_t m = 23, n = 4, k = 300;
  const std::vector<double> a = RandomVecD(static_cast<size_t>(m * k), &rng);
  const std::vector<double> b = RandomVecD(static_cast<size_t>(k * n), &rng);
  std::vector<double> want(static_cast<size_t>(m * n), 0.0);
  DGemmReference(false, false, m, n, k, 1.0, a.data(), k, b.data(), n, 0.0,
                 want.data(), n);
  for (const IsaTier pack_tier : UsableTiers()) {
    ASSERT_TRUE(ForceIsaTier(pack_tier));
    const DGemmPackedA packed = DGemmPackOperandA(false, m, k, a.data(), k);
    EXPECT_EQ(packed.isa_tier, static_cast<int>(pack_tier));
    for (const IsaTier run_tier : UsableTiers()) {
      // The packed layout is tier-specific; consumption must dispatch to
      // the PACKING tier even when the active tier has moved on.
      ASSERT_TRUE(ForceIsaTier(run_tier));
      std::vector<double> got(static_cast<size_t>(m * n), 0.0);
      DGemmWithPackedA(packed, false, n, b.data(), n, 0.0, got.data(), n);
      ASSERT_EQ(0, std::memcmp(want.data(), got.data(),
                               want.size() * sizeof(double)))
          << "pack=" << IsaTierName(pack_tier)
          << " run=" << IsaTierName(run_tier);
    }
  }
}

TEST(TierBitIdentity, Conv2dForwardAtEveryTier) {
  TierSweepGuard guard;
  Rng rng(20240814);
  Tensor x = Tensor::RandomNormal({3, 4, 9, 9}, 1.0f, &rng);
  Tensor w = Tensor::RandomNormal({6, 4, 3, 3}, 0.5f, &rng);
  Tensor b = Tensor::RandomNormal({6}, 0.1f, &rng);
  Conv2dParams params;
  ASSERT_TRUE(ForceIsaTier(IsaTier::kScalar));
  Result<Tensor> want = Conv2dForward(x, w, b, params);
  ASSERT_TRUE(want.ok());
  for (const IsaTier tier : UsableTiers()) {
    ASSERT_TRUE(ForceIsaTier(tier));
    Result<Tensor> got = Conv2dForward(x, w, b, params);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(0, std::memcmp(want->data(), got->data(),
                             static_cast<size_t>(want->NumElements()) *
                                 sizeof(float)))
        << "tier=" << IsaTierName(tier);
  }
}

TEST(TierBitIdentity, Blas1ReductionsAtEveryTier) {
  TierSweepGuard guard;
  Rng rng(20240815);
  for (const int64_t n : {1, 7, 16, 33, 1000}) {
    const std::vector<float> a = RandomVec(static_cast<size_t>(n), &rng);
    const std::vector<float> b = RandomVec(static_cast<size_t>(n), &rng);
    ASSERT_TRUE(ForceIsaTier(IsaTier::kScalar));
    const float dot = DotF(a.data(), b.data(), n);
    const float cos = CosineSimilarityF(a.data(), b.data(), n);
    const float dist = SquaredDistanceF(a.data(), b.data(), n);
    for (const IsaTier tier : UsableTiers()) {
      ASSERT_TRUE(ForceIsaTier(tier));
      EXPECT_EQ(dot, DotF(a.data(), b.data(), n))
          << "tier=" << IsaTierName(tier) << " n=" << n;
      EXPECT_EQ(cos, CosineSimilarityF(a.data(), b.data(), n))
          << "tier=" << IsaTierName(tier) << " n=" << n;
      EXPECT_EQ(dist, SquaredDistanceF(a.data(), b.data(), n))
          << "tier=" << IsaTierName(tier) << " n=" << n;
    }
  }
}

// ---------------------------------------------------------------------------
// Quantized extraction path
// ---------------------------------------------------------------------------

TEST(Bf16, RoundTripAndRounding) {
  // Values with <= 8 mantissa bits survive the round trip exactly.
  for (const float v : {0.0f, 1.0f, -2.5f, 0.15625f, 384.0f, -1.0f / 1024}) {
    EXPECT_EQ(v, Bf16ToF32(F32ToBf16(v))) << v;
  }
  // bf16 keeps 7 explicit mantissa bits, so the quantum at 1.0 is 2^-7
  // and the tie sits at 2^-8. Round-to-nearest-even: the tie goes to the
  // even mantissa (1.0), 0.75 quanta rounds up, and the 1.5-quanta tie
  // goes to the even neighbor 1 + 2^-6.
  EXPECT_EQ(1.0f, Bf16ToF32(F32ToBf16(1.0f + 0x1.0p-8f)));
  EXPECT_EQ(1.0f + 0x1.0p-7f, Bf16ToF32(F32ToBf16(1.0f + 0x1.8p-8f)));
  EXPECT_EQ(1.0f + 0x1.0p-6f, Bf16ToF32(F32ToBf16(1.0f + 0x1.8p-7f)));
  // NaN stays NaN; infinity stays infinity.
  EXPECT_TRUE(std::isnan(Bf16ToF32(F32ToBf16(NAN))));
  EXPECT_EQ(INFINITY, Bf16ToF32(F32ToBf16(INFINITY)));
}

TEST(QuantizedConv, Bf16TracksF32Closely) {
  Rng rng(20240816);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 8}, 1.0f, &rng);
  Tensor w = Tensor::RandomNormal({5, 3, 3, 3}, 0.5f, &rng);
  Tensor b = Tensor::RandomNormal({5}, 0.1f, &rng);
  Conv2dParams params;
  Result<Tensor> full = Conv2dForward(x, w, b, params);
  ASSERT_TRUE(full.ok());
  const QuantizedConvWeights qw =
      QuantizeConvWeights(w, ConvPrecision::kBf16);
  Result<Tensor> quant = Conv2dForwardQuantized(x, qw, b, params);
  ASSERT_TRUE(quant.ok());
  ASSERT_EQ(full->NumElements(), quant->NumElements());
  for (int64_t i = 0; i < full->NumElements(); ++i) {
    // bf16 keeps 8 mantissa bits: ~0.4% relative per weight.
    EXPECT_NEAR(full->data()[i], quant->data()[i],
                2e-2f * (1.0f + std::fabs(full->data()[i])))
        << i;
  }
}

TEST(QuantizedConv, Int8TracksF32Approximately) {
  Rng rng(20240817);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 8}, 1.0f, &rng);
  Tensor w = Tensor::RandomNormal({5, 3, 3, 3}, 0.5f, &rng);
  Tensor b = Tensor::RandomNormal({5}, 0.1f, &rng);
  Conv2dParams params;
  Result<Tensor> full = Conv2dForward(x, w, b, params);
  ASSERT_TRUE(full.ok());
  const QuantizedConvWeights qw =
      QuantizeConvWeights(w, ConvPrecision::kInt8);
  ASSERT_EQ(qw.q8.size(), static_cast<size_t>(w.NumElements()));
  ASSERT_EQ(qw.scale.size(), 5u);
  Result<Tensor> quant = Conv2dForwardQuantized(x, qw, b, params);
  ASSERT_TRUE(quant.ok());
  double err2 = 0.0, ref2 = 0.0;
  for (int64_t i = 0; i < full->NumElements(); ++i) {
    const double d = full->data()[i] - quant->data()[i];
    err2 += d * d;
    ref2 += static_cast<double>(full->data()[i]) * full->data()[i];
  }
  // 8-bit symmetric quantization of both operands: a few percent relative
  // RMS error on Gaussian data.
  EXPECT_LT(std::sqrt(err2 / ref2), 0.05);
}

TEST(QuantizedConv, BatchEqualsSingletonsBitForBit) {
  Rng rng(20240818);
  Tensor batch = Tensor::RandomNormal({4, 3, 8, 8}, 1.0f, &rng);
  Tensor w = Tensor::RandomNormal({5, 3, 3, 3}, 0.5f, &rng);
  Tensor b = Tensor::RandomNormal({5}, 0.1f, &rng);
  Conv2dParams params;
  const QuantizedConvWeights qw =
      QuantizeConvWeights(w, ConvPrecision::kInt8);
  Result<Tensor> batched = Conv2dForwardQuantized(batch, qw, b, params);
  ASSERT_TRUE(batched.ok());
  const int64_t per_image = batched->NumElements() / 4;
  for (int64_t i = 0; i < 4; ++i) {
    // The activation scale is per image, so each image's result must not
    // depend on what else rode in the batch (the serve micro-batching
    // contract extends to the quantized path).
    Tensor one({1, 3, 8, 8});
    std::memcpy(one.data(), batch.data() + i * 3 * 8 * 8,
                sizeof(float) * 3 * 8 * 8);
    Result<Tensor> single = Conv2dForwardQuantized(one, qw, b, params);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ(0, std::memcmp(single->data(), batched->data() + i * per_image,
                             static_cast<size_t>(per_image) * sizeof(float)))
        << "image " << i;
  }
}

TEST(QuantizedConv, Int8IdenticalAtEveryTier) {
  TierSweepGuard guard;
  Rng rng(20240819);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 8}, 1.0f, &rng);
  Tensor w = Tensor::RandomNormal({5, 3, 3, 3}, 0.5f, &rng);
  Tensor b = Tensor::RandomNormal({5}, 0.1f, &rng);
  Conv2dParams params;
  const QuantizedConvWeights qw =
      QuantizeConvWeights(w, ConvPrecision::kInt8);
  ASSERT_TRUE(ForceIsaTier(IsaTier::kScalar));
  Result<Tensor> want = Conv2dForwardQuantized(x, qw, b, params);
  ASSERT_TRUE(want.ok());
  for (const IsaTier tier : UsableTiers()) {
    // int32 accumulation is exact, so the quantized path is bit-identical
    // across tiers even though it is NOT bit-identical to f32.
    ASSERT_TRUE(ForceIsaTier(tier));
    Result<Tensor> got = Conv2dForwardQuantized(x, qw, b, params);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(0, std::memcmp(want->data(), got->data(),
                             static_cast<size_t>(want->NumElements()) *
                                 sizeof(float)))
        << "tier=" << IsaTierName(tier);
  }
}

TEST(QuantizedConv, PrecisionNamesParseStrictly) {
  ConvPrecision p = ConvPrecision::kBf16;
  EXPECT_TRUE(ParseConvPrecisionName("f32", &p));
  EXPECT_EQ(p, ConvPrecision::kF32);
  EXPECT_TRUE(ParseConvPrecisionName("bf16", &p));
  EXPECT_EQ(p, ConvPrecision::kBf16);
  EXPECT_TRUE(ParseConvPrecisionName("int8", &p));
  EXPECT_EQ(p, ConvPrecision::kInt8);
  for (const char* bad : {"", "INT8", "fp32", "i8", "bf16 "}) {
    ConvPrecision q = ConvPrecision::kInt8;
    EXPECT_FALSE(ParseConvPrecisionName(bad, &q)) << bad;
    EXPECT_EQ(q, ConvPrecision::kInt8) << bad;
  }
}

}  // namespace
}  // namespace goggles
