#include "util/failpoint.h"

#include <gtest/gtest.h>

#include "util/backoff.h"
#include "util/clock.h"

/// Failpoint registry semantics (spec grammar, probability, counted
/// auto-disarm, trigger accounting) and the retry Backoff schedule. The
/// registry API is live in every build — only the GOGGLES_FAILPOINT
/// macro *sites* compile away — so these tests run in the default build
/// by driving failpoint::internal::Evaluate directly.

namespace goggles {
namespace {

using failpoint::Action;
using failpoint::Spec;

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedSiteDoesNothing) {
  auto hit = failpoint::internal::Evaluate("never.armed");
  EXPECT_EQ(hit.action, Action::kOff);
}

TEST_F(FailpointTest, ArmedReturnErrorTriggersAndCounts) {
  ASSERT_TRUE(failpoint::ArmFromString("t.err", "return-error").ok());
  auto hit = failpoint::internal::Evaluate("t.err");
  EXPECT_EQ(hit.action, Action::kReturnError);
  EXPECT_EQ(failpoint::TriggerCount("t.err"), 1u);

  const Status injected = failpoint::internal::InjectedError("t.err");
  EXPECT_EQ(injected.code(), StatusCode::kIOError);
  EXPECT_NE(injected.message().find("t.err"), std::string::npos);

  ASSERT_TRUE(failpoint::Disarm("t.err").ok());
  EXPECT_EQ(failpoint::internal::Evaluate("t.err").action, Action::kOff);
}

TEST_F(FailpointTest, SpecGrammarParsesArgProbabilityAndCount) {
  ASSERT_TRUE(
      failpoint::ArmFromString("t.partial", "partial-write(12)").ok());
  auto hit = failpoint::internal::Evaluate("t.partial");
  EXPECT_EQ(hit.action, Action::kPartialWrite);
  EXPECT_EQ(hit.arg, 12);

  ASSERT_TRUE(failpoint::ArmFromString("t.full", "delay-ms(1):0.5:3").ok());
  bool found = false;
  for (const auto& info : failpoint::List()) {
    if (info.name != "t.full") continue;
    found = true;
    EXPECT_EQ(info.spec.action, Action::kDelayMs);
    EXPECT_EQ(info.spec.arg, 1);
    EXPECT_DOUBLE_EQ(info.spec.probability, 0.5);
    EXPECT_EQ(info.spec.count, 3);
  }
  EXPECT_TRUE(found);

  EXPECT_FALSE(failpoint::ArmFromString("t.bad", "explode").ok());
  EXPECT_FALSE(failpoint::ArmFromString("t.bad", "return-error:2.0").ok());
  EXPECT_FALSE(failpoint::ArmFromString("t.bad", "delay-ms(oops)").ok());
  EXPECT_FALSE(failpoint::ArmFromString("", "return-error").ok());
}

TEST_F(FailpointTest, EnvGrammarArmsMultiplePoints) {
  ASSERT_TRUE(failpoint::ArmFromEnvSpec(
                  "t.a=return-error; t.b=partial-write(7):1:2")
                  .ok());
  EXPECT_EQ(failpoint::internal::Evaluate("t.a").action,
            Action::kReturnError);
  EXPECT_EQ(failpoint::internal::Evaluate("t.b").arg, 7);
  EXPECT_FALSE(failpoint::ArmFromEnvSpec("just-a-word").ok());
}

TEST_F(FailpointTest, CountedArmAutoDisarms) {
  ASSERT_TRUE(failpoint::ArmFromString("t.count", "return-error:1:2").ok());
  EXPECT_EQ(failpoint::internal::Evaluate("t.count").action,
            Action::kReturnError);
  EXPECT_EQ(failpoint::internal::Evaluate("t.count").action,
            Action::kReturnError);
  // Third hit: the two allowed triggers are spent, the point is off.
  EXPECT_EQ(failpoint::internal::Evaluate("t.count").action, Action::kOff);
  EXPECT_EQ(failpoint::TriggerCount("t.count"), 2u);
}

TEST_F(FailpointTest, ZeroProbabilityNeverTriggers) {
  ASSERT_TRUE(failpoint::ArmFromString("t.never", "return-error:0").ok());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(failpoint::internal::Evaluate("t.never").action, Action::kOff);
  }
  EXPECT_EQ(failpoint::TriggerCount("t.never"), 0u);
}

TEST_F(FailpointTest, DelayActionSleeps) {
  ASSERT_TRUE(failpoint::ArmFromString("t.slow", "delay-ms(20)").ok());
  const int64_t start = MonotonicMicros();
  (void)failpoint::internal::Evaluate("t.slow");
  EXPECT_GE(MonotonicMicros() - start, 15'000);
}

TEST(BackoffTest, DelaysGrowGeometricallyAndExhaust) {
  BackoffPolicy policy;
  policy.max_attempts = 4;
  policy.initial_delay_micros = 1000;
  policy.multiplier = 4.0;
  policy.max_delay_micros = 10'000;
  policy.jitter = false;
  Backoff backoff(policy, /*seed=*/1);
  EXPECT_EQ(backoff.NextDelayMicros(), 1000);   // attempt 1
  EXPECT_EQ(backoff.NextDelayMicros(), 4000);   // attempt 2
  EXPECT_EQ(backoff.NextDelayMicros(), 10'000); // attempt 3, capped
  EXPECT_LT(backoff.NextDelayMicros(), 0);      // retries exhausted
  EXPECT_LT(backoff.NextDelayMicros(), 0);      // stays exhausted
  EXPECT_EQ(backoff.attempts(), 5);
}

TEST(BackoffTest, JitterStaysInHalfToFullWindow) {
  BackoffPolicy policy;
  policy.max_attempts = 100;
  policy.initial_delay_micros = 8000;
  policy.multiplier = 1.0;  // constant upper bound isolates the jitter
  policy.jitter = true;
  Backoff backoff(policy, /*seed=*/7);
  for (int i = 0; i < 99; ++i) {
    const int64_t delay = backoff.NextDelayMicros();
    EXPECT_GE(delay, 4000);
    EXPECT_LE(delay, 8000);
  }
}

TEST(BackoffTest, SameSeedSameSchedule) {
  BackoffPolicy policy;
  policy.max_attempts = 8;
  Backoff a(policy, 42), b(policy, 42);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.NextDelayMicros(), b.NextDelayMicros());
  }
}

}  // namespace
}  // namespace goggles
